#include "classify/ensemble.h"

#include <memory>

#include <gtest/gtest.h>

#include "classify/nn.h"
#include "data/generator.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

// A stub member that always answers one label.
class ConstantClassifier final : public SeriesClassifier {
 public:
  explicit ConstantClassifier(int label) : label_(label) {}
  void Fit(const DatasetView&) override {}
  int Predict(SeriesView) const override { return label_; }

 private:
  int label_;
};

Dataset TinyTrain() {
  Dataset d;
  d.Add(TimeSeries(std::vector<double>(16, 0.0), 0));
  d.Add(TimeSeries(std::vector<double>(16, 1.0), 1));
  d.Add(TimeSeries(std::vector<double>(16, 2.0), 2));
  return d;
}

TEST(VotingEnsembleTest, MajorityWins) {
  VotingEnsemble ensemble;
  ensemble.AddMember(std::make_unique<ConstantClassifier>(1));
  ensemble.AddMember(std::make_unique<ConstantClassifier>(1));
  ensemble.AddMember(std::make_unique<ConstantClassifier>(0));
  ensemble.Fit(TinyTrain());
  EXPECT_EQ(ensemble.Predict(TinyTrain()[0]), 1);
}

TEST(VotingEnsembleTest, TieResolvesToEarliestVoter) {
  VotingEnsemble ensemble;
  ensemble.AddMember(std::make_unique<ConstantClassifier>(2));
  ensemble.AddMember(std::make_unique<ConstantClassifier>(0));
  ensemble.Fit(TinyTrain());
  EXPECT_EQ(ensemble.Predict(TinyTrain()[0]), 2);
}

TEST(VotingEnsembleTest, SingleMemberPassesThrough) {
  VotingEnsemble ensemble;
  ensemble.AddMember(std::make_unique<ConstantClassifier>(1));
  ensemble.Fit(TinyTrain());
  EXPECT_EQ(ensemble.Predict(TinyTrain()[2]), 1);
  EXPECT_EQ(ensemble.num_members(), 1u);
}

TEST(VotingEnsembleTest, RealMembersAtLeastAsGoodAsWorstMember) {
  GeneratorSpec spec;
  spec.name = "ensemble";
  spec.num_classes = 2;
  spec.train_size = 16;
  spec.test_size = 50;
  spec.length = 80;
  const TrainTestSplit data = GenerateDataset(spec);

  IpsOptions fast;
  fast.sample_count = 5;
  fast.length_ratios = {0.15, 0.25};

  VotingEnsemble ensemble;
  ensemble.AddMember(std::make_unique<IpsClassifier>(fast));
  ensemble.AddMember(std::make_unique<OneNnEd>());
  ensemble.AddMember(std::make_unique<OneNnDtw>(0.1));
  ensemble.Fit(data.train);
  const double ensemble_acc = ensemble.Accuracy(data.test);

  OneNnEd ed;
  ed.Fit(data.train);
  IpsClassifier ips_clf(fast);
  ips_clf.Fit(data.train);
  const double worst =
      std::min(ed.Accuracy(data.test), ips_clf.Accuracy(data.test));
  EXPECT_GE(ensemble_acc, worst - 0.05);
  EXPECT_GT(ensemble_acc, 0.6);
}

}  // namespace
}  // namespace ips
