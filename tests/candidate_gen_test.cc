#include "ips/candidate_gen.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace ips {
namespace {

Dataset SmallTrainSet() {
  GeneratorSpec spec;
  spec.name = "candgen";
  spec.num_classes = 2;
  spec.train_size = 12;
  spec.test_size = 2;
  spec.length = 64;
  return GenerateDataset(spec).train;
}

IpsOptions SmallOptions() {
  IpsOptions o;
  o.sample_count = 4;
  o.sample_size = 3;
  o.length_ratios = {0.2, 0.4};
  return o;
}

TEST(ResolveCandidateLengthsTest, RatiosRoundedAndDeduped) {
  const std::vector<double> ratios = {0.1, 0.2, 0.21, 0.5};
  const auto lengths = ResolveCandidateLengths(100, ratios);
  EXPECT_EQ(lengths, (std::vector<size_t>{10, 20, 21, 50}));
  // On a short series several ratios collapse to the same clamped value.
  const auto clamped = ResolveCandidateLengths(20, std::vector<double>{0.1, 0.15, 0.2});
  EXPECT_EQ(clamped, (std::vector<size_t>{4}));
}

TEST(ResolveCandidateLengthsTest, ClampedToSeriesLength) {
  const auto lengths = ResolveCandidateLengths(10, std::vector<double>{2.0});
  EXPECT_EQ(lengths, (std::vector<size_t>{10}));
}

TEST(GenerateCandidatesTest, PoolsPopulatedPerClass) {
  const Dataset train = SmallTrainSet();
  Rng rng(1);
  const CandidatePool pool = GenerateCandidates(train, SmallOptions(), rng);
  EXPECT_EQ(pool.motifs.size(), 2u);
  EXPECT_EQ(pool.discords.size(), 2u);
  // Q_N=4 samples x 2 lengths x 1 per profile = 8 per class.
  for (const auto& [label, motifs] : pool.motifs) {
    EXPECT_EQ(motifs.size(), 8u) << "class " << label;
  }
  EXPECT_EQ(pool.TotalMotifs(), 16u);
  EXPECT_EQ(pool.TotalDiscords(), 16u);
}

TEST(GenerateCandidatesTest, CandidatesCarryProvenance) {
  const Dataset train = SmallTrainSet();
  Rng rng(2);
  const CandidatePool pool = GenerateCandidates(train, SmallOptions(), rng);
  for (const auto& [label, motifs] : pool.motifs) {
    for (const Subsequence& m : motifs) {
      EXPECT_EQ(m.label, label);
      ASSERT_GE(m.series_index, 0);
      ASSERT_LT(static_cast<size_t>(m.series_index), train.size());
      EXPECT_EQ(train[static_cast<size_t>(m.series_index)].label, label);
      // Values must equal the recorded slice of the source series.
      const TimeSeries& src = train[static_cast<size_t>(m.series_index)];
      ASSERT_LE(m.start + m.length(), src.length());
      for (size_t i = 0; i < m.length(); ++i) {
        EXPECT_DOUBLE_EQ(m.values[i], src.values[m.start + i]);
      }
    }
  }
}

TEST(GenerateCandidatesTest, LengthsMatchRatios) {
  const Dataset train = SmallTrainSet();
  Rng rng(3);
  const CandidatePool pool = GenerateCandidates(train, SmallOptions(), rng);
  const auto lengths = ResolveCandidateLengths(64, std::vector<double>{0.2, 0.4});
  for (const auto& [label, motifs] : pool.motifs) {
    for (const Subsequence& m : motifs) {
      EXPECT_TRUE(std::find(lengths.begin(), lengths.end(), m.length()) !=
                  lengths.end())
          << "unexpected length " << m.length();
    }
  }
}

TEST(GenerateCandidatesTest, DeterministicGivenRngSeed) {
  const Dataset train = SmallTrainSet();
  Rng rng_a(7), rng_b(7);
  const CandidatePool a = GenerateCandidates(train, SmallOptions(), rng_a);
  const CandidatePool b = GenerateCandidates(train, SmallOptions(), rng_b);
  ASSERT_EQ(a.TotalMotifs(), b.TotalMotifs());
  for (const auto& [label, motifs] : a.motifs) {
    const auto& other = b.motifs.at(label);
    for (size_t i = 0; i < motifs.size(); ++i) {
      EXPECT_EQ(motifs[i].values, other[i].values);
    }
  }
}

TEST(GenerateCandidatesTest, SampleSizeClampedToClassSize) {
  // Class sizes of 3; sample_size 10 must not crash.
  GeneratorSpec spec;
  spec.name = "tiny";
  spec.num_classes = 2;
  spec.train_size = 6;
  spec.test_size = 2;
  spec.length = 48;
  const Dataset train = GenerateDataset(spec).train;
  IpsOptions o = SmallOptions();
  o.sample_size = 10;
  Rng rng(4);
  const CandidatePool pool = GenerateCandidates(train, o, rng);
  EXPECT_GT(pool.TotalMotifs(), 0u);
}

TEST(CandidatePoolTest, AllOfClassMergesMotifsAndDiscords) {
  CandidatePool pool;
  Subsequence a;
  a.values = {1.0};
  a.label = 0;
  pool.motifs[0] = {a, a};
  pool.discords[0] = {a};
  EXPECT_EQ(pool.AllOfClass(0).size(), 3u);
  EXPECT_TRUE(pool.AllOfClass(1).empty());
}

TEST(CandidatePoolTest, MergedByClassCoversDiscordOnlyClasses) {
  // Class 0: motifs only. Class 1: discords only (e.g. every motif pruned).
  // Class 2: an empty motif entry alongside discords. Class 3: both empty.
  CandidatePool pool;
  Subsequence s0, s1, s2;
  s0.values = {1.0};
  s0.label = 0;
  s1.values = {2.0};
  s1.label = 1;
  s2.values = {3.0};
  s2.label = 2;
  pool.motifs[0] = {s0, s0};
  pool.discords[1] = {s1};
  pool.motifs[2] = {};
  pool.discords[2] = {s2, s2};
  pool.motifs[3] = {};
  pool.discords[3] = {};

  const auto by_class = pool.MergedByClass();
  ASSERT_EQ(by_class.size(), 3u);
  EXPECT_EQ(by_class.at(0).size(), 2u);
  // The discord-only class must be present -- building the label set from
  // motif keys alone would silently drop it (and its DABF).
  EXPECT_EQ(by_class.at(1).size(), 1u);
  EXPECT_EQ(by_class.at(2).size(), 2u);
  EXPECT_EQ(by_class.count(3), 0u);
}

}  // namespace
}  // namespace ips
