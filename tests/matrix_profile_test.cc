#include "matrix_profile/matrix_profile.h"

#include <cmath>

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/rng.h"
#include "core/znorm.h"

namespace ips {
namespace {

// Brute-force self-join reference: z-normalised distance between every
// window pair outside the exclusion zone.
MatrixProfile BruteSelfJoin(const std::vector<double>& s, size_t w,
                            size_t exclusion) {
  const size_t l = s.size() - w + 1;
  MatrixProfile mp;
  mp.values.assign(l, std::numeric_limits<double>::infinity());
  mp.indices.assign(l, kNoNeighbor);
  for (size_t i = 0; i < l; ++i) {
    const std::vector<double> wi =
        ZNormalize(std::span<const double>(s).subspan(i, w));
    for (size_t j = 0; j < l; ++j) {
      const size_t gap = i > j ? i - j : j - i;
      if (gap <= exclusion) continue;
      const std::vector<double> wj =
          ZNormalize(std::span<const double>(s).subspan(j, w));
      const double d = Euclidean(wi, wj);
      if (d < mp.values[i]) {
        mp.values[i] = d;
        mp.indices[i] = j;
      }
    }
  }
  return mp;
}

TEST(SelfJoinProfileTest, MatchesBruteForce) {
  Rng rng(1);
  std::vector<double> s(80);
  for (auto& v : s) v = rng.Gaussian();
  const size_t w = 8;
  const size_t excl = DefaultExclusionZone(w);
  const MatrixProfile fast = SelfJoinProfile(s, w);
  const MatrixProfile brute = BruteSelfJoin(s, w, excl);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.values[i], brute.values[i], 1e-6) << "position " << i;
  }
}

TEST(SelfJoinProfileTest, PlantedMotifHasSmallestProfile) {
  Rng rng(2);
  std::vector<double> s(200);
  for (auto& v : s) v = rng.Gaussian(0.0, 0.3);
  // Plant the same pattern at positions 20 and 150.
  for (size_t i = 0; i < 16; ++i) {
    const double pattern =
        std::sin(2.0 * 3.14159 * static_cast<double>(i) / 8.0) * 3.0;
    s[20 + i] += pattern;
    s[150 + i] += pattern;
  }
  const MatrixProfile mp = SelfJoinProfile(s, 16);
  size_t argmin = 0;
  for (size_t i = 1; i < mp.size(); ++i) {
    if (mp.values[i] < mp.values[argmin]) argmin = i;
  }
  const bool near_plant =
      (argmin >= 15 && argmin <= 25) || (argmin >= 145 && argmin <= 155);
  EXPECT_TRUE(near_plant) << "argmin " << argmin;
}

TEST(SelfJoinProfileTest, NeighborIndicesRespectExclusion) {
  Rng rng(3);
  std::vector<double> s(60);
  for (auto& v : s) v = rng.Gaussian();
  const size_t w = 6;
  const MatrixProfile mp = SelfJoinProfile(s, w);
  const size_t excl = DefaultExclusionZone(w);
  for (size_t i = 0; i < mp.size(); ++i) {
    ASSERT_NE(mp.indices[i], kNoNeighbor);
    const size_t j = mp.indices[i];
    const size_t gap = i > j ? i - j : j - i;
    EXPECT_GT(gap, excl);
  }
}

TEST(SelfJoinProfileTest, ValuesBoundedBy2SqrtM) {
  // Max z-normalised distance between unit-variance windows is 2*sqrt(m).
  Rng rng(4);
  std::vector<double> s(100);
  for (auto& v : s) v = rng.Gaussian();
  const size_t w = 10;
  const MatrixProfile mp = SelfJoinProfile(s, w);
  const double bound = 2.0 * std::sqrt(static_cast<double>(w)) + 1e-9;
  for (double v : mp.values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, bound);
  }
}

// Brute-force AB-join reference.
MatrixProfile BruteAbJoin(const std::vector<double>& a,
                          const std::vector<double>& b, size_t w) {
  const size_t la = a.size() - w + 1;
  const size_t lb = b.size() - w + 1;
  MatrixProfile mp;
  mp.values.assign(la, std::numeric_limits<double>::infinity());
  mp.indices.assign(la, kNoNeighbor);
  for (size_t i = 0; i < la; ++i) {
    const std::vector<double> wi =
        ZNormalize(std::span<const double>(a).subspan(i, w));
    for (size_t j = 0; j < lb; ++j) {
      const std::vector<double> wj =
          ZNormalize(std::span<const double>(b).subspan(j, w));
      const double d = Euclidean(wi, wj);
      if (d < mp.values[i]) {
        mp.values[i] = d;
        mp.indices[i] = j;
      }
    }
  }
  return mp;
}

TEST(AbJoinProfileTest, MatchesBruteForce) {
  Rng rng(5);
  std::vector<double> a(50), b(70);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const size_t w = 7;
  const MatrixProfile fast = AbJoinProfile(a, b, w);
  const MatrixProfile brute = BruteAbJoin(a, b, w);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.values[i], brute.values[i], 1e-6) << "position " << i;
  }
}

TEST(AbJoinProfileTest, SharedPatternGivesNearZero) {
  Rng rng(6);
  std::vector<double> a(100), b(100);
  for (auto& v : a) v = rng.Gaussian(0.0, 0.2);
  for (auto& v : b) v = rng.Gaussian(0.0, 0.2);
  for (size_t i = 0; i < 12; ++i) {
    const double pattern = std::cos(0.5 * static_cast<double>(i)) * 4.0;
    a[30 + i] += pattern;
    b[60 + i] += pattern;
  }
  const MatrixProfile mp = AbJoinProfile(a, b, 12);
  double mn = mp.values[0];
  size_t argmin = 0;
  for (size_t i = 1; i < mp.size(); ++i) {
    if (mp.values[i] < mn) {
      mn = mp.values[i];
      argmin = i;
    }
  }
  EXPECT_LT(mn, 1.0);
  // The z-normalised minimum can land a few samples early where the window
  // straddles the pattern onset.
  EXPECT_NEAR(static_cast<double>(argmin), 30.0, 6.0);
}

TEST(AbJoinProfileTest, NoExclusionZone) {
  // a is a subrange of b, so every window has an exact match.
  Rng rng(7);
  std::vector<double> b(60);
  for (auto& v : b) v = rng.Gaussian();
  const std::vector<double> a(b.begin() + 10, b.begin() + 40);
  const MatrixProfile mp = AbJoinProfile(a, b, 8);
  for (size_t i = 0; i < mp.size(); ++i) {
    EXPECT_NEAR(mp.values[i], 0.0, 1e-6);
    EXPECT_EQ(mp.indices[i], i + 10);
  }
}

TEST(ProfileDiffTest, AbsoluteDifference) {
  MatrixProfile a, b;
  a.values = {1.0, 5.0, 2.0};
  b.values = {4.0, 1.0, 2.0};
  a.indices = b.indices = {0, 0, 0};
  EXPECT_EQ(ProfileDiff(a, b), (std::vector<double>{3.0, 4.0, 0.0}));
}

TEST(DefaultExclusionZoneTest, HalfWindowRoundedUp) {
  EXPECT_EQ(DefaultExclusionZone(8), 4u);
  EXPECT_EQ(DefaultExclusionZone(9), 5u);
}

TEST(SelfJoinProfileParallelTest, MatchesSequential) {
  Rng rng(11);
  std::vector<double> s(300);
  for (auto& v : s) v = rng.Gaussian();
  const MatrixProfile seq = SelfJoinProfile(s, 16);
  for (size_t threads : {2, 4, 7}) {
    const MatrixProfile par = SelfJoinProfileParallel(s, 16, threads);
    ASSERT_EQ(par.size(), seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_NEAR(par.values[i], seq.values[i], 1e-7)
          << "threads " << threads << " position " << i;
    }
  }
}

TEST(SelfJoinProfileParallelTest, SingleThreadDelegates) {
  Rng rng(12);
  std::vector<double> s(80);
  for (auto& v : s) v = rng.Gaussian();
  const MatrixProfile a = SelfJoinProfile(s, 8);
  const MatrixProfile b = SelfJoinProfileParallel(s, 8, 1);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
    EXPECT_EQ(a.indices[i], b.indices[i]);
  }
}

TEST(SelfJoinProfileParallelTest, MoreThreadsThanRows) {
  Rng rng(13);
  std::vector<double> s(20);
  for (auto& v : s) v = rng.Gaussian();
  const MatrixProfile seq = SelfJoinProfile(s, 4);
  const MatrixProfile par = SelfJoinProfileParallel(s, 4, 64);
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_NEAR(par.values[i], seq.values[i], 1e-8);
  }
}

class SelfJoinSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SelfJoinSweep, AgreesWithBruteAcrossWindows) {
  const size_t w = GetParam();
  Rng rng(20 + w);
  std::vector<double> s(64);
  for (auto& v : s) v = rng.Gaussian();
  const MatrixProfile fast = SelfJoinProfile(s, w);
  const MatrixProfile brute = BruteSelfJoin(s, w, DefaultExclusionZone(w));
  // Near-zero distances amplify the QT-recurrence rounding: d = sqrt(d2)
  // turns a 1e-12 absolute error in d2 into ~1e-6 in d.
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.values[i], brute.values[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SelfJoinSweep,
                         ::testing::Values(2, 3, 5, 9, 16, 25));

}  // namespace
}  // namespace ips
