// Tests for the benchmark-harness helpers: argument parsing, workload
// scaling and dataset selection.

#include "bench/bench_common.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ips::bench {
namespace {

BenchArgs Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "test";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return ParseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseArgsTest, Defaults) {
  const BenchArgs args = Parse({});
  EXPECT_FALSE(args.full);
  EXPECT_TRUE(args.ucr_dir.empty());
  EXPECT_TRUE(args.datasets.empty());
  EXPECT_TRUE(args.csv_path.empty());
  EXPECT_FALSE(args.count_scale.has_value());
}

TEST(ParseArgsTest, AllFlags) {
  const BenchArgs args =
      Parse({"--full", "--ucr_dir=/data/ucr", "--count_scale=0.5",
             "--length_scale=0.25", "--csv=/tmp/out.csv",
             "--datasets=A,B,C"});
  EXPECT_TRUE(args.full);
  EXPECT_EQ(args.ucr_dir, "/data/ucr");
  ASSERT_TRUE(args.count_scale.has_value());
  EXPECT_DOUBLE_EQ(*args.count_scale, 0.5);
  ASSERT_TRUE(args.length_scale.has_value());
  EXPECT_DOUBLE_EQ(*args.length_scale, 0.25);
  EXPECT_EQ(args.csv_path, "/tmp/out.csv");
  EXPECT_EQ(args.datasets, (std::vector<std::string>{"A", "B", "C"}));
}

TEST(ParseArgsTest, SingleDataset) {
  const BenchArgs args = Parse({"--datasets=GunPoint"});
  EXPECT_EQ(args.datasets, (std::vector<std::string>{"GunPoint"}));
}

TEST(ScaleForTest, QuickModeByDefaultFullOnFlag) {
  const CatalogScale quick = ScaleFor(Parse({}));
  EXPECT_LT(quick.count_factor, 1.0);
  const CatalogScale full = ScaleFor(Parse({"--full"}));
  EXPECT_DOUBLE_EQ(full.count_factor, 1.0);
  EXPECT_DOUBLE_EQ(full.length_factor, 1.0);
}

TEST(ScaleForTest, OverridesApply) {
  const CatalogScale s = ScaleFor(Parse({"--count_scale=0.7"}));
  EXPECT_DOUBLE_EQ(s.count_factor, 0.7);
}

TEST(SelectDatasetsTest, FlagOverridesDefaults) {
  const BenchArgs args = Parse({"--datasets=X"});
  EXPECT_EQ(SelectDatasets(args, {"A", "B"}),
            (std::vector<std::string>{"X"}));
  EXPECT_EQ(SelectDatasets(Parse({}), {"A", "B"}),
            (std::vector<std::string>{"A", "B"}));
}

TEST(AllPaperDatasetsTest, FortySixWithoutMoteStrain) {
  const auto names = AllPaperDatasets();
  EXPECT_EQ(names.size(), 46u);
  for (const auto& n : names) EXPECT_NE(n, "MoteStrain");
}

TEST(GetDatasetTest, SynthesisesFromCatalog) {
  const BenchArgs args = Parse({});
  const TrainTestSplit data = GetDataset("GunPoint", args);
  EXPECT_GT(data.train.size(), 0u);
  EXPECT_GT(data.test.size(), 0u);
  EXPECT_EQ(data.train.NumClasses(), 2);
}

TEST(GetDatasetTest, MissingUcrDirFallsBackToSynthetic) {
  const BenchArgs args = Parse({"--ucr_dir=/nonexistent"});
  const TrainTestSplit data = GetDataset("GunPoint", args);
  EXPECT_GT(data.train.size(), 0u);
}

}  // namespace
}  // namespace ips::bench
