// Allocation-regression guard for the all-pairs join hot loop
// (docs/memory.md): a warm JoinAllPairsInto batch -- artifact table held,
// output capacity sized, thread-local arenas grown -- must perform no
// per-pair heap allocations, and at most a small constant number of
// per-batch ones (span bookkeeping, pool dispatch). Counted with a global
// operator-new override, so this binary must NOT run under ASan/TSan/MSan
// (their allocator interposition conflicts with the override); the
// sanitizer CI jobs build it but every case skips itself.
//
// The per-pair claim is proven by differencing two batch sizes: per-batch
// constants cancel, so any nonzero slope is a real per-pair allocation
// regression. Single-threaded engine -- the count is deterministic.

#include <cstdlib>

#include <atomic>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "matrix_profile/mp_engine.h"
#include "obs/metrics.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IPS_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define IPS_ALLOC_TEST_DISABLED 1
#endif
#endif
#ifndef IPS_ALLOC_TEST_DISABLED
#define IPS_ALLOC_TEST_DISABLED 0
#endif

namespace {
std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_alloc_counting{false};

inline void CountAlloc() {
  if (g_alloc_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

#if !IPS_ALLOC_TEST_DISABLED
void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  CountAlloc();
  if (void* p = std::aligned_alloc(static_cast<size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
#endif  // !IPS_ALLOC_TEST_DISABLED

namespace ips {
namespace {

// Every case must bail out under sanitizers (the override above is
// compiled out there, so the counts would read zero-forever and pass
// vacuously at best).
#define IPS_SKIP_UNDER_SANITIZERS()                                       \
  do {                                                                    \
    if (IPS_ALLOC_TEST_DISABLED) {                                        \
      GTEST_SKIP() << "allocation counting is disabled under sanitizers"; \
    }                                                                     \
  } while (0)

std::vector<std::vector<double>> MakeBatch(size_t count, size_t len) {
  Rng rng(5);
  std::vector<std::vector<double>> series(count);
  for (auto& s : series) {
    s.resize(len);
    double x = 0.0;
    for (double& v : s) {
      x += rng.Uniform() - 0.5;
      v = x;
    }
  }
  return series;
}

// Allocations during one steady-state batch: warm twice (builds the
// table, sizes the output, grows the arenas), then count the third run.
size_t WarmBatchAllocs(MatrixProfileEngine& engine,
                       const std::vector<std::span<const double>>& views,
                       size_t window, std::vector<PairJoin>& joins) {
  engine.JoinAllPairsInto(views, window, joins);
  engine.JoinAllPairsInto(views, window, joins);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_counting.store(true, std::memory_order_relaxed);
  engine.JoinAllPairsInto(views, window, joins);
  g_alloc_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(AllocRegressionTest, WarmBatchStaysUnderConstantBound) {
  IPS_SKIP_UNDER_SANITIZERS();
  const auto series = MakeBatch(24, 40);
  const std::vector<std::span<const double>> views(series.begin(),
                                                   series.end());
  MatrixProfileEngine engine(1);
  std::vector<PairJoin> joins;
  const size_t allocs = WarmBatchAllocs(engine, views, 8, joins);
  // Per-batch bookkeeping only (obs span path strings and the like); the
  // 276 pairs themselves must contribute nothing. The bound is a small
  // constant with slack for stdlib differences -- the slope test below is
  // the strict per-pair gate.
  EXPECT_LE(allocs, 16u);
}

TEST(AllocRegressionTest, PerPairAllocationSlopeIsZero) {
  IPS_SKIP_UNDER_SANITIZERS();
  const auto small = MakeBatch(24, 40);   // 276 pairs
  const auto large = MakeBatch(48, 40);   // 1128 pairs
  const std::vector<std::span<const double>> small_views(small.begin(),
                                                         small.end());
  const std::vector<std::span<const double>> large_views(large.begin(),
                                                         large.end());
  size_t allocs_small = 0, allocs_large = 0;
  {
    MatrixProfileEngine engine(1);
    std::vector<PairJoin> joins;
    allocs_small = WarmBatchAllocs(engine, small_views, 8, joins);
  }
  {
    MatrixProfileEngine engine(1);
    std::vector<PairJoin> joins;
    allocs_large = WarmBatchAllocs(engine, large_views, 8, joins);
  }
  // 4x the pairs, same per-batch constants: any growth is a per-pair
  // allocation that crept back into the sweep hot loop.
  EXPECT_EQ(allocs_large, allocs_small);
}

TEST(AllocRegressionTest, ArenaSlabsAreStableAcrossWarmBatches) {
  IPS_SKIP_UNDER_SANITIZERS();
  const auto series = MakeBatch(16, 48);
  const std::vector<std::span<const double>> views(series.begin(),
                                                   series.end());
  MatrixProfileEngine engine(1);
  std::vector<PairJoin> joins;
  engine.JoinAllPairsInto(views, 9, joins);
  engine.JoinAllPairsInto(views, 9, joins);

  auto& registry = obs::MetricsRegistry::Instance();
  const uint64_t slabs_before =
      registry.Snapshot().CounterValue("engine.arena.slab_allocs");
  for (int rep = 0; rep < 5; ++rep) {
    engine.JoinAllPairsInto(views, 9, joins);
  }
  const uint64_t slabs_after =
      registry.Snapshot().CounterValue("engine.arena.slab_allocs");
  // Warm arenas: acquisitions keep flowing, slabs never grow again.
  EXPECT_EQ(slabs_after, slabs_before);
}

}  // namespace
}  // namespace ips
