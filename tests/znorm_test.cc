#include "core/znorm.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(MeanStdTest, KnownValues) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(x), 2.5);
  EXPECT_NEAR(StdDev(x), std::sqrt(1.25), 1e-12);
}

TEST(MeanStdTest, SingleElement) {
  const std::vector<double> x = {7.0};
  EXPECT_DOUBLE_EQ(Mean(x), 7.0);
  EXPECT_DOUBLE_EQ(StdDev(x), 0.0);
}

TEST(ZNormalizeTest, ResultHasZeroMeanUnitStd) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const std::vector<double> z = ZNormalize(x);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantInputMapsToZeros) {
  const std::vector<double> x = {5.0, 5.0, 5.0};
  for (double v : ZNormalize(x)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNormalizeTest, ShiftAndScaleInvariant) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0, 3.0};
  std::vector<double> y(x);
  for (double& v : y) v = 3.0 * v - 11.0;
  const std::vector<double> zx = ZNormalize(x);
  const std::vector<double> zy = ZNormalize(y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(zx[i], zy[i], 1e-12);
}

TEST(ZNormalizeTest, EmptyInputIsNoop) {
  std::vector<double> x;
  ZNormalizeInPlace(x);
  EXPECT_TRUE(x.empty());
}

TEST(RollingStatsTest, MatchesPerWindowComputation) {
  const std::vector<double> x = {0.5, -1.2, 3.3, 2.0, -0.7, 1.1, 4.2, -2.5};
  const size_t w = 3;
  const RollingStats rs = ComputeRollingStats(x, w);
  ASSERT_EQ(rs.means.size(), x.size() - w + 1);
  for (size_t i = 0; i + w <= x.size(); ++i) {
    const std::vector<double> window(x.begin() + static_cast<ptrdiff_t>(i),
                                     x.begin() + static_cast<ptrdiff_t>(i + w));
    EXPECT_NEAR(rs.means[i], Mean(window), 1e-12) << "window " << i;
    EXPECT_NEAR(rs.stds[i], StdDev(window), 1e-10) << "window " << i;
  }
}

TEST(RollingStatsTest, FullLengthWindow) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const RollingStats rs = ComputeRollingStats(x, 3);
  ASSERT_EQ(rs.means.size(), 1u);
  EXPECT_DOUBLE_EQ(rs.means[0], 2.0);
}

TEST(RollingStatsTest, ConstantWindowsHaveZeroStd) {
  const std::vector<double> x(10, 4.2);
  const RollingStats rs = ComputeRollingStats(x, 4);
  for (double s : rs.stds) EXPECT_NEAR(s, 0.0, 1e-12);
}

class RollingStatsSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RollingStatsSweep, AgreesWithDirectAtAllWindowSizes) {
  const size_t w = GetParam();
  std::vector<double> x(64);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.3 * static_cast<double>(i)) +
           0.01 * static_cast<double>(i % 7);
  }
  const RollingStats rs = ComputeRollingStats(x, w);
  for (size_t i = 0; i + w <= x.size(); i += 5) {
    const std::vector<double> window(x.begin() + static_cast<ptrdiff_t>(i),
                                     x.begin() + static_cast<ptrdiff_t>(i + w));
    EXPECT_NEAR(rs.means[i], Mean(window), 1e-10);
    EXPECT_NEAR(rs.stds[i], StdDev(window), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RollingStatsSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

}  // namespace
}  // namespace ips
