#include "util/table_printer.h"

#include <string>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t;
  t.SetHeader({"Name", "Value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string out = t.ToString();
  // Every row has "Value"/cell starting at the same column.
  const size_t header_col = out.find("Value");
  const size_t row1 = out.find("1\n");
  ASSERT_NE(header_col, std::string::npos);
  ASSERT_NE(row1, std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
}

TEST(TablePrinterTest, HeaderRulePresent) {
  TablePrinter t;
  t.SetHeader({"A", "B"});
  t.AddRow({"x", "y"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
  EXPECT_EQ(TablePrinter::Num(100.0, 2), "100.00");
}

TEST(TablePrinterTest, EmptyTableIsHeaderOnly) {
  TablePrinter t;
  t.SetHeader({"Col"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Col"), std::string::npos);
}

TEST(TablePrinterTest, CsvRendering) {
  TablePrinter t;
  t.SetHeader({"A", "B"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  EXPECT_EQ(t.ToCsv(), "A,B\n1,x\n2,y\n");
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t;
  t.SetHeader({"name", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  EXPECT_EQ(t.ToCsv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, WriteCsvRoundTrip) {
  TablePrinter t;
  t.SetHeader({"k", "v"});
  t.AddRow({"x", "1"});
  const std::string path =
      std::string("/tmp/ips_csv_test_") + std::to_string(::getpid());
  ASSERT_TRUE(t.WriteCsv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "k,v\nx,1\n");
}

TEST(TablePrinterTest, WriteCsvFailsOnBadPath) {
  TablePrinter t;
  t.SetHeader({"A"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent/dir/file.csv"));
}

}  // namespace
}  // namespace ips
