#include "stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(RegularizedGammaPTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  // P(a, 0) = 0, P(a, inf) -> 1.
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(3.0, 100.0), 1.0, 1e-10);
}

TEST(RegularizedGammaPTest, HalfIntegerShape) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-9);
  }
}

TEST(RegularizedGammaPTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double p = RegularizedGammaP(2.5, x);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(ChiSquaredCdfTest, KnownQuantiles) {
  // Chi-squared with 1 dof: P(X <= 3.841) ~ 0.95.
  EXPECT_NEAR(ChiSquaredCdf(3.841, 1.0), 0.95, 1e-3);
  // 5 dof: P(X <= 11.070) ~ 0.95.
  EXPECT_NEAR(ChiSquaredCdf(11.070, 5.0), 0.95, 1e-3);
  // 12 dof (13 methods): P(X <= 21.026) ~ 0.95.
  EXPECT_NEAR(ChiSquaredCdf(21.026, 12.0), 0.95, 1e-3);
}

TEST(ChiSquaredCdfTest, Boundaries) {
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 3.0), 0.0);
  EXPECT_NEAR(ChiSquaredCdf(1000.0, 3.0), 1.0, 1e-12);
}

TEST(StandardNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StandardNormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(StandardNormalCdf(1.0) + StandardNormalCdf(-1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace ips
