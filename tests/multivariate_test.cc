#include "multivariate/mips.h"

#include <vector>

#include <gtest/gtest.h>

#include "multivariate/mv_generator.h"

namespace ips {
namespace {

MvGeneratorSpec BasicSpec() {
  MvGeneratorSpec spec;
  spec.name = "mvtest";
  spec.num_classes = 2;
  spec.num_channels = 3;
  spec.informative_channels = 1;
  spec.train_size = 16;
  spec.test_size = 40;
  spec.length = 96;
  return spec;
}

IpsOptions FastOptions() {
  IpsOptions o;
  o.sample_count = 5;
  o.sample_size = 3;
  o.length_ratios = {0.15, 0.25};
  o.shapelets_per_class = 3;
  return o;
}

TEST(MultivariateDatasetTest, AddAndSlice) {
  MultivariateDataset d;
  MultivariateTimeSeries s;
  s.channels = {{1.0, 2.0}, {3.0, 4.0}};
  s.label = 1;
  d.Add(s);
  s.channels = {{5.0, 6.0}, {7.0, 8.0}};
  s.label = 0;
  d.Add(s);

  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_channels(), 2u);
  EXPECT_EQ(d.NumClasses(), 2);
  EXPECT_EQ(d.Labels(), (std::vector<int>{1, 0}));

  const Dataset slice = d.ChannelSlice(1);
  EXPECT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].values, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(slice[0].label, 1);
  EXPECT_EQ(slice[1].values, (std::vector<double>{7.0, 8.0}));
}

TEST(MvGeneratorTest, ShapesMatchSpec) {
  const MvTrainTestSplit split = GenerateMultivariateDataset(BasicSpec());
  EXPECT_EQ(split.train.size(), 16u);
  EXPECT_EQ(split.test.size(), 40u);
  EXPECT_EQ(split.train.num_channels(), 3u);
  EXPECT_EQ(split.train[0].length(), 96u);
  EXPECT_EQ(split.train.NumClasses(), 2);
}

TEST(MvGeneratorTest, Deterministic) {
  const MvTrainTestSplit a = GenerateMultivariateDataset(BasicSpec());
  const MvTrainTestSplit b = GenerateMultivariateDataset(BasicSpec());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].channels, b.train[i].channels);
  }
}

TEST(MultivariateIpsTest, LearnsChannelLocalizedClasses) {
  const MvTrainTestSplit split = GenerateMultivariateDataset(BasicSpec());
  MultivariateIpsClassifier clf(FastOptions());
  clf.Fit(split.train);
  EXPECT_EQ(clf.num_channels(), 3u);
  EXPECT_GT(clf.Accuracy(split.test), 0.7);
}

TEST(MultivariateIpsTest, PerChannelShapeletsAccessible) {
  const MvTrainTestSplit split = GenerateMultivariateDataset(BasicSpec());
  MultivariateIpsClassifier clf(FastOptions());
  clf.Fit(split.train);
  size_t total = 0;
  for (size_t c = 0; c < clf.num_channels(); ++c) {
    total += clf.ChannelShapelets(c).size();
  }
  EXPECT_GT(total, 0u);
}

TEST(MultivariateIpsTest, MoreChannelsStillWork) {
  MvGeneratorSpec spec = BasicSpec();
  spec.num_channels = 5;
  spec.informative_channels = 2;
  const MvTrainTestSplit split = GenerateMultivariateDataset(spec);
  MultivariateIpsClassifier clf(FastOptions());
  clf.Fit(split.train);
  EXPECT_GT(clf.Accuracy(split.test), 0.6);
}

TEST(MultivariateIpsTest, MulticlassSupported) {
  MvGeneratorSpec spec = BasicSpec();
  spec.num_classes = 3;
  spec.train_size = 18;
  const MvTrainTestSplit split = GenerateMultivariateDataset(spec);
  MultivariateIpsClassifier clf(FastOptions());
  clf.Fit(split.train);
  EXPECT_GT(clf.Accuracy(split.test), 1.0 / 3.0 + 0.15);
}

TEST(MultivariateIpsTest, SingleChannelMatchesUnivariateShape) {
  MvGeneratorSpec spec = BasicSpec();
  spec.num_channels = 1;
  spec.informative_channels = 1;
  const MvTrainTestSplit split = GenerateMultivariateDataset(spec);
  MultivariateIpsClassifier clf(FastOptions());
  clf.Fit(split.train);
  EXPECT_GT(clf.Accuracy(split.test), 0.7);
}

}  // namespace
}  // namespace ips
