#include "ips/pruning.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

Subsequence SineSub(int label, size_t len, double freq, double noise,
                    Rng& rng) {
  Subsequence s;
  s.label = label;
  s.values.resize(len);
  for (size_t j = 0; j < len; ++j) {
    s.values[j] =
        std::sin(freq * static_cast<double>(j)) + rng.Gaussian(0.0, noise);
  }
  return s;
}

// Class 0 motifs: two sub-populations -- "discriminative" (distinct shape)
// and "confusable" (same shape as class 1's population).
CandidatePool MakePool(Rng& rng, size_t confusable, size_t discriminative) {
  CandidatePool pool;
  for (size_t i = 0; i < confusable; ++i) {
    pool.motifs[0].push_back(SineSub(0, 32, 0.8, 0.05, rng));
  }
  for (size_t i = 0; i < discriminative; ++i) {
    Subsequence s;
    s.label = 0;
    s.values.resize(32);
    for (size_t j = 0; j < 32; ++j) {
      // Strong ramp, very different norm profile from the sines.
      s.values[j] = 5.0 * static_cast<double>(j) + rng.Gaussian(0.0, 0.05);
    }
    pool.motifs[0].push_back(std::move(s));
  }
  for (size_t i = 0; i < 40; ++i) {
    pool.motifs[1].push_back(SineSub(1, 32, 0.8, 0.05, rng));
    pool.discords[1].push_back(SineSub(1, 32, 0.8, 0.05, rng));
  }
  return pool;
}

DabfOptions TestDabfOptions() {
  DabfOptions o;
  o.projection_dim = 16;
  o.num_hashes = 6;
  o.bucket_width = 8.0;
  o.seed = 3;
  return o;
}

TEST(PruneWithDabfTest, RemovesConfusableKeepsDiscriminative) {
  Rng rng(1);
  CandidatePool pool = MakePool(rng, 10, 10);
  std::map<int, std::vector<Subsequence>> by_class;
  by_class[0] = pool.AllOfClass(0);
  by_class[1] = pool.AllOfClass(1);
  const Dabf dabf(by_class, TestDabfOptions());

  const PruneStats stats = PruneWithDabf(pool, dabf, /*min_keep_motifs=*/1);
  EXPECT_EQ(stats.motifs_before, 60u);
  EXPECT_LT(stats.motifs_after, stats.motifs_before);
  // The ramp candidates should survive: their DABF statistic is far from
  // the sine population of class 1.
  size_t ramps_surviving = 0;
  for (const Subsequence& m : pool.motifs.at(0)) {
    if (m.values.back() > 50.0) ++ramps_surviving;
  }
  EXPECT_GT(ramps_surviving, 5u);
}

TEST(PruneWithDabfTest, MinKeepGuardRestoresMotifs) {
  Rng rng(2);
  // All class-0 motifs are confusable with class 1: everything would be
  // pruned without the guard.
  CandidatePool pool = MakePool(rng, 12, 0);
  std::map<int, std::vector<Subsequence>> by_class;
  by_class[0] = pool.AllOfClass(0);
  by_class[1] = pool.AllOfClass(1);
  const Dabf dabf(by_class, TestDabfOptions());

  PruneWithDabf(pool, dabf, /*min_keep_motifs=*/5);
  EXPECT_GE(pool.motifs.at(0).size(), 5u);
}

TEST(PruneWithDabfTest, SingleClassNothingPruned) {
  Rng rng(3);
  CandidatePool pool;
  for (int i = 0; i < 10; ++i) {
    pool.motifs[0].push_back(SineSub(0, 32, 0.5, 0.05, rng));
  }
  std::map<int, std::vector<Subsequence>> by_class;
  by_class[0] = pool.AllOfClass(0);
  const Dabf dabf(by_class, TestDabfOptions());
  const PruneStats stats = PruneWithDabf(pool, dabf, 1);
  EXPECT_EQ(stats.motifs_after, 10u);
  EXPECT_EQ(stats.Pruned(), 0u);
}

TEST(PruneNaiveTest, RemovesConfusableKeepsDiscriminative) {
  Rng rng(4);
  CandidatePool pool = MakePool(rng, 10, 10);
  const PruneStats stats = PruneNaive(pool, /*min_keep_motifs=*/1);
  EXPECT_LT(stats.motifs_after, stats.motifs_before);
  size_t ramps_surviving = 0;
  for (const Subsequence& m : pool.motifs.at(0)) {
    if (m.values.back() > 50.0) ++ramps_surviving;
  }
  EXPECT_GT(ramps_surviving, 5u);
}

TEST(PruneNaiveTest, MinKeepGuard) {
  Rng rng(5);
  CandidatePool pool = MakePool(rng, 12, 0);
  PruneNaive(pool, /*min_keep_motifs=*/4);
  EXPECT_GE(pool.motifs.at(0).size(), 4u);
}

TEST(PruneStatsTest, PrunedCount) {
  PruneStats s;
  s.motifs_before = 10;
  s.motifs_after = 6;
  s.discords_before = 8;
  s.discords_after = 8;
  EXPECT_EQ(s.Pruned(), 4u);
}

}  // namespace
}  // namespace ips
