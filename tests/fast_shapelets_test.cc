#include "baselines/fast_shapelets.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = 12;
  spec.test_size = 30;
  spec.length = 64;
  return GenerateDataset(spec);
}

FastShapeletsOptions FastOptions() {
  FastShapeletsOptions o;
  o.length_ratios = {0.2, 0.3};
  o.shapelets_per_class = 3;
  o.stride = 2;
  o.masking_rounds = 5;
  return o;
}

TEST(FastShapeletsTest, DiscoversShapelets) {
  const TrainTestSplit data = MakeData("fs1");
  const auto shapelets = DiscoverFastShapelets(data.train, FastOptions());
  EXPECT_GT(shapelets.size(), 0u);
}

TEST(FastShapeletsTest, ShapeletsFromBothClasses) {
  const TrainTestSplit data = MakeData("fs2");
  const auto shapelets = DiscoverFastShapelets(data.train, FastOptions());
  bool c0 = false, c1 = false;
  for (const auto& s : shapelets) {
    if (s.label == 0) c0 = true;
    if (s.label == 1) c1 = true;
  }
  EXPECT_TRUE(c0);
  EXPECT_TRUE(c1);
}

TEST(FastShapeletsTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("fs3");
  FastShapeletsClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.55);
}

TEST(FastShapeletsTest, DeterministicForSameSeed) {
  const TrainTestSplit data = MakeData("fs4");
  const auto a = DiscoverFastShapelets(data.train, FastOptions());
  const auto b = DiscoverFastShapelets(data.train, FastOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].values, b[i].values);
}

TEST(FastShapeletsTest, ZeroMaskedPositionsStillWorks) {
  const TrainTestSplit data = MakeData("fs5");
  FastShapeletsOptions o = FastOptions();
  o.masked_positions = 0;
  EXPECT_GT(DiscoverFastShapelets(data.train, o).size(), 0u);
}

}  // namespace
}  // namespace ips
