#include "baselines/bspcover.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 30;
  spec.length = 64;
  return GenerateDataset(spec);
}

BspCoverOptions FastOptions() {
  BspCoverOptions o;
  o.length_ratios = {0.2, 0.3};
  o.shapelets_per_class = 3;
  o.stride = 4;
  return o;
}

TEST(BspCoverTest, DiscoversShapelets) {
  const TrainTestSplit data = MakeData("bsp1");
  BspCoverStats stats;
  const auto shapelets =
      DiscoverBspCoverShapelets(data.train, FastOptions(), &stats);
  EXPECT_GT(shapelets.size(), 0u);
  EXPECT_LE(shapelets.size(), 6u);
  EXPECT_GT(stats.candidates_enumerated, 0u);
  EXPECT_GT(stats.candidates_after_bloom, 0u);
  EXPECT_LE(stats.candidates_after_bloom, stats.candidates_enumerated);
  EXPECT_EQ(stats.shapelets, shapelets.size());
}

TEST(BspCoverTest, BloomFilterPrunesDuplicates) {
  // A dataset whose class series repeat the same pattern everywhere should
  // see heavy bloom pruning.
  Dataset train;
  for (int i = 0; i < 8; ++i) {
    std::vector<double> v(64);
    for (size_t j = 0; j < 64; ++j) {
      v[j] = (i % 2 == 0 ? 1.0 : -1.0) *
             std::sin(0.4 * static_cast<double>(j));
    }
    train.Add(TimeSeries(std::move(v), i % 2));
  }
  BspCoverStats stats;
  BspCoverOptions o = FastOptions();
  o.stride = 1;
  DiscoverBspCoverShapelets(train, o, &stats);
  EXPECT_LT(stats.candidates_after_bloom,
            stats.candidates_enumerated / 2);
}

TEST(BspCoverTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("bsp2");
  BspCoverClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.55);
}

TEST(BspCoverTest, StrideReducesEnumeration) {
  const TrainTestSplit data = MakeData("bsp3");
  BspCoverStats dense, sparse;
  BspCoverOptions o = FastOptions();
  o.stride = 1;
  DiscoverBspCoverShapelets(data.train, o, &dense);
  o.stride = 8;
  DiscoverBspCoverShapelets(data.train, o, &sparse);
  EXPECT_GT(dense.candidates_enumerated,
            4 * sparse.candidates_enumerated);
}

TEST(BspCoverTest, ShapeletsCarryClassLabels) {
  const TrainTestSplit data = MakeData("bsp4");
  const auto shapelets =
      DiscoverBspCoverShapelets(data.train, FastOptions());
  for (const auto& s : shapelets) {
    EXPECT_TRUE(s.label == 0 || s.label == 1);
  }
}

}  // namespace
}  // namespace ips
