// Bitwise-identity suite for the tiled all-pairs join scheduler
// (docs/memory.md): every combination of {artifact table on/off} x
// {scratch arena on/off} x {tile width} x {thread count} must reproduce
// the serial untable/unarena/untiled reference EXACTLY -- the scheduler
// reorders work and reuses memory, it never changes arithmetic. The CI
// fingerprint matrix holds end-to-end discovery to the same bar; this
// suite pins the engine layer directly, including the FFT-seed regime and
// every registered metric.

#include "matrix_profile/mp_engine.h"

#include <cstdint>

#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "core/rng.h"
#include "matrix_profile/matrix_profile.h"
#include "matrix_profile/stomp_common.h"

namespace ips {
namespace {

std::vector<double> RandomWalk(Rng& rng, size_t n) {
  std::vector<double> out(n);
  double x = 0.0;
  for (auto& v : out) {
    x += rng.Uniform() - 0.5;
    v = x;
  }
  return out;
}

std::vector<std::vector<double>> MakeSeries(uint64_t seed,
                                            std::vector<size_t> lengths) {
  Rng rng(seed);
  std::vector<std::vector<double>> series;
  for (size_t n : lengths) series.push_back(RandomWalk(rng, n));
  return series;
}

std::vector<std::span<const double>> ViewsOf(
    const std::vector<std::vector<double>>& series) {
  return {series.begin(), series.end()};
}

void ExpectJoinsBitwiseEqual(const std::vector<PairJoin>& expected,
                             const std::vector<PairJoin>& actual,
                             const std::string& config) {
  ASSERT_EQ(expected.size(), actual.size()) << config;
  for (size_t t = 0; t < expected.size(); ++t) {
    ASSERT_EQ(expected[t].a, actual[t].a) << config << " pair " << t;
    ASSERT_EQ(expected[t].b, actual[t].b) << config << " pair " << t;
    const auto check = [&](const MatrixProfile& e, const MatrixProfile& a,
                           const char* side) {
      ASSERT_EQ(e.values.size(), a.values.size()) << config;
      for (size_t i = 0; i < e.values.size(); ++i) {
        // Exact equality: scheduling and memory reuse must not perturb a
        // single bit. EXPECT_EQ on doubles is deliberate.
        ASSERT_EQ(e.values[i], a.values[i])
            << config << " pair " << t << " " << side << " value " << i;
        ASSERT_EQ(e.indices[i], a.indices[i])
            << config << " pair " << t << " " << side << " index " << i;
      }
    };
    check(expected[t].a_vs_b, actual[t].a_vs_b, "a_vs_b");
    check(expected[t].b_vs_a, actual[t].b_vs_a, "b_vs_a");
  }
}

std::vector<PairJoin> ReferenceJoins(
    const std::vector<std::span<const double>>& views, size_t window,
    MetricId metric) {
  MatrixProfileEngine engine(1);
  engine.set_use_artifact_table(false);
  engine.set_use_arena(false);
  engine.set_tile_size(1);
  return engine.JoinAllPairs(views, window, metric);
}

void RunConfigMatrix(const std::vector<std::span<const double>>& views,
                     size_t window, MetricId metric) {
  const std::vector<PairJoin> expected =
      ReferenceJoins(views, window, metric);
  for (bool table : {false, true}) {
    for (bool arena : {false, true}) {
      for (size_t tile : {size_t{1}, size_t{2}, size_t{3}, size_t{0}}) {
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
          MatrixProfileEngine engine(threads);
          engine.set_use_artifact_table(table);
          engine.set_use_arena(arena);
          engine.set_tile_size(tile);
          const std::vector<PairJoin> actual =
              engine.JoinAllPairs(views, window, metric);
          const std::string config =
              std::string("table=") + (table ? "1" : "0") +
              " arena=" + (arena ? "1" : "0") +
              " tile=" + std::to_string(tile) +
              " threads=" + std::to_string(threads) +
              " metric=" + MetricName(metric);
          ExpectJoinsBitwiseEqual(expected, actual, config);
        }
      }
    }
  }
}

TEST(JoinSchedulerTest, ConfigMatrixIsBitwiseIdentical) {
  // Mixed lengths, n = 5 (odd vs every tile width tested above).
  const auto series = MakeSeries(11, {80, 64, 97, 80, 71});
  RunConfigMatrix(ViewsOf(series), /*window=*/12,
                  MetricId::kZNormEuclidean);
}

TEST(JoinSchedulerTest, ConfigMatrixHoldsForEveryRegisteredMetric) {
  const auto series = MakeSeries(13, {60, 72, 55, 66});
  const auto views = ViewsOf(series);
  for (size_t m = 0; m < kMetricCount; ++m) {
    RunConfigMatrix(views, /*window=*/9, static_cast<MetricId>(m));
  }
}

TEST(JoinSchedulerTest, ConfigMatrixHoldsInTheFftSeedRegime) {
  // Sizes past the FFT cost model's crossover (window >= kFftCutoff AND
  // window * len > 14 * padded * log2(padded)): PrepareAllPairs serves the
  // QT seed rows from forward FFTs (the fft_series/fft_query artifacts),
  // the one arithmetic path the short-series cases above never touch.
  ASSERT_TRUE(StompSeedUsesFft(512, 1040));
  const auto series = MakeSeries(17, {1024, 1040});
  RunConfigMatrix(ViewsOf(series), /*window=*/512,
                  MetricId::kZNormEuclidean);
}

TEST(JoinSchedulerTest, TileWiderThanBatchMatches) {
  const auto series = MakeSeries(19, {50, 50, 50});
  const auto views = ViewsOf(series);
  const std::vector<PairJoin> expected =
      ReferenceJoins(views, 8, MetricId::kZNormEuclidean);
  MatrixProfileEngine engine(2);
  engine.set_tile_size(64);  // > n: the tile covers the whole batch
  ExpectJoinsBitwiseEqual(expected, engine.JoinAllPairs(views, 8),
                          "tile=64 n=3");
}

TEST(JoinSchedulerTest, RepeatBatchesIntoSameVectorMatch) {
  const auto series = MakeSeries(23, {70, 85, 64, 90});
  const auto views = ViewsOf(series);
  const std::vector<PairJoin> expected =
      ReferenceJoins(views, 10, MetricId::kZNormEuclidean);

  MatrixProfileEngine engine(2);
  std::vector<PairJoin> joins;
  for (int rep = 0; rep < 3; ++rep) {
    // Capacity reuse across repeats (the serving-loop form) and artifact
    // table reuse after the first batch must not change a bit.
    engine.JoinAllPairsInto(views, 10, joins);
    ExpectJoinsBitwiseEqual(expected, joins,
                            "rep " + std::to_string(rep));
  }
  const MpEngineCounters c = engine.counters();
  EXPECT_EQ(c.table_builds, 1u);
  EXPECT_EQ(c.table_reuses, 2u);
}

TEST(JoinSchedulerTest, PreparedTableIsReusedByTheJoin) {
  const auto series = MakeSeries(29, {60, 75, 80});
  const auto views = ViewsOf(series);
  MatrixProfileEngine engine(2);
  const auto table = engine.PrepareAllPairs(views, 11);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->window, 11u);
  EXPECT_GT(table->entry_count(), 0u);

  const std::vector<PairJoin> joins = engine.JoinAllPairs(views, 11);
  const MpEngineCounters c = engine.counters();
  EXPECT_EQ(c.table_builds, 1u);   // the explicit prepare
  EXPECT_EQ(c.table_reuses, 1u);   // the join found it by views/window
  ExpectJoinsBitwiseEqual(ReferenceJoins(views, 11,
                                         MetricId::kZNormEuclidean),
                          joins, "prepared");

  // A different window is a different table; the held pointer stays valid.
  engine.PrepareAllPairs(views, 8);
  EXPECT_EQ(engine.counters().table_builds, 2u);
  EXPECT_EQ(table->window, 11u);
}

TEST(JoinSchedulerTest, SelfJoinAndAbJoinUnaffectedByKnobs) {
  // The ad-hoc entry points bypass the batch scheduler; the knobs must not
  // disturb them either way.
  const auto series = MakeSeries(31, {90, 76});
  const auto views = ViewsOf(series);
  MatrixProfileEngine reference(1);
  reference.set_use_artifact_table(false);
  reference.set_use_arena(false);
  const MatrixProfile self_e = reference.SelfJoin(views[0], 9, 0);
  const MatrixProfile ab_e = reference.AbJoin(views[0], views[1], 9);

  MatrixProfileEngine engine(2);
  const MatrixProfile self_a = engine.SelfJoin(views[0], 9, 0);
  const MatrixProfile ab_a = engine.AbJoin(views[0], views[1], 9);
  ASSERT_EQ(self_e.values.size(), self_a.values.size());
  for (size_t i = 0; i < self_e.values.size(); ++i) {
    ASSERT_EQ(self_e.values[i], self_a.values[i]);
    ASSERT_EQ(self_e.indices[i], self_a.indices[i]);
  }
  ASSERT_EQ(ab_e.values.size(), ab_a.values.size());
  for (size_t i = 0; i < ab_e.values.size(); ++i) {
    ASSERT_EQ(ab_e.values[i], ab_a.values[i]);
    ASSERT_EQ(ab_e.indices[i], ab_a.indices[i]);
  }
}

}  // namespace
}  // namespace ips
