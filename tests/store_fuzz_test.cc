// Hostile-input hardening of the columnar-store reader
// (store/columnar_store.h), mirroring serialization_fuzz_test.cc for the
// run-artifact loader: truncations at every boundary, bit-flipped headers,
// wrong majors, absurd declared counts and corrupted directory entries
// must all come back as a clean nullptr + reason -- no crash, no multi-GB
// allocation, no partially-initialised store.

#include "store/columnar_store.h"

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/time_series.h"
#include "store/store_format.h"
#include "store/store_writer.h"

namespace ips {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/ips_store_fuzz_" + std::to_string(::getpid()) + "_" + tag +
         ".ips";
}

struct ScopedPath {
  explicit ScopedPath(std::string p) : path(std::move(p)) {}
  ~ScopedPath() { ::unlink(path.c_str()); }
  std::string path;
};

/// A small but real multi-chunk segment, loaded back into bytes.
std::vector<uint8_t> IntactSegment() {
  static const std::vector<uint8_t>* bytes = [] {
    Dataset data;
    for (int i = 0; i < 9; ++i) {
      std::vector<double> values;
      for (int j = 0; j < 24 + i; ++j) {
        values.push_back(0.25 * j - 0.125 * i);
      }
      data.Add(TimeSeries(std::move(values), i % 3));
    }
    const std::string path = TempPath("intact");
    store::StoreWriter::Options options;
    options.chunk_target_bytes = 24 * sizeof(double) * 2;  // ~2 series/chunk
    EXPECT_TRUE(store::WriteDatasetToStore(data, path, options));

    std::ifstream in(path, std::ios::binary);
    auto* out = new std::vector<uint8_t>(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ::unlink(path.c_str());
    return out;
  }();
  return *bytes;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Opens `bytes` as a segment; returns nullptr + error like Open does.
std::unique_ptr<store::ColumnarStore> OpenBytes(
    const std::vector<uint8_t>& bytes, const char* tag,
    std::string* error = nullptr) {
  const ScopedPath path(TempPath(tag));
  WriteBytes(path.path, bytes);
  return store::ColumnarStore::Open(path.path, error);
}

TEST(StoreFuzzTest, IntactSegmentOpens) {
  std::string error = "sentinel";
  const auto segment = OpenBytes(IntactSegment(), "ok", &error);
  ASSERT_NE(segment, nullptr) << error;
  EXPECT_EQ(segment->size(), 9u);
  EXPECT_GE(segment->num_chunks(), 3u);
}

TEST(StoreFuzzTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> intact = IntactSegment();
  // Every prefix: the empty file, a partial header, partial chunk records,
  // a partial directory. Step 7 (coprime with all the 8-aligned section
  // sizes) still lands on every alignment class.
  for (size_t keep = 0; keep < intact.size(); keep += 7) {
    std::vector<uint8_t> bytes(intact.begin(),
                               intact.begin() + static_cast<ptrdiff_t>(keep));
    std::string error;
    EXPECT_EQ(OpenBytes(bytes, "trunc", &error), nullptr)
        << "prefix of " << keep << " bytes parsed";
    EXPECT_FALSE(error.empty());
  }
}

TEST(StoreFuzzTest, EveryHeaderBitFlipFailsCleanlyOrRoundTrips) {
  const std::vector<uint8_t> intact = IntactSegment();
  // Flip each bit of the 64-byte header. Most flips must be rejected;
  // flips in fields the reader legitimately ignores (reserved words, the
  // writer's chunk_target_bytes note, the minor version) may still parse
  // -- but then the data must be untouched.
  for (size_t bit = 0; bit < sizeof(store::SegmentHeader) * 8; ++bit) {
    std::vector<uint8_t> bytes = intact;
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    std::string error;
    const auto segment = OpenBytes(bytes, "hdrflip", &error);
    if (segment == nullptr) {
      EXPECT_FALSE(error.empty()) << "bit " << bit;
      continue;
    }
    ASSERT_EQ(segment->size(), 9u) << "bit " << bit;
    EXPECT_EQ(segment->At(0).length(), 24u) << "bit " << bit;
  }
}

TEST(StoreFuzzTest, WrongMagicAndMajorAreRejected) {
  std::vector<uint8_t> bytes = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));

  header.magic ^= 0xFF;
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::string error;
  EXPECT_EQ(OpenBytes(bytes, "magic", &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  header.magic = store::kStoreMagic;
  header.major = store::kStoreMajor + 1;
  std::memcpy(bytes.data(), &header, sizeof(header));
  EXPECT_EQ(OpenBytes(bytes, "major", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StoreFuzzTest, HostileCountsDoNotAllocate) {
  const std::vector<uint8_t> intact = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, intact.data(), sizeof(header));

  // Counts chosen so `count * sizeof(entry)` overflows or dwarfs the file:
  // a reader that sizes an allocation from them dies before validating.
  const uint64_t hostile[] = {
      uint64_t{1} << 62,
      uint64_t{0xFFFFFFFFFFFFFFFF},
      uint64_t{1} << 32,
      header.num_chunks + 1000000,
  };
  for (const uint64_t count : hostile) {
    for (const bool series_field : {true, false}) {
      std::vector<uint8_t> bytes = intact;
      store::SegmentHeader h = header;
      (series_field ? h.num_series : h.num_chunks) = count;
      std::memcpy(bytes.data(), &h, sizeof(h));
      std::string error;
      EXPECT_EQ(OpenBytes(bytes, "counts", &error), nullptr)
          << (series_field ? "num_series " : "num_chunks ") << count;
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(StoreFuzzTest, LyingFileBytesIsRejected) {
  std::vector<uint8_t> bytes = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  for (const uint64_t lie :
       {header.file_bytes - 1, header.file_bytes + 1, uint64_t{0},
        uint64_t{1} << 60}) {
    store::SegmentHeader h = header;
    h.file_bytes = lie;
    std::memcpy(bytes.data(), &h, sizeof(h));
    std::string error;
    EXPECT_EQ(OpenBytes(bytes, "filebytes", &error), nullptr) << lie;
    EXPECT_FALSE(error.empty());
  }
}

TEST(StoreFuzzTest, CorruptedDirectoryEntriesAreRejected) {
  const std::vector<uint8_t> intact = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, intact.data(), sizeof(header));
  ASSERT_GE(header.num_chunks, 2u);

  struct Mutation {
    const char* name;
    size_t field;  // u64 index within the 4-word entry
    uint64_t value;
  };
  const Mutation mutations[] = {
      {"offset_misaligned", 0, 65},
      {"offset_past_eof", 0, uint64_t{1} << 60},
      {"offset_overlaps_header", 0, 8},
      {"bytes_zero", 1, 0},
      {"bytes_huge", 1, uint64_t{1} << 60},
      {"first_series_wrong", 2, 7},
      {"num_series_zero", 3, 0},
      {"num_series_huge", 3, uint64_t{1} << 40},
  };
  for (const Mutation& m : mutations) {
    for (uint64_t chunk = 0; chunk < header.num_chunks; ++chunk) {
      std::vector<uint8_t> bytes = intact;
      const size_t entry =
          static_cast<size_t>(header.directory_offset) +
          static_cast<size_t>(chunk) * sizeof(store::ChunkDirEntry);
      std::memcpy(bytes.data() + entry + m.field * 8, &m.value, 8);
      std::string error;
      EXPECT_EQ(OpenBytes(bytes, "direntry", &error), nullptr)
          << m.name << " on chunk " << chunk;
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(StoreFuzzTest, CorruptedChunkColumnsAreRejected) {
  const std::vector<uint8_t> intact = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, intact.data(), sizeof(header));
  store::ChunkDirEntry first;
  std::memcpy(&first, intact.data() + header.directory_offset, sizeof(first));

  // The first chunk's two payload-size words and its first length /
  // offset entries, each set to values that cannot cover the record.
  struct Mutation {
    const char* name;
    uint64_t offset;  // within the chunk record
    uint64_t value;
  };
  const uint64_t columns = store::ChunkColumnBytes(first.num_series);
  const uint64_t labels_bytes = (first.num_series * 4 + 7) / 8 * 8;
  const Mutation mutations[] = {
      {"values_doubles_zero", 0, 0},
      {"values_doubles_huge", 0, uint64_t{1} << 58},
      {"sidecar_doubles_zero", 8, 0},
      {"sidecar_doubles_huge", 8, uint64_t{1} << 58},
      {"length_zero", 16 + labels_bytes, 0},
      {"length_huge", 16 + labels_bytes, uint64_t{1} << 40},
      {"value_offset_nonzero", 16 + labels_bytes + 8 * first.num_series, 13},
  };
  for (const Mutation& m : mutations) {
    std::vector<uint8_t> bytes = intact;
    std::memcpy(bytes.data() + first.offset + m.offset, &m.value, 8);
    std::string error;
    EXPECT_EQ(OpenBytes(bytes, "chunkcol", &error), nullptr) << m.name;
    EXPECT_FALSE(error.empty());
  }
}

TEST(StoreFuzzTest, NegativeLabelsBelowUnlabeledAreRejected) {
  const std::vector<uint8_t> intact = IntactSegment();
  store::SegmentHeader header;
  std::memcpy(&header, intact.data(), sizeof(header));
  store::ChunkDirEntry first;
  std::memcpy(&first, intact.data() + header.directory_offset, sizeof(first));

  std::vector<uint8_t> bytes = intact;
  const int32_t bad = -2;  // below kUnlabeledSeries
  std::memcpy(bytes.data() + first.offset + 16, &bad, sizeof(bad));
  std::string error;
  EXPECT_EQ(OpenBytes(bytes, "label", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(StoreFuzzTest, EmptyAndGarbageFilesFailCleanly) {
  std::string error;
  EXPECT_EQ(OpenBytes({}, "empty", &error), nullptr);
  EXPECT_FALSE(error.empty());

  std::vector<uint8_t> garbage(4096);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  EXPECT_EQ(OpenBytes(garbage, "garbage", &error), nullptr);
  EXPECT_FALSE(error.empty());

  EXPECT_EQ(store::ColumnarStore::Open("/nonexistent/nope.ips", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ips
