// Tests for the alternative transform back-ends (logistic regression,
// Gaussian naive Bayes, feature-space kNN) and the IpsOptions::backend
// selector -- the paper's §I "Nearest Neighbor, Naive Bayes, and SVM"
// remark.

#include <vector>

#include <gtest/gtest.h>

#include "classify/logistic.h"
#include "classify/naive_bayes.h"
#include "core/rng.h"
#include "data/generator.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

LabeledMatrix Blobs(size_t per_class, Rng& rng, double separation = 2.0) {
  LabeledMatrix data;
  for (size_t i = 0; i < per_class; ++i) {
    data.x.push_back(
        {rng.Gaussian(separation, 0.5), rng.Gaussian(separation, 0.5)});
    data.y.push_back(0);
    data.x.push_back(
        {rng.Gaussian(-separation, 0.5), rng.Gaussian(-separation, 0.5)});
    data.y.push_back(1);
  }
  return data;
}

TEST(LogisticRegressionTest, SeparatesBlobs) {
  Rng rng(1);
  const LabeledMatrix data = Blobs(40, rng);
  LogisticRegression clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.98);
  EXPECT_EQ(clf.num_classes(), 2);
}

TEST(LogisticRegressionTest, Multiclass) {
  Rng rng(2);
  LabeledMatrix data;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      data.x.push_back({rng.Gaussian(3.0 * c, 0.4)});
      data.y.push_back(c);
    }
  }
  LogisticRegression clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.9);
}

TEST(LogisticRegressionTest, OffsetDecisionBoundary) {
  Rng rng(3);
  LabeledMatrix data;
  for (int i = 0; i < 50; ++i) {
    data.x.push_back({rng.Gaussian(10.0, 0.3)});
    data.y.push_back(0);
    data.x.push_back({rng.Gaussian(12.0, 0.3)});
    data.y.push_back(1);
  }
  LogisticRegression clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.95);
}

TEST(GaussianNaiveBayesTest, SeparatesBlobs) {
  Rng rng(4);
  const LabeledMatrix data = Blobs(40, rng);
  GaussianNaiveBayes clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.98);
}

TEST(GaussianNaiveBayesTest, UsesPerClassVariance) {
  // Same mean, very different variance: NB separates where a mean-only
  // classifier cannot.
  Rng rng(5);
  LabeledMatrix data;
  for (int i = 0; i < 200; ++i) {
    data.x.push_back({rng.Gaussian(0.0, 0.1)});
    data.y.push_back(0);
    data.x.push_back({rng.Gaussian(0.0, 5.0)});
    data.y.push_back(1);
  }
  GaussianNaiveBayes clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.75);
}

TEST(GaussianNaiveBayesTest, ConstantFeatureDoesNotCrash) {
  LabeledMatrix data;
  data.x = {{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}, {4.0, 5.0}};
  data.y = {0, 0, 1, 1};
  GaussianNaiveBayes clf;
  clf.Fit(data);
  EXPECT_GE(clf.Accuracy(data), 0.75);
}

TEST(FeatureKnnTest, OneNnMemorizesTraining) {
  Rng rng(6);
  const LabeledMatrix data = Blobs(20, rng);
  FeatureKnn clf(1);
  clf.Fit(data);
  EXPECT_DOUBLE_EQ(clf.Accuracy(data), 1.0);
}

TEST(FeatureKnnTest, LargerKSmoothsNoise) {
  Rng rng(7);
  LabeledMatrix train = Blobs(30, rng, 1.0);
  // Flip a few labels to create noise.
  for (size_t i = 0; i < train.size(); i += 13) {
    train.y[i] = 1 - train.y[i];
  }
  const LabeledMatrix test = Blobs(30, rng, 1.0);
  FeatureKnn k1(1), k5(5);
  k1.Fit(train);
  k5.Fit(train);
  EXPECT_GE(k5.Accuracy(test) + 0.05, k1.Accuracy(test));
}

class BackendSweep : public ::testing::TestWithParam<TransformBackend> {};

TEST_P(BackendSweep, IpsPipelineWorksWithEveryBackend) {
  GeneratorSpec spec;
  spec.name = "backend";
  spec.num_classes = 2;
  spec.train_size = 16;
  spec.test_size = 40;
  spec.length = 80;
  const TrainTestSplit data = GenerateDataset(spec);

  IpsOptions options;
  options.sample_count = 5;
  options.length_ratios = {0.15, 0.25};
  options.backend = GetParam();
  IpsClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendSweep,
    ::testing::Values(TransformBackend::kLinearSvm,
                      TransformBackend::kLogisticRegression,
                      TransformBackend::kNaiveBayes,
                      TransformBackend::kNearestNeighbor));

}  // namespace
}  // namespace ips
