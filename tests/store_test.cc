// The out-of-core columnar store (store/columnar_store.h): write/read
// round-trips, LRU residency accounting, sidecar-served statistics pinned
// bitwise to the core/znorm.cc paths, and -- the tentpole contract --
// store-backed shapelet discovery bitwise identical to the in-RAM path
// for every registered metric at several thread counts.

#include "store/columnar_store.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "core/znorm.h"
#include "data/generator.h"
#include "ips/pipeline.h"
#include "ips/serialization.h"
#include "store/store_writer.h"

namespace ips {
namespace {

std::string TempSegmentPath(const char* tag) {
  return "/tmp/ips_store_test_" + std::to_string(::getpid()) + "_" + tag +
         ".ips";
}

/// Deletes the file when the test scope ends.
struct ScopedPath {
  explicit ScopedPath(std::string p) : path(std::move(p)) {}
  ~ScopedPath() { ::unlink(path.c_str()); }
  std::string path;
};

Dataset MakeCorpus(size_t train_size = 24, size_t length = 96) {
  GeneratorSpec spec;
  spec.name = "store";
  spec.train_size = train_size;
  spec.test_size = 2;
  spec.length = length;
  return GenerateDataset(spec).train;
}

/// Writes `data` with chunks small enough to force `min_chunks`+ chunks.
std::unique_ptr<store::ColumnarStore> RoundTrip(
    const Dataset& data, const std::string& path, size_t min_chunks = 4,
    uint64_t budget_bytes = uint64_t{64} << 20) {
  uint64_t total = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    total += data.At(i).length() * sizeof(double);
  }
  store::StoreWriter::Options write_options;
  write_options.chunk_target_bytes =
      std::max<uint64_t>(sizeof(double), total / min_chunks / 2);
  std::string error;
  EXPECT_TRUE(store::WriteDatasetToStore(data, path, write_options, &error))
      << error;
  store::ColumnarStore::Options open_options;
  open_options.budget_bytes = budget_bytes;
  auto segment = store::ColumnarStore::Open(path, open_options, &error);
  EXPECT_NE(segment, nullptr) << error;
  return segment;
}

TEST(StoreTest, RoundTripPreservesEverySeriesBitwise) {
  const Dataset data = MakeCorpus();
  const ScopedPath path(TempSegmentPath("roundtrip"));
  const auto segment = RoundTrip(data, path.path);
  ASSERT_NE(segment, nullptr);

  ASSERT_EQ(segment->size(), data.size());
  EXPECT_GE(segment->num_chunks(), 4u);
  for (size_t i = 0; i < data.size(); ++i) {
    const SeriesView expected = data.At(i);
    const SeriesView got = segment->At(i);
    EXPECT_EQ(got.label, expected.label);
    ASSERT_EQ(got.length(), expected.length());
    for (size_t j = 0; j < expected.length(); ++j) {
      EXPECT_EQ(got[j], expected[j]) << "series " << i << " sample " << j;
    }
  }
  EXPECT_EQ(segment->NumClasses(), data.NumClasses());
  EXPECT_EQ(segment->MinLength(), data.MinLength());
  EXPECT_EQ(segment->MaxLength(), data.MaxLength());
  EXPECT_EQ(segment->Labels(), data.Labels());
}

TEST(StoreTest, ForEachChunkCoversEverySeriesInOrder) {
  const Dataset data = MakeCorpus();
  const ScopedPath path(TempSegmentPath("chunks"));
  const auto segment = RoundTrip(data, path.path);
  ASSERT_NE(segment, nullptr);

  size_t next = 0;
  segment->ForEachChunk([&](size_t first, std::span<const SeriesView> chunk) {
    EXPECT_EQ(first, next);
    EXPECT_FALSE(chunk.empty());
    for (size_t k = 0; k < chunk.size(); ++k) {
      const SeriesView direct = segment->At(first + k);
      EXPECT_EQ(chunk[k].values.data(), direct.values.data());
      EXPECT_EQ(chunk[k].label, direct.label);
    }
    next = first + chunk.size();
  });
  EXPECT_EQ(next, data.size());
}

TEST(StoreTest, MaterializeEqualsSource) {
  const Dataset data = MakeCorpus(8, 40);
  const ScopedPath path(TempSegmentPath("materialize"));
  const auto segment = RoundTrip(data, path.path, 2);
  ASSERT_NE(segment, nullptr);
  const Dataset copy = segment->Materialize();
  ASSERT_EQ(copy.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(copy[i].values, data[i].values);
    EXPECT_EQ(copy[i].label, data[i].label);
  }
}

TEST(StoreTest, UnlabeledSeriesRoundTripAndClassCounting) {
  Dataset data;
  data.Add(TimeSeries(std::vector<double>{1.0, 2.0, 3.0}, 0));
  data.Add(TimeSeries(std::vector<double>{4.0, 5.0, 6.0}, kUnlabeledSeries));
  data.Add(TimeSeries(std::vector<double>{7.0, 8.0, 9.0}, 1));
  const ScopedPath path(TempSegmentPath("unlabeled"));
  const auto segment = RoundTrip(data, path.path, 1);
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->At(1).label, kUnlabeledSeries);
  // The satellite regression: an unlabelled series must be skipped, not
  // counted as its own class (and never crash the max-label scan).
  EXPECT_EQ(segment->NumClasses(), 2);
  EXPECT_EQ(data.NumClasses(), 2);
}

TEST(StoreTest, ResidencyNeverExceedsBudgetAndEvictionsHappen) {
  const Dataset data = MakeCorpus(32, 128);
  const ScopedPath path(TempSegmentPath("lru"));
  // Budget of ~2 chunks: a full scan must evict.
  auto probe = RoundTrip(data, path.path, 8);
  ASSERT_NE(probe, nullptr);
  ASSERT_GE(probe->num_chunks(), 8u);
  const uint64_t budget = probe->mapped_bytes() / 4;
  probe.reset();

  std::string error;
  store::ColumnarStore::Options options;
  options.budget_bytes = budget;
  const auto segment = store::ColumnarStore::Open(path.path, options, &error);
  ASSERT_NE(segment, nullptr) << error;

  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < segment->size(); ++i) {
      const SeriesView t = segment->At(i);
      EXPECT_GE(t.length(), 1u);
      EXPECT_LE(segment->resident_bytes(), segment->budget_bytes());
    }
  }
  EXPECT_LE(segment->resident_high_water(), segment->budget_bytes());
  EXPECT_GT(segment->chunk_evictions(), 0u);
  EXPECT_GT(segment->chunk_loads(), segment->num_chunks());  // re-faulted
}

TEST(StoreTest, RepeatedAccessWithinBudgetHitsCache) {
  const Dataset data = MakeCorpus(8, 64);
  const ScopedPath path(TempSegmentPath("hits"));
  const auto segment = RoundTrip(data, path.path, 2);
  ASSERT_NE(segment, nullptr);
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t i = 0; i < segment->size(); ++i) segment->At(i);
  }
  EXPECT_EQ(segment->chunk_evictions(), 0u);
  EXPECT_EQ(segment->chunk_loads(), segment->num_chunks());
  EXPECT_GT(segment->chunk_hits(), 0u);
}

TEST(StoreTest, TinyBudgetClampsToLargestChunk) {
  const Dataset data = MakeCorpus(12, 80);
  const ScopedPath path(TempSegmentPath("clamp"));
  {
    const auto writer_probe = RoundTrip(data, path.path, 3);
    ASSERT_NE(writer_probe, nullptr);
  }
  std::string error;
  store::ColumnarStore::Options options;
  options.budget_bytes = 1;  // below any chunk: must clamp, not wedge
  const auto segment = store::ColumnarStore::Open(path.path, options, &error);
  ASSERT_NE(segment, nullptr) << error;
  for (size_t i = 0; i < segment->size(); ++i) {
    EXPECT_EQ(segment->At(i).length(), data.At(i).length());
    EXPECT_LE(segment->resident_bytes(), segment->budget_bytes());
  }
}

TEST(StoreTest, SidecarStatsBitwiseEqualToZnorm) {
  const Dataset data = MakeCorpus(10, 72);
  const ScopedPath path(TempSegmentPath("sidecar"));
  const auto segment = RoundTrip(data, path.path, 3);
  ASSERT_NE(segment, nullptr);

  for (size_t i = 0; i < segment->size(); ++i) {
    const SeriesView t = segment->At(i);
    for (const size_t window : {size_t{1}, size_t{5}, size_t{16}, t.length()}) {
      SCOPED_TRACE("series " + std::to_string(i) + " window " +
                   std::to_string(window));
      RollingStats served;
      ASSERT_TRUE(segment->FillRollingStats(t.values, window, &served));
      const RollingStats computed = ComputeRollingStats(t.values, window);
      ASSERT_EQ(served.means.size(), computed.means.size());
      for (size_t j = 0; j < computed.means.size(); ++j) {
        EXPECT_EQ(served.means[j], computed.means[j]);
        EXPECT_EQ(served.stds[j], computed.stds[j]);
      }

      std::vector<double> energies;
      ASSERT_TRUE(segment->FillWindowEnergies(t.values, window, &energies));
      const std::vector<double> expected =
          ComputeWindowEnergies(t.values, window);
      ASSERT_EQ(energies.size(), expected.size());
      for (size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(energies[j], expected[j]);
      }
    }
  }
}

TEST(StoreTest, StatsProviderRejectsForeignSpansAndBadWindows) {
  const Dataset data = MakeCorpus(6, 48);
  const ScopedPath path(TempSegmentPath("foreign"));
  const auto segment = RoundTrip(data, path.path, 2);
  ASSERT_NE(segment, nullptr);

  RollingStats out;
  const SeriesView t = segment->At(0);
  // Windows the sidecar cannot serve.
  EXPECT_FALSE(segment->FillRollingStats(t.values, 0, &out));
  EXPECT_FALSE(segment->FillRollingStats(t.values, t.length() + 1, &out));
  // A span that lives outside the mapping entirely.
  const std::vector<double> foreign(32, 1.0);
  EXPECT_FALSE(segment->FillRollingStats(foreign, 4, &out));
  // A proper subspan of a stored series is not the full series: the
  // provider must decline rather than serve the wrong prefix table.
  EXPECT_FALSE(
      segment->FillRollingStats(t.values.subspan(1, t.length() - 2), 4, &out));
}

TEST(StoreTest, LooksLikeStoreSegmentSniffsMagic) {
  const Dataset data = MakeCorpus(4, 32);
  const ScopedPath path(TempSegmentPath("sniff"));
  { ASSERT_NE(RoundTrip(data, path.path, 1), nullptr); }
  EXPECT_TRUE(store::LooksLikeStoreSegment(path.path));

  const ScopedPath text(TempSegmentPath("sniff_text"));
  {
    std::FILE* f = std::fopen(text.path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0 1.0,2.0,3.0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(store::LooksLikeStoreSegment(text.path));
  EXPECT_FALSE(store::LooksLikeStoreSegment("/nonexistent/nope.ips"));
}

// ------------------------------------------------------------------ parity

IpsOptions DiscoveryOptions(size_t threads, MetricId metric) {
  IpsOptions options;
  options.num_threads = threads;
  options.metric = metric;
  options.sample_count = 4;
  options.sample_size = 3;
  options.length_ratios = {0.2, 0.4};
  options.shapelets_per_class = 3;
  return options;
}

/// The whole observable outcome of a discovery run, exact to the last bit.
std::string Fingerprint(const RunResult& result) {
  std::string out = SerializeShapelets(result.shapelets);
  out += " motifs=" + std::to_string(result.stats.motifs_generated);
  out += " discords=" + std::to_string(result.stats.discords_generated);
  out += " profiles=" + std::to_string(result.stats.profiles_computed);
  return out;
}

TEST(StoreTest, DiscoveryBitwiseIdenticalToInRamForEveryMetricAndThreads) {
  const Dataset data = MakeCorpus(16, 96);
  const ScopedPath path(TempSegmentPath("parity"));
  // A budget far below the corpus: discovery must run while chunks churn.
  auto probe = RoundTrip(data, path.path, 6);
  ASSERT_NE(probe, nullptr);
  const uint64_t budget = probe->mapped_bytes() / 3;
  probe.reset();

  for (size_t m = 0; m < kMetricCount; ++m) {
    const MetricId metric = static_cast<MetricId>(m);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(std::string("metric ") + MetricName(metric) + " threads " +
                   std::to_string(threads));
      const IpsOptions options = DiscoveryOptions(threads, metric);
      const RunResult in_ram = DiscoverShapelets(data, options);

      std::string error;
      store::ColumnarStore::Options open_options;
      open_options.budget_bytes = budget;
      const auto segment =
          store::ColumnarStore::Open(path.path, open_options, &error);
      ASSERT_NE(segment, nullptr) << error;
      const RunResult out_of_core = DiscoverShapelets(*segment, options);

      EXPECT_EQ(Fingerprint(out_of_core), Fingerprint(in_ram));
    }
  }
}

}  // namespace
}  // namespace ips
