#include "dabf/bloom_filter.h"

#include <string>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1024, 3);
  for (int i = 0; i < 100; ++i) {
    filter.Add("key-" + std::to_string(i));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(filter.MayContain("key-" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, UnseenKeysMostlyRejected) {
  BloomFilter filter = BloomFilter::WithCapacity(200, 0.01);
  for (int i = 0; i < 200; ++i) filter.Add("in-" + std::to_string(i));
  int false_positives = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("out-" + std::to_string(i))) ++false_positives;
  }
  // Target rate 1%; allow generous slack.
  EXPECT_LT(false_positives, probes / 20);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  const BloomFilter filter(256, 4);
  EXPECT_FALSE(filter.MayContain("anything"));
  EXPECT_DOUBLE_EQ(filter.FillRatio(), 0.0);
}

TEST(BloomFilterTest, WithCapacitySizesSensibly) {
  const BloomFilter f = BloomFilter::WithCapacity(1000, 0.01);
  // Optimal m ~ 9.6 bits/item at 1% FPR; k ~ 7.
  EXPECT_GT(f.num_bits(), 9000u);
  EXPECT_LT(f.num_bits(), 11000u);
  EXPECT_GE(f.num_hashes(), 6u);
  EXPECT_LE(f.num_hashes(), 8u);
}

TEST(BloomFilterTest, FillRatioGrowsWithInsertions) {
  BloomFilter f(512, 3);
  const double before = f.FillRatio();
  for (int i = 0; i < 50; ++i) f.Add("k" + std::to_string(i));
  EXPECT_GT(f.FillRatio(), before);
  EXPECT_EQ(f.num_items(), 50u);
}

TEST(BloomFilterTest, EmptyKeySupported) {
  BloomFilter f(128, 2);
  f.Add("");
  EXPECT_TRUE(f.MayContain(""));
}

TEST(BloomFilterTest, BinaryKeysSupported) {
  BloomFilter f(256, 3);
  const std::string key1("\x00\x01\x02", 3);
  const std::string key2("\x00\x01\x03", 3);
  f.Add(key1);
  EXPECT_TRUE(f.MayContain(key1));
  EXPECT_FALSE(f.MayContain(key2));
}

}  // namespace
}  // namespace ips
