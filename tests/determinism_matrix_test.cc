// End-to-end determinism matrix: the full IPS pipeline (discovery,
// shapelet transform, classification) on a small UCR-catalogue dataset
// must produce bitwise-identical shapelets, transform features and
// accuracy at every thread count, including 0 (= auto). All randomness is
// drawn before the parallel regions and every parallel write is disjoint
// per index, so the persistent pool's nondeterministic scheduling must be
// unobservable in the outputs.

#include <cstdlib>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metric.h"
#include "data/generator.h"
#include "data/ucr_catalog.h"
#include "ips/pipeline.h"
#include "transform/shapelet_transform.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace ips {
namespace {

// Give the pool real workers even on single-core runners, so the matrix
// actually compares cross-thread schedules rather than inline loops.
const bool kForcePoolWorkers = [] {
  setenv("IPS_THREAD_POOL_WORKERS", "7", /*overwrite=*/0);
  return true;
}();

struct PipelineRun {
  std::vector<Subsequence> shapelets;
  TransformedData transform;
  double accuracy = 0.0;
};

PipelineRun RunPipeline(const TrainTestSplit& data, size_t num_threads,
                        MetricId metric = MetricId::kZNormEuclidean) {
  IpsOptions o;
  o.sample_count = 4;
  o.sample_size = 3;
  o.length_ratios = {0.2, 0.35};
  o.shapelets_per_class = 3;
  o.num_threads = num_threads;
  o.metric = metric;

  IpsClassifier clf(o);
  clf.Fit(data.train);

  PipelineRun run;
  run.shapelets = clf.shapelets();
  run.transform = ShapeletTransform(data.test, clf.shapelets(), o.metric,
                                    num_threads);
  run.accuracy = clf.Accuracy(data.test);
  return run;
}

void ExpectRunsBitwiseEqual(const PipelineRun& run, const PipelineRun& base) {
  ASSERT_EQ(run.shapelets.size(), base.shapelets.size());
  for (size_t s = 0; s < base.shapelets.size(); ++s) {
    EXPECT_EQ(run.shapelets[s].label, base.shapelets[s].label);
    EXPECT_EQ(run.shapelets[s].series_index, base.shapelets[s].series_index);
    EXPECT_EQ(run.shapelets[s].start, base.shapelets[s].start);
    ASSERT_EQ(run.shapelets[s].values.size(),
              base.shapelets[s].values.size());
    for (size_t v = 0; v < base.shapelets[s].values.size(); ++v) {
      ASSERT_EQ(run.shapelets[s].values[v], base.shapelets[s].values[v])
          << "shapelet " << s << " value " << v;
    }
  }

  ASSERT_EQ(run.transform.size(), base.transform.size());
  EXPECT_EQ(run.transform.labels, base.transform.labels);
  for (size_t i = 0; i < base.transform.size(); ++i) {
    ASSERT_EQ(run.transform.features[i].size(),
              base.transform.features[i].size());
    for (size_t f = 0; f < base.transform.features[i].size(); ++f) {
      ASSERT_EQ(run.transform.features[i][f], base.transform.features[i][f])
          << "series " << i << " feature " << f;
    }
  }

  EXPECT_EQ(run.accuracy, base.accuracy);
}

TEST(DeterminismMatrixTest, PipelineBitwiseIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(kForcePoolWorkers);
  // ItalyPowerDemand, scaled to test size: the smallest-series catalogue
  // entry (length 24), synthesised by the repo's UCR stand-in generator.
  const auto info = FindUcrDataset("ItalyPowerDemand");
  ASSERT_TRUE(info.has_value());
  CatalogScale scale;
  scale.count_factor = 0.4;
  scale.min_train = 16;
  scale.max_train = 28;
  scale.min_test = 24;
  scale.max_test = 48;
  const TrainTestSplit data =
      GenerateDataset(SpecFromCatalog(ScaleDataset(*info, scale)));

  const PipelineRun base = RunPipeline(data, 1);
  ASSERT_FALSE(base.shapelets.empty());
  ASSERT_EQ(base.transform.size(), data.test.size());

  // 0 = auto (HardwareThreads()).
  for (size_t threads : {size_t{2}, size_t{8}, size_t{0}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectRunsBitwiseEqual(RunPipeline(data, threads), base);
  }
}

// The same matrix under each non-default metric: end-to-end runs must be
// bitwise thread-count independent regardless of which registered metric
// parameterises the joins and transform.
TEST(DeterminismMatrixTest, EveryMetricBitwiseIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(kForcePoolWorkers);
  const auto info = FindUcrDataset("ItalyPowerDemand");
  ASSERT_TRUE(info.has_value());
  CatalogScale scale;
  scale.count_factor = 0.4;
  scale.min_train = 16;
  scale.max_train = 28;
  scale.min_test = 24;
  scale.max_test = 48;
  const TrainTestSplit data =
      GenerateDataset(SpecFromCatalog(ScaleDataset(*info, scale)));

  for (const MetricId metric :
       {MetricId::kRawSquaredEuclidean, MetricId::kEuclidean,
        MetricId::kCosine}) {
    SCOPED_TRACE(std::string("metric=") + MetricName(metric));
    const PipelineRun base = RunPipeline(data, 1, metric);
    ASSERT_FALSE(base.shapelets.empty());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      SCOPED_TRACE("num_threads=" + std::to_string(threads));
      ExpectRunsBitwiseEqual(RunPipeline(data, threads, metric), base);
    }
  }
}

TEST(DeterminismMatrixTest, AutoThreadsRecordPoolActivityInStats) {
  GeneratorSpec spec;
  spec.name = "determinism_matrix_pool_stats";
  spec.num_classes = 2;
  spec.train_size = 16;
  spec.test_size = 8;
  spec.length = 96;
  const TrainTestSplit data = GenerateDataset(spec);

  IpsOptions o;
  o.sample_count = 4;
  o.sample_size = 3;
  o.length_ratios = {0.2, 0.3};
  o.shapelets_per_class = 2;
  o.num_threads = 0;  // auto

  IpsClassifier clf(o);
  clf.Fit(data.train);
  const IpsRunStats& stats = clf.result().stats;
  // Some regions always run (candidate generation, the transform); whether
  // they dispatched or inlined depends on the machine, but the counters
  // must have recorded them either way.
  EXPECT_GT(stats.pool_regions + stats.pool_inline_regions, 0u);
  if (ThreadPool::Instance().worker_count() > 0 && HardwareThreads() > 1) {
    EXPECT_GT(stats.pool_regions, 0u);
  }
}

}  // namespace
}  // namespace ips
