#include "data/generator.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "classify/nn.h"

namespace ips {
namespace {

GeneratorSpec BasicSpec() {
  GeneratorSpec spec;
  spec.name = "gentest";
  spec.num_classes = 3;
  spec.train_size = 15;
  spec.test_size = 30;
  spec.length = 96;
  return spec;
}

TEST(GeneratorTest, SizesAndLengthsMatchSpec) {
  const TrainTestSplit split = GenerateDataset(BasicSpec());
  EXPECT_EQ(split.train.size(), 15u);
  EXPECT_EQ(split.test.size(), 30u);
  for (size_t i = 0; i < split.train.size(); ++i) {
    EXPECT_EQ(split.train[i].length(), 96u);
  }
}

TEST(GeneratorTest, AllClassesPresent) {
  const TrainTestSplit split = GenerateDataset(BasicSpec());
  std::set<int> train_labels, test_labels;
  for (size_t i = 0; i < split.train.size(); ++i) {
    train_labels.insert(split.train[i].label);
  }
  for (size_t i = 0; i < split.test.size(); ++i) {
    test_labels.insert(split.test[i].label);
  }
  EXPECT_EQ(train_labels.size(), 3u);
  EXPECT_EQ(test_labels.size(), 3u);
}

TEST(GeneratorTest, DeterministicForSameSpec) {
  const TrainTestSplit a = GenerateDataset(BasicSpec());
  const TrainTestSplit b = GenerateDataset(BasicSpec());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].values, b.train[i].values);
  }
}

TEST(GeneratorTest, DifferentNamesGiveDifferentData) {
  GeneratorSpec other = BasicSpec();
  other.name = "different";
  const TrainTestSplit a = GenerateDataset(BasicSpec());
  const TrainTestSplit b = GenerateDataset(other);
  EXPECT_NE(a.train[0].values, b.train[0].values);
}

TEST(GeneratorTest, ClassesAreLearnable) {
  // The planted class structure must be recoverable by a simple 1NN -- the
  // property every downstream experiment relies on.
  GeneratorSpec spec = BasicSpec();
  spec.num_classes = 2;
  spec.train_size = 20;
  spec.test_size = 40;
  const TrainTestSplit split = GenerateDataset(spec);
  OneNnEd clf;
  clf.Fit(split.train);
  EXPECT_GT(clf.Accuracy(split.test), 0.6);
}

TEST(GeneratorTest, NoiseKnobIncreasesDifficulty) {
  GeneratorSpec easy = BasicSpec();
  easy.num_classes = 2;
  easy.train_size = 20;
  easy.test_size = 60;
  easy.noise = 0.05;
  GeneratorSpec hard = easy;
  hard.noise = 3.0;

  OneNnEd clf_easy, clf_hard;
  const TrainTestSplit easy_split = GenerateDataset(easy);
  const TrainTestSplit hard_split = GenerateDataset(hard);
  clf_easy.Fit(easy_split.train);
  clf_hard.Fit(hard_split.train);
  EXPECT_GE(clf_easy.Accuracy(easy_split.test),
            clf_hard.Accuracy(hard_split.test));
}

TEST(SpecFromCatalogTest, CopiesShapeParameters) {
  UcrDatasetInfo info;
  info.name = "Foo";
  info.num_classes = 4;
  info.train_size = 100;
  info.test_size = 200;
  info.length = 300;
  const GeneratorSpec spec = SpecFromCatalog(info);
  EXPECT_EQ(spec.name, "Foo");
  EXPECT_EQ(spec.num_classes, 4);
  EXPECT_EQ(spec.train_size, 100u);
  EXPECT_EQ(spec.test_size, 200u);
  EXPECT_EQ(spec.length, 300u);
}

TEST(ItalyPowerLikeTest, TwoClass24HourCurves) {
  const TrainTestSplit split = GenerateItalyPowerLike(20, 40);
  EXPECT_EQ(split.train.size(), 20u);
  EXPECT_EQ(split.test.size(), 40u);
  for (size_t i = 0; i < split.train.size(); ++i) {
    EXPECT_EQ(split.train[i].length(), 24u);
    EXPECT_TRUE(split.train[i].label == 0 || split.train[i].label == 1);
  }
}

TEST(ItalyPowerLikeTest, WinterHasHigherMorningLoad) {
  const TrainTestSplit split = GenerateItalyPowerLike(40, 0);
  double summer_morning = 0.0, winter_morning = 0.0;
  size_t summer_n = 0, winter_n = 0;
  for (size_t i = 0; i < split.train.size(); ++i) {
    const TimeSeries& day = split.train[i];
    double morning = 0.0;
    for (size_t h = 6; h <= 10; ++h) morning += day[h];
    if (day.label == 0) {
      summer_morning += morning;
      ++summer_n;
    } else {
      winter_morning += morning;
      ++winter_n;
    }
  }
  EXPECT_GT(winter_morning / static_cast<double>(winter_n),
            summer_morning / static_cast<double>(summer_n) + 0.5);
}

}  // namespace
}  // namespace ips
