// Span nesting, path aggregation, and the snapshot/delta windowing that
// RunResult attribution is built on. Registry-level behaviour (Record,
// Delta, leaf queries) is config-independent; Span-driven tests compile
// only when tracing is enabled and are skipped otherwise.

#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace ips::obs {
namespace {

TEST(TraceReportTest, LeafAndDepth) {
  TraceSpan s;
  s.path = "fit/discover/candidate_gen";
  EXPECT_EQ(s.Leaf(), "candidate_gen");
  EXPECT_EQ(s.Depth(), 2u);
  s.path = "discover";
  EXPECT_EQ(s.Leaf(), "discover");
  EXPECT_EQ(s.Depth(), 0u);
}

TEST(TraceReportTest, LeafQueriesSumAcrossPrefixes) {
  TraceReport report;
  report.spans.push_back({"discover/pruning", 1, 0.25});
  report.spans.push_back({"fit/discover/pruning", 2, 0.5});
  report.spans.push_back({"fit/discover/selection", 1, 4.0});
  EXPECT_EQ(report.LeafSeconds("pruning"), 0.75);
  EXPECT_EQ(report.LeafCount("pruning"), 3u);
  EXPECT_EQ(report.LeafSeconds("selection"), 4.0);
  EXPECT_EQ(report.LeafSeconds("absent"), 0.0);
  EXPECT_EQ(report.LeafCount("absent"), 0u);
  ASSERT_NE(report.Find("discover/pruning"), nullptr);
  EXPECT_EQ(report.Find("discover/pruning")->count, 1u);
  EXPECT_EQ(report.Find("pruning"), nullptr);  // exact path, not leaf
}

TEST(TraceRegistryTest, DeltaWindowsIsolateRuns) {
  TraceRegistry& reg = TraceRegistry::Instance();
  reg.Record("obs_trace_test/outside", 1.0);
  const TraceSnapshot before = reg.Snapshot();
  reg.Record("obs_trace_test/inside", 0.5);
  reg.Record("obs_trace_test/inside", 0.25);
  const TraceReport delta = reg.DeltaSince(before);
  const TraceSpan* inside = delta.Find("obs_trace_test/inside");
  ASSERT_NE(inside, nullptr);
  EXPECT_EQ(inside->count, 2u);
  EXPECT_DOUBLE_EQ(inside->seconds, 0.75);
  // Paths untouched inside the window are dropped from the delta.
  EXPECT_EQ(delta.Find("obs_trace_test/outside"), nullptr);
}

TEST(TraceRegistryTest, SnapshotIsOrderedByPath) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  reg.Record("obs_trace_test/z", 0.1);
  reg.Record("obs_trace_test/a", 0.1);
  reg.Record("obs_trace_test/m", 0.1);
  const TraceReport delta = reg.DeltaSince(before);
  std::string prev;
  for (const TraceSpan& s : delta.spans) {
    EXPECT_LT(prev, s.path);
    prev = s.path;
  }
}

TEST(TraceExportTest, TraceJsonRoundTrips) {
  TraceReport report;
  report.spans.push_back({"discover", 1, 2.0});
  report.spans.push_back({"discover/candidate_gen", 1, 1.5});
  const auto restored = TraceFromJson(TraceToJson(report));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->spans.size(), 2u);
  EXPECT_EQ(restored->spans[0].path, "discover");
  EXPECT_EQ(restored->spans[1].count, 1u);
  EXPECT_EQ(restored->spans[1].seconds, 1.5);
}

TEST(TraceExportTest, FormatTraceTreeListsEveryPath) {
  TraceReport report;
  report.spans.push_back({"discover", 1, 2.0});
  report.spans.push_back({"discover/candidate_gen", 1, 1.5});
  report.spans.push_back({"discover/candidate_gen/instance_profile", 4, 1.0});
  const std::string tree = FormatTraceTree(report);
  EXPECT_NE(tree.find("discover"), std::string::npos);
  EXPECT_NE(tree.find("candidate_gen"), std::string::npos);
  EXPECT_NE(tree.find("instance_profile"), std::string::npos);
}

#if !defined(IPS_DISABLE_TRACING)

TEST(SpanTest, NestingBuildsSlashJoinedPaths) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  {
    Span outer("span_test_outer");
    EXPECT_EQ(outer.path(), "span_test_outer");
    {
      Span inner("span_test_inner");
      EXPECT_EQ(inner.path(), "span_test_outer/span_test_inner");
      Span deepest("span_test_deep");
      EXPECT_EQ(deepest.path(),
                "span_test_outer/span_test_inner/span_test_deep");
    }
    {
      // A sibling after the first child nests under the same parent.
      Span sibling("span_test_inner");
      EXPECT_EQ(sibling.path(), "span_test_outer/span_test_inner");
    }
  }
  const TraceReport delta = reg.DeltaSince(before);
  ASSERT_NE(delta.Find("span_test_outer"), nullptr);
  const TraceSpan* inner = delta.Find("span_test_outer/span_test_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);  // first child + sibling, aggregated
  EXPECT_NE(
      delta.Find("span_test_outer/span_test_inner/span_test_deep"), nullptr);
}

TEST(SpanTest, ParentAccumulatesChildTime) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  {
    Span outer("span_test_parent");
    Span inner("span_test_child");
    // Both spans cover this scope; the parent's wall-clock includes the
    // child's.
  }
  const TraceReport delta = reg.DeltaSince(before);
  const TraceSpan* parent = delta.Find("span_test_parent");
  const TraceSpan* child = delta.Find("span_test_parent/span_test_child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_GE(parent->seconds, child->seconds);
}

TEST(SpanTest, MacroOpensScopedSpan) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  {
    IPS_SPAN("span_test_macro");
  }
  const TraceReport delta = reg.DeltaSince(before);
  const TraceSpan* s = delta.Find("span_test_macro");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
}

TEST(SpanTest, WorkerThreadSpansRootTheirOwnPath) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  {
    Span outer("span_test_main_root");
    // The parent stack is thread-local: a span on another thread does not
    // nest under this thread's open span.
    std::thread worker([] { Span s("span_test_worker"); });
    worker.join();
  }
  const TraceReport delta = reg.DeltaSince(before);
  ASSERT_NE(delta.Find("span_test_worker"), nullptr);
  EXPECT_EQ(delta.Find("span_test_main_root/span_test_worker"), nullptr);
}

TEST(SpanTest, ConcurrentSpansAggregateExactly) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("span_test_concurrent");
      }
    });
  }
  for (auto& t : threads) t.join();
  const TraceReport delta = reg.DeltaSince(before);
  const TraceSpan* s = delta.Find("span_test_concurrent");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, uint64_t{kThreads} * kSpansPerThread);
  EXPECT_GE(s->seconds, 0.0);
}

#else  // IPS_DISABLE_TRACING

TEST(SpanTest, DisabledSpanRecordsNothing) {
  TraceRegistry& reg = TraceRegistry::Instance();
  const TraceSnapshot before = reg.Snapshot();
  {
    IPS_SPAN("span_test_disabled");
    Span s("span_test_disabled_direct");
  }
  EXPECT_TRUE(reg.DeltaSince(before).empty());
  EXPECT_FALSE(kTracingEnabled);
}

#endif  // IPS_DISABLE_TRACING

}  // namespace
}  // namespace ips::obs
