// Cross-module integration tests: the paper's qualitative claims on small
// synthetic workloads -- IPS accuracy vs the MP baseline, DABF vs naive
// pruning consistency, and end-to-end comparability of all classifiers.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/bspcover.h"
#include "baselines/fast_shapelets.h"
#include "baselines/mp_base.h"
#include "classify/nn.h"
#include "data/generator.h"
#include "ips/pipeline.h"
#include "util/timer.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name, size_t train = 16,
                        size_t test = 60, size_t length = 96) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = train;
  spec.test_size = test;
  spec.length = length;
  return GenerateDataset(spec);
}

IpsOptions FastIpsOptions() {
  IpsOptions o;
  o.sample_count = 6;
  o.sample_size = 3;
  o.length_ratios = {0.15, 0.25};
  o.shapelets_per_class = 4;
  return o;
}

TEST(IntegrationTest, IpsAtLeastAsAccurateAsBaseOnAverage) {
  // Paper claim: BASE's accuracy is lower than IPS's on most datasets
  // (Table VI: 41 of 46). Check the average over several synthetic sets.
  double ips_total = 0.0, base_total = 0.0;
  const std::vector<std::string> names = {"intA", "intB", "intC"};
  for (const auto& name : names) {
    const TrainTestSplit data = MakeData(name);
    IpsClassifier ips_clf(FastIpsOptions());
    ips_clf.Fit(data.train);
    ips_total += ips_clf.Accuracy(data.test);

    MpBaseOptions base_options;
    base_options.length_ratios = {0.15, 0.25};
    base_options.shapelets_per_class = 4;
    MpBaseClassifier base_clf(base_options);
    base_clf.Fit(data.train);
    base_total += base_clf.Accuracy(data.test);
  }
  // On these easy unit-test datasets both methods score high; the paper's
  // gap shows on harder data (see exp_table6). Assert IPS is in the same
  // band rather than strictly ahead.
  EXPECT_GE(ips_total, base_total - 0.15)
      << "IPS " << ips_total / 3.0 << " vs BASE " << base_total / 3.0;
}

TEST(IntegrationTest, AllClassifiersBeatChanceOnEasyData) {
  GeneratorSpec spec;
  spec.name = "easy";
  spec.num_classes = 2;
  spec.train_size = 16;
  spec.test_size = 40;
  spec.length = 80;
  spec.noise = 0.15;
  const TrainTestSplit data = GenerateDataset(spec);

  IpsClassifier ips_clf(FastIpsOptions());
  ips_clf.Fit(data.train);
  EXPECT_GT(ips_clf.Accuracy(data.test), 0.6) << "IPS";

  MpBaseOptions base_options;
  base_options.length_ratios = {0.15, 0.25};
  MpBaseClassifier base_clf(base_options);
  base_clf.Fit(data.train);
  EXPECT_GT(base_clf.Accuracy(data.test), 0.5) << "BASE";

  BspCoverOptions bsp_options;
  bsp_options.length_ratios = {0.15, 0.25};
  bsp_options.stride = 4;
  BspCoverClassifier bsp_clf(bsp_options);
  bsp_clf.Fit(data.train);
  EXPECT_GT(bsp_clf.Accuracy(data.test), 0.6) << "BSPCOVER";

  FastShapeletsOptions fs_options;
  fs_options.length_ratios = {0.15, 0.25};
  FastShapeletsClassifier fs_clf(fs_options);
  fs_clf.Fit(data.train);
  EXPECT_GT(fs_clf.Accuracy(data.test), 0.55) << "FS";

  OneNnEd ed;
  ed.Fit(data.train);
  EXPECT_GT(ed.Accuracy(data.test), 0.6) << "1NN-ED";
}

TEST(IntegrationTest, IpsFasterThanBspCover) {
  // Paper Table IV: IPS is consistently faster than BSPCOVER (dense
  // enumeration). Use a workload large enough for the asymptotics to show.
  const TrainTestSplit data = MakeData("speed", 20, 10, 128);

  Timer ips_timer;
  DiscoverShapelets(data.train, FastIpsOptions());
  const double ips_seconds = ips_timer.ElapsedSeconds();

  BspCoverOptions bsp_options;
  bsp_options.length_ratios = {0.15, 0.25};
  bsp_options.stride = 1;
  Timer bsp_timer;
  DiscoverBspCoverShapelets(data.train, bsp_options);
  const double bsp_seconds = bsp_timer.ElapsedSeconds();

  EXPECT_LT(ips_seconds, bsp_seconds)
      << "IPS " << ips_seconds << "s vs BSPCOVER " << bsp_seconds << "s";
}

TEST(IntegrationTest, DabfPruningAgreesWithNaiveOnAccuracy) {
  // Fig. 10 claim: DABF changes efficiency, not (much) accuracy.
  const TrainTestSplit data = MakeData("dabfacc");
  IpsOptions with = FastIpsOptions();
  IpsOptions without = FastIpsOptions();
  without.use_dabf_pruning = false;

  IpsClassifier clf_with(with), clf_without(without);
  clf_with.Fit(data.train);
  clf_without.Fit(data.train);
  const double a = clf_with.Accuracy(data.test);
  const double b = clf_without.Accuracy(data.test);
  EXPECT_NEAR(a, b, 0.25) << "with " << a << " without " << b;
}

TEST(IntegrationTest, DtCrAccuracyCloseToExact) {
  // Fig. 10(c) claim: the DT & CR optimisations barely move accuracy.
  const TrainTestSplit data = MakeData("dtacc");
  IpsOptions dt = FastIpsOptions();
  dt.utility_mode = UtilityMode::kDtCr;
  IpsOptions exact = FastIpsOptions();
  exact.utility_mode = UtilityMode::kExactNaive;

  IpsClassifier clf_dt(dt), clf_exact(exact);
  clf_dt.Fit(data.train);
  clf_exact.Fit(data.train);
  EXPECT_NEAR(clf_dt.Accuracy(data.test), clf_exact.Accuracy(data.test),
              0.25);
}

TEST(IntegrationTest, MoreShapeletsNeverBreaksPipeline) {
  const TrainTestSplit data = MakeData("sweepk", 14, 20, 64);
  for (size_t k : {1, 2, 5, 10}) {
    IpsOptions o = FastIpsOptions();
    o.shapelets_per_class = k;
    IpsClassifier clf(o);
    clf.Fit(data.train);
    EXPECT_GT(clf.Accuracy(data.test), 0.4) << "k=" << k;
    EXPECT_LE(clf.shapelets().size(), 2 * k);
  }
}

}  // namespace
}  // namespace ips
