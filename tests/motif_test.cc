#include "matrix_profile/motif.h"

#include <cmath>

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(FindMotifsTest, PicksSmallestFirst) {
  const std::vector<double> profile = {5.0, 1.0, 4.0, 0.5, 3.0, 9.0};
  const auto motifs = FindMotifs(profile, 2, 0);
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(motifs[0], 3u);
  EXPECT_EQ(motifs[1], 1u);
}

TEST(FindDiscordsTest, PicksLargestFirst) {
  const std::vector<double> profile = {5.0, 1.0, 4.0, 0.5, 3.0, 9.0};
  const auto discords = FindDiscords(profile, 2, 0);
  ASSERT_EQ(discords.size(), 2u);
  EXPECT_EQ(discords[0], 5u);
  EXPECT_EQ(discords[1], 0u);
}

TEST(FindMotifsTest, ExclusionZoneSeparatesSelections) {
  // Values 0.1, 0.2, 0.3 adjacent: with exclusion 2, only one of them can
  // be selected; next pick must be >= 3 away.
  const std::vector<double> profile = {0.1, 0.2, 0.3, 5.0, 5.0, 0.4, 5.0};
  const auto motifs = FindMotifs(profile, 3, 2);
  ASSERT_GE(motifs.size(), 2u);
  EXPECT_EQ(motifs[0], 0u);
  EXPECT_EQ(motifs[1], 5u);
  for (size_t i = 0; i < motifs.size(); ++i) {
    for (size_t j = i + 1; j < motifs.size(); ++j) {
      const size_t gap = motifs[i] > motifs[j] ? motifs[i] - motifs[j]
                                               : motifs[j] - motifs[i];
      EXPECT_GT(gap, 2u);
    }
  }
}

TEST(FindMotifsTest, RequestMoreThanAvailable) {
  const std::vector<double> profile = {1.0, 2.0};
  const auto motifs = FindMotifs(profile, 10, 0);
  EXPECT_EQ(motifs.size(), 2u);
}

TEST(FindMotifsTest, SkipsNonFiniteEntries) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> profile = {inf, 2.0, inf, 1.0};
  const auto motifs = FindMotifs(profile, 4, 0);
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(motifs[0], 3u);
  EXPECT_EQ(motifs[1], 1u);
}

TEST(FindDiscordsTest, SkipsNonFiniteEntries) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> profile = {inf, 2.0, 5.0};
  const auto discords = FindDiscords(profile, 2, 0);
  ASSERT_EQ(discords.size(), 2u);
  EXPECT_EQ(discords[0], 2u);
}

TEST(FindMotifsTest, EmptyProfile) {
  EXPECT_TRUE(FindMotifs(std::vector<double>{}, 3, 1).empty());
}

TEST(FindMotifsTest, LargeExclusionLimitsCount) {
  const std::vector<double> profile = {1.0, 2.0, 3.0, 4.0, 5.0};
  // Exclusion spanning the whole profile: only one selection possible.
  EXPECT_EQ(FindMotifs(profile, 5, 10).size(), 1u);
}

TEST(FindMotifsTest, StableTieBreaking) {
  const std::vector<double> profile = {1.0, 1.0, 1.0};
  const auto motifs = FindMotifs(profile, 3, 0);
  EXPECT_EQ(motifs, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace ips
