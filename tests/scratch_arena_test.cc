#include "util/scratch_arena.h"

#include <cstdint>
#include <cstring>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "util/parallel.h"

namespace ips {
namespace {

TEST(ScratchArenaTest, AllocIsAlignedAndSized) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  const std::span<double> a = arena.Alloc<double>(3);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % ScratchArena::kAlign, 0u);
  const std::span<uint8_t> b = arena.Alloc<uint8_t>(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % ScratchArena::kAlign, 0u);
}

TEST(ScratchArenaTest, ConsecutiveAllocationsNeverShareACacheLine) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  // Sizes chosen to leave partial lines; the next span must start on a
  // fresh line regardless (the no-false-sharing contract for per-chunk
  // partial buffers written by different workers).
  const std::span<double> a = arena.Alloc<double>(1);
  const std::span<double> b = arena.Alloc<double>(7);
  const std::span<double> c = arena.Alloc<double>(9);
  const auto line = [](const void* p) {
    return reinterpret_cast<uintptr_t>(p) / ScratchArena::kAlign;
  };
  EXPECT_LT(line(&a[0]), line(&b[0]));
  EXPECT_LT(line(&b[6]), line(&c[0]));
}

TEST(ScratchArenaTest, ScopeRewindReusesMemory) {
  ScratchArena arena;
  double* first = nullptr;
  {
    ScratchArena::Scope scope(arena);
    first = arena.Alloc<double>(100).data();
  }
  {
    ScratchArena::Scope scope(arena);
    // Same cursor, same slab: the rewound bytes are handed out again.
    EXPECT_EQ(arena.Alloc<double>(100).data(), first);
  }
}

TEST(ScratchArenaTest, ScopesNest) {
  ScratchArena arena;
  ScratchArena::Scope outer(arena);
  const std::span<double> kept = arena.Alloc<double>(8);
  kept[0] = 1.5;
  double* inner_ptr = nullptr;
  {
    ScratchArena::Scope inner(arena);
    const std::span<double> scratch = arena.Alloc<double>(8);
    inner_ptr = scratch.data();
    EXPECT_NE(scratch.data(), kept.data());
  }
  // The inner rewind freed only the inner allocation; the outer span is
  // intact and the next inner-sized request reuses the inner bytes.
  EXPECT_EQ(kept[0], 1.5);
  {
    ScratchArena::Scope inner(arena);
    EXPECT_EQ(arena.Alloc<double>(8).data(), inner_ptr);
  }
}

TEST(ScratchArenaTest, GrowthPreservesLiveSpans) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  // Force several slab growths while keeping earlier spans live: slabs are
  // chained, never reallocated, so old spans stay valid.
  std::vector<std::span<double>> spans;
  for (size_t i = 0; i < 24; ++i) {
    const size_t count = size_t{1} << (i % 12);
    spans.push_back(arena.Alloc<double>(count));
    for (size_t j = 0; j < count; ++j) {
      spans.back()[j] = static_cast<double>(i * 1000 + j % 997);
    }
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    const size_t count = spans[i].size();
    for (size_t j = 0; j < count; ++j) {
      ASSERT_EQ(spans[i][j], static_cast<double>(i * 1000 + j % 997));
    }
  }
  EXPECT_GT(arena.capacity_bytes(), 0u);
}

TEST(ScratchArenaTest, OversizedRequestGetsItsOwnSlab) {
  ScratchArena arena;
  ScratchArena::Scope scope(arena);
  arena.Alloc<double>(4);
  // Far larger than the minimum slab: must still be served, aligned.
  const std::span<double> big = arena.Alloc<double>(1 << 20);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big.data()) % ScratchArena::kAlign,
            0u);
  big[0] = 1.0;
  big[(1 << 20) - 1] = 2.0;
  EXPECT_GE(arena.capacity_bytes(), (size_t{1} << 20) * sizeof(double));
}

TEST(ScratchArenaTest, CapacityIsStableAcrossReuse) {
  ScratchArena arena;
  for (int warm = 0; warm < 3; ++warm) {
    ScratchArena::Scope scope(arena);
    for (size_t i = 0; i < 16; ++i) arena.Alloc<double>(512);
  }
  const size_t warmed = arena.capacity_bytes();
  for (int rep = 0; rep < 10; ++rep) {
    ScratchArena::Scope scope(arena);
    for (size_t i = 0; i < 16; ++i) arena.Alloc<double>(512);
  }
  // Steady state: identical request patterns never grow the slabs again.
  EXPECT_EQ(arena.capacity_bytes(), warmed);
  arena.Reset();
  arena.ReleaseSlabs();
  EXPECT_EQ(arena.capacity_bytes(), 0u);
}

TEST(ScratchArenaTest, ForCurrentThreadIsPerThread) {
  ScratchArena* main_arena = &ScratchArena::ForCurrentThread();
  EXPECT_EQ(main_arena, &ScratchArena::ForCurrentThread());
  ScratchArena* other_arena = nullptr;
  std::thread t([&] { other_arena = &ScratchArena::ForCurrentThread(); });
  t.join();
  EXPECT_NE(other_arena, nullptr);
  EXPECT_NE(other_arena, main_arena);
}

// Stress: many tasks on the pool, each carving variably-sized spans from
// its own thread's arena and checking a per-task fill pattern. Any
// cross-thread cursor interference or span overlap corrupts a pattern.
// Runs under the concurrency CTest label, so TSan sweeps it too.
TEST(ScratchArenaStressTest, PoolWorkersNeverInterfere) {
  constexpr size_t kTasks = 2000;
  std::atomic<size_t> corrupted{0};
  ParallelFor(kTasks, 8, [&](size_t task) {
    ScratchArena& arena = ScratchArena::ForCurrentThread();
    ScratchArena::Scope scope(arena);
    Rng rng(task);
    std::vector<std::span<uint64_t>> spans;
    for (size_t k = 0; k < 8; ++k) {
      const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 511));
      spans.push_back(arena.Alloc<uint64_t>(count));
      for (size_t j = 0; j < count; ++j) {
        spans.back()[j] = (task << 20) ^ (k << 12) ^ j;
      }
    }
    for (size_t k = 0; k < spans.size(); ++k) {
      for (size_t j = 0; j < spans[k].size(); ++j) {
        if (spans[k][j] != ((task << 20) ^ (k << 12) ^ j)) {
          corrupted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  EXPECT_EQ(corrupted.load(), 0u);
}

// Nested scopes under parallel regions: the caller carves cross-thread
// buffers, workers carve their own scratch inside the region (the
// JoinAllPairsInto shape), and the caller reads the buffers after the
// join edge.
TEST(ScratchArenaStressTest, CallerBuffersSurviveWorkerScratch) {
  ScratchArena& caller = ScratchArena::ForCurrentThread();
  for (int rep = 0; rep < 20; ++rep) {
    ScratchArena::Scope scope(caller);
    constexpr size_t kChunks = 64;
    const std::span<double> partials = caller.Alloc<double>(kChunks * 8);
    ParallelFor(kChunks, 4, [&](size_t c) {
      ScratchArena& worker = ScratchArena::ForCurrentThread();
      ScratchArena::Scope inner(worker);
      const std::span<double> scratch = worker.Alloc<double>(256);
      for (size_t j = 0; j < scratch.size(); ++j) {
        scratch[j] = static_cast<double>(c + j);
      }
      double acc = 0.0;
      for (double v : scratch) acc += v;
      for (size_t j = 0; j < 8; ++j) partials[c * 8 + j] = acc;
    });
    for (size_t c = 0; c < kChunks; ++c) {
      const double expected =
          static_cast<double>(c) * 256.0 + 255.0 * 256.0 / 2.0;
      for (size_t j = 0; j < 8; ++j) {
        ASSERT_EQ(partials[c * 8 + j], expected) << "chunk " << c;
      }
    }
  }
}

}  // namespace
}  // namespace ips
