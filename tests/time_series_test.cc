#include "core/time_series.h"

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

Dataset MakeToyDataset() {
  Dataset d;
  d.Add(TimeSeries({1.0, 2.0, 3.0}, 0));
  d.Add(TimeSeries({4.0, 5.0}, 1));
  d.Add(TimeSeries({6.0, 7.0, 8.0, 9.0}, 0));
  d.Add(TimeSeries({10.0}, 2));
  return d;
}

TEST(DatasetTest, SizeAndAccess) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d[1].label, 1);
  EXPECT_DOUBLE_EQ(d[0][2], 3.0);
}

TEST(DatasetTest, NumClasses) {
  EXPECT_EQ(MakeToyDataset().NumClasses(), 3);
  EXPECT_EQ(Dataset().NumClasses(), 0);
}

TEST(DatasetTest, NumClassesSkipsUnlabeledSeries) {
  // Regression: a kUnlabeledSeries (-1) member used to shift the class
  // count. It must be skipped outright -- neither counted as a class nor
  // allowed to perturb the max-label scan.
  Dataset d;
  d.Add(TimeSeries(std::vector<double>{1.0, 2.0}, kUnlabeledSeries));
  EXPECT_EQ(d.NumClasses(), 0);
  d.Add(TimeSeries(std::vector<double>{3.0, 4.0}, 0));
  d.Add(TimeSeries(std::vector<double>{5.0, 6.0}, kUnlabeledSeries));
  d.Add(TimeSeries(std::vector<double>{7.0, 8.0}, 2));
  EXPECT_EQ(d.NumClasses(), 3);
  // Unlabelled series are still addressable as a group by their sentinel.
  EXPECT_EQ(d.IndicesOfClass(kUnlabeledSeries), (std::vector<size_t>{0, 2}));
}

TEST(DatasetTest, IndicesOfClass) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.IndicesOfClass(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(d.IndicesOfClass(1), (std::vector<size_t>{1}));
  EXPECT_TRUE(d.IndicesOfClass(7).empty());
}

TEST(DatasetTest, ViewsOfClassWithoutCopying) {
  const Dataset d = MakeToyDataset();
  std::vector<SeriesView> series;
  for (size_t i : d.IndicesOfClass(0)) series.push_back(d.At(i));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].length(), 3u);
  EXPECT_EQ(series[1].length(), 4u);
  // Views alias the owning Dataset -- no copy was made.
  EXPECT_EQ(series[0].values.data(), d[0].values.data());
  EXPECT_EQ(series[1].values.data(), d[2].values.data());
}

TEST(DatasetTest, ConcatenateClass) {
  const Dataset d = MakeToyDataset();
  const ClassConcat t = d.ConcatenateClass(0);
  EXPECT_EQ(t.label(), 0);
  EXPECT_EQ(t.pieces(), 2u);
  std::vector<double> values;
  t.CopyTo(&values);
  EXPECT_EQ(values,
            (std::vector<double>{1.0, 2.0, 3.0, 6.0, 7.0, 8.0, 9.0}));
  // Streaming yields the same samples piecewise.
  std::vector<double> streamed;
  t.ForEachPiece([&](SeriesView piece) {
    streamed.insert(streamed.end(), piece.values.begin(),
                    piece.values.end());
  });
  EXPECT_EQ(streamed, values);
}

TEST(DatasetTest, ConcatenateMissingClassIsEmpty) {
  EXPECT_EQ(MakeToyDataset().ConcatenateClass(9).length(), 0u);
}

TEST(DatasetTest, MinMaxLength) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.MaxLength(), 4u);
  EXPECT_EQ(d.MinLength(), 1u);
  EXPECT_EQ(Dataset().MaxLength(), 0u);
  EXPECT_EQ(Dataset().MinLength(), 0u);
}

TEST(DatasetTest, Labels) {
  EXPECT_EQ(MakeToyDataset().Labels(), (std::vector<int>{0, 1, 0, 2}));
}

TEST(ExtractSubsequenceTest, ValuesAndProvenance) {
  const TimeSeries t({10.0, 11.0, 12.0, 13.0, 14.0}, 3);
  const Subsequence s = ExtractSubsequence(t, 1, 3, 42);
  EXPECT_EQ(s.values, (std::vector<double>{11.0, 12.0, 13.0}));
  EXPECT_EQ(s.label, 3);
  EXPECT_EQ(s.series_index, 42);
  EXPECT_EQ(s.start, 1u);
  EXPECT_EQ(s.length(), 3u);
}

TEST(ExtractSubsequenceTest, FullSeries) {
  const TimeSeries t({1.0, 2.0}, 0);
  const Subsequence s = ExtractSubsequence(t, 0, 2);
  EXPECT_EQ(s.values, t.values);
}

}  // namespace
}  // namespace ips
