#include "core/time_series.h"

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

Dataset MakeToyDataset() {
  Dataset d;
  d.Add(TimeSeries({1.0, 2.0, 3.0}, 0));
  d.Add(TimeSeries({4.0, 5.0}, 1));
  d.Add(TimeSeries({6.0, 7.0, 8.0, 9.0}, 0));
  d.Add(TimeSeries({10.0}, 2));
  return d;
}

TEST(DatasetTest, SizeAndAccess) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d[1].label, 1);
  EXPECT_DOUBLE_EQ(d[0][2], 3.0);
}

TEST(DatasetTest, NumClasses) {
  EXPECT_EQ(MakeToyDataset().NumClasses(), 3);
  EXPECT_EQ(Dataset().NumClasses(), 0);
}

TEST(DatasetTest, IndicesOfClass) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.IndicesOfClass(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(d.IndicesOfClass(1), (std::vector<size_t>{1}));
  EXPECT_TRUE(d.IndicesOfClass(7).empty());
}

TEST(DatasetTest, SeriesOfClassCopies) {
  const Dataset d = MakeToyDataset();
  const auto series = d.SeriesOfClass(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].length(), 3u);
  EXPECT_EQ(series[1].length(), 4u);
}

TEST(DatasetTest, ConcatenateClass) {
  const Dataset d = MakeToyDataset();
  const TimeSeries t = d.ConcatenateClass(0);
  EXPECT_EQ(t.label, 0);
  EXPECT_EQ(t.values,
            (std::vector<double>{1.0, 2.0, 3.0, 6.0, 7.0, 8.0, 9.0}));
}

TEST(DatasetTest, ConcatenateMissingClassIsEmpty) {
  EXPECT_EQ(MakeToyDataset().ConcatenateClass(9).length(), 0u);
}

TEST(DatasetTest, MinMaxLength) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.MaxLength(), 4u);
  EXPECT_EQ(d.MinLength(), 1u);
  EXPECT_EQ(Dataset().MaxLength(), 0u);
  EXPECT_EQ(Dataset().MinLength(), 0u);
}

TEST(DatasetTest, Labels) {
  EXPECT_EQ(MakeToyDataset().Labels(), (std::vector<int>{0, 1, 0, 2}));
}

TEST(ExtractSubsequenceTest, ValuesAndProvenance) {
  const TimeSeries t({10.0, 11.0, 12.0, 13.0, 14.0}, 3);
  const Subsequence s = ExtractSubsequence(t, 1, 3, 42);
  EXPECT_EQ(s.values, (std::vector<double>{11.0, 12.0, 13.0}));
  EXPECT_EQ(s.label, 3);
  EXPECT_EQ(s.series_index, 42);
  EXPECT_EQ(s.start, 1u);
  EXPECT_EQ(s.length(), 3u);
}

TEST(ExtractSubsequenceTest, FullSeries) {
  const TimeSeries t({1.0, 2.0}, 0);
  const Subsequence s = ExtractSubsequence(t, 0, 2);
  EXPECT_EQ(s.values, t.values);
}

}  // namespace
}  // namespace ips
