#include "classify/svm.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

LabeledMatrix LinearlySeparable2D(size_t per_class, Rng& rng) {
  LabeledMatrix data;
  for (size_t i = 0; i < per_class; ++i) {
    data.x.push_back({rng.Gaussian(2.0, 0.5), rng.Gaussian(2.0, 0.5)});
    data.y.push_back(0);
    data.x.push_back({rng.Gaussian(-2.0, 0.5), rng.Gaussian(-2.0, 0.5)});
    data.y.push_back(1);
  }
  return data;
}

TEST(LinearSvmTest, SeparatesLinearlySeparableData) {
  Rng rng(1);
  const LabeledMatrix data = LinearlySeparable2D(50, rng);
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_GE(svm.Accuracy(data), 0.98);
}

TEST(LinearSvmTest, GeneralizesToFreshDraws) {
  Rng rng(2);
  const LabeledMatrix train = LinearlySeparable2D(40, rng);
  const LabeledMatrix test = LinearlySeparable2D(40, rng);
  LinearSvm svm;
  svm.Fit(train);
  EXPECT_GE(svm.Accuracy(test), 0.95);
}

TEST(LinearSvmTest, MulticlassOneVsRest) {
  Rng rng(3);
  LabeledMatrix data;
  const std::vector<std::pair<double, double>> centers = {
      {3.0, 0.0}, {-3.0, 0.0}, {0.0, 3.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      data.x.push_back({rng.Gaussian(centers[c].first, 0.4),
                        rng.Gaussian(centers[c].second, 0.4)});
      data.y.push_back(c);
    }
  }
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_EQ(svm.num_classes(), 3);
  EXPECT_GE(svm.Accuracy(data), 0.95);
}

TEST(LinearSvmTest, BiasTermLearned) {
  // Classes separated by a hyperplane far from the origin -- fails without
  // a bias term.
  Rng rng(4);
  LabeledMatrix data;
  for (int i = 0; i < 60; ++i) {
    data.x.push_back({rng.Gaussian(10.0, 0.3)});
    data.y.push_back(0);
    data.x.push_back({rng.Gaussian(12.0, 0.3)});
    data.y.push_back(1);
  }
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_GE(svm.Accuracy(data), 0.95);
}

TEST(LinearSvmTest, StandardizationHandlesScaleMismatch) {
  // One informative low-scale feature + one noisy high-scale feature.
  Rng rng(5);
  LabeledMatrix data;
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2;
    const double informative = label == 0 ? 0.01 : -0.01;
    data.x.push_back({informative + rng.Gaussian(0.0, 0.002),
                      rng.Gaussian(0.0, 1000.0)});
    data.y.push_back(label);
  }
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_GE(svm.Accuracy(data), 0.9);
}

TEST(LinearSvmTest, ConstantFeatureDoesNotCrash) {
  LabeledMatrix data;
  data.x = {{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}, {4.0, 5.0}};
  data.y = {0, 0, 1, 1};
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_GE(svm.Accuracy(data), 0.75);
}

TEST(LinearSvmTest, SingleClassAlwaysPredictsIt) {
  LabeledMatrix data;
  data.x = {{1.0}, {2.0}, {3.0}};
  data.y = {0, 0, 0};
  LinearSvm svm;
  svm.Fit(data);
  EXPECT_EQ(svm.Predict(std::vector<double>{9.0}), 0);
}

TEST(LinearSvmTest, DecisionValueSignMatchesPrediction) {
  Rng rng(6);
  const LabeledMatrix data = LinearlySeparable2D(30, rng);
  LinearSvm svm;
  svm.Fit(data);
  for (size_t i = 0; i < data.size(); ++i) {
    const int predicted = svm.Predict(data.x[i]);
    const double own = svm.DecisionValue(data.x[i], predicted);
    const double other = svm.DecisionValue(data.x[i], 1 - predicted);
    EXPECT_GE(own, other);
  }
}

TEST(LabeledMatrixTest, NumClasses) {
  LabeledMatrix data;
  data.x = {{0.0}, {0.0}};
  data.y = {0, 4};
  EXPECT_EQ(data.NumClasses(), 5);
}

class SvmCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCostSweep, ConvergesAcrossCostValues) {
  Rng rng(7);
  const LabeledMatrix data = LinearlySeparable2D(40, rng);
  SvmOptions o;
  o.c = GetParam();
  LinearSvm svm(o);
  svm.Fit(data);
  EXPECT_GE(svm.Accuracy(data), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Costs, SvmCostSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

}  // namespace
}  // namespace ips
