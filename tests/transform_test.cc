#include "transform/shapelet_transform.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "data/generator.h"

namespace ips {
namespace {

Subsequence MakeShapelet(std::vector<double> values, int label = 0) {
  Subsequence s;
  s.values = std::move(values);
  s.label = label;
  return s;
}

TEST(TransformSeriesTest, RawDistancesMatchDef4) {
  const TimeSeries t({0.0, 1.0, 2.0, 3.0, 4.0}, 0);
  const std::vector<Subsequence> shapelets = {
      MakeShapelet({1.0, 2.0}), MakeShapelet({9.0, 9.0, 9.0})};
  const auto row = TransformSeries(t, shapelets, MetricId::kRawSquaredEuclidean);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_NEAR(row[0], 0.0, 1e-12);  // contained exactly
  EXPECT_DOUBLE_EQ(row[1],
                   SubsequenceDistance(t.view(), shapelets[1].view()));
}

TEST(TransformSeriesTest, ZNormDistanceIsScaleInvariant) {
  const TimeSeries t({0.0, 1.0, 2.0, 1.0, 0.0, 3.0}, 0);
  const std::vector<Subsequence> small = {MakeShapelet({0.0, 1.0, 2.0})};
  const std::vector<Subsequence> scaled = {MakeShapelet({10.0, 30.0, 50.0})};
  const auto a = TransformSeries(t, small, MetricId::kZNormEuclidean);
  const auto b = TransformSeries(t, scaled, MetricId::kZNormEuclidean);
  EXPECT_NEAR(a[0], b[0], 1e-6);
  EXPECT_NEAR(a[0], 0.0, 1e-6);  // z-normalised shape is contained
}

TEST(ShapeletTransformTest, ShapeAndLabels) {
  GeneratorSpec spec;
  spec.name = "transform";
  spec.num_classes = 2;
  spec.train_size = 8;
  spec.test_size = 2;
  spec.length = 48;
  const Dataset data = GenerateDataset(spec).train;
  const std::vector<Subsequence> shapelets = {
      MakeShapelet(std::vector<double>(10, 0.5)),
      MakeShapelet(std::vector<double>(8, -0.5)),
      MakeShapelet(std::vector<double>(12, 1.0))};

  const TransformedData out = ShapeletTransform(data, shapelets);
  EXPECT_EQ(out.size(), data.size());
  EXPECT_EQ(out.dim(), 3u);
  EXPECT_EQ(out.labels, data.Labels());
  for (const auto& row : out.features) {
    for (double v : row) EXPECT_GE(v, 0.0);
  }
}

TEST(ShapeletTransformTest, ShapeletLongerThanSeriesIsHandled) {
  Dataset data;
  data.Add(TimeSeries({1.0, 2.0, 3.0}, 0));
  const std::vector<Subsequence> shapelets = {
      MakeShapelet({1.0, 2.0, 3.0, 4.0, 5.0})};
  // Def. 4 is symmetric: the shorter input slides along the longer one.
  const TransformedData out = ShapeletTransform(data, shapelets);
  EXPECT_NEAR(out.features[0][0], 0.0, 1e-12);
}

TEST(ShapeletTransformTest, DiscriminativeShapeletSeparatesClasses) {
  // Class 1 contains a strong spike pattern that class 0 lacks; the
  // transform distance to that pattern must separate the classes.
  Dataset data;
  for (int i = 0; i < 6; ++i) {
    std::vector<double> flat(40, 0.0);
    data.Add(TimeSeries(flat, 0));
    std::vector<double> spiky(40, 0.0);
    for (size_t j = 0; j < 8; ++j) {
      spiky[10 + j] = 5.0 * std::sin(0.8 * static_cast<double>(j));
    }
    data.Add(TimeSeries(spiky, 1));
  }
  std::vector<double> pattern(8);
  for (size_t j = 0; j < 8; ++j) {
    pattern[j] = 5.0 * std::sin(0.8 * static_cast<double>(j));
  }
  const std::vector<Subsequence> shapelets = {MakeShapelet(pattern, 1)};
  const TransformedData out = ShapeletTransform(data, shapelets);
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.labels[i] == 1) {
      EXPECT_LT(out.features[i][0], 0.5);
    } else {
      EXPECT_GT(out.features[i][0], 1.0);
    }
  }
}

}  // namespace
}  // namespace ips
