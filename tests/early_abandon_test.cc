// Early-abandon cascade parity suite (docs/pruning.md): the cascade is a
// pure performance knob, so EVERYTHING observable must be bitwise
// identical with it on and off -- transform features, batch minima,
// pairwise matrices, 1NN predictions and discovery fingerprints, for every
// registered metric, at 1, 2 and 8 threads, in both the SIMD and the
// -DIPS_DISABLE_SIMD builds (CI runs this binary in both). The adversarial
// cases aim at the lower bounds themselves: constant (flat) windows and
// queries, exact embedded matches (best hits the kernels' zero
// short-circuit), single-alignment and single-element queries, and
// out-of-range seed hints.

#include <cmath>
#include <cstdint>

#include <algorithm>

#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_engine.h"
#include "core/metric.h"
#include "core/simd.h"
#include "core/time_series.h"
#include "core/znorm.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

// Deterministic value noise so every platform builds the same fixture.
double Noise(uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
}

// A fixture series: sine carrier + amplitude ramp + noise, with a flat
// plateau (windows of zero variance) and, for odd indices, an exact copy
// of the values 40..60 of series idx-1 (embedded exact matches across
// series).
std::vector<double> FixtureSeries(size_t idx, size_t length) {
  std::vector<double> v(length);
  uint64_t rng = 0x9E3779B97F4A7C15ull ^ (idx + 1);
  for (size_t t = 0; t < length; ++t) {
    const double ramp =
        0.5 + 1.5 * static_cast<double>(t) / static_cast<double>(length);
    v[t] = ramp * std::sin(0.37 * static_cast<double>(t) +
                           static_cast<double>(idx)) +
           0.1 * Noise(rng);
  }
  for (size_t t = 100; t < 120 && t < length; ++t) v[t] = 2.5;  // plateau
  if (idx % 2 == 1) {
    const std::vector<double> prev = FixtureSeries(idx - 1, length);
    for (size_t t = 40; t < 60 && t < length; ++t) v[t] = prev[t];
  }
  return v;
}

Dataset FixtureDataset(size_t count, size_t length) {
  Dataset d;
  for (size_t i = 0; i < count; ++i) {
    d.Add(TimeSeries(FixtureSeries(i, length), static_cast<int>(i % 2)));
  }
  return d;
}

// Shapelets that poke every corner: a flat (constant) query, an extract
// whose exact copy is embedded in other series, a length-1 query, and a
// near-series-length query (few alignments).
std::vector<Subsequence> FixtureShapelets(const Dataset& data) {
  std::vector<Subsequence> out;
  out.push_back(ExtractSubsequence(data[0], 10, 31));
  out.push_back(ExtractSubsequence(data[0], 102, 16));  // flat plateau
  out.push_back(ExtractSubsequence(data[0], 40, 20));   // embedded copy
  out.push_back(ExtractSubsequence(data[1], 70, 1));    // m == 1
  out.push_back(ExtractSubsequence(data[2], 0, data[2].length() - 1));
  return out;
}

std::vector<std::span<const double>> Views(const Dataset& data) {
  std::vector<std::span<const double>> views;
  for (const TimeSeries& t : data.series()) views.push_back(t.view());
  return views;
}

class EarlyAbandonParityTest
    : public ::testing::TestWithParam<std::tuple<MetricId, size_t>> {};

TEST_P(EarlyAbandonParityTest, BatchApisBitwiseIdentical) {
  const MetricId metric = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  const Dataset data = FixtureDataset(6, 160);
  const std::vector<Subsequence> shapelets = FixtureShapelets(data);
  const std::vector<std::span<const double>> views = Views(data);

  std::vector<IndexPair> pairs;
  for (uint32_t i = 0; i < views.size(); ++i) {
    for (uint32_t j = 0; j < views.size(); ++j) pairs.emplace_back(i, j);
  }

  DistanceEngine pruned(threads);
  pruned.set_early_abandon(true);
  DistanceEngine dense(threads);
  dense.set_early_abandon(false);

  const auto rows_p = pruned.TransformBatch(data, shapelets, metric);
  const auto rows_d = dense.TransformBatch(data, shapelets, metric);
  ASSERT_EQ(rows_p.size(), rows_d.size());
  for (size_t i = 0; i < rows_p.size(); ++i) {
    EXPECT_EQ(rows_p[i], rows_d[i]) << "transform row " << i;
  }

  EXPECT_EQ(pruned.MinAgainstDataset(shapelets[0].view(), data, metric),
            dense.MinAgainstDataset(shapelets[0].view(), data, metric));

  EXPECT_EQ(pruned.MinForPairs(views, pairs, metric),
            dense.MinForPairs(views, pairs, metric));

  EXPECT_EQ(pruned.PairwiseSubsequenceMin(shapelets),
            dense.PairwiseSubsequenceMin(shapelets));

  // The cascade's work accounting must balance, and the fingerprint
  // counter (profiles_computed) must not see the cascade at all.
  const EngineCounters cp = pruned.counters();
  const EngineCounters cd = dense.counters();
  EXPECT_EQ(cp.eab_candidates,
            cp.eab_lb_pruned + cp.eab_abandoned + cp.eab_full);
  EXPECT_EQ(cd.eab_candidates, 0u);
  EXPECT_EQ(cp.profiles_computed, cd.profiles_computed);
}

TEST_P(EarlyAbandonParityTest, SingleAlignmentAndFlatInputs) {
  const MetricId metric = std::get<0>(GetParam());
  const size_t threads = std::get<1>(GetParam());
  DistanceEngine pruned(threads);
  pruned.set_early_abandon(true);
  DistanceEngine dense(threads);
  dense.set_early_abandon(false);

  const std::vector<double> flat(48, 3.25);
  const std::vector<double> wave = FixtureSeries(4, 96);
  std::vector<double> embedded = FixtureSeries(5, 96);
  const std::vector<double> query(wave.begin() + 20, wave.begin() + 52);
  std::copy(query.begin(), query.end(), embedded.begin() + 37);

  const std::vector<std::vector<double>> lhs = {flat, query,
                                                {wave.begin(), wave.end()}};
  const std::vector<std::vector<double>> rhs = {
      wave, flat, embedded, {flat.begin(), flat.begin() + 48}};
  for (const auto& a : lhs) {
    for (const auto& b : rhs) {
      EXPECT_EQ(pruned.SubsequenceMinMetric(a, b, metric),
                dense.SubsequenceMinMetric(a, b, metric))
          << MetricName(metric);
    }
  }
  // count == 1 (same length) and a query longer than the series (the
  // engine swaps so the shorter side is the query).
  EXPECT_EQ(pruned.SubsequenceMinMetric(wave, wave, metric),
            dense.SubsequenceMinMetric(wave, wave, metric));
  EXPECT_EQ(pruned.SubsequenceMinMetric(wave, query, metric),
            dense.SubsequenceMinMetric(wave, query, metric));
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsAllThreads, EarlyAbandonParityTest,
    ::testing::Combine(::testing::Values(MetricId::kZNormEuclidean,
                                         MetricId::kRawSquaredEuclidean,
                                         MetricId::kEuclidean,
                                         MetricId::kCosine),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<MetricId, size_t>>& info) {
      return std::string(MetricName(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// Discovery + classification fingerprints: shapelet values, transform
// features and predictions from the full pipeline must not change when the
// cascade is disabled.
TEST(EarlyAbandonPipelineTest, DiscoveryAndPredictionsIdentical) {
  Dataset train = FixtureDataset(8, 160);
  Dataset test = FixtureDataset(10, 160);

  for (size_t m = 0; m < kMetricCount; ++m) {
    IpsOptions o;
    o.sample_count = 3;
    o.sample_size = 2;
    o.length_ratios = {0.15, 0.3};
    o.shapelets_per_class = 3;
    o.metric = static_cast<MetricId>(m);
    o.num_threads = 2;

    o.enable_early_abandon = true;
    const RunResult run_p = DiscoverShapelets(train, o);
    IpsClassifier clf_p(o);
    clf_p.Fit(train);

    o.enable_early_abandon = false;
    const RunResult run_d = DiscoverShapelets(train, o);
    IpsClassifier clf_d(o);
    clf_d.Fit(train);

    ASSERT_EQ(run_p.shapelets.size(), run_d.shapelets.size());
    for (size_t s = 0; s < run_p.shapelets.size(); ++s) {
      EXPECT_EQ(run_p.shapelets[s].values, run_d.shapelets[s].values)
          << MetricName(o.metric) << " shapelet " << s;
    }
    EXPECT_EQ(clf_p.PredictBatch(test), clf_d.PredictBatch(test))
        << MetricName(o.metric);
  }
}

// ------------------------------------------------------- kernel-level cases
//
// Direct kernel calls against the dense reference (dispatched SlidingDots
// + the metric's min_from_dots), aimed at the bounds' blind spots. The
// identity contract says: any inputs, any seed, bitwise-equal minimum
// unless the kernel bails out.

struct DenseRef {
  double min = 0.0;
  std::vector<double> sqp;
  std::vector<double> dots;
};

DenseRef DenseMin(const MetricPolicy& policy, const std::vector<double>& q,
                  const std::vector<double>& s,
                  const std::vector<double>& zq, const RollingStats* stats) {
  DenseRef ref;
  const size_t m = q.size();
  const size_t count = s.size() - m + 1;
  ref.sqp.resize(s.size() + 1);
  ref.sqp[0] = 0.0;
  for (size_t i = 0; i < s.size(); ++i) {
    ref.sqp[i + 1] = ref.sqp[i] + s[i] * s[i];
  }
  ref.dots.resize(count);
  const std::vector<double>& query =
      policy.id == MetricId::kZNormEuclidean ? zq : q;
  simd::SlidingDots(query.data(), m, s.data(), s.size(), ref.dots.data());
  double qq = 0.0;
  for (double v : query) qq += v * v;

  if (policy.id == MetricId::kZNormEuclidean) {
    const bool query_flat =
        std::all_of(zq.begin(), zq.end(), [](double v) { return v == 0.0; });
    ref.min = simd::ZNormMinFromDots(ref.dots.data(), stats->stds.data(),
                                     count, m, query_flat);
  } else {
    MetricProfileArgs args;
    args.dots = ref.dots.data();
    args.count = count;
    args.window = m;
    args.qq = qq;
    args.sqp = ref.sqp.data();
    ref.min = policy.kernels.min_from_dots(args);
  }
  return ref;
}

// Runs the metric's early-abandon kernel with the given seed and, unless
// it bailed, checks the bitwise identity and the counter invariant.
void CheckKernel(MetricId id, const std::vector<double>& q,
                 const std::vector<double>& s, size_t seed) {
  SCOPED_TRACE(std::string(MetricName(id)) + " seed=" + std::to_string(seed));
  const MetricPolicy& policy = GetMetric(id);
  ASSERT_NE(policy.min_early_abandon, nullptr);
  const size_t m = q.size();
  const size_t count = s.size() - m + 1;

  const std::vector<double> zq = ZNormalize(q);
  RollingStats stats;
  if (id == MetricId::kZNormEuclidean) stats = ComputeRollingStats(s, m);
  const DenseRef ref = DenseMin(policy, q, s, zq, &stats);

  std::vector<double> qpre(m + 1, 0.0);
  for (size_t i = 0; i < m; ++i) qpre[i + 1] = qpre[i] + q[i] * q[i];

  simd::EabArgs a;
  a.query = id == MetricId::kZNormEuclidean ? zq.data() : q.data();
  a.window = m;
  a.series = s.data();
  a.count = count;
  a.qq = qpre.back();
  a.sqp = ref.sqp.data();
  a.qpre = qpre.data();
  if (id == MetricId::kZNormEuclidean) {
    a.means = stats.means.data();
    a.stds = stats.stds.data();
    a.query_flat =
        std::all_of(zq.begin(), zq.end(), [](double v) { return v == 0.0; });
    for (double v : zq) {
      a.zq_sum += v;
      a.zq_sumsq += v * v;
    }
  }
  a.seed = seed;

  simd::EabCounters c;
  const simd::EabResult res = policy.min_early_abandon(a, c);
  EXPECT_EQ(c.candidates, c.lb_pruned + c.abandoned + c.full);
  if (res.bailed_out) return;  // dense fallback territory; nothing to check
  EXPECT_EQ(res.min, ref.min);
  if (res.argmin != simd::kEabNoSeed) {
    EXPECT_LT(res.argmin, count);
  }
}

TEST(EarlyAbandonKernelTest, AdversarialInputsAndSeeds) {
  const std::vector<double> wave = FixtureSeries(2, 128);
  const std::vector<double> flat_series(128, -1.5);
  std::vector<double> plateau = wave;
  for (size_t t = 30; t < 80; ++t) plateau[t] = 0.75;

  const std::vector<double> q_wave(wave.begin() + 64, wave.begin() + 96);
  const std::vector<double> q_flat(32, 0.75);
  const std::vector<double> q_one = {wave[5]};
  const std::vector<double> q_full(wave.begin(), wave.end());  // count == 1

  const std::vector<const std::vector<double>*> queries = {&q_wave, &q_flat,
                                                           &q_one};
  const std::vector<const std::vector<double>*> series = {&wave, &flat_series,
                                                          &plateau};
  const size_t oob = static_cast<size_t>(-2);  // out of range, not the
                                               // kEabNoSeed sentinel
  for (size_t mi = 0; mi < kMetricCount; ++mi) {
    const MetricId id = static_cast<MetricId>(mi);
    for (const auto* q : queries) {
      for (const auto* s : series) {
        for (size_t seed : {simd::kEabNoSeed, size_t{0}, size_t{17}, oob}) {
          CheckKernel(id, *q, *s, seed);
        }
      }
    }
    CheckKernel(id, q_full, wave, simd::kEabNoSeed);  // single alignment
    CheckKernel(id, q_full, wave, size_t{0});
    CheckKernel(id, q_wave, wave, size_t{64});  // seed IS the exact match
  }
}

}  // namespace
}  // namespace ips
