// Wire-protocol tests (serve/protocol.h): golden byte fixtures pin the
// on-wire layout of every frame type (so a foreign-language client written
// against docs/serving.md interoperates), encode/decode round-trips,
// hostile-payload rejection, and a loopback smoke test against a real
// server: classify / reload / stats / health plus the unknown-op contract
// (error frame, connection stays usable).

#include "serve/protocol.h"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/ucr_loader.h"
#include "ips/pipeline.h"
#include "ips/serialization.h"
#include "serve/client.h"
#include "serve/log_rotate.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace ips::serve {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) out.push_back(static_cast<uint8_t>(v));
  return out;
}

// ------------------------------------------------------------- goldens
// Layout spelled out in serve/protocol.h: 12-byte header ("IPSF", u16
// version, u16 op, u32 payload length), then the op-specific payload, all
// little-endian, doubles as IEEE-754 bit patterns.

TEST(ServeProtocolTest, GoldenClassifyRequestFrame) {
  ClassifyRequest req;
  req.model = "m";
  req.series = {{1.0}, {-2.5, 0.0}};
  Frame frame;
  frame.op = FrameOp::kClassifyRequest;
  frame.payload = EncodeClassifyRequest(req);

  const std::vector<uint8_t> expected = Bytes({
      'I', 'P', 'S', 'F',       // magic
      0x01, 0x00,               // protocol version 1
      0x01, 0x00,               // op 1 = kClassifyRequest
      0x29, 0x00, 0x00, 0x00,   // payload: 41 bytes
      0x01, 0x00, 0x00, 0x00, 'm',  // model "m"
      0x02, 0x00, 0x00, 0x00,   // 2 series
      0x01, 0x00, 0x00, 0x00,   // series 0: 1 value
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,  // 1.0
      0x02, 0x00, 0x00, 0x00,   // series 1: 2 values
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0xC0,  // -2.5
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // 0.0
  });
  EXPECT_EQ(EncodeFrame(frame), expected);

  Frame decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(expected, &decoded, &consumed), DecodeStatus::kOk);
  EXPECT_EQ(consumed, expected.size());
  ClassifyRequest restored;
  ASSERT_TRUE(DecodeClassifyRequest(decoded.payload, &restored));
  EXPECT_EQ(restored.model, "m");
  EXPECT_EQ(restored.series, req.series);  // bit-exact doubles
}

TEST(ServeProtocolTest, GoldenClassifyResponseFrame) {
  ClassifyResponse resp;
  resp.model_version = 3;
  resp.labels = {0, -1};
  Frame frame;
  frame.op = FrameOp::kClassifyResponse;
  frame.payload = EncodeClassifyResponse(resp);

  const std::vector<uint8_t> expected = Bytes({
      'I', 'P', 'S', 'F', 0x01, 0x00,
      0x02, 0x00,              // op 2 = kClassifyResponse
      0x10, 0x00, 0x00, 0x00,  // 16-byte payload
      0x03, 0x00, 0x00, 0x00,  // model_version 3
      0x02, 0x00, 0x00, 0x00,  // 2 labels
      0x00, 0x00, 0x00, 0x00,  // label 0
      0xFF, 0xFF, 0xFF, 0xFF,  // label -1 (two's complement)
  });
  EXPECT_EQ(EncodeFrame(frame), expected);
}

TEST(ServeProtocolTest, GoldenReloadAndHealthAndErrorFrames) {
  Frame reload_req;
  reload_req.op = FrameOp::kReloadRequest;
  reload_req.payload = EncodeReloadRequest(ReloadRequest{"demo"});
  EXPECT_EQ(EncodeFrame(reload_req),
            Bytes({'I', 'P', 'S', 'F', 0x01, 0x00, 0x03, 0x00,
                   0x08, 0x00, 0x00, 0x00,
                   0x04, 0x00, 0x00, 0x00, 'd', 'e', 'm', 'o'}));

  Frame reload_resp;
  reload_resp.op = FrameOp::kReloadResponse;
  reload_resp.payload = EncodeReloadResponse(ReloadResponse{7});
  EXPECT_EQ(EncodeFrame(reload_resp),
            Bytes({'I', 'P', 'S', 'F', 0x01, 0x00, 0x04, 0x00,
                   0x04, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00}));

  Frame health;
  health.op = FrameOp::kHealthResponse;
  health.payload = EncodeHealthResponse(HealthResponse{2});
  EXPECT_EQ(EncodeFrame(health),
            Bytes({'I', 'P', 'S', 'F', 0x01, 0x00, 0x08, 0x00,
                   0x04, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00}));

  Frame error;
  error.op = FrameOp::kError;
  error.payload =
      EncodeErrorFrame(ErrorFrame{ErrorCode::kUnknownOp, "nope"});
  EXPECT_EQ(EncodeFrame(error),
            Bytes({'I', 'P', 'S', 'F', 0x01, 0x00, 0x09, 0x00,
                   0x0C, 0x00, 0x00, 0x00,
                   0x02, 0x00, 0x00, 0x00,  // code 2 = kUnknownOp
                   0x04, 0x00, 0x00, 0x00, 'n', 'o', 'p', 'e'}));
}

// ---------------------------------------------------------- round trips

TEST(ServeProtocolTest, EveryPayloadTypeRoundTrips) {
  ClassifyRequest creq;
  creq.model = "a model with spaces";
  creq.series = {{1e-300, -0.0, 3.141592653589793}, {}, {42.0}};
  ClassifyRequest creq2;
  ASSERT_TRUE(DecodeClassifyRequest(EncodeClassifyRequest(creq), &creq2));
  EXPECT_EQ(creq2.model, creq.model);
  EXPECT_EQ(creq2.series, creq.series);

  ClassifyResponse cresp;
  cresp.model_version = 0xDEADBEEF;
  cresp.labels = {-2, -1, 0, 1, 2};
  ClassifyResponse cresp2;
  ASSERT_TRUE(DecodeClassifyResponse(EncodeClassifyResponse(cresp), &cresp2));
  EXPECT_EQ(cresp2.model_version, cresp.model_version);
  EXPECT_EQ(cresp2.labels, cresp.labels);

  ReloadRequest rreq{"x"};
  ReloadRequest rreq2;
  ASSERT_TRUE(DecodeReloadRequest(EncodeReloadRequest(rreq), &rreq2));
  EXPECT_EQ(rreq2.model, "x");

  StatsResponse stats{R"({"uptime_seconds": 1.5})"};
  StatsResponse stats2;
  ASSERT_TRUE(DecodeStatsResponse(EncodeStatsResponse(stats), &stats2));
  EXPECT_EQ(stats2.json, stats.json);

  ErrorFrame err{ErrorCode::kReloadFailed, "disk on fire"};
  ErrorFrame err2;
  ASSERT_TRUE(DecodeErrorFrame(EncodeErrorFrame(err), &err2));
  EXPECT_EQ(err2.code, ErrorCode::kReloadFailed);
  EXPECT_EQ(err2.message, err.message);
}

// ------------------------------------------------------- hostile input

TEST(ServeProtocolTest, StreamingDecodeStates) {
  Frame frame;
  frame.op = FrameOp::kHealthRequest;
  const std::vector<uint8_t> wire = EncodeFrame(frame);

  Frame out;
  size_t consumed = 0;
  // Every strict prefix that matches the magic so far: kNeedMore.
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(DecodeFrame(std::span(wire.data(), n), &out, &consumed),
              DecodeStatus::kNeedMore)
        << n;
  }
  // A first byte contradicting the magic is malformed immediately, even
  // with just one byte of data -- no amount of further input repairs it.
  EXPECT_EQ(DecodeFrame(Bytes({'X'}), &out, &consumed),
            DecodeStatus::kMalformed);
  std::vector<uint8_t> bad_magic = wire;
  bad_magic[3] = 'x';
  EXPECT_EQ(DecodeFrame(bad_magic, &out, &consumed), DecodeStatus::kMalformed);
  std::vector<uint8_t> bad_version = wire;
  bad_version[4] = 0x77;
  EXPECT_EQ(DecodeFrame(bad_version, &out, &consumed),
            DecodeStatus::kMalformed);
  // A header declaring more than kMaxPayloadBytes is corruption, not an
  // allocation request.
  std::vector<uint8_t> oversized = wire;
  oversized[8] = 0xFF;
  oversized[9] = 0xFF;
  oversized[10] = 0xFF;
  oversized[11] = 0x7F;
  EXPECT_EQ(DecodeFrame(oversized, &out, &consumed), DecodeStatus::kMalformed);
}

TEST(ServeProtocolTest, HostilePayloadsRejected) {
  ClassifyRequest out;
  // Declared series count far exceeding the bytes present.
  std::vector<uint8_t> hostile = Bytes({
      0x01, 0x00, 0x00, 0x00, 'm',
      0xFF, 0xFF, 0xFF, 0xFF,  // 4 billion series
  });
  EXPECT_FALSE(DecodeClassifyRequest(hostile, &out));

  // Declared series length exceeding the bytes present.
  hostile = Bytes({
      0x01, 0x00, 0x00, 0x00, 'm',
      0x01, 0x00, 0x00, 0x00,
      0xFF, 0xFF, 0xFF, 0x0F,  // 268M doubles in an 8-byte payload
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
  });
  EXPECT_FALSE(DecodeClassifyRequest(hostile, &out));

  // Trailing garbage after a well-formed payload.
  std::vector<uint8_t> trailing =
      EncodeClassifyRequest(ClassifyRequest{"m", {{1.0}}});
  trailing.push_back(0x00);
  EXPECT_FALSE(DecodeClassifyRequest(trailing, &out));

  // Truncations of a well-formed payload.
  const std::vector<uint8_t> good =
      EncodeClassifyRequest(ClassifyRequest{"m", {{1.0, 2.0}}});
  for (size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(
        DecodeClassifyRequest(std::span(good.data(), n), &out))
        << "decoded at truncation " << n;
  }
}

// ------------------------------------------------------ loopback smoke

class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    namespace fs = std::filesystem;
    dir_ = fs::temp_directory_path() /
           ("ips_proto_" + std::to_string(::getpid()));
    fs::create_directories(dir_);

    GeneratorSpec spec;
    spec.name = "proto";
    spec.train_size = 12;
    spec.test_size = 8;
    spec.length = 64;
    data_ = GenerateDataset(spec);

    IpsOptions options;
    options.sample_count = 4;
    options.sample_size = 3;
    options.length_ratios = {0.2};
    options.shapelets_per_class = 3;
    IpsClassifier clf(options);
    clf.Fit(data_.train);
    ASSERT_TRUE(SaveRunResult(clf.result(), (dir_ / "model.ipsrun").string()));
    ASSERT_TRUE(SaveUcrFile(data_.train, (dir_ / "train.tsv").string()));

    std::string error;
    ASSERT_EQ(registry_.Load("demo",
                             ModelSource{(dir_ / "model.ipsrun").string(),
                                         (dir_ / "train.tsv").string(),
                                         options},
                             &error),
              1u)
        << error;

    ServerOptions server_options;
    server_options.queue.batch_window_us = 200;
    server_ = std::make_unique<Server>(&registry_, server_options);
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port(), &error))
        << error;
  }

  void TearDown() override {
    client_.Close();
    if (server_ != nullptr) server_->Stop();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  TrainTestSplit data_;
  ModelRegistry registry_;
  std::unique_ptr<Server> server_;
  Client client_;
};

TEST_F(LoopbackTest, ClassifyMatchesOfflinePredictBatch) {
  std::vector<std::vector<double>> batch;
  for (const TimeSeries& s : data_.test.series()) batch.push_back(s.values);

  std::string error;
  const auto response = client_.Classify("demo", batch, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->model_version, 1u);

  const std::vector<int> offline =
      registry_.Get("demo")->Classify(data_.test);
  ASSERT_EQ(response->labels.size(), offline.size());
  for (size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(response->labels[i], offline[i]) << "series " << i;
  }
}

TEST_F(LoopbackTest, ReloadStatsAndHealth) {
  std::string error;
  const auto health = client_.Health(&error);
  ASSERT_TRUE(health.has_value()) << error;
  EXPECT_EQ(*health, 1u);

  const auto version = client_.Reload("demo", &error);
  ASSERT_TRUE(version.has_value()) << error;
  EXPECT_EQ(*version, 2u);

  const auto stats = client_.Stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_NE(stats->find("\"models\""), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"demo\""), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"uptime_seconds\""), std::string::npos) << *stats;
}

TEST_F(LoopbackTest, ErrorFramesNotDroppedConnections) {
  // Unknown op: the server answers kUnknownOp and keeps the connection.
  Frame unknown;
  unknown.op = static_cast<FrameOp>(77);
  std::string error;
  auto reply = client_.RoundTrip(unknown, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  ASSERT_EQ(reply->op, FrameOp::kError);
  ErrorFrame err;
  ASSERT_TRUE(DecodeErrorFrame(reply->payload, &err));
  EXPECT_EQ(err.code, ErrorCode::kUnknownOp);

  // Unknown model and empty batch: explicit errors, same connection.
  EXPECT_FALSE(client_.Classify("no_such_model", {{1.0}}, &error).has_value());
  EXPECT_NE(error.find("unknown model"), std::string::npos) << error;
  EXPECT_FALSE(client_.Classify("demo", {}, &error).has_value());
  EXPECT_NE(error.find("empty"), std::string::npos) << error;

  // Malformed payload under a sound header: error frame, not a drop.
  Frame malformed;
  malformed.op = FrameOp::kClassifyRequest;
  malformed.payload = Bytes({0xFF, 0xFF, 0xFF, 0xFF});
  reply = client_.RoundTrip(malformed, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->op, FrameOp::kError);

  // After all of that, the connection still serves real traffic.
  const auto health = client_.Health(&error);
  ASSERT_TRUE(health.has_value()) << error;
  EXPECT_EQ(*health, 1u);
}

TEST_F(LoopbackTest, ReloadOfUnknownModelFails) {
  std::string error;
  EXPECT_FALSE(client_.Reload("ghost", &error).has_value());
  EXPECT_NE(error.find("unknown model"), std::string::npos) << error;
}

// ------------------------------------------------- access-log rotation

TEST(RotatingLogTest, RotatesAtSizeAndKeepsGenerations) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("ips_log_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "access.log").string();

  {
    RotatingLog log(path, /*max_bytes=*/64, /*keep=*/2);
    ASSERT_TRUE(log.enabled());
    // 10 lines of 30+1 bytes: rotations at every other line.
    for (int i = 0; i < 10; ++i) {
      log.Append("line " + std::to_string(i) + std::string(24, 'x'));
    }
    EXPECT_LE(log.current_size(), 64u);
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".1"));
  EXPECT_TRUE(fs::exists(path + ".2"));
  EXPECT_FALSE(fs::exists(path + ".3")) << "kept more than `keep`";

  // Reopening picks the existing size back up (restart-safe threshold):
  // one more line on a near-full file must rotate, not exceed max_bytes.
  {
    RotatingLog log(path, /*max_bytes=*/64, /*keep=*/2);
    while (log.current_size() + 31 <= 64) {
      log.Append("fill " + std::string(25, 'y'));
    }
    const size_t before = log.current_size();
    log.Append("overflow " + std::string(21, 'z'));
    EXPECT_LT(log.current_size(), before + 31) << "did not rotate";
  }
  fs::remove_all(dir);
}

TEST(RotatingLogTest, DisabledLogIsANoOp) {
  RotatingLog log;
  EXPECT_FALSE(log.enabled());
  log.Append("goes nowhere");  // must not crash
  EXPECT_EQ(log.current_size(), 0u);
}

}  // namespace
}  // namespace ips::serve
