// Concurrency battery for the persistent work-stealing pool
// (util/thread_pool.h) and the ParallelFor/ParallelForWorkers contracts
// rerouted through it: thousands of short regions, regions submitted
// concurrently from multiple caller threads, nested ParallelFor inside a
// pool task, worker-slot bounds and exclusivity, and shutdown fallback.
// Runs under TSan in CI (ctest -L concurrency).

#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>

#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace ips {
namespace {

// Force a multi-worker pool before the lazily-started singleton exists, so
// the battery exercises real cross-thread scheduling (claiming, stealing,
// slot handout) even on single-core CI runners. overwrite=0 keeps an
// explicit caller-provided override.
const bool kForcePoolWorkers = [] {
  setenv("IPS_THREAD_POOL_WORKERS", "7", /*overwrite=*/0);
  return true;
}();

TEST(ThreadPoolTest, WorkerCountMatchesEnvOverride) {
  ASSERT_TRUE(kForcePoolWorkers);
  EXPECT_EQ(ThreadPool::Instance().worker_count(), 7u);
}

TEST(ThreadPoolTest, DispatchedRegionRunsEveryIndexExactlyOnce) {
  const ThreadPoolCounters before = ThreadPool::Counters();
  std::vector<std::atomic<int>> hits(997);  // prime: uneven shard bounds
  ParallelFor(hits.size(), 8, [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  const ThreadPoolCounters after = ThreadPool::Counters();
  EXPECT_EQ(after.regions_dispatched, before.regions_dispatched + 1);
  EXPECT_EQ(after.tasks_run, before.tasks_run + hits.size());
}

TEST(ThreadPoolTest, ThousandsOfShortRegionsStayCorrect) {
  constexpr size_t kRegions = 4000;
  constexpr size_t kItems = 17;
  std::vector<long> out(kItems);
  for (size_t region = 0; region < kRegions; ++region) {
    ParallelFor(kItems, 8, [&](size_t i) {
      out[i] = static_cast<long>(region * kItems + i);
    });
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(out[i], static_cast<long>(region * kItems + i))
          << "region " << region;
    }
  }
}

TEST(ThreadPoolTest, ConcurrentRegionsFromMultipleCallerThreads) {
  constexpr size_t kCallers = 4;
  constexpr size_t kRegionsPerCaller = 400;
  constexpr size_t kItems = 64;
  std::vector<long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &sums] {
      std::vector<long> out(kItems);
      long total = 0;
      for (size_t r = 0; r < kRegionsPerCaller; ++r) {
        ParallelFor(kItems, 8, [&](size_t i) {
          out[i] = static_cast<long>((c + 1) * (i + r));
        });
        total = std::accumulate(out.begin(), out.end(), total);
      }
      sums[c] = total;
    });
  }
  for (auto& t : callers) t.join();

  for (size_t c = 0; c < kCallers; ++c) {
    long expected = 0;
    for (size_t r = 0; r < kRegionsPerCaller; ++r) {
      for (size_t i = 0; i < kItems; ++i) {
        expected += static_cast<long>((c + 1) * (i + r));
      }
    }
    EXPECT_EQ(sums[c], expected) << "caller " << c;
  }
}

TEST(ThreadPoolTest, NestedParallelForInsidePoolTaskRunsInline) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 50;
  const ThreadPoolCounters before = ThreadPool::Counters();
  std::vector<int> same_thread(kOuter, 0);
  std::vector<long> inner_sums(kOuter, 0);
  ParallelFor(kOuter, 8, [&](size_t o) {
    const std::thread::id outer_id = std::this_thread::get_id();
    std::vector<long> inner(kInner);
    bool inline_everywhere = true;
    ParallelFor(kInner, 8, [&](size_t i) {
      inline_everywhere &= std::this_thread::get_id() == outer_id;
      inner[i] = static_cast<long>(o * kInner + i);
    });
    same_thread[o] = inline_everywhere ? 1 : 0;
    inner_sums[o] = std::accumulate(inner.begin(), inner.end(), 0L);
  });

  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(same_thread[o], 1) << "outer " << o;
    long expected = 0;
    for (size_t i = 0; i < kInner; ++i) {
      expected += static_cast<long>(o * kInner + i);
    }
    EXPECT_EQ(inner_sums[o], expected) << "outer " << o;
  }
  const ThreadPoolCounters after = ThreadPool::Counters();
  // One dispatched outer region; every nested region hit the inline guard.
  EXPECT_EQ(after.regions_dispatched, before.regions_dispatched + 1);
  EXPECT_GE(after.regions_inline, before.regions_inline + kOuter);
}

TEST(ThreadPoolTest, WorkerSlotsStayInBoundsAndExclusive) {
  // Slot bound is min(num_threads, count) for both orderings.
  for (const auto& [count, threads, bound] :
       {std::tuple<size_t, size_t, size_t>{5, 8, 5},
        std::tuple<size_t, size_t, size_t>{300, 4, 4},
        std::tuple<size_t, size_t, size_t>{100, 64, 64}}) {
    std::vector<std::atomic<int>> in_use(bound);
    std::atomic<int> bound_violations{0};
    std::atomic<int> overlap_violations{0};
    std::vector<std::atomic<size_t>> per_slot_items(bound);
    ParallelForWorkers(count, threads, [&](size_t i, size_t slot) {
      if (slot >= bound) {
        bound_violations.fetch_add(1);
        return;
      }
      // A slot is held by one thread at a time: entering a busy slot means
      // two participants were handed the same id.
      if (in_use[slot].fetch_add(1) != 0) overlap_violations.fetch_add(1);
      per_slot_items[slot].fetch_add(1);
      volatile double sink = 0.0;
      for (size_t k = 0; k < 50 + (i % 7) * 30; ++k) sink = sink + 1.0;
      in_use[slot].fetch_sub(1);
    });
    EXPECT_EQ(bound_violations.load(), 0)
        << "count=" << count << " threads=" << threads;
    EXPECT_EQ(overlap_violations.load(), 0)
        << "count=" << count << " threads=" << threads;
    size_t total = 0;
    for (auto& n : per_slot_items) total += n.load();
    EXPECT_EQ(total, count) << "count=" << count << " threads=" << threads;
  }
}

TEST(ThreadPoolTest, OutputsBitwiseIdenticalAcrossThreadCounts) {
  constexpr size_t kItems = 500;
  auto run = [&](size_t threads) {
    std::vector<double> out(kItems);
    ParallelFor(kItems, threads, [&](size_t i) {
      double x = static_cast<double>(i) * 0.37 + 1.0;
      for (int k = 0; k < 100; ++k) x = x * 0.99 + 0.013;
      out[i] = x;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  for (size_t threads : {size_t{2}, size_t{8}, size_t{32}}) {
    const std::vector<double> threaded = run(threads);
    ASSERT_EQ(threaded.size(), serial.size());
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(threaded[i], serial[i]) << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, CountersAreMonotonic) {
  const ThreadPoolCounters before = ThreadPool::Counters();
  std::vector<double> out(256);
  // Imbalanced items give stealing something to do; steals are scheduling-
  // dependent, so only monotonicity is asserted.
  ParallelFor(out.size(), 8, [&](size_t i) {
    volatile double sink = 0.0;
    for (size_t k = 0; k < (i % 16) * 200; ++k) sink = sink + 1.0;
    out[i] = sink;
  });
  ParallelFor(1, 8, [&](size_t i) { out[i] = 0.0; });  // inline by contract
  const ThreadPoolCounters after = ThreadPool::Counters();
  EXPECT_GE(after.regions_dispatched, before.regions_dispatched + 1);
  EXPECT_GE(after.regions_inline, before.regions_inline + 1);
  EXPECT_GE(after.tasks_run, before.tasks_run + 256);
  EXPECT_GE(after.chunk_steals, before.chunk_steals);
}

// Keep last in the file: shutting the singleton down makes every later
// region in this process run inline (each ctest case is its own process,
// but a direct ./thread_pool_test run executes tests in declaration order).
TEST(ThreadPoolTest, ShutdownIsIdempotentAndFallsBackInline) {
  ThreadPool::Instance().Shutdown();
  ThreadPool::Instance().Shutdown();  // idempotent
  EXPECT_EQ(ThreadPool::Instance().worker_count(), 0u);

  const ThreadPoolCounters before = ThreadPool::Counters();
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), 8, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  const ThreadPoolCounters after = ThreadPool::Counters();
  EXPECT_EQ(after.regions_dispatched, before.regions_dispatched);
  EXPECT_EQ(after.regions_inline, before.regions_inline + 1);
}

}  // namespace
}  // namespace ips
