// Per-metric reference parity for the metric-policy layer (core/metric.h).
//
// Every registered metric is checked three ways:
//   1. registry invariants: id <-> name round trips, unknown names rejected;
//   2. DistanceEngine batched APIs against a brute-force loop over the
//      metric's own pairwise reference, at thread counts {1, 2, 8};
//   3. MatrixProfileEngine joins against a brute-force nested loop over the
//      same pairwise reference, at thread counts {1, 2, 8} with the chunk
//      floor forced to 1 so multi-chunk merge paths actually run.
// The engine paths go through FFT/QT recurrences, so the parity bound is
// 1e-9 (absolute) rather than bitwise; bitwise identity ACROSS thread
// counts is asserted separately, since determinism never rounds.

#include "core/metric.h"

#include <cmath>
#include <cstdint>

#include <algorithm>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/distance_engine.h"
#include "core/rng.h"
#include "data/generator.h"
#include "matrix_profile/matrix_profile.h"
#include "matrix_profile/mp_engine.h"

namespace ips {
namespace {

constexpr double kTol = 1e-9;

Dataset SyntheticData(const char* name, size_t train_size, size_t length) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = train_size;
  spec.test_size = 2;
  spec.length = length;
  return GenerateDataset(spec).train;
}

const std::vector<MetricId>& AllMetrics() {
  static const std::vector<MetricId> all = [] {
    std::vector<MetricId> v;
    for (size_t m = 0; m < kMetricCount; ++m) {
      v.push_back(static_cast<MetricId>(m));
    }
    return v;
  }();
  return all;
}

std::vector<double> RandomSeries(Rng& rng, size_t n) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian(0.0, 1.0);
  return x;
}

// Brute force: slide `query` over `series` evaluating the metric's own
// pairwise reference at every offset.
std::vector<double> BruteProfile(std::span<const double> query,
                                 std::span<const double> series,
                                 MetricId metric) {
  const MetricPolicy& policy = GetMetric(metric);
  const size_t m = query.size();
  std::vector<double> out(series.size() - m + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = policy.pairwise(query, series.subspan(i, m));
  }
  return out;
}

double BruteMin(std::span<const double> a, std::span<const double> b,
                MetricId metric) {
  const std::span<const double> q = a.size() <= b.size() ? a : b;
  const std::span<const double> s = a.size() <= b.size() ? b : a;
  const std::vector<double> profile = BruteProfile(q, s, metric);
  double best = profile[0];
  for (double v : profile) best = std::min(best, v);
  return best;
}

// ------------------------------------------------------------------ registry

TEST(MetricRegistryTest, NamesRoundTripThroughLookup) {
  for (const MetricId id : AllMetrics()) {
    const MetricPolicy& policy = GetMetric(id);
    EXPECT_EQ(policy.id, id);
    const MetricPolicy* found = FindMetricByName(MetricName(id));
    ASSERT_NE(found, nullptr) << MetricName(id);
    EXPECT_EQ(found->id, id);
    EXPECT_EQ(found, &policy);
  }
}

TEST(MetricRegistryTest, UnknownNamesReturnNull) {
  EXPECT_EQ(FindMetricByName(""), nullptr);
  EXPECT_EQ(FindMetricByName("euclid"), nullptr);
  EXPECT_EQ(FindMetricByName("znorm_euclidean "), nullptr);
  EXPECT_EQ(FindMetricByName("manhattan"), nullptr);
}

TEST(MetricRegistryTest, DefaultIsZNormEuclidean) {
  EXPECT_EQ(MetricId::kZNormEuclidean, static_cast<MetricId>(0));
  EXPECT_STREQ(MetricName(MetricId::kZNormEuclidean), "znorm_euclidean");
}

// --------------------------------------------------------- pairwise anchors

// Hand-computed values on tiny vectors pin each metric's definition: a
// regression here means the metric itself changed, not just a kernel.
TEST(MetricPairwiseTest, HandComputedAnchors) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0, 8.0};

  // Raw (Def. 4): mean squared difference = (1+4+9+16)/4.
  EXPECT_NEAR(GetMetric(MetricId::kRawSquaredEuclidean).pairwise(a, b), 7.5,
              kTol);
  // Plain L2: sqrt(30).
  EXPECT_NEAR(GetMetric(MetricId::kEuclidean).pairwise(a, b),
              std::sqrt(30.0), kTol);
  // b = 2a: same shape after z-normalisation and same direction, so both
  // shape metrics see zero distance.
  EXPECT_NEAR(GetMetric(MetricId::kZNormEuclidean).pairwise(a, b), 0.0, kTol);
  EXPECT_NEAR(GetMetric(MetricId::kCosine).pairwise(a, b), 0.0, kTol);

  // Orthogonal vectors: cosine distance exactly 1.
  const std::vector<double> e1 = {1.0, 0.0};
  const std::vector<double> e2 = {0.0, 1.0};
  EXPECT_NEAR(GetMetric(MetricId::kCosine).pairwise(e1, e2), 1.0, kTol);

  // Every shipped metric is symmetric.
  Rng rng(3);
  const std::vector<double> x = RandomSeries(rng, 17);
  const std::vector<double> y = RandomSeries(rng, 17);
  for (const MetricId id : AllMetrics()) {
    const MetricPolicy& policy = GetMetric(id);
    EXPECT_EQ(policy.pairwise(x, y), policy.pairwise(y, x))
        << MetricName(id);
    EXPECT_NEAR(policy.pairwise(x, x), 0.0, kTol) << MetricName(id);
  }
}

// ------------------------------------------------------- distance functions

TEST(MetricDistanceTest, ProfileMatchesBruteForceEveryMetric) {
  Rng rng(7);
  const std::vector<double> query = RandomSeries(rng, 9);
  const std::vector<double> series = RandomSeries(rng, 120);
  for (const MetricId id : AllMetrics()) {
    const std::vector<double> got =
        DistanceProfileMetric(query, series, id);
    const std::vector<double> want = BruteProfile(query, series, id);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], kTol)
          << MetricName(id) << " offset " << i;
    }
  }
}

TEST(MetricDistanceTest, SubsequenceDistanceIsSymmetric) {
  Rng rng(11);
  const std::vector<double> a = RandomSeries(rng, 40);
  const std::vector<double> b = RandomSeries(rng, 64);
  for (const MetricId id : AllMetrics()) {
    const double ab = SubsequenceDistanceMetric(a, b, id);
    const double ba = SubsequenceDistanceMetric(b, a, id);
    EXPECT_EQ(ab, ba) << MetricName(id);
    EXPECT_NEAR(ab, BruteMin(a, b, id), kTol) << MetricName(id);
  }
}

// --------------------------------------------------------- DistanceEngine

TEST(MetricEngineTest, BatchedApisMatchBruteForceAtEveryThreadCount) {
  const Dataset train = SyntheticData("metric-engine", 7, 72);
  Rng rng(13);
  const std::vector<double> query = RandomSeries(rng, 14);

  std::vector<std::span<const double>> views;
  for (size_t i = 0; i < train.size(); ++i) views.push_back(train[i].view());
  std::vector<IndexPair> pairs;
  for (uint32_t i = 0; i < views.size(); ++i) {
    for (uint32_t j = 0; j < views.size(); ++j) {
      if (i != j) pairs.emplace_back(i, j);
    }
  }

  for (const MetricId id : AllMetrics()) {
    SCOPED_TRACE(std::string("metric=") + MetricName(id));
    for (const size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      DistanceEngine engine(threads);

      const auto profiles = engine.ProfileAgainstDataset(query, train, id);
      ASSERT_EQ(profiles.size(), train.size());
      for (size_t i = 0; i < train.size(); ++i) {
        const auto want = BruteProfile(query, train[i].view(), id);
        ASSERT_EQ(profiles[i].size(), want.size());
        for (size_t k = 0; k < want.size(); ++k) {
          EXPECT_NEAR(profiles[i][k], want[k], kTol)
              << "series " << i << " offset " << k;
        }
      }

      const auto mins = engine.MinAgainstDataset(query, train, id);
      ASSERT_EQ(mins.size(), train.size());
      for (size_t i = 0; i < train.size(); ++i) {
        EXPECT_NEAR(mins[i], BruteMin(query, train[i].view(), id), kTol)
            << "series " << i;
      }

      const auto pair_mins = engine.MinForPairs(views, pairs, id);
      ASSERT_EQ(pair_mins.size(), pairs.size());
      for (size_t t = 0; t < pairs.size(); ++t) {
        EXPECT_NEAR(pair_mins[t],
                    BruteMin(views[pairs[t].first], views[pairs[t].second],
                             id),
                    kTol)
            << "pair " << t;
      }
    }
  }
}

TEST(MetricEngineTest, BatchedApisBitwiseIdenticalAcrossThreadCounts) {
  const Dataset train = SyntheticData("metric-engine-threads", 9, 90);
  Rng rng(17);
  const std::vector<double> query = RandomSeries(rng, 11);
  for (const MetricId id : AllMetrics()) {
    SCOPED_TRACE(std::string("metric=") + MetricName(id));
    DistanceEngine serial(1);
    const auto profiles_base = serial.ProfileAgainstDataset(query, train, id);
    const auto mins_base = serial.MinAgainstDataset(query, train, id);
    for (const size_t threads : {2u, 8u}) {
      DistanceEngine engine(threads);
      EXPECT_EQ(engine.ProfileAgainstDataset(query, train, id),
                profiles_base)
          << "threads=" << threads;
      EXPECT_EQ(engine.MinAgainstDataset(query, train, id), mins_base)
          << "threads=" << threads;
    }
  }
}

// ----------------------------------------------------- MatrixProfileEngine

TEST(MetricMpEngineTest, SelfJoinMatchesBruteForceAtEveryThreadCount) {
  Rng rng(19);
  const std::vector<double> series = RandomSeries(rng, 150);
  const size_t w = 12;
  const size_t count = series.size() - w + 1;
  const size_t exclusion = DefaultExclusionZone(w);
  const std::span<const double> sv(series);

  for (const MetricId id : AllMetrics()) {
    SCOPED_TRACE(std::string("metric=") + MetricName(id));
    const MetricPolicy& policy = GetMetric(id);

    // O(n^2) nested loop over the pairwise reference.
    std::vector<double> want(count);
    for (size_t i = 0; i < count; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < count; ++j) {
        const size_t gap = i > j ? i - j : j - i;
        if (gap <= exclusion) continue;
        best = std::min(best,
                        policy.pairwise(sv.subspan(i, w), sv.subspan(j, w)));
      }
      want[i] = best;
    }

    MatrixProfile base;
    for (const size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      MatrixProfileEngine engine(threads);
      engine.set_min_cells_per_chunk(1);
      const MatrixProfile mp = engine.SelfJoin(sv, w, /*exclusion=*/0, id);
      ASSERT_EQ(mp.size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_NEAR(mp.values[i], want[i], kTol) << "window " << i;
      }
      if (threads == 1) {
        base = mp;
      } else {
        EXPECT_EQ(mp.values, base.values);
        EXPECT_EQ(mp.indices, base.indices);
      }
    }
  }
}

TEST(MetricMpEngineTest, AbJoinBothMatchesBruteForceAtEveryThreadCount) {
  Rng rng(23);
  const std::vector<double> a = RandomSeries(rng, 110);
  const std::vector<double> b = RandomSeries(rng, 140);
  const size_t w = 10;
  const std::span<const double> av(a), bv(b);
  const size_t la = a.size() - w + 1;
  const size_t lb = b.size() - w + 1;

  for (const MetricId id : AllMetrics()) {
    SCOPED_TRACE(std::string("metric=") + MetricName(id));
    const MetricPolicy& policy = GetMetric(id);

    std::vector<double> want_ab(la,
                                std::numeric_limits<double>::infinity());
    std::vector<double> want_ba(lb,
                                std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < la; ++i) {
      for (size_t j = 0; j < lb; ++j) {
        const double d =
            policy.pairwise(av.subspan(i, w), bv.subspan(j, w));
        want_ab[i] = std::min(want_ab[i], d);
        want_ba[j] = std::min(want_ba[j], d);
      }
    }

    PairJoin base;
    for (const size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      MatrixProfileEngine engine(threads);
      engine.set_min_cells_per_chunk(1);
      const PairJoin pj = engine.AbJoinBoth(av, bv, w, id);
      ASSERT_EQ(pj.a_vs_b.size(), la);
      ASSERT_EQ(pj.b_vs_a.size(), lb);
      for (size_t i = 0; i < la; ++i) {
        EXPECT_NEAR(pj.a_vs_b.values[i], want_ab[i], kTol) << "row " << i;
      }
      for (size_t j = 0; j < lb; ++j) {
        EXPECT_NEAR(pj.b_vs_a.values[j], want_ba[j], kTol) << "col " << j;
      }
      if (threads == 1) {
        base = pj;
      } else {
        EXPECT_EQ(pj.a_vs_b.values, base.a_vs_b.values);
        EXPECT_EQ(pj.b_vs_a.values, base.b_vs_a.values);
      }
    }
  }
}

}  // namespace
}  // namespace ips
