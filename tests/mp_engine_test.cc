// Bitwise-identity suite for the MatrixProfileEngine: every engine entry
// point must reproduce the serial AbJoinProfile / SelfJoinProfile kernels
// EXACTLY (EXPECT_EQ on doubles, no tolerance) at every thread count --
// that is the contract that lets the instance-profile stage shard pairs
// over cores without perturbing discovery results.

#include "matrix_profile/mp_engine.h"

#include <cstddef>

#include <span>
#include <vector>

#include "core/rng.h"
#include "core/time_series.h"
#include "data/generator.h"
#include "ips/candidate_gen.h"
#include "ips/config.h"
#include "ips/instance_profile.h"
#include "matrix_profile/matrix_profile.h"
#include "gtest/gtest.h"

namespace ips {
namespace {

std::vector<double> RandomWalk(Rng& rng, size_t n) {
  std::vector<double> v(n);
  double level = 0.0;
  for (auto& x : v) {
    level = 0.95 * level + rng.Gaussian(0.0, 1.0);
    x = level;
  }
  return v;
}

void ExpectProfilesIdentical(const MatrixProfile& expected,
                             const MatrixProfile& actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected.values[i], actual.values[i]) << what << " value " << i;
    EXPECT_EQ(expected.indices[i], actual.indices[i]) << what << " index " << i;
  }
}

constexpr size_t kThreadCounts[] = {1, 2, 8};

TEST(MpEngineSelfJoinTest, BitwiseIdenticalToSerialKernel) {
  Rng rng(7);
  const std::vector<double> series = RandomWalk(rng, 240);
  for (size_t window : {5u, 16u, 48u}) {
    const MatrixProfile expected = SelfJoinProfile(series, window);
    for (size_t threads : kThreadCounts) {
      MatrixProfileEngine engine(threads);
      ExpectProfilesIdentical(expected, engine.SelfJoin(series, window),
                              "self join");
      // Force fine-grained diagonal sharding (a join this small would
      // otherwise stay single-chunk on the row-order fast path).
      MatrixProfileEngine sharded(threads);
      sharded.set_min_cells_per_chunk(1);
      ExpectProfilesIdentical(expected, sharded.SelfJoin(series, window),
                              "sharded self join");
    }
  }
}

TEST(MpEngineSelfJoinTest, CustomExclusionZone) {
  Rng rng(11);
  const std::vector<double> series = RandomWalk(rng, 150);
  const size_t window = 12;
  for (size_t exclusion : {1u, 6u, 30u}) {
    const MatrixProfile expected = SelfJoinProfile(series, window, exclusion);
    for (size_t threads : kThreadCounts) {
      MatrixProfileEngine engine(threads);
      engine.set_min_cells_per_chunk(1);
      ExpectProfilesIdentical(
          expected, engine.SelfJoin(series, window, exclusion), "exclusion");
    }
  }
}

TEST(MpEngineSelfJoinTest, FlatRegionsMatch) {
  // Constant stretches exercise the flat-std branches of the distance.
  Rng rng(13);
  std::vector<double> series = RandomWalk(rng, 180);
  for (size_t i = 40; i < 70; ++i) series[i] = 2.5;
  for (size_t i = 120; i < 150; ++i) series[i] = 2.5;
  const size_t window = 10;
  const MatrixProfile expected = SelfJoinProfile(series, window);
  for (size_t threads : kThreadCounts) {
    MatrixProfileEngine engine(threads);
    engine.set_min_cells_per_chunk(1);
    ExpectProfilesIdentical(expected, engine.SelfJoin(series, window), "flat");
  }
}

TEST(MpEngineAbJoinTest, BothDirectionsBitwiseIdentical) {
  Rng rng(17);
  const std::vector<double> a = RandomWalk(rng, 200);
  const std::vector<double> b = RandomWalk(rng, 130);
  for (size_t window : {4u, 21u}) {
    const MatrixProfile ab = AbJoinProfile(a, b, window);
    const MatrixProfile ba = AbJoinProfile(b, a, window);
    for (size_t threads : kThreadCounts) {
      MatrixProfileEngine engine(threads);
      ExpectProfilesIdentical(ab, engine.AbJoin(a, b, window), "a vs b");
      ExpectProfilesIdentical(ba, engine.AbJoin(b, a, window), "b vs a");

      // One sweep, both sides.
      const PairJoin both = engine.AbJoinBoth(a, b, window);
      ExpectProfilesIdentical(ab, both.a_vs_b, "pair a side");
      ExpectProfilesIdentical(ba, both.b_vs_a, "pair b side");

      // Same, forced onto the fine-grained sharded diagonal path.
      MatrixProfileEngine sharded(threads);
      sharded.set_min_cells_per_chunk(1);
      const PairJoin sharded_both = sharded.AbJoinBoth(a, b, window);
      ExpectProfilesIdentical(ab, sharded_both.a_vs_b, "sharded a side");
      ExpectProfilesIdentical(ba, sharded_both.b_vs_a, "sharded b side");
    }
  }
}

TEST(MpEngineAbJoinTest, FftSeedPathBitwiseIdentical) {
  // Window long enough that the seed sliding-dot-products dispatch to the
  // FFT kernel (window >= kFftCutoff and the cost model prefers FFT).
  Rng rng(19);
  const std::vector<double> a = RandomWalk(rng, 2048);
  const std::vector<double> b = RandomWalk(rng, 1500);
  const size_t window = 512;
  const MatrixProfile ab = AbJoinProfile(a, b, window);
  const MatrixProfile ba = AbJoinProfile(b, a, window);
  const MatrixProfile self = SelfJoinProfile(a, window);
  for (size_t threads : {1u, 8u}) {
    MatrixProfileEngine engine(threads);
    const PairJoin both = engine.AbJoinBoth(a, b, window);
    ExpectProfilesIdentical(ab, both.a_vs_b, "fft a side");
    ExpectProfilesIdentical(ba, both.b_vs_a, "fft b side");
    ExpectProfilesIdentical(self, engine.SelfJoin(a, window), "fft self");
  }
}

TEST(MpEngineAbJoinTest, SingleWindowSeries) {
  // b has exactly one window (size == window): la x 1 sweep, lb = 1.
  Rng rng(23);
  const std::vector<double> a = RandomWalk(rng, 60);
  const std::vector<double> b = RandomWalk(rng, 9);
  const size_t window = 9;
  const MatrixProfile ab = AbJoinProfile(a, b, window);
  const MatrixProfile ba = AbJoinProfile(b, a, window);
  for (size_t threads : kThreadCounts) {
    MatrixProfileEngine engine(threads);
    const PairJoin both = engine.AbJoinBoth(a, b, window);
    ExpectProfilesIdentical(ab, both.a_vs_b, "one-window a side");
    ExpectProfilesIdentical(ba, both.b_vs_a, "one-window b side");
  }
}

TEST(MpEngineJoinAllPairsTest, EveryPairBothDirections) {
  Rng rng(29);
  std::vector<std::vector<double>> series;
  for (size_t n : {90u, 120u, 75u, 104u}) {
    series.push_back(RandomWalk(rng, n));
  }
  std::vector<std::span<const double>> views(series.begin(), series.end());
  const size_t window = 14;

  for (size_t threads : kThreadCounts) {
    MatrixProfileEngine engine(threads);
    engine.set_min_cells_per_chunk(1);
    const std::vector<PairJoin> joins = engine.JoinAllPairs(views, window);
    ASSERT_EQ(joins.size(), 6u);  // C(4, 2)
    size_t t = 0;
    for (size_t i = 0; i < views.size(); ++i) {
      for (size_t j = i + 1; j < views.size(); ++j, ++t) {
        ASSERT_EQ(joins[t].a, i);
        ASSERT_EQ(joins[t].b, j);
        ExpectProfilesIdentical(AbJoinProfile(views[i], views[j], window),
                                joins[t].a_vs_b, "batch a side");
        ExpectProfilesIdentical(AbJoinProfile(views[j], views[i], window),
                                joins[t].b_vs_a, "batch b side");
      }
    }
  }
}

TEST(MpEngineCountersTest, PairSymmetryHalvesJoins) {
  Rng rng(31);
  std::vector<std::vector<double>> series;
  for (size_t n : {80u, 80u, 80u}) series.push_back(RandomWalk(rng, n));
  std::vector<std::span<const double>> views(series.begin(), series.end());

  // Legacy scheduling path: with the artifact table off, batches are fed
  // by the mutex-guarded per-entry caches (kept for ad-hoc callers).
  MatrixProfileEngine engine(2);
  engine.set_use_artifact_table(false);
  engine.JoinAllPairs(views, 10);
  const MpEngineCounters c = engine.counters();
  // 3 unordered pairs serve all 6 directed joins of the historic code.
  EXPECT_EQ(c.qt_sweeps, 3u);
  EXPECT_EQ(c.joins_computed, 6u);
  EXPECT_EQ(c.joins_halved, 3u);
  EXPECT_GT(c.cache_misses, 0u);
  EXPECT_EQ(c.table_builds, 0u);

  // A second batch over the same views is served from the artefact caches.
  const size_t misses_before = c.cache_misses;
  engine.JoinAllPairs(views, 10);
  const MpEngineCounters c2 = engine.counters();
  EXPECT_EQ(c2.cache_misses, misses_before);
  EXPECT_GT(c2.cache_hits, c.cache_hits);

  engine.ResetCounters();
  const MpEngineCounters zero = engine.counters();
  EXPECT_EQ(zero.joins_computed, 0u);
  EXPECT_EQ(zero.cache_hits, 0u);

  // Default path: the batch builds one immutable artifact table instead of
  // touching the per-entry caches, and a repeat batch reuses it.
  MatrixProfileEngine tabled(2);
  tabled.JoinAllPairs(views, 10);
  const MpEngineCounters t1 = tabled.counters();
  EXPECT_EQ(t1.qt_sweeps, 3u);
  EXPECT_EQ(t1.joins_computed, 6u);
  EXPECT_EQ(t1.table_builds, 1u);
  EXPECT_EQ(t1.table_reuses, 0u);
  EXPECT_EQ(t1.cache_hits, 0u);
  EXPECT_EQ(t1.cache_misses, 0u);

  tabled.JoinAllPairs(views, 10);
  const MpEngineCounters t2 = tabled.counters();
  EXPECT_EQ(t2.table_builds, 1u);
  EXPECT_EQ(t2.table_reuses, 1u);

  // ClearCaches drops the retained table: the next batch rebuilds.
  tabled.ClearCaches();
  tabled.JoinAllPairs(views, 10);
  const MpEngineCounters t3 = tabled.counters();
  EXPECT_EQ(t3.table_builds, 2u);
  EXPECT_EQ(t3.table_reuses, 1u);
}

TEST(MpEngineInstanceProfileTest, EngineMatchesSerialConstruction) {
  Rng rng(37);
  std::vector<TimeSeries> sample;
  for (size_t n : {70u, 95u, 4u, 82u}) {  // the length-4 instance is skipped
    TimeSeries t;
    t.values = RandomWalk(rng, n);
    sample.push_back(std::move(t));
  }
  const size_t window = 11;
  for (size_t neighbors : {1u, 2u}) {
    const InstanceProfile expected =
        ComputeInstanceProfile(sample, window, neighbors);
    for (size_t threads : kThreadCounts) {
      MatrixProfileEngine engine(threads);
      const InstanceProfile actual =
          ComputeInstanceProfile(sample, window, neighbors, &engine);
      ASSERT_EQ(expected.size(), actual.size());
      for (size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(expected.values[e], actual.values[e]) << "entry " << e;
        EXPECT_EQ(expected.instances[e], actual.instances[e]);
        EXPECT_EQ(expected.offsets[e], actual.offsets[e]);
      }
    }
  }
}

TEST(MpEngineCandidateGenTest, OutputIndependentOfThreadCount) {
  GeneratorSpec spec;
  spec.name = "mp-engine-candgen";
  spec.num_classes = 2;
  spec.train_size = 12;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;

  IpsOptions options;
  options.num_threads = 1;
  Rng rng_base(options.seed);
  const CandidatePool base = GenerateCandidates(train, options, rng_base);

  for (size_t threads : {2u, 5u, 8u}) {
    options.num_threads = threads;
    Rng rng(options.seed);
    const CandidatePool got = GenerateCandidates(train, options, rng);
    ASSERT_EQ(base.motifs.size(), got.motifs.size()) << threads;
    for (const auto& [label, pool] : base.motifs) {
      const auto& other = got.motifs.at(label);
      ASSERT_EQ(pool.size(), other.size()) << threads << " threads";
      for (size_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(pool[i].values, other[i].values);
        EXPECT_EQ(pool[i].label, other[i].label);
      }
    }
    for (const auto& [label, pool] : base.discords) {
      const auto& other = got.discords.at(label);
      ASSERT_EQ(pool.size(), other.size()) << threads << " threads";
      for (size_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(pool[i].values, other[i].values);
      }
    }
  }
}

}  // namespace
}  // namespace ips
