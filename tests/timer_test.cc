#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  Timer t;
  const double a = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(b, 0.004);  // slept at least ~5 ms
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 0.004);
}

TEST(TimerTest, MillisMatchSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = t.ElapsedSeconds();
  const double millis = t.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, 2.0);
}

TEST(StageTimerTest, AccumulatesAcrossSections) {
  StageTimer stage;
  stage.Add(0.5);
  stage.Add(0.25);
  EXPECT_DOUBLE_EQ(stage.total_seconds(), 0.75);
  stage.Reset();
  EXPECT_DOUBLE_EQ(stage.total_seconds(), 0.0);
}

TEST(StageTimerTest, TimeRunsTheCallableAndReturnsItsValue) {
  StageTimer stage;
  const int result = stage.Time([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_GT(stage.total_seconds(), 0.002);

  bool ran = false;
  stage.Time([&] { ran = true; });  // void callable
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace ips
