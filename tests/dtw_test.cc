#include "core/dtw.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/rng.h"

namespace ips {
namespace {

TEST(DtwTest, IdenticalSeriesIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwTest, ZeroWindowEqualsEuclidean) {
  Rng rng(1);
  std::vector<double> a(20), b(20);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  EXPECT_NEAR(DtwDistance(a, b, 0), Euclidean(a, b), 1e-10);
}

TEST(DtwTest, UnconstrainedNotWorseThanEuclidean) {
  Rng rng(2);
  std::vector<double> a(30), b(30);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  EXPECT_LE(DtwDistance(a, b, -1), Euclidean(a, b) + 1e-10);
}

TEST(DtwTest, WindowMonotonicity) {
  // Widening the band can only lower (or keep) the distance.
  Rng rng(3);
  std::vector<double> a(40), b(40);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  double prev = DtwDistance(a, b, 0);
  for (int w : {1, 2, 4, 8, 16, 40}) {
    const double d = DtwDistance(a, b, w);
    EXPECT_LE(d, prev + 1e-10) << "window " << w;
    prev = d;
  }
}

TEST(DtwTest, AbsorbsTimeShift) {
  // A shifted copy of a smooth pulse: DTW should be much smaller than ED.
  auto pulse = [](size_t n, size_t center) {
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(i) - static_cast<double>(center);
      out[i] = std::exp(-d * d / 8.0);
    }
    return out;
  };
  const auto a = pulse(50, 20);
  const auto b = pulse(50, 25);
  EXPECT_LT(DtwDistance(a, b, -1), 0.15 * Euclidean(a, b));
}

TEST(DtwTest, SymmetricInArguments) {
  Rng rng(4);
  std::vector<double> a(17), b(23);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  EXPECT_NEAR(DtwDistance(a, b, -1), DtwDistance(b, a, -1), 1e-10);
}

TEST(DtwTest, UnequalLengthsSupported) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 1.5, 2.0, 2.5, 3.0};
  EXPECT_GE(DtwDistance(a, b, -1), 0.0);
  // Narrow window is widened to |n - m| so a path always exists.
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, 0)));
}

TEST(DtwTest, SingleElementSeries) {
  const std::vector<double> a = {2.0};
  const std::vector<double> b = {5.0};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 3.0);
}

TEST(EnvelopeTest, BoundsInput) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0, 3.0};
  const Envelope env = ComputeEnvelope(x, 1);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(env.lower[i], x[i]);
    EXPECT_GE(env.upper[i], x[i]);
  }
}

TEST(EnvelopeTest, ZeroWindowIsIdentity) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const Envelope env = ComputeEnvelope(x, 0);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.lower[i], x[i]);
    EXPECT_DOUBLE_EQ(env.upper[i], x[i]);
  }
}

class LbKeoghSweep : public ::testing::TestWithParam<int> {};

TEST_P(LbKeoghSweep, IsAdmissibleLowerBound) {
  const int window = GetParam();
  Rng rng(10 + window);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(32), b(32);
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    EXPECT_LE(LbKeogh(a, b, window), DtwDistance(a, b, window) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, LbKeoghSweep,
                         ::testing::Values(0, 1, 3, 8, 31));

}  // namespace
}  // namespace ips
