#include "ips/pipeline.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "obs/trace.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name, int classes = 2,
                        size_t train = 16, size_t test = 40,
                        size_t length = 80) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = classes;
  spec.train_size = train;
  spec.test_size = test;
  spec.length = length;
  return GenerateDataset(spec);
}

IpsOptions FastOptions() {
  IpsOptions o;
  o.sample_count = 5;
  o.sample_size = 3;
  o.length_ratios = {0.2, 0.3};
  o.shapelets_per_class = 3;
  return o;
}

TEST(DiscoverShapeletsTest, ProducesRequestedCount) {
  const TrainTestSplit data = MakeData("pipe1");
  const RunResult result = DiscoverShapelets(data.train, FastOptions());
  EXPECT_GT(result.shapelets.size(), 0u);
  EXPECT_LE(result.shapelets.size(), 3u * 2u);
  EXPECT_EQ(result.stats.shapelets, result.shapelets.size());
}

TEST(DiscoverShapeletsTest, StatsArePopulated) {
  const TrainTestSplit data = MakeData("pipe2");
  const IpsRunStats stats = DiscoverShapelets(data.train, FastOptions()).stats;
  EXPECT_GT(stats.motifs_generated, 0u);
  EXPECT_GT(stats.discords_generated, 0u);
  EXPECT_GE(stats.motifs_generated, stats.motifs_after_prune);
  EXPECT_GE(stats.candidate_gen_seconds, 0.0);
  if (obs::kTracingEnabled) {
    EXPECT_GT(stats.TotalDiscoverySeconds(), 0.0);
  } else {
    EXPECT_EQ(stats.TotalDiscoverySeconds(), 0.0);
  }
}

TEST(DiscoverShapeletsTest, TraceCoversEveryStage) {
  const TrainTestSplit data = MakeData("pipe2b");
  const RunResult result = DiscoverShapelets(data.train, FastOptions());
  if (!obs::kTracingEnabled) {
    EXPECT_TRUE(result.trace.empty());
    return;
  }
  // Bare discovery roots at "discover"; classifier-only stages are absent.
  EXPECT_NE(result.trace.Find("discover"), nullptr);
  EXPECT_EQ(result.trace.LeafCount("candidate_gen"), 1u);
  EXPECT_EQ(result.trace.LeafCount("instance_profile"), 1u);
  EXPECT_EQ(result.trace.LeafCount("pruning"), 1u);
  EXPECT_EQ(result.trace.LeafCount("selection"), 1u);
  EXPECT_EQ(result.trace.LeafCount("transform"), 0u);
  EXPECT_EQ(result.trace.LeafCount("backend_fit"), 0u);
  // The stats view is the same trace by leaf name.
  EXPECT_DOUBLE_EQ(result.stats.candidate_gen_seconds,
                   result.trace.LeafSeconds("candidate_gen"));
}

TEST(DiscoverShapeletsTest, RecordsRunMetricInResult) {
  const TrainTestSplit data = MakeData("pipe2c");
  const RunResult default_run = DiscoverShapelets(data.train, FastOptions());
  EXPECT_EQ(default_run.metric, MetricId::kZNormEuclidean);

  IpsOptions options = FastOptions();
  options.metric = MetricId::kCosine;
  const RunResult cosine_run = DiscoverShapelets(data.train, options);
  EXPECT_EQ(cosine_run.metric, MetricId::kCosine);
  EXPECT_GT(cosine_run.shapelets.size(), 0u);
}

TEST(DiscoverShapeletsTest, ShapeletsComeFromTrainingSet) {
  const TrainTestSplit data = MakeData("pipe3");
  const auto shapelets = DiscoverShapelets(data.train, FastOptions()).shapelets;
  for (const Subsequence& s : shapelets) {
    ASSERT_GE(s.series_index, 0);
    ASSERT_LT(static_cast<size_t>(s.series_index), data.train.size());
    const TimeSeries& src = data.train[static_cast<size_t>(s.series_index)];
    EXPECT_EQ(src.label, s.label);
    for (size_t i = 0; i < s.length(); ++i) {
      EXPECT_DOUBLE_EQ(s.values[i], src.values[s.start + i]);
    }
  }
}

TEST(DiscoverShapeletsTest, DeterministicForSameSeed) {
  const TrainTestSplit data = MakeData("pipe4");
  const auto a = DiscoverShapelets(data.train, FastOptions()).shapelets;
  const auto b = DiscoverShapelets(data.train, FastOptions()).shapelets;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].values, b[i].values);
}

TEST(DiscoverShapeletsTest, AllUtilityModesWork) {
  const TrainTestSplit data = MakeData("pipe5");
  for (UtilityMode mode : {UtilityMode::kExactNaive, UtilityMode::kExactWithCr,
                           UtilityMode::kDtCr}) {
    IpsOptions o = FastOptions();
    o.utility_mode = mode;
    EXPECT_GT(DiscoverShapelets(data.train, o).shapelets.size(), 0u);
  }
}

TEST(DiscoverShapeletsTest, NaivePruningWorks) {
  const TrainTestSplit data = MakeData("pipe6");
  IpsOptions o = FastOptions();
  o.use_dabf_pruning = false;
  EXPECT_GT(DiscoverShapelets(data.train, o).shapelets.size(), 0u);
}

TEST(IpsClassifierTest, BeatsChanceOnSeparableData) {
  const TrainTestSplit data = MakeData("pipe7", 2, 20, 60, 80);
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  const double accuracy = clf.Accuracy(data.test);
  EXPECT_GT(accuracy, 0.65) << "accuracy " << accuracy;
}

TEST(IpsClassifierTest, MulticlassSupported) {
  const TrainTestSplit data = MakeData("pipe8", 3, 24, 60, 80);
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 1.0 / 3.0 + 0.1);
}

TEST(IpsClassifierTest, ShapeletsAccessibleAfterFit) {
  const TrainTestSplit data = MakeData("pipe9");
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_FALSE(clf.shapelets().empty());
  EXPECT_EQ(&clf.shapelets(), &clf.result().shapelets);
  if (obs::kTracingEnabled) {
    EXPECT_GT(clf.result().stats.TotalDiscoverySeconds(), 0.0);
    // Fit's window covers the classifier-only stages too, nested under
    // "fit".
    EXPECT_NE(clf.result().trace.Find("fit"), nullptr);
    EXPECT_NE(clf.result().trace.Find("fit/discover"), nullptr);
    EXPECT_EQ(clf.result().trace.LeafCount("transform"), 1u);
    EXPECT_EQ(clf.result().trace.LeafCount("backend_fit"), 1u);
  }
}

TEST(IpsClassifierTest, PredictBatchMatchesPredictLoopAtEveryThreadCount) {
  const TrainTestSplit data = MakeData("pipe10", 2, 20, 48, 80);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    IpsOptions o = FastOptions();
    o.num_threads = threads;
    IpsClassifier clf(o);
    clf.Fit(data.train);

    std::vector<int> loop(data.test.size());
    for (size_t i = 0; i < data.test.size(); ++i) {
      loop[i] = clf.Predict(data.test[i]);
    }
    const std::vector<int> batch = clf.PredictBatch(data.test);
    ASSERT_EQ(batch.size(), loop.size()) << "threads=" << threads;
    for (size_t i = 0; i < loop.size(); ++i) {
      EXPECT_EQ(batch[i], loop[i]) << "threads=" << threads << " series " << i;
    }
  }
}

TEST(IpsClassifierTest, PredictBatchIsDeterministicAcrossThreadCounts) {
  const TrainTestSplit data = MakeData("pipe11", 3, 24, 36, 80);
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  const std::vector<int> base = clf.PredictBatch(data.test);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    IpsOptions o = FastOptions();
    o.num_threads = threads;
    IpsClassifier threaded(o);
    threaded.Fit(data.train);
    EXPECT_EQ(threaded.PredictBatch(data.test), base)
        << "threads=" << threads;
  }
}

TEST(IpsClassifierTest, AccuracyRoutesThroughPredictBatch) {
  const TrainTestSplit data = MakeData("pipe12", 2, 20, 40, 80);
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  const std::vector<int> batch = clf.PredictBatch(data.test);
  size_t correct = 0;
  for (size_t i = 0; i < data.test.size(); ++i) {
    if (batch[i] == data.test[i].label) ++correct;
  }
  const double expected =
      static_cast<double>(correct) / static_cast<double>(data.test.size());
  EXPECT_DOUBLE_EQ(clf.Accuracy(data.test), expected);
}

}  // namespace
}  // namespace ips
