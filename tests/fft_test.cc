#include "core/fft.h"

#include <cmath>

#include <complex>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

// Reference O(n^2) DFT.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> s = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(j) *
                           static_cast<double>(k) / static_cast<double>(n) *
                           (inverse ? 1.0 : -1.0);
      s += a[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? s / static_cast<double>(n) : s;
  }
  return out;
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(3);
  std::vector<std::complex<double>> a(16);
  for (auto& v : a) v = {rng.Gaussian(), rng.Gaussian()};
  const auto expected = NaiveDft(a, false);
  auto actual = a;
  Fft(actual, /*inverse=*/false);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9);
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9);
  }
}

TEST(FftTest, RoundTripIsIdentity) {
  Rng rng(4);
  std::vector<std::complex<double>> a(64);
  for (auto& v : a) v = {rng.Gaussian(), rng.Gaussian()};
  auto b = a;
  Fft(b, false);
  Fft(b, true);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i].real(), a[i].real(), 1e-10);
    EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-10);
  }
}

TEST(FftTest, SizeOneIsNoop) {
  std::vector<std::complex<double>> a = {{2.0, -1.0}};
  Fft(a, false);
  EXPECT_DOUBLE_EQ(a[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(a[0].imag(), -1.0);
}

TEST(FftTest, DeltaTransformsToAllOnes) {
  std::vector<std::complex<double>> a(8, 0.0);
  a[0] = 1.0;
  Fft(a, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(NextPowerOfTwoTest, KnownValues) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(17), 32u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(ShouldUseFftTest, SmallQueriesStayNaive) {
  EXPECT_FALSE(ShouldUseFftSlidingProducts(8, 1000));
  EXPECT_FALSE(ShouldUseFftSlidingProducts(64, 1000));
}

TEST(ShouldUseFftTest, LargeProductsGoFft) {
  EXPECT_TRUE(ShouldUseFftSlidingProducts(2000, 100000));
  EXPECT_TRUE(ShouldUseFftSlidingProducts(1024, 8192));
}

TEST(ShouldUseFftTest, AutoDispatchMatchesBothKernels) {
  Rng rng(9);
  for (const auto& [m, n] : {std::pair<size_t, size_t>{16, 100},
                             std::pair<size_t, size_t>{512, 2048}}) {
    std::vector<double> query(m), series(n);
    for (auto& v : query) v = rng.Gaussian();
    for (auto& v : series) v = rng.Gaussian();
    const auto fast = SlidingDotProductsAuto(query, series);
    const auto naive = SlidingDotProductsNaive(query, series);
    ASSERT_EQ(fast.size(), naive.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-6);
    }
  }
}

class SlidingDotSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SlidingDotSweep, FftMatchesNaive) {
  const auto [m, n] = GetParam();
  Rng rng(42 + m + n);
  std::vector<double> query(m), series(n);
  for (auto& v : query) v = rng.Gaussian();
  for (auto& v : series) v = rng.Gaussian();

  const auto fft = SlidingDotProducts(query, series);
  const auto naive = SlidingDotProductsNaive(query, series);
  ASSERT_EQ(fft.size(), naive.size());
  ASSERT_EQ(fft.size(), n - m + 1);
  for (size_t i = 0; i < fft.size(); ++i) {
    EXPECT_NEAR(fft[i], naive[i], 1e-7) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlidingDotSweep,
    ::testing::Values(std::pair<size_t, size_t>{1, 10},
                      std::pair<size_t, size_t>{3, 3},
                      std::pair<size_t, size_t>{5, 100},
                      std::pair<size_t, size_t>{64, 256},
                      std::pair<size_t, size_t>{100, 101},
                      std::pair<size_t, size_t>{128, 1000}));

// The pre-plan iterative FFT, verbatim: bit-reversal computed in the loop
// and the per-stage twiddle chain (w = 1; w *= wlen) restarted for every
// i-block. The plan cache must reproduce this BITWISE -- the twiddle chain
// of a stage is i-block independent, so storing one chain per stage and
// replaying it yields operand-identical butterflies. Discovery
// fingerprints across builds depend on this staying exact.
void ReferenceFft(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n <= 1) return;
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= static_cast<double>(n);
  }
}

TEST(FftPlanTest, BitwiseIdenticalToInlineTwiddleLoop) {
  for (size_t n = 2; n <= 1024; n <<= 1) {
    for (bool inverse : {false, true}) {
      Rng rng(7 + n + (inverse ? 1 : 0));
      std::vector<std::complex<double>> a(n);
      for (auto& v : a) v = {rng.Gaussian(), rng.Gaussian()};
      auto expected = a;
      ReferenceFft(expected, inverse);
      auto actual = a;
      Fft(actual, inverse);
      for (size_t i = 0; i < n; ++i) {
        // Exact equality, not NEAR: same operands, same operation order.
        ASSERT_EQ(actual[i].real(), expected[i].real())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
        ASSERT_EQ(actual[i].imag(), expected[i].imag())
            << "n=" << n << " inverse=" << inverse << " i=" << i;
      }
    }
  }
}

TEST(FftPlanTest, PlanIsCachedPerSize) {
  const FftPlan& p1 = GetFftPlan(256);
  const FftPlan& p2 = GetFftPlan(256);
  EXPECT_EQ(&p1, &p2);
  EXPECT_EQ(p1.n, 256u);
  EXPECT_EQ(p1.forward.size(), 255u);  // sum over stages of len/2 chains
  EXPECT_EQ(p1.inverse.size(), 255u);
  const FftPlan& q = GetFftPlan(512);
  EXPECT_NE(&p1, &q);
}

}  // namespace
}  // namespace ips
