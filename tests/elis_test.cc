#include "baselines/elis.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = 14;
  spec.test_size = 40;
  spec.length = 64;
  return GenerateDataset(spec);
}

ElisOptions FastOptions() {
  ElisOptions o;
  o.adjust.max_iters = 100;
  return o;
}

TEST(ElisTest, SelectsCandidatesPerClass) {
  const TrainTestSplit data = MakeData("elis1");
  ElisOptions options = FastOptions();
  options.candidates_per_class = 3;
  const auto selected = SelectElisCandidates(data.train, options);
  EXPECT_EQ(selected.size(), 6u);  // 2 classes x 3
  for (const auto& s : selected) EXPECT_GE(s.size(), 4u);
}

TEST(ElisTest, PaaSmoothingPreservesLength) {
  const TrainTestSplit data = MakeData("elis2");
  ElisOptions options = FastOptions();
  options.paa_factor = 4;
  const auto selected = SelectElisCandidates(data.train, options);
  const auto lengths = std::vector<size_t>{12, 22};  // 0.2/0.35 of 64
  for (const auto& s : selected) {
    EXPECT_TRUE(s.size() == lengths[0] || s.size() == lengths[1])
        << "length " << s.size();
  }
}

TEST(ElisTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("elis3");
  ElisClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.6);
}

TEST(ElisTest, AdjustedShapeletCountMatchesSelection) {
  const TrainTestSplit data = MakeData("elis4");
  ElisOptions options = FastOptions();
  options.candidates_per_class = 2;
  options.adjust.max_iters = 10;
  ElisClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_EQ(clf.Shapelets().size(), 4u);
}

TEST(ElisTest, AdjustmentChangesTheShapelets) {
  // Phase 2 must actually move the selected candidates (gradient steps).
  const TrainTestSplit data = MakeData("elis5");
  ElisOptions options = FastOptions();
  options.adjust.max_iters = 100;
  const auto initial = SelectElisCandidates(data.train, options);
  ElisClassifier clf(options);
  clf.Fit(data.train);
  const auto adjusted = clf.Shapelets();
  ASSERT_EQ(adjusted.size(), initial.size());
  bool any_changed = false;
  for (size_t i = 0; i < initial.size(); ++i) {
    if (adjusted[i].values != initial[i]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

}  // namespace
}  // namespace ips
