#include "eval/metrics.h"

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(AccuracyScoreTest, KnownValues) {
  const std::vector<int> expected = {0, 1, 2, 1};
  const std::vector<int> predicted = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(AccuracyScore(expected, predicted), 0.75);
}

TEST(AccuracyScoreTest, PerfectAndZero) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {3, 1, 2};
  EXPECT_DOUBLE_EQ(AccuracyScore(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyScore(a, b), 0.0);
}

TEST(ConfusionMatrixTest, CountsByActualAndPredicted) {
  const std::vector<int> expected = {0, 0, 1, 1, 1};
  const std::vector<int> predicted = {0, 1, 1, 1, 0};
  const auto m = ConfusionMatrix(expected, predicted, 2);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[1][1], 2u);
}

TEST(ConfusionMatrixTest, DiagonalSumMatchesAccuracy) {
  const std::vector<int> expected = {0, 1, 2, 0, 1, 2};
  const std::vector<int> predicted = {0, 1, 1, 0, 2, 2};
  const auto m = ConfusionMatrix(expected, predicted, 3);
  size_t diag = 0;
  for (int c = 0; c < 3; ++c) diag += m[static_cast<size_t>(c)][static_cast<size_t>(c)];
  EXPECT_DOUBLE_EQ(static_cast<double>(diag) / 6.0,
                   AccuracyScore(expected, predicted));
}

TEST(CompareScoresTest, WinDrawLoss) {
  const std::vector<double> a = {0.9, 0.5, 0.7, 0.6};
  const std::vector<double> b = {0.8, 0.5, 0.9, 0.6};
  const WinDrawLoss r = CompareScores(a, b);
  EXPECT_EQ(r.wins, 1u);
  EXPECT_EQ(r.draws, 2u);
  EXPECT_EQ(r.losses, 1u);
}

TEST(CompareScoresTest, EpsilonTreatsNearEqualAsDraw) {
  const std::vector<double> a = {0.5000001};
  const std::vector<double> b = {0.5};
  EXPECT_EQ(CompareScores(a, b, 1e-3).draws, 1u);
  EXPECT_EQ(CompareScores(a, b, 1e-9).wins, 1u);
}

}  // namespace
}  // namespace ips
