#include "baselines/shapelet_quality.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

Subsequence MakeCandidate(std::vector<double> values, int label) {
  Subsequence s;
  s.values = std::move(values);
  s.label = label;
  return s;
}

TEST(LabelEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(LabelEntropy({4, 0}, 4), 0.0);
  EXPECT_NEAR(LabelEntropy({2, 2}, 4), std::log(2.0), 1e-12);
  EXPECT_NEAR(LabelEntropy({1, 1, 1}, 3), std::log(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(LabelEntropy({}, 0), 0.0);
}

TEST(EvaluateSplitQualityTest, PerfectDiscriminatorGetsFullGain) {
  // Class 0 contains the pattern exactly; class 1 contains its negation.
  Dataset train;
  for (int i = 0; i < 5; ++i) {
    std::vector<double> a(20, 0.0), b(20, 0.0);
    for (size_t j = 0; j < 6; ++j) {
      a[5 + j] = std::sin(0.9 * static_cast<double>(j)) * 4.0;
      b[5 + j] = -a[5 + j];
    }
    train.Add(TimeSeries(std::move(a), 0));
    train.Add(TimeSeries(std::move(b), 1));
  }
  std::vector<double> pattern(6);
  for (size_t j = 0; j < 6; ++j) {
    pattern[j] = std::sin(0.9 * static_cast<double>(j)) * 4.0;
  }
  const SplitQuality q =
      EvaluateSplitQuality(MakeCandidate(pattern, 0), train, 2);
  EXPECT_NEAR(q.info_gain, std::log(2.0), 1e-9);  // full binary entropy
  EXPECT_EQ(q.covered.size(), 5u);                // all class-0 instances
}

TEST(EvaluateSplitQualityTest, UselessCandidateHasZeroGain) {
  // All instances identical: every distance ties, no split boundary exists.
  Dataset train;
  for (int i = 0; i < 6; ++i) {
    train.Add(TimeSeries(std::vector<double>(16, 1.0), i % 2));
  }
  const SplitQuality q = EvaluateSplitQuality(
      MakeCandidate(std::vector<double>(4, 1.0), 0), train, 2);
  EXPECT_DOUBLE_EQ(q.info_gain, 0.0);
}

TEST(EvaluateSplitQualityTest, GainBoundedByParentEntropy) {
  Rng rng(1);
  Dataset train;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> v(24);
    for (auto& x : v) x = rng.Gaussian();
    train.Add(TimeSeries(std::move(v), i % 3));
  }
  std::vector<double> cand(6);
  for (auto& x : cand) x = rng.Gaussian();
  const SplitQuality q =
      EvaluateSplitQuality(MakeCandidate(cand, 0), train, 3);
  EXPECT_GE(q.info_gain, 0.0);
  EXPECT_LE(q.info_gain, std::log(3.0) + 1e-12);
}

TEST(EvaluateSplitQualityTest, CoverageOnlyContainsOwnClass) {
  Rng rng(2);
  Dataset train;
  for (int i = 0; i < 10; ++i) {
    std::vector<double> v(24);
    for (auto& x : v) x = rng.Gaussian();
    train.Add(TimeSeries(std::move(v), i % 2));
  }
  std::vector<double> cand(train[0].values.begin(),
                           train[0].values.begin() + 8);
  const SplitQuality q =
      EvaluateSplitQuality(MakeCandidate(cand, 0), train, 2);
  for (size_t idx : q.covered) {
    EXPECT_EQ(train[idx].label, 0);
  }
}

TEST(EvaluateSplitQualityTest, ThresholdSeparatesTheSplit) {
  Dataset train;
  // Class 0: flat zeros (distance 0 to a zero candidate); class 1: offset.
  for (int i = 0; i < 4; ++i) {
    train.Add(TimeSeries(std::vector<double>(12, 0.0), 0));
    train.Add(TimeSeries(std::vector<double>(12, 3.0), 1));
  }
  const SplitQuality q = EvaluateSplitQuality(
      MakeCandidate(std::vector<double>(4, 0.0), 0), train, 2);
  EXPECT_GT(q.threshold, 0.0);
  EXPECT_LT(q.threshold, 9.0);  // between 0 and 3^2
  EXPECT_NEAR(q.info_gain, std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace ips
