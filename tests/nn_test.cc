#include "classify/nn.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/dtw.h"
#include "core/rng.h"
#include "data/generator.h"

namespace ips {
namespace {

Dataset TwoClassBlobs(size_t per_class, size_t len, Rng& rng) {
  Dataset d;
  for (size_t i = 0; i < per_class; ++i) {
    std::vector<double> a(len), b(len);
    for (size_t j = 0; j < len; ++j) {
      a[j] = std::sin(0.3 * static_cast<double>(j)) + rng.Gaussian(0.0, 0.2);
      b[j] = std::cos(0.7 * static_cast<double>(j)) + rng.Gaussian(0.0, 0.2);
    }
    d.Add(TimeSeries(std::move(a), 0));
    d.Add(TimeSeries(std::move(b), 1));
  }
  return d;
}

TEST(OneNnEdTest, TrainingPointsClassifiedCorrectly) {
  Rng rng(1);
  const Dataset train = TwoClassBlobs(10, 40, rng);
  OneNnEd clf;
  clf.Fit(train);
  // Nearest neighbour of a training point is itself (distance zero).
  EXPECT_DOUBLE_EQ(clf.Accuracy(train), 1.0);
}

TEST(OneNnEdTest, GeneralizesToFreshDraws) {
  Rng rng(2);
  const Dataset train = TwoClassBlobs(15, 40, rng);
  const Dataset test = TwoClassBlobs(15, 40, rng);
  OneNnEd clf;
  clf.Fit(train);
  EXPECT_GE(clf.Accuracy(test), 0.95);
}

TEST(OneNnEdTest, UnequalLengthsSupported) {
  Dataset train;
  train.Add(TimeSeries({0.0, 0.0, 0.0, 0.0}, 0));
  train.Add(TimeSeries({5.0, 5.0, 5.0, 5.0, 5.0, 5.0}, 1));
  OneNnEd clf;
  clf.Fit(train);
  EXPECT_EQ(clf.Predict(TimeSeries({0.1, -0.1, 0.05}, -1)), 0);
  EXPECT_EQ(clf.Predict(TimeSeries({4.9, 5.1, 5.0}, -1)), 1);
}

TEST(OneNnDtwTest, GeneralizesToFreshDraws) {
  Rng rng(3);
  const Dataset train = TwoClassBlobs(12, 40, rng);
  const Dataset test = TwoClassBlobs(12, 40, rng);
  OneNnDtw clf(0.1);
  clf.Fit(train);
  EXPECT_GE(clf.Accuracy(test), 0.95);
}

TEST(OneNnDtwTest, ToleratesTimeShiftsBetterThanEd) {
  // Class patterns differ only by a pulse position jitter; DTW should cope.
  Rng rng(4);
  auto pulse_series = [&](size_t center, double amplitude) {
    std::vector<double> v(60);
    for (size_t j = 0; j < 60; ++j) {
      const double d = static_cast<double>(j) - static_cast<double>(center);
      v[j] = amplitude * std::exp(-d * d / 10.0) + rng.Gaussian(0.0, 0.05);
    }
    return v;
  };
  Dataset train, test;
  for (int i = 0; i < 8; ++i) {
    train.Add(TimeSeries(pulse_series(20 + (i % 5), 1.0), 0));
    train.Add(TimeSeries(pulse_series(20 + (i % 5), -1.0), 1));
    test.Add(TimeSeries(pulse_series(22 + (i % 5), 1.0), 0));
    test.Add(TimeSeries(pulse_series(22 + (i % 5), -1.0), 1));
  }
  OneNnDtw dtw(0.2);
  dtw.Fit(train);
  EXPECT_GE(dtw.Accuracy(test), 0.9);
}

TEST(OneNnDtwTest, UnconstrainedWindowWorks) {
  Rng rng(5);
  const Dataset train = TwoClassBlobs(8, 30, rng);
  OneNnDtw clf(-1.0);
  clf.Fit(train);
  EXPECT_DOUBLE_EQ(clf.Accuracy(train), 1.0);
}

TEST(OneNnDtwCvTest, ChoosesAWindowFromTheGrid) {
  Rng rng(8);
  const Dataset train = TwoClassBlobs(8, 32, rng);
  OneNnDtwCv clf({0.0, 0.05, 0.1});
  clf.Fit(train);
  const double w = clf.chosen_window_fraction();
  EXPECT_TRUE(w == 0.0 || w == 0.05 || w == 0.1);
}

TEST(OneNnDtwCvTest, AtLeastAsGoodAsWorstFixedWindowOnTrain) {
  Rng rng(9);
  const Dataset train = TwoClassBlobs(10, 32, rng);
  const Dataset test = TwoClassBlobs(10, 32, rng);
  OneNnDtwCv cv;
  cv.Fit(train);
  EXPECT_GE(cv.Accuracy(test), 0.9);
}

TEST(OneNnDtwCvTest, PrefersSmallestWindowOnTies) {
  // Perfectly separable data: every window is 100% in LOO, so the smallest
  // must win.
  Dataset train;
  for (int i = 0; i < 6; ++i) {
    train.Add(TimeSeries(std::vector<double>(24, 0.0), 0));
    train.Add(TimeSeries(std::vector<double>(24, 5.0), 1));
  }
  OneNnDtwCv clf({0.0, 0.1, 0.2});
  clf.Fit(train);
  EXPECT_DOUBLE_EQ(clf.chosen_window_fraction(), 0.0);
}

TEST(OneNnDtwTest, LbKeoghPruningPreservesExactness) {
  // The pruned search must return the same labels as a windowed DTW scan
  // without pruning (verified indirectly by comparing with a brute scan).
  Rng rng(6);
  const Dataset train = TwoClassBlobs(10, 32, rng);
  const Dataset test = TwoClassBlobs(10, 32, rng);
  OneNnDtw clf(0.1);
  clf.Fit(train);

  for (size_t i = 0; i < test.size(); ++i) {
    // Brute-force windowed 1NN.
    double best = 1e300;
    int label = -1;
    const int window =
        static_cast<int>(std::ceil(0.1 * static_cast<double>(
                                       test[i].length())));
    for (size_t j = 0; j < train.size(); ++j) {
      const double d =
          DtwDistance(test[i].view(), train[j].view(), window);
      if (d < best) {
        best = d;
        label = train[j].label;
      }
    }
    EXPECT_EQ(clf.Predict(test[i]), label) << "series " << i;
  }
}

}  // namespace
}  // namespace ips
