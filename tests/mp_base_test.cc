#include "baselines/mp_base.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = 12;
  spec.test_size = 40;
  spec.length = 80;
  return GenerateDataset(spec);
}

MpBaseOptions FastOptions() {
  MpBaseOptions o;
  o.length_ratios = {0.2, 0.3};
  o.shapelets_per_class = 3;
  return o;
}

TEST(MpBaseTest, DiscoversShapeletsPerClass) {
  const TrainTestSplit data = MakeData("base1");
  const auto shapelets = DiscoverMpBaseShapelets(data.train, FastOptions());
  EXPECT_GT(shapelets.size(), 0u);
  EXPECT_LE(shapelets.size(), 6u);
  bool has_class0 = false, has_class1 = false;
  for (const auto& s : shapelets) {
    if (s.label == 0) has_class0 = true;
    if (s.label == 1) has_class1 = true;
  }
  EXPECT_TRUE(has_class0);
  EXPECT_TRUE(has_class1);
}

TEST(MpBaseTest, ShapeletLengthsMatchRatios) {
  const TrainTestSplit data = MakeData("base2");
  const auto shapelets = DiscoverMpBaseShapelets(data.train, FastOptions());
  for (const auto& s : shapelets) {
    EXPECT_TRUE(s.length() == 16 || s.length() == 24)
        << "length " << s.length();
  }
}

TEST(MpBaseTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("base3");
  MpBaseClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.5);
}

TEST(MpBaseTest, DeterministicDiscovery) {
  const TrainTestSplit data = MakeData("base4");
  const auto a = DiscoverMpBaseShapelets(data.train, FastOptions());
  const auto b = DiscoverMpBaseShapelets(data.train, FastOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].values, b[i].values);
}

TEST(MpBaseTest, MulticlassSupported) {
  GeneratorSpec spec;
  spec.name = "base5";
  spec.num_classes = 3;
  spec.train_size = 15;
  spec.test_size = 30;
  spec.length = 80;
  const TrainTestSplit data = GenerateDataset(spec);
  MpBaseClassifier clf(FastOptions());
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 1.0 / 3.0);
}

}  // namespace
}  // namespace ips
