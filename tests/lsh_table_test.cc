#include "lsh/lsh_table.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

std::unique_ptr<LshFamily> MakeFamily() {
  LshParams p;
  p.scheme = LshScheme::kL2PStable;
  p.input_dim = 8;
  p.num_hashes = 4;
  p.bucket_width = 4.0;
  p.seed = 21;
  return MakeLshFamily(p);
}

std::vector<double> RandomVector(Rng& rng, double scale = 1.0) {
  std::vector<double> v(8);
  for (auto& x : v) x = rng.Gaussian(0.0, scale);
  return v;
}

TEST(LshTableTest, AddReturnsSequentialIds) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(1);
  EXPECT_EQ(table.Add(RandomVector(rng)), 0u);
  EXPECT_EQ(table.Add(RandomVector(rng)), 1u);
  EXPECT_EQ(table.NumItems(), 2u);
}

TEST(LshTableTest, IdenticalItemsShareBucket) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(2);
  const auto v = RandomVector(rng);
  const size_t a = table.Add(v);
  const size_t b = table.Add(v);
  table.Add(RandomVector(rng, 10.0));
  table.Finalize();
  EXPECT_EQ(table.BucketRankOfItem(a), table.BucketRankOfItem(b));
}

TEST(LshTableTest, BucketNormsAscendWithRank) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    table.Add(RandomVector(rng, 0.5 + 0.2 * i));
  }
  table.Finalize();
  for (size_t r = 1; r < table.NumBuckets(); ++r) {
    EXPECT_GE(table.BucketCenterNorm(r), table.BucketCenterNorm(r - 1));
  }
}

TEST(LshTableTest, BucketSizesSumToItems) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(4);
  for (int i = 0; i < 50; ++i) table.Add(RandomVector(rng));
  table.Finalize();
  size_t total = 0;
  for (size_t r = 0; r < table.NumBuckets(); ++r) total += table.BucketSize(r);
  EXPECT_EQ(total, 50u);
}

TEST(LshTableTest, QueryOfStoredItemReturnsItsRank) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(5);
  std::vector<std::vector<double>> items;
  for (int i = 0; i < 30; ++i) items.push_back(RandomVector(rng));
  for (const auto& v : items) table.Add(v);
  table.Finalize();
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(table.QueryBucketRank(items[i]), table.BucketRankOfItem(i));
  }
}

TEST(LshTableTest, UnseenQueryMapsToNearestNormBucket) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(6);
  // Two clusters: tiny-norm and huge-norm vectors.
  for (int i = 0; i < 20; ++i) table.Add(RandomVector(rng, 0.1));
  for (int i = 0; i < 20; ++i) table.Add(RandomVector(rng, 50.0));
  table.Finalize();

  // A small query should land in a low-rank bucket, a huge one high-rank.
  const size_t small_rank = table.QueryBucketRank(RandomVector(rng, 0.05));
  const size_t large_rank = table.QueryBucketRank(RandomVector(rng, 80.0));
  EXPECT_LT(small_rank, table.NumBuckets());
  EXPECT_LT(large_rank, table.NumBuckets());
  EXPECT_LE(small_rank, large_rank);
}

TEST(LshTableTest, AllIdenticalItemsFormOneBucket) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(8);
  const auto v = RandomVector(rng);
  for (int i = 0; i < 10; ++i) table.Add(v);
  table.Finalize();
  EXPECT_EQ(table.NumBuckets(), 1u);
  EXPECT_EQ(table.BucketSize(0), 10u);
  EXPECT_TRUE(table.ContainsKey(v));
}

TEST(LshTableTest, ContainsKeyFalseForDistantQuery) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(9);
  for (int i = 0; i < 10; ++i) table.Add(RandomVector(rng, 0.1));
  table.Finalize();
  // A vector with hugely different projections cannot share a key.
  EXPECT_FALSE(table.ContainsKey(RandomVector(rng, 1000.0)));
}

TEST(LshTableTest, ProjectionNormNonNegative) {
  const auto family = MakeFamily();
  LshTable table(family.get());
  Rng rng(7);
  EXPECT_GE(table.ProjectionNorm(RandomVector(rng)), 0.0);
  const std::vector<double> zero(8, 0.0);
  EXPECT_DOUBLE_EQ(table.ProjectionNorm(zero), 0.0);
}

}  // namespace
}  // namespace ips
