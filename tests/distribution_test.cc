#include "stats/distribution.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

TEST(NormalDistributionTest, PdfPeaksAtMean) {
  const NormalDistribution d(2.0, 1.5);
  EXPECT_GT(d.Pdf(2.0), d.Pdf(1.0));
  EXPECT_GT(d.Pdf(2.0), d.Pdf(3.0));
  EXPECT_NEAR(d.Pdf(2.0), 1.0 / (1.5 * std::sqrt(2.0 * 3.14159265)), 1e-5);
}

TEST(NormalDistributionTest, CdfKnownValues) {
  const NormalDistribution d(0.0, 1.0);
  EXPECT_NEAR(d.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(d.Cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(d.Cdf(-1.96), 0.025, 1e-3);
}

TEST(GammaDistributionTest, MomentsMatchParameters) {
  const GammaDistribution d(4.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 9.0);             // loc + k*theta
  EXPECT_DOUBLE_EQ(d.StdDev(), 4.0);           // sqrt(k)*theta
  EXPECT_DOUBLE_EQ(d.Pdf(0.5), 0.0);           // below support
  EXPECT_DOUBLE_EQ(d.Cdf(1.0), 0.0);
}

TEST(GammaDistributionTest, CdfMonotone) {
  const GammaDistribution d(2.0, 1.0, 0.0);
  double prev = 0.0;
  for (double x = 0.0; x < 10.0; x += 0.5) {
    const double c = d.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(d.Cdf(50.0), 1.0, 1e-6);
}

TEST(ExponentialDistributionTest, Basics) {
  const ExponentialDistribution d(2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.StdDev(), 0.5);
  EXPECT_DOUBLE_EQ(d.Pdf(0.5), 0.0);
  EXPECT_NEAR(d.Cdf(1.0 + std::log(2.0) / 2.0), 0.5, 1e-12);
}

TEST(UniformDistributionTest, Basics) {
  const UniformDistribution d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  EXPECT_NEAR(d.StdDev(), 4.0 / std::sqrt(12.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Pdf(4.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(7.0), 1.0);
}

TEST(FitNormalTest, RecoversParameters) {
  Rng rng(1);
  std::vector<double> data(5000);
  for (auto& v : data) v = rng.Gaussian(3.0, 2.0);
  const auto d = FitNormal(data);
  EXPECT_NEAR(d->Mean(), 3.0, 0.1);
  EXPECT_NEAR(d->StdDev(), 2.0, 0.1);
  EXPECT_EQ(d->Name(), "Norm");
}

TEST(FitGammaTest, HandlesNegativeData) {
  // The location shift must make the fit valid for z-normalised samples.
  Rng rng(2);
  std::vector<double> data(2000);
  for (auto& v : data) v = rng.Gaussian(-5.0, 1.0);
  const auto d = FitGamma(data);
  EXPECT_NEAR(d->Mean(), -5.0, 0.2);
  EXPECT_GT(d->Pdf(-5.0), 0.0);
}

TEST(FitUniformTest, SpansDataRange) {
  const std::vector<double> data = {1.0, 4.0, 2.0, 3.0};
  const auto d = FitUniform(data);
  EXPECT_DOUBLE_EQ(d->Cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d->Cdf(4.0), 1.0);
}

TEST(NmseTest, PerfectFitIsSmall) {
  Rng rng(3);
  std::vector<double> data(20000);
  for (auto& v : data) v = rng.Gaussian();
  const Histogram h(data, 32);
  const NormalDistribution d(0.0, 1.0);
  EXPECT_LT(Nmse(h, d), 0.02);
}

TEST(NmseTest, BadFitIsLarge) {
  Rng rng(4);
  std::vector<double> data(5000);
  for (auto& v : data) v = rng.Gaussian();
  const Histogram h(data, 32);
  const UniformDistribution d(-4.0, 4.0);
  EXPECT_GT(Nmse(h, d), 0.2);
}

TEST(FitBestDistributionTest, GaussianDataSelectsNormal) {
  Rng rng(5);
  std::vector<double> data(10000);
  for (auto& v : data) v = rng.Gaussian(1.0, 0.5);
  const BestFit fit = FitBestDistribution(data);
  EXPECT_EQ(fit.distribution->Name(), "Norm");
  EXPECT_LT(fit.nmse, 0.1);
}

TEST(FitBestDistributionTest, UniformDataSelectsUniform) {
  Rng rng(6);
  std::vector<double> data(20000);
  for (auto& v : data) v = rng.Uniform(-1.0, 1.0);
  const BestFit fit = FitBestDistribution(data);
  EXPECT_EQ(fit.distribution->Name(), "Uniform");
}

TEST(FitBestDistributionTest, SkewedDataPrefersGammaOverNormal) {
  Rng rng(7);
  std::vector<double> data(20000);
  // Gamma(k=1.5) samples via sum of squared normals trick is not exact for
  // non-integer k; use exponential-power composition: chi-square with 3 dof
  // is Gamma(1.5, 2).
  for (auto& v : data) {
    const double a = rng.Gaussian();
    const double b = rng.Gaussian();
    const double c = rng.Gaussian();
    v = a * a + b * b + c * c;
  }
  const BestFit fit = FitBestDistribution(data);
  EXPECT_EQ(fit.distribution->Name(), "Gamma");
}

}  // namespace
}  // namespace ips
