// Hostile-input hardening of the run-artifact loader (ips/serialization.h)
// and its consumer, the serving registry: truncations at every byte,
// bit-flipped headers, wrong versions, unknown metrics and absurd declared
// lengths must all come back as a clean error -- no crash, no multi-GB
// allocation, and no partial state left in a registry whose reload fails.

#include "ips/serialization.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/ucr_loader.h"
#include "ips/pipeline.h"
#include "serve/model_registry.h"

namespace ips {
namespace {

IpsOptions FastOptions() {
  IpsOptions o;
  o.sample_count = 4;
  o.sample_size = 3;
  o.length_ratios = {0.2};
  o.shapelets_per_class = 3;
  return o;
}

/// A small but real artifact: fitted shapelets + stats + trace.
RunResult MakeArtifact() {
  GeneratorSpec spec;
  spec.name = "fuzz";
  spec.train_size = 12;
  spec.test_size = 4;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  IpsClassifier clf(FastOptions());
  clf.Fit(train);
  return clf.result();
}

const std::string& ArtifactText() {
  static const std::string* text =
      new std::string(SerializeRunResult(MakeArtifact()));
  return *text;
}

TEST(SerializationFuzzTest, IntactArtifactParses) {
  std::string error = "sentinel";
  const auto restored = DeserializeRunResult(ArtifactText(), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(error.empty());  // cleared on success
  EXPECT_FALSE(restored->shapelets.empty());
}

TEST(SerializationFuzzTest, EveryTruncationIsHandledCleanly) {
  const std::string& text = ArtifactText();
  // Cutting anywhere before the final shapelet line must fail (a declared
  // count is then unsatisfiable). Cuts inside the final line may legally
  // still parse -- "3.14159..." truncated is a shorter valid double -- but
  // must never crash, and every failure must carry a reason.
  const size_t last_line = text.rfind('\n', text.size() - 2) + 1;
  for (size_t n = 0; n < text.size(); ++n) {
    std::string error;
    const auto restored = DeserializeRunResult(text.substr(0, n), &error);
    if (n <= last_line) {
      EXPECT_FALSE(restored.has_value()) << "parsed at truncation " << n;
    }
    if (!restored.has_value()) {
      EXPECT_FALSE(error.empty()) << "no reason at truncation " << n;
    }
  }
}

TEST(SerializationFuzzTest, EveryHeaderBitFlipIsRejected) {
  const std::string& text = ArtifactText();
  ASSERT_EQ(text.rfind("ips-run v2.", 0), 0u);
  // Flip every bit of "ips-run v2" -- magic and major version. (The minor
  // digit is excluded deliberately: other minors of a known major are
  // valid by design, see MinorVersionsOfKnownMajorAccepted.)
  for (size_t byte = 0; byte < 10; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = text;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::string error;
      const auto restored = DeserializeRunResult(mutated, &error);
      EXPECT_FALSE(restored.has_value())
          << "parsed with bit " << bit << " of byte " << byte << " flipped";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(SerializationFuzzTest, WrongMajorVersionRejected) {
  for (const char* version : {"v1.0", "v3.0", "v0.1", "v99.1"}) {
    std::string mutated = ArtifactText();
    mutated.replace(mutated.find("v2.1"), 4, version);
    std::string error;
    EXPECT_FALSE(DeserializeRunResult(mutated, &error).has_value())
        << version;
    EXPECT_FALSE(error.empty());
  }
}

TEST(SerializationFuzzTest, MinorVersionsOfKnownMajorAccepted) {
  // Minors only add fields within a major; a v2.9 artifact must load.
  std::string mutated = ArtifactText();
  mutated.replace(mutated.find("v2.1"), 4, "v2.9");
  std::string error;
  EXPECT_TRUE(DeserializeRunResult(mutated, &error).has_value()) << error;
}

TEST(SerializationFuzzTest, UnknownMetricNameRejected) {
  std::string mutated = ArtifactText();
  const size_t pos = mutated.find("\nmetric ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = mutated.find('\n', pos + 1);
  mutated.replace(pos, eol - pos, "\nmetric reversed_polarity");
  std::string error;
  EXPECT_FALSE(DeserializeRunResult(mutated, &error).has_value());
  EXPECT_NE(error.find("reversed_polarity"), std::string::npos) << error;
}

TEST(SerializationFuzzTest, OversizedShapeletCountRejectedWithoutAllocating) {
  // A header declaring more shapelets than the text could possibly hold
  // must be rejected up front, not drive a count-sized reserve.
  EXPECT_FALSE(
      DeserializeShapelets("ips-shapelets v1\n4000000000\n").has_value());
  std::string mutated = ArtifactText();
  const size_t block = mutated.find("ips-shapelets v1\n");
  ASSERT_NE(block, std::string::npos);
  const size_t count_start = block + std::string("ips-shapelets v1\n").size();
  const size_t count_end = mutated.find('\n', count_start);
  mutated.replace(count_start, count_end - count_start, "4000000000");
  std::string error;
  EXPECT_FALSE(DeserializeRunResult(mutated, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SerializationFuzzTest, OversizedSeriesLengthRejectedWithoutAllocating) {
  // Same for a single shapelet declaring a multi-GB value vector.
  EXPECT_FALSE(
      DeserializeShapelets("ips-shapelets v1\n1\n0 0 0 3000000000 1.0\n")
          .has_value());
}

TEST(SerializationFuzzTest, LoadFromFdMatchesLoadFromPath) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() /
                        ("ips_fuzz_fd_" + std::to_string(::getpid()) +
                         ".ipsrun");
  const RunResult artifact = MakeArtifact();
  ASSERT_TRUE(SaveRunResult(artifact, path.string()));

  FILE* f = std::fopen(path.string().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string error;
  const auto restored = LoadRunResultFromFd(fileno(f), &error);
  std::fclose(f);
  fs::remove(path);
  ASSERT_TRUE(restored.has_value()) << error;
  ASSERT_EQ(restored->shapelets.size(), artifact.shapelets.size());
  for (size_t i = 0; i < artifact.shapelets.size(); ++i) {
    EXPECT_EQ(restored->shapelets[i].values, artifact.shapelets[i].values);
  }
  EXPECT_EQ(restored->metric, artifact.metric);

  std::string fd_error;
  EXPECT_FALSE(LoadRunResultFromFd(-1, &fd_error).has_value());
  EXPECT_FALSE(fd_error.empty());
}

TEST(SerializationFuzzTest, FailedReloadLeavesRegistryServingOldModel) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("ips_fuzz_reg_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string artifact_path = (dir / "model.ipsrun").string();
  const std::string train_path = (dir / "train.tsv").string();

  GeneratorSpec spec;
  spec.name = "fuzz";
  spec.train_size = 12;
  spec.test_size = 4;
  spec.length = 64;
  const TrainTestSplit data = GenerateDataset(spec);
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  ASSERT_TRUE(SaveRunResult(clf.result(), artifact_path));
  ASSERT_TRUE(SaveUcrFile(data.train, train_path));

  serve::ModelRegistry registry;
  std::string error;
  ASSERT_EQ(registry.Load(
                "m", serve::ModelSource{artifact_path, train_path,
                                        FastOptions()},
                &error),
            1u)
      << error;
  const auto before = registry.Get("m");
  ASSERT_NE(before, nullptr);
  const std::vector<int> labels_before = before->Classify(data.test);

  // Corrupt the artifact on disk with each hostile shape; every reload
  // must fail AND leave the registry serving the original model object.
  const std::string good = ArtifactText();
  const std::vector<std::string> corruptions = {
      "",                                  // empty file
      good.substr(0, good.size() / 3),     // truncation
      "ips-run v9.0\n" + good.substr(13),  // alien major
      [&] {                                // hostile shapelet count
        std::string c = good;
        const size_t block = c.find("ips-shapelets v1\n");
        const size_t start = block + std::string("ips-shapelets v1\n").size();
        c.replace(start, c.find('\n', start) - start, "4000000000");
        return c;
      }(),
  };
  for (size_t i = 0; i < corruptions.size(); ++i) {
    {
      std::ofstream out(artifact_path, std::ios::trunc);
      out << corruptions[i];
    }
    std::string reload_error;
    EXPECT_EQ(registry.Reload("m", &reload_error), 0u) << "corruption " << i;
    EXPECT_FALSE(reload_error.empty()) << "corruption " << i;
    const auto after = registry.Get("m");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after.get(), before.get())
        << "corruption " << i << " replaced the model";
    EXPECT_EQ(after->version(), 1u);
    EXPECT_EQ(after->Classify(data.test), labels_before)
        << "corruption " << i << " changed predictions";
  }

  // And a subsequent good reload recovers, bumping the version.
  {
    std::ofstream out(artifact_path, std::ios::trunc);
    out << SerializeRunResult(clf.result());
  }
  EXPECT_EQ(registry.Reload("m", &error), 2u) << error;
  EXPECT_EQ(registry.Get("m")->Classify(data.test), labels_before);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ips
