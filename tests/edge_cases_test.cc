// Failure-injection and degenerate-input tests across the pipeline: inputs
// that are legal but pathological must not crash, and must degrade
// gracefully.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/mp_base.h"
#include "classify/svm.h"
#include "core/distance.h"
#include "core/rng.h"
#include "data/generator.h"
#include "ips/pipeline.h"
#include "matrix_profile/matrix_profile.h"

namespace ips {
namespace {

Dataset ConstantDataset(size_t count, size_t length) {
  Dataset d;
  for (size_t i = 0; i < count; ++i) {
    d.Add(TimeSeries(std::vector<double>(length,
                                         static_cast<double>(i % 2)),
                     static_cast<int>(i % 2)));
  }
  return d;
}

TEST(EdgeCaseTest, ConstantSeriesThroughMatrixProfile) {
  const std::vector<double> flat(64, 5.0);
  const MatrixProfile mp = SelfJoinProfile(flat, 8);
  // Flat windows compare as all-zero vectors: every distance is 0.
  for (double v : mp.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCaseTest, ConstantDatasetThroughIps) {
  const Dataset train = ConstantDataset(10, 64);
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  // Classes ARE separable by level; z-normalised shapelet features are not,
  // so any prediction is acceptable -- the contract is "no crash".
  clf.Predict(train[0]);
  SUCCEED();
}

TEST(EdgeCaseTest, PureNoiseDatasetDegradesGracefully) {
  Rng rng(1);
  Dataset train, test;
  for (int i = 0; i < 16; ++i) {
    std::vector<double> a(64), b(64);
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    train.Add(TimeSeries(std::move(a), i % 2));
    test.Add(TimeSeries(std::move(b), i % 2));
  }
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  const double acc = clf.Accuracy(test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(EdgeCaseTest, SingleClassDatasetThroughIps) {
  GeneratorSpec spec;
  spec.name = "edge1class";
  spec.num_classes = 2;
  spec.train_size = 8;
  spec.test_size = 2;
  spec.length = 64;
  Dataset train = GenerateDataset(spec).train;
  // Relabel everything to class 0: no inter-class information exists.
  Dataset single;
  for (size_t i = 0; i < train.size(); ++i) {
    TimeSeries t = train[i];
    t.label = 0;
    single.Add(std::move(t));
  }
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  const auto shapelets = DiscoverShapelets(single, options).shapelets;
  EXPECT_FALSE(shapelets.empty());
  for (const auto& s : shapelets) EXPECT_EQ(s.label, 0);
}

TEST(EdgeCaseTest, GapInClassLabels) {
  // Labels {0, 2} with class 1 absent: one-vs-rest must tolerate an empty
  // class.
  GeneratorSpec spec;
  spec.name = "edgegap";
  spec.num_classes = 3;
  spec.train_size = 12;
  spec.test_size = 12;
  spec.length = 64;
  TrainTestSplit data = GenerateDataset(spec);
  auto relabel = [](Dataset& d) {
    Dataset out;
    for (size_t i = 0; i < d.size(); ++i) {
      TimeSeries t = d[i];
      if (t.label == 1) t.label = 0;  // merge class 1 into 0 -> gap at 1
      out.Add(std::move(t));
    }
    return out;
  };
  Dataset train = relabel(data.train);
  Dataset test = relabel(data.test);
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  for (size_t i = 0; i < test.size(); ++i) {
    const int predicted = clf.Predict(test[i]);
    EXPECT_GE(predicted, 0);
    EXPECT_LE(predicted, 2);
  }
}

TEST(EdgeCaseTest, MinimumLengthSeries) {
  // 16-point series: candidate ratios clamp to the 4-point floor.
  GeneratorSpec spec;
  spec.name = "edgeshort";
  spec.num_classes = 2;
  spec.train_size = 8;
  spec.test_size = 8;
  spec.length = 16;
  const TrainTestSplit data = GenerateDataset(spec);
  IpsOptions options;
  options.sample_count = 3;
  IpsClassifier clf(options);
  clf.Fit(data.train);
  clf.Accuracy(data.test);
  SUCCEED();
}

TEST(EdgeCaseTest, TwoInstancesPerClass) {
  GeneratorSpec spec;
  spec.name = "edgetiny";
  spec.num_classes = 2;
  spec.train_size = 4;  // 2 per class, the minimum for an instance profile
  spec.test_size = 4;
  spec.length = 64;
  const TrainTestSplit data = GenerateDataset(spec);
  IpsOptions options;
  options.sample_count = 2;
  options.sample_size = 2;
  const auto shapelets = DiscoverShapelets(data.train, options).shapelets;
  EXPECT_FALSE(shapelets.empty());
}

TEST(EdgeCaseTest, MpBaseWithSeriesShorterThanWindowRatio) {
  // Length-5 ratio of a 16-point series is 8 points; the concatenated class
  // series is longer, so discovery must still work.
  GeneratorSpec spec;
  spec.name = "edgebase";
  spec.num_classes = 2;
  spec.train_size = 6;
  spec.test_size = 4;
  spec.length = 16;
  const TrainTestSplit data = GenerateDataset(spec);
  MpBaseOptions options;
  options.length_ratios = {0.5};
  const auto shapelets = DiscoverMpBaseShapelets(data.train, options);
  EXPECT_FALSE(shapelets.empty());
}

TEST(EdgeCaseTest, SvmSingleSample) {
  LabeledMatrix m;
  m.x = {{1.0, 2.0}};
  m.y = {0};
  LinearSvm svm;
  svm.Fit(m);
  EXPECT_EQ(svm.Predict(std::vector<double>{0.0, 0.0}), 0);
}

TEST(EdgeCaseTest, DistanceProfileSingleWindow) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const std::vector<double> s = {1.0, 2.0, 3.0};
  const auto profile = DistanceProfileRaw(q, s);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_NEAR(profile[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace ips
