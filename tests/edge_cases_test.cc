// Failure-injection and degenerate-input tests across the pipeline: inputs
// that are legal but pathological must not crash, and must degrade
// gracefully.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/mp_base.h"
#include "classify/svm.h"
#include "core/distance.h"
#include "core/rng.h"
#include "data/generator.h"
#include "ips/pipeline.h"
#include "matrix_profile/matrix_profile.h"

namespace ips {
namespace {

Dataset ConstantDataset(size_t count, size_t length) {
  Dataset d;
  for (size_t i = 0; i < count; ++i) {
    d.Add(TimeSeries(std::vector<double>(length,
                                         static_cast<double>(i % 2)),
                     static_cast<int>(i % 2)));
  }
  return d;
}

TEST(EdgeCaseTest, ConstantSeriesThroughMatrixProfile) {
  const std::vector<double> flat(64, 5.0);
  const MatrixProfile mp = SelfJoinProfile(flat, 8);
  // Flat windows compare as all-zero vectors: every distance is 0.
  for (double v : mp.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCaseTest, ConstantDatasetThroughIps) {
  const Dataset train = ConstantDataset(10, 64);
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  // Classes ARE separable by level; z-normalised shapelet features are not,
  // so any prediction is acceptable -- the contract is "no crash".
  clf.Predict(train[0]);
  SUCCEED();
}

TEST(EdgeCaseTest, PureNoiseDatasetDegradesGracefully) {
  Rng rng(1);
  Dataset train, test;
  for (int i = 0; i < 16; ++i) {
    std::vector<double> a(64), b(64);
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    train.Add(TimeSeries(std::move(a), i % 2));
    test.Add(TimeSeries(std::move(b), i % 2));
  }
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  const double acc = clf.Accuracy(test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(EdgeCaseTest, SingleClassDatasetThroughIps) {
  GeneratorSpec spec;
  spec.name = "edge1class";
  spec.num_classes = 2;
  spec.train_size = 8;
  spec.test_size = 2;
  spec.length = 64;
  Dataset train = GenerateDataset(spec).train;
  // Relabel everything to class 0: no inter-class information exists.
  Dataset single;
  for (size_t i = 0; i < train.size(); ++i) {
    TimeSeries t = train[i];
    t.label = 0;
    single.Add(std::move(t));
  }
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  const auto shapelets = DiscoverShapelets(single, options).shapelets;
  EXPECT_FALSE(shapelets.empty());
  for (const auto& s : shapelets) EXPECT_EQ(s.label, 0);
}

TEST(EdgeCaseTest, GapInClassLabels) {
  // Labels {0, 2} with class 1 absent: one-vs-rest must tolerate an empty
  // class.
  GeneratorSpec spec;
  spec.name = "edgegap";
  spec.num_classes = 3;
  spec.train_size = 12;
  spec.test_size = 12;
  spec.length = 64;
  TrainTestSplit data = GenerateDataset(spec);
  auto relabel = [](Dataset& d) {
    Dataset out;
    for (size_t i = 0; i < d.size(); ++i) {
      TimeSeries t = d[i];
      if (t.label == 1) t.label = 0;  // merge class 1 into 0 -> gap at 1
      out.Add(std::move(t));
    }
    return out;
  };
  Dataset train = relabel(data.train);
  Dataset test = relabel(data.test);
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  IpsClassifier clf(options);
  clf.Fit(train);
  for (size_t i = 0; i < test.size(); ++i) {
    const int predicted = clf.Predict(test[i]);
    EXPECT_GE(predicted, 0);
    EXPECT_LE(predicted, 2);
  }
}

TEST(EdgeCaseTest, MinimumLengthSeries) {
  // 16-point series: candidate ratios clamp to the 4-point floor.
  GeneratorSpec spec;
  spec.name = "edgeshort";
  spec.num_classes = 2;
  spec.train_size = 8;
  spec.test_size = 8;
  spec.length = 16;
  const TrainTestSplit data = GenerateDataset(spec);
  IpsOptions options;
  options.sample_count = 3;
  IpsClassifier clf(options);
  clf.Fit(data.train);
  clf.Accuracy(data.test);
  SUCCEED();
}

TEST(EdgeCaseTest, TwoInstancesPerClass) {
  GeneratorSpec spec;
  spec.name = "edgetiny";
  spec.num_classes = 2;
  spec.train_size = 4;  // 2 per class, the minimum for an instance profile
  spec.test_size = 4;
  spec.length = 64;
  const TrainTestSplit data = GenerateDataset(spec);
  IpsOptions options;
  options.sample_count = 2;
  options.sample_size = 2;
  const auto shapelets = DiscoverShapelets(data.train, options).shapelets;
  EXPECT_FALSE(shapelets.empty());
}

TEST(EdgeCaseTest, MpBaseWithSeriesShorterThanWindowRatio) {
  // Length-5 ratio of a 16-point series is 8 points; the concatenated class
  // series is longer, so discovery must still work.
  GeneratorSpec spec;
  spec.name = "edgebase";
  spec.num_classes = 2;
  spec.train_size = 6;
  spec.test_size = 4;
  spec.length = 16;
  const TrainTestSplit data = GenerateDataset(spec);
  MpBaseOptions options;
  options.length_ratios = {0.5};
  const auto shapelets = DiscoverMpBaseShapelets(data.train, options);
  EXPECT_FALSE(shapelets.empty());
}

TEST(EdgeCaseTest, SvmSingleSample) {
  LabeledMatrix m;
  m.x = {{1.0, 2.0}};
  m.y = {0};
  LinearSvm svm;
  svm.Fit(m);
  EXPECT_EQ(svm.Predict(std::vector<double>{0.0, 0.0}), 0);
}

TEST(EdgeCaseTest, DistanceProfileSingleWindow) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const std::vector<double> s = {1.0, 2.0, 3.0};
  const auto profile = DistanceProfileRaw(q, s);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_NEAR(profile[0], 0.0, 1e-12);
}

// --------------------------------------------- PredictBatch degeneracies
// The serving layer routes everything through PredictBatch, so its edge
// shapes (empty batch, singleton batch, queries shorter than the longest
// shapelet) are load-bearing beyond offline evaluation.

class PredictBatchEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorSpec spec;
    spec.name = "pb_edge";
    spec.num_classes = 2;
    spec.train_size = 12;
    spec.test_size = 6;
    spec.length = 64;
    data_ = GenerateDataset(spec);
    IpsOptions options;
    options.sample_count = 4;
    options.sample_size = 3;
    options.length_ratios = {0.3};
    options.shapelets_per_class = 3;
    clf_ = std::make_unique<IpsClassifier>(options);
    clf_->Fit(data_.train);
  }

  TrainTestSplit data_;
  std::unique_ptr<IpsClassifier> clf_;
};

TEST_F(PredictBatchEdgeTest, EmptyBatchYieldsEmptyLabels) {
  EXPECT_TRUE(clf_->PredictBatch(Dataset()).empty());
}

TEST_F(PredictBatchEdgeTest, SingleSeriesBatchMatchesPredict) {
  Dataset one;
  one.Add(data_.test[0]);
  const std::vector<int> batch = clf_->PredictBatch(one);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], clf_->Predict(data_.test[0]));
}

TEST_F(PredictBatchEdgeTest, QueryShorterThanShapeletMatchesPredict) {
  size_t longest = 0;
  for (const Subsequence& s : clf_->result().shapelets) {
    longest = std::max(longest, s.length());
  }
  ASSERT_GT(longest, 2u);
  // Queries strictly shorter than the longest shapelet: the distance core
  // role-swaps query and shapelet, so this is legal input and must agree
  // with the per-series path.
  Dataset shorties;
  for (size_t i = 0; i < 3; ++i) {
    std::vector<double> values(data_.test[i].values.begin(),
                               data_.test[i].values.begin() +
                                   static_cast<long>(longest - 1));
    shorties.Add(TimeSeries(std::move(values), data_.test[i].label));
  }
  const std::vector<int> batch = clf_->PredictBatch(shorties);
  ASSERT_EQ(batch.size(), shorties.size());
  for (size_t i = 0; i < shorties.size(); ++i) {
    EXPECT_EQ(batch[i], clf_->Predict(shorties[i])) << "series " << i;
  }
}

}  // namespace
}  // namespace ips
