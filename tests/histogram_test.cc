#include "stats/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

TEST(HistogramTest, CountsSumToTotal) {
  const std::vector<double> data = {1.0, 2.0, 2.5, 3.0, 10.0};
  const Histogram h(data, 4);
  size_t total = 0;
  for (size_t b = 0; b < h.num_bins(); ++b) total += h.count(b);
  EXPECT_EQ(total, data.size());
  EXPECT_EQ(h.total_count(), data.size());
}

TEST(HistogramTest, RightEdgeInclusive) {
  const std::vector<double> data = {0.0, 1.0};
  const Histogram h(data, 2);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(HistogramTest, ConstantDataSingleBin) {
  const std::vector<double> data(5, 3.0);
  const Histogram h(data, 4);
  EXPECT_EQ(h.count(0), 5u);
  for (size_t b = 1; b < h.num_bins(); ++b) EXPECT_EQ(h.count(b), 0u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Rng rng(1);
  std::vector<double> data(1000);
  for (auto& v : data) v = rng.Gaussian();
  const Histogram h(data, 20);
  double integral = 0.0;
  for (size_t b = 0; b < h.num_bins(); ++b) {
    integral += h.Density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, BinCentersAscendAndSpanRange) {
  const std::vector<double> data = {0.0, 10.0};
  const Histogram h(data, 5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  for (size_t b = 1; b < h.num_bins(); ++b) {
    EXPECT_GT(h.BinCenter(b), h.BinCenter(b - 1));
  }
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(HistogramTest, SingleBin) {
  const std::vector<double> data = {1.0, 2.0, 3.0};
  const Histogram h(data, 1);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(HistogramTest, DensitiesVectorMatchesPerBin) {
  Rng rng(2);
  std::vector<double> data(100);
  for (auto& v : data) v = rng.Uniform();
  const Histogram h(data, 8);
  const auto densities = h.Densities();
  ASSERT_EQ(densities.size(), 8u);
  for (size_t b = 0; b < 8; ++b) {
    EXPECT_DOUBLE_EQ(densities[b], h.Density(b));
  }
}

}  // namespace
}  // namespace ips
