#include "core/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, IndexCoversAllValues) {
  Rng rng(7);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(5);
  const auto sample = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 20u);
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(8, 8);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacementTest, EmptySample) {
  Rng rng(5);
  EXPECT_TRUE(rng.SampleWithoutReplacement(4, 0).empty());
}

TEST(SampleWithReplacementTest, InRange) {
  Rng rng(6);
  for (size_t v : rng.SampleWithReplacement(3, 50)) EXPECT_LT(v, 3u);
}

TEST(ShuffleTest, PreservesMultiset) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled(v);
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace ips
