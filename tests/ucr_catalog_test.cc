#include "data/ucr_catalog.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(UcrCatalogTest, ContainsAllEvaluatedDatasets) {
  // 46 Table IV/VI datasets + MoteStrain (+ ItalyPowerDemand among the 46).
  EXPECT_EQ(UcrCatalog().size(), 47u);
}

TEST(UcrCatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& info : UcrCatalog()) names.insert(info.name);
  EXPECT_EQ(names.size(), UcrCatalog().size());
}

TEST(UcrCatalogTest, AllEntriesWellFormed) {
  for (const auto& info : UcrCatalog()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.type.empty());
    EXPECT_GE(info.num_classes, 2) << info.name;
    EXPECT_GE(info.train_size, 16u) << info.name;
    EXPECT_GE(info.test_size, 20u) << info.name;
    EXPECT_GE(info.length, 24u) << info.name;
  }
}

TEST(FindUcrDatasetTest, KnownEntries) {
  const auto arrow = FindUcrDataset("ArrowHead");
  ASSERT_TRUE(arrow.has_value());
  EXPECT_EQ(arrow->num_classes, 3);
  EXPECT_EQ(arrow->train_size, 36u);
  EXPECT_EQ(arrow->length, 251u);

  const auto italy = FindUcrDataset("ItalyPowerDemand");
  ASSERT_TRUE(italy.has_value());
  EXPECT_EQ(italy->num_classes, 2);
  EXPECT_EQ(italy->length, 24u);

  EXPECT_FALSE(FindUcrDataset("NotADataset").has_value());
}

TEST(ScaleDatasetTest, FactorsApplied) {
  UcrDatasetInfo info;
  info.name = "X";
  info.num_classes = 2;
  info.train_size = 100;
  info.test_size = 200;
  info.length = 400;
  CatalogScale scale;
  scale.count_factor = 0.5;
  scale.length_factor = 0.25;
  const UcrDatasetInfo out = ScaleDataset(info, scale);
  EXPECT_EQ(out.train_size, 50u);
  EXPECT_EQ(out.test_size, 100u);
  EXPECT_EQ(out.length, 100u);
}

TEST(ScaleDatasetTest, ClampsToBounds) {
  UcrDatasetInfo info;
  info.name = "X";
  info.num_classes = 2;
  info.train_size = 8926;
  info.test_size = 7711;
  info.length = 2709;
  CatalogScale scale;
  scale.count_factor = 0.01;
  scale.length_factor = 0.01;
  scale.min_train = 10;
  scale.min_test = 20;
  scale.min_length = 32;
  const UcrDatasetInfo out = ScaleDataset(info, scale);
  EXPECT_GE(out.train_size, 10u);
  EXPECT_GE(out.test_size, 20u);
  EXPECT_EQ(out.length, 32u);
}

TEST(ScaleDatasetTest, KeepsTwoPerClassMinimum) {
  UcrDatasetInfo info;
  info.name = "Many";
  info.num_classes = 42;
  info.train_size = 1800;
  info.test_size = 1965;
  info.length = 750;
  CatalogScale scale;
  scale.count_factor = 0.001;
  const UcrDatasetInfo out = ScaleDataset(info, scale);
  EXPECT_GE(out.train_size, 84u);
}

TEST(ScaleDatasetTest, IdentityScaleIsNoopForCounts) {
  const auto info = FindUcrDataset("GunPoint");
  ASSERT_TRUE(info.has_value());
  const UcrDatasetInfo out = ScaleDataset(*info, CatalogScale{});
  EXPECT_EQ(out.train_size, info->train_size);
  EXPECT_EQ(out.test_size, info->test_size);
  EXPECT_EQ(out.length, info->length);
}

}  // namespace
}  // namespace ips
