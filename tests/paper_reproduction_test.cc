// Regression tests tying the statistics machinery to the paper itself: the
// Friedman/rank computation over the paper's published Table VI numbers
// must reproduce the published Fig. 11 ordering and §IV-C statements.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/paper_results.h"
#include "eval/friedman.h"
#include "eval/metrics.h"

namespace ips {
namespace {

// The paper's Table VI, as a scores[dataset][method] matrix (ELIS's one
// missing value mapped to 0, affecting only ELIS's own rank).
std::vector<std::vector<double>> PaperMatrix() {
  std::vector<std::vector<double>> scores;
  for (const bench::PaperAccuracyRow& row : bench::PaperTable6()) {
    std::vector<double> r = {row.rotf,     row.dtw,    row.st,
                             row.lts,      row.fs,     row.sd,
                             row.elis,     row.bspcover, row.resnet,
                             row.cote,     row.cote_ips, row.base,
                             row.ips};
    if (r[6] < 0.0) r[6] = 0.0;
    scores.push_back(std::move(r));
  }
  return scores;
}

constexpr size_t kIps = 12;
constexpr size_t kBase = 11;
constexpr size_t kCote = 9;
constexpr size_t kCoteIps = 10;

TEST(PaperReproductionTest, TableHas46Rows) {
  EXPECT_EQ(bench::PaperTable6().size(), 46u);
  EXPECT_EQ(bench::PaperTable4().size(), 46u);
}

TEST(PaperReproductionTest, FriedmanRejectsAtPaperSignificance) {
  // §IV-C: "The statistical significance p-value is 0.00".
  const FriedmanResult r = FriedmanTest(PaperMatrix());
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(PaperReproductionTest, IpsRanksFourthOnPaperNumbers) {
  // §IV-C / Fig. 11: IPS is ranked 4th among the 13 methods, behind
  // COTE-IPS, COTE and ResNet.
  const FriedmanResult r = FriedmanTest(PaperMatrix());
  std::vector<size_t> order(r.average_ranks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return r.average_ranks[a] < r.average_ranks[b];
  });
  EXPECT_EQ(order[0], kCoteIps);  // COTE-IPS best
  EXPECT_EQ(order[1], kCote);
  EXPECT_EQ(order[2], 8u);        // ResNet
  EXPECT_EQ(order[3], kIps);      // IPS 4th
}

TEST(PaperReproductionTest, BaseRanksNearBottom) {
  const FriedmanResult r = FriedmanTest(PaperMatrix());
  size_t worse_than_base = 0;
  for (size_t m = 0; m < r.average_ranks.size(); ++m) {
    if (r.average_ranks[m] > r.average_ranks[kBase]) ++worse_than_base;
  }
  EXPECT_LE(worse_than_base, 1u);  // BASE is last or second-to-last
}

TEST(PaperReproductionTest, IpsVsBaseWinDrawLossMatchesPaperTable) {
  // Recomputing from the paper's printed Table VI cells gives 42W/3D/1L
  // (IPS loses only DiatomSizeReduction; ties on Earthquakes, ECG200,
  // Meat). The paper's own footer prints 41/2/3 -- internally inconsistent
  // with its table, presumably computed on unrounded accuracies. We pin
  // the value derivable from the published cells.
  const auto scores = PaperMatrix();
  std::vector<double> ips(scores.size()), base(scores.size());
  for (size_t d = 0; d < scores.size(); ++d) {
    ips[d] = scores[d][kIps];
    base[d] = scores[d][kBase];
  }
  const WinDrawLoss r = CompareScores(ips, base, 1e-9);
  EXPECT_EQ(r.wins, 42u);
  EXPECT_EQ(r.draws, 3u);
  EXPECT_EQ(r.losses, 1u);
  // Either reading supports the claim under reproduction: IPS beats BASE
  // on ~90% of the datasets.
  EXPECT_GE(r.wins, 41u);
}

TEST(PaperReproductionTest, IpsBestOnNineDatasets) {
  // Table VI footer: "Total best acc" for IPS is 9.
  const auto scores = PaperMatrix();
  size_t best_count = 0;
  for (const auto& row : scores) {
    const double best = *std::max_element(row.begin(), row.end());
    if (row[kIps] >= best - 1e-9) ++best_count;
  }
  EXPECT_EQ(best_count, 9u);
}

TEST(PaperReproductionTest, PaperSpeedupsMatchPublishedAverages) {
  // Table IV: average BASE->IPS speedup 1.20, IPS->BSPCOVER 25.74.
  double base_vs_ips = 0.0, ips_vs_bsp = 0.0;
  const auto rows = bench::PaperTable4();
  for (const auto& row : rows) {
    base_vs_ips += row.ips_s / row.base_s;
    ips_vs_bsp += row.bspcover_s / row.ips_s;
  }
  base_vs_ips /= static_cast<double>(rows.size());
  ips_vs_bsp /= static_cast<double>(rows.size());
  EXPECT_NEAR(base_vs_ips, 1.20, 0.02);
  EXPECT_NEAR(ips_vs_bsp, 25.74, 0.25);
}

TEST(PaperReproductionTest, NemenyiCdMatchesPaperSetting) {
  // 13 methods x 46 datasets -> CD ~ 2.69 (the Fig. 11 bar length).
  EXPECT_NEAR(NemenyiCriticalDifference(13, 46), 2.69, 0.01);
}

TEST(PaperReproductionTest, LookupHelpers) {
  ASSERT_NE(bench::FindPaperAccuracy("ArrowHead"), nullptr);
  EXPECT_DOUBLE_EQ(bench::FindPaperAccuracy("ArrowHead")->ips, 85.14);
  ASSERT_NE(bench::FindPaperEfficiency("FacesUCR"), nullptr);
  EXPECT_DOUBLE_EQ(bench::FindPaperEfficiency("FacesUCR")->bspcover_s,
                   1265.71);
  EXPECT_EQ(bench::FindPaperAccuracy("NotADataset"), nullptr);
}

}  // namespace
}  // namespace ips
