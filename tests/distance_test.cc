#include "core/distance.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/znorm.h"

namespace ips {
namespace {

// Reference Def. 4 profile: direct per-alignment computation.
std::vector<double> NaiveRawProfile(const std::vector<double>& q,
                                    const std::vector<double>& s) {
  std::vector<double> out(s.size() - q.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < q.size(); ++j) {
      const double d = s[i + j] - q[j];
      sum += d * d;
    }
    out[i] = sum / static_cast<double>(q.size());
  }
  return out;
}

TEST(SquaredEuclideanTest, KnownValue) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Euclidean(a, b), std::sqrt(5.0));
}

TEST(SquaredEuclideanTest, ZeroForIdentical) {
  const std::vector<double> a = {1.5, -2.5};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, a), 0.0);
}

TEST(DistanceProfileRawTest, MatchesNaive) {
  Rng rng(1);
  std::vector<double> q(9), s(60);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : s) v = rng.Gaussian();
  const auto fast = DistanceProfileRaw(q, s);
  const auto naive = NaiveRawProfile(q, s);
  ASSERT_EQ(fast.size(), naive.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-8);
  }
}

TEST(DistanceProfileRawTest, LongQueryTakesFftPath) {
  Rng rng(2);
  std::vector<double> q(kFftCutoff + 10), s(400);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : s) v = rng.Gaussian();
  const auto fast = DistanceProfileRaw(q, s);
  const auto naive = NaiveRawProfile(q, s);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-7);
  }
}

TEST(DistanceProfileRawTest, ExactMatchGivesZero) {
  std::vector<double> s = {1.0, 3.0, -2.0, 4.0, 0.5, 2.5};
  std::vector<double> q(s.begin() + 2, s.begin() + 5);
  const auto profile = DistanceProfileRaw(q, s);
  EXPECT_NEAR(profile[2], 0.0, 1e-12);
}

TEST(SubsequenceDistanceTest, SymmetricInArguments) {
  Rng rng(3);
  std::vector<double> a(20), b(50);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  EXPECT_DOUBLE_EQ(SubsequenceDistance(a, b), SubsequenceDistance(b, a));
}

TEST(SubsequenceDistanceTest, ContainedSubsequenceIsZero) {
  std::vector<double> s = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> q = {2.0, 3.0, 4.0};
  EXPECT_NEAR(SubsequenceDistance(q, s), 0.0, 1e-12);
}

TEST(SubsequenceDistanceTest, EqualLengthIsMeanSquaredDiff) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SubsequenceDistance(a, b), 4.0);
}

// Reference z-normalised profile via explicit window normalisation.
std::vector<double> NaiveZNormProfile(const std::vector<double>& q,
                                      const std::vector<double>& s) {
  const std::vector<double> zq = ZNormalize(q);
  std::vector<double> out(s.size() - q.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    std::vector<double> window(s.begin() + static_cast<ptrdiff_t>(i),
                               s.begin() +
                                   static_cast<ptrdiff_t>(i + q.size()));
    const std::vector<double> zw = ZNormalize(window);
    out[i] = Euclidean(zq, zw);
  }
  return out;
}

TEST(DistanceProfileZNormTest, MatchesNaive) {
  Rng rng(4);
  std::vector<double> q(12), s(80);
  for (auto& v : q) v = rng.Gaussian(2.0, 3.0);
  for (auto& v : s) v = rng.Gaussian(-1.0, 0.5);
  const auto fast = DistanceProfileZNorm(q, s);
  const auto naive = NaiveZNormProfile(q, s);
  ASSERT_EQ(fast.size(), naive.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-7) << "position " << i;
  }
}

TEST(DistanceProfileZNormTest, InvariantToQueryScaleAndShift) {
  Rng rng(5);
  std::vector<double> q(10), s(40);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : s) v = rng.Gaussian();
  std::vector<double> q2(q);
  for (double& v : q2) v = 5.0 * v + 100.0;
  const auto p1 = DistanceProfileZNorm(q, s);
  const auto p2 = DistanceProfileZNorm(q2, s);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_NEAR(p1[i], p2[i], 1e-8);
}

TEST(DistanceProfileZNormTest, FlatQueryAgainstFlatWindowIsZero) {
  const std::vector<double> q(5, 3.0);
  const std::vector<double> s(12, -1.0);
  for (double v : DistanceProfileZNorm(q, s)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DistanceProfileZNormTest, FlatQueryAgainstVaryingWindowIsSqrtM) {
  const std::vector<double> q(4, 1.0);
  std::vector<double> s = {0.0, 5.0, -3.0, 2.0, 7.0, 1.0};
  for (double v : DistanceProfileZNorm(q, s)) {
    EXPECT_NEAR(v, 2.0, 1e-10);  // sqrt(4)
  }
}

TEST(DistanceProfileZNormTest, PrecomputedStatsGiveSameResult) {
  Rng rng(6);
  std::vector<double> q(8), s(50);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : s) v = rng.Gaussian();
  const RollingStats stats = ComputeRollingStats(s, q.size());
  const auto with = DistanceProfileZNorm(q, s, &stats);
  const auto without = DistanceProfileZNorm(q, s);
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_DOUBLE_EQ(with[i], without[i]);
  }
}

TEST(SubsequenceDistanceZNormTest, SelfContainedIsZero) {
  Rng rng(7);
  std::vector<double> s(30);
  for (auto& v : s) v = rng.Gaussian();
  const std::vector<double> q(s.begin() + 5, s.begin() + 15);
  EXPECT_NEAR(SubsequenceDistanceZNorm(q, s), 0.0, 1e-8);
}

class RawProfileSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(RawProfileSweep, NonNegativeAndMatchesNaive) {
  const auto [m, n] = GetParam();
  Rng rng(100 + m);
  std::vector<double> q(m), s(n);
  for (auto& v : q) v = rng.Gaussian();
  for (auto& v : s) v = rng.Gaussian();
  const auto fast = DistanceProfileRaw(q, s);
  const auto naive = NaiveRawProfile(q, s);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_GE(fast[i], 0.0);
    EXPECT_NEAR(fast[i], naive[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RawProfileSweep,
    ::testing::Values(std::pair<size_t, size_t>{1, 5},
                      std::pair<size_t, size_t>{2, 2},
                      std::pair<size_t, size_t>{7, 200},
                      std::pair<size_t, size_t>{65, 300},
                      std::pair<size_t, size_t>{33, 33}));

}  // namespace
}  // namespace ips
