// Contract tests: IPS_CHECK preconditions must abort (not corrupt) on
// violated contracts. Uses gtest death tests.

#include <vector>

#include <gtest/gtest.h>

#include "core/resample.h"
#include "core/rng.h"
#include "core/time_series.h"
#include "core/znorm.h"
#include "matrix_profile/matrix_profile.h"
#include "stats/histogram.h"
#include "util/check.h"

namespace ips {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(IPS_CHECK(1 == 2), "IPS_CHECK failed");
  EXPECT_DEATH(IPS_CHECK_MSG(false, "context message"), "context message");
}

TEST(CheckDeathTest, MeanOfEmptyInput) {
  const std::vector<double> empty;
  EXPECT_DEATH(Mean(empty), "IPS_CHECK failed");
}

TEST(CheckDeathTest, RollingStatsWindowLargerThanInput) {
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DEATH(ComputeRollingStats(x, 3), "IPS_CHECK failed");
}

TEST(CheckDeathTest, ResampleEmptyInput) {
  const std::vector<double> empty;
  EXPECT_DEATH(ResampleToDim(empty, 4), "IPS_CHECK failed");
}

TEST(CheckDeathTest, SelfJoinWindowTooLarge) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_DEATH(SelfJoinProfile(x, 3), "IPS_CHECK failed");
}

TEST(CheckDeathTest, HistogramEmptyData) {
  const std::vector<double> empty;
  EXPECT_DEATH(Histogram(empty, 4), "IPS_CHECK failed");
}

TEST(CheckDeathTest, RngSampleTooLarge) {
  Rng rng(1);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 5), "IPS_CHECK failed");
}

TEST(CheckDeathTest, ExtractSubsequenceOutOfRange) {
  const TimeSeries t({1.0, 2.0, 3.0}, 0);
  EXPECT_DEATH(ExtractSubsequence(t, 2, 5), "IPS_CHECK failed");
}

}  // namespace
}  // namespace ips
