#include "ips/serialization.h"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

std::vector<Subsequence> SampleShapelets() {
  std::vector<Subsequence> out;
  Subsequence a;
  a.values = {1.5, -2.25, 0.0, 1e-17, 3.141592653589793};
  a.label = 0;
  a.series_index = 7;
  a.start = 12;
  out.push_back(a);
  Subsequence b;
  b.values = {-1.0};
  b.label = 3;
  b.series_index = -1;  // learned shapelet, no provenance
  b.start = 0;
  out.push_back(b);
  return out;
}

TEST(SerializationTest, RoundTripIsExact) {
  const auto original = SampleShapelets();
  const std::string text = SerializeShapelets(original);
  const auto restored = DeserializeShapelets(text);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*restored)[i].values, original[i].values);  // bit-exact
    EXPECT_EQ((*restored)[i].label, original[i].label);
    EXPECT_EQ((*restored)[i].series_index, original[i].series_index);
    EXPECT_EQ((*restored)[i].start, original[i].start);
  }
}

TEST(SerializationTest, EmptySetRoundTrips) {
  const auto restored = DeserializeShapelets(SerializeShapelets({}));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(SerializationTest, RejectsWrongMagic) {
  EXPECT_FALSE(DeserializeShapelets("not-a-shapelet-file\n0\n").has_value());
  EXPECT_FALSE(DeserializeShapelets("").has_value());
}

TEST(SerializationTest, RejectsTruncatedInput) {
  std::string text = SerializeShapelets(SampleShapelets());
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeShapelets(text).has_value());
}

TEST(SerializationTest, RejectsCountMismatch) {
  // Claim 5 shapelets but provide 2.
  std::string text = SerializeShapelets(SampleShapelets());
  const size_t pos = text.find("\n2\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "\n5\n");
  EXPECT_FALSE(DeserializeShapelets(text).has_value());
}

TEST(SerializationTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ips_ser_" + std::to_string(::getpid()) + ".txt");
  const auto original = SampleShapelets();
  ASSERT_TRUE(SaveShapelets(original, path.string()));
  const auto restored = LoadShapelets(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ((*restored)[0].values, original[0].values);
}

TEST(SerializationTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadShapelets("/nonexistent/path/shapelets.txt").has_value());
}

TEST(SerializationTest, DiscoveredShapeletsSurviveRoundTrip) {
  GeneratorSpec spec;
  spec.name = "sertest";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  const auto discovered = DiscoverShapelets(train, options).shapelets;
  const auto restored =
      DeserializeShapelets(SerializeShapelets(discovered));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), discovered.size());
  for (size_t i = 0; i < discovered.size(); ++i) {
    EXPECT_EQ((*restored)[i].values, discovered[i].values);
  }
}

// ---------------------------------------------------------------------------
// Run artifact (ips-run v2): shapelets + stats + trace in one file.

IpsRunStats SampleStats() {
  IpsRunStats s;
  s.candidate_gen_seconds = 1.25;
  s.dabf_build_seconds = 0.5;
  s.pruning_seconds = 0.125;
  s.selection_seconds = 2.0;
  s.transform_seconds = 0.75;
  s.backend_fit_seconds = 0.0625;
  s.profile_seconds = 1.0;
  s.motifs_generated = 100;
  s.discords_generated = 90;
  s.motifs_after_prune = 40;
  s.discords_after_prune = 30;
  s.shapelets = 6;
  s.profiles_computed = 12345;
  s.stats_cache_hits = 11;
  s.stats_cache_misses = 7;
  s.mp_joins_computed = 222;
  s.mp_qt_sweeps = 111;
  s.mp_joins_halved = 55;
  s.mp_cache_hits = 9;
  s.mp_cache_misses = 4;
  s.pool_regions = 17;
  s.pool_inline_regions = 3;
  s.pool_tasks_run = 5000;
  s.pool_steals = 21;
  return s;
}

void ExpectStatsEqual(const IpsRunStats& a, const IpsRunStats& b) {
  EXPECT_EQ(a.candidate_gen_seconds, b.candidate_gen_seconds);
  EXPECT_EQ(a.dabf_build_seconds, b.dabf_build_seconds);
  EXPECT_EQ(a.pruning_seconds, b.pruning_seconds);
  EXPECT_EQ(a.selection_seconds, b.selection_seconds);
  EXPECT_EQ(a.transform_seconds, b.transform_seconds);
  EXPECT_EQ(a.backend_fit_seconds, b.backend_fit_seconds);
  EXPECT_EQ(a.profile_seconds, b.profile_seconds);
  EXPECT_EQ(a.motifs_generated, b.motifs_generated);
  EXPECT_EQ(a.discords_generated, b.discords_generated);
  EXPECT_EQ(a.motifs_after_prune, b.motifs_after_prune);
  EXPECT_EQ(a.discords_after_prune, b.discords_after_prune);
  EXPECT_EQ(a.shapelets, b.shapelets);
  EXPECT_EQ(a.profiles_computed, b.profiles_computed);
  EXPECT_EQ(a.stats_cache_hits, b.stats_cache_hits);
  EXPECT_EQ(a.stats_cache_misses, b.stats_cache_misses);
  EXPECT_EQ(a.mp_joins_computed, b.mp_joins_computed);
  EXPECT_EQ(a.mp_qt_sweeps, b.mp_qt_sweeps);
  EXPECT_EQ(a.mp_joins_halved, b.mp_joins_halved);
  EXPECT_EQ(a.mp_cache_hits, b.mp_cache_hits);
  EXPECT_EQ(a.mp_cache_misses, b.mp_cache_misses);
  EXPECT_EQ(a.pool_regions, b.pool_regions);
  EXPECT_EQ(a.pool_inline_regions, b.pool_inline_regions);
  EXPECT_EQ(a.pool_tasks_run, b.pool_tasks_run);
  EXPECT_EQ(a.pool_steals, b.pool_steals);
}

TEST(RunSerializationTest, StatsJsonRoundTripsEveryField) {
  const IpsRunStats original = SampleStats();
  const auto restored = RunStatsFromJson(RunStatsToJson(original));
  ASSERT_TRUE(restored.has_value());
  ExpectStatsEqual(*restored, original);
}

TEST(RunSerializationTest, StatsJsonRejectsMissingField) {
  obs::JsonValue json = RunStatsToJson(SampleStats());
  obs::JsonValue pruned = obs::JsonValue::Object();
  for (const auto& [key, value] : json.members()) {
    if (key != "motifs_generated") pruned.Set(key, value);
  }
  EXPECT_FALSE(RunStatsFromJson(pruned).has_value());
}

TEST(RunSerializationTest, RunResultRoundTripIsExact) {
  RunResult original;
  original.shapelets = SampleShapelets();
  original.stats = SampleStats();
  obs::TraceSpan span;
  span.path = "discover/candidate_gen";
  span.count = 2;
  span.seconds = 0.375;
  original.trace.spans.push_back(span);

  const std::string text = SerializeRunResult(original);
  const auto restored = DeserializeRunResult(text);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->shapelets.size(), original.shapelets.size());
  for (size_t i = 0; i < original.shapelets.size(); ++i) {
    EXPECT_EQ(restored->shapelets[i].values, original.shapelets[i].values);
    EXPECT_EQ(restored->shapelets[i].label, original.shapelets[i].label);
  }
  ExpectStatsEqual(restored->stats, original.stats);
  ASSERT_EQ(restored->trace.spans.size(), 1u);
  EXPECT_EQ(restored->trace.spans[0].path, "discover/candidate_gen");
  EXPECT_EQ(restored->trace.spans[0].count, 2u);
  EXPECT_EQ(restored->trace.spans[0].seconds, 0.375);
}

TEST(RunSerializationTest, HeaderCarriesCurrentVersion) {
  RunResult result;
  result.shapelets = SampleShapelets();
  const std::string text = SerializeRunResult(result);
  EXPECT_EQ(text.rfind("ips-run v2.1\n", 0), 0u);
  EXPECT_EQ(kRunFormatVersion, (FormatVersion{2, 1}));
}

TEST(RunSerializationTest, RejectsUnknownMajorVersion) {
  RunResult result;
  result.shapelets = SampleShapelets();
  std::string text = SerializeRunResult(result);
  const size_t pos = text.find("v2.1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "v3.0");
  EXPECT_FALSE(DeserializeRunResult(text).has_value());
}

TEST(RunSerializationTest, AcceptsNewerMinorWithinMajor) {
  RunResult result;
  result.shapelets = SampleShapelets();
  result.stats = SampleStats();
  std::string text = SerializeRunResult(result);
  const size_t pos = text.find("v2.1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "v2.7");
  const auto restored = DeserializeRunResult(text);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->shapelets.size(), result.shapelets.size());
}

TEST(RunSerializationTest, MetricRoundTripsForEveryRegisteredMetric) {
  for (size_t m = 0; m < kMetricCount; ++m) {
    RunResult result;
    result.shapelets = SampleShapelets();
    result.metric = static_cast<MetricId>(m);
    const std::string text = SerializeRunResult(result);
    EXPECT_NE(text.find(std::string("metric ") + MetricName(result.metric) +
                        "\n"),
              std::string::npos);
    const auto restored = DeserializeRunResult(text);
    ASSERT_TRUE(restored.has_value()) << MetricName(result.metric);
    EXPECT_EQ(restored->metric, result.metric);
  }
}

TEST(RunSerializationTest, RejectsUnknownMetricWithClearError) {
  RunResult result;
  result.shapelets = SampleShapelets();
  std::string text = SerializeRunResult(result);
  const std::string line = std::string("metric ") + MetricName(result.metric);
  const size_t pos = text.find(line);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, line.size(), "metric hyperbolic_wavelet");
  std::string error;
  EXPECT_FALSE(DeserializeRunResult(text, &error).has_value());
  EXPECT_NE(error.find("unknown metric"), std::string::npos) << error;
  EXPECT_NE(error.find("hyperbolic_wavelet"), std::string::npos) << error;
}

TEST(RunSerializationTest, V20ArtifactDefaultsToZNormMetric) {
  // Rewrite a current artifact as v2.0: header downgraded, metric line
  // dropped. Pre-metric artifacts were implicitly z-normalised Euclidean.
  RunResult result;
  result.shapelets = SampleShapelets();
  result.stats = SampleStats();
  result.metric = MetricId::kCosine;
  std::string text = SerializeRunResult(result);
  const size_t pos = text.find("v2.1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "v2.0");
  const std::string line =
      std::string("metric ") + MetricName(MetricId::kCosine) + "\n";
  const size_t metric_pos = text.find(line);
  ASSERT_NE(metric_pos, std::string::npos);
  text.erase(metric_pos, line.size());
  std::string error;
  const auto restored = DeserializeRunResult(text, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->metric, MetricId::kZNormEuclidean);
}

TEST(RunSerializationTest, RejectsGarbageAndV1OnlyInput) {
  EXPECT_FALSE(DeserializeRunResult("").has_value());
  EXPECT_FALSE(DeserializeRunResult("not-a-run\n").has_value());
  // A bare v1 shapelet block is not a run artifact.
  EXPECT_FALSE(
      DeserializeRunResult(SerializeShapelets(SampleShapelets())).has_value());
}

TEST(RunSerializationTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ips_run_" + std::to_string(::getpid()) + ".txt");
  RunResult original;
  original.shapelets = SampleShapelets();
  original.stats = SampleStats();
  ASSERT_TRUE(SaveRunResult(original, path.string()));
  const auto restored = LoadRunResult(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->shapelets.size(), original.shapelets.size());
  ExpectStatsEqual(restored->stats, original.stats);
}

TEST(RunSerializationTest, DiscoveredRunSurvivesRoundTrip) {
  GeneratorSpec spec;
  spec.name = "serrun";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  const RunResult run = DiscoverShapelets(train, options);
  const auto restored = DeserializeRunResult(SerializeRunResult(run));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->shapelets.size(), run.shapelets.size());
  for (size_t i = 0; i < run.shapelets.size(); ++i) {
    EXPECT_EQ(restored->shapelets[i].values, run.shapelets[i].values);
  }
  ExpectStatsEqual(restored->stats, run.stats);
  EXPECT_EQ(restored->trace.spans.size(), run.trace.spans.size());
}

}  // namespace
}  // namespace ips
