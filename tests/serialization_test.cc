#include "ips/serialization.h"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

std::vector<Subsequence> SampleShapelets() {
  std::vector<Subsequence> out;
  Subsequence a;
  a.values = {1.5, -2.25, 0.0, 1e-17, 3.141592653589793};
  a.label = 0;
  a.series_index = 7;
  a.start = 12;
  out.push_back(a);
  Subsequence b;
  b.values = {-1.0};
  b.label = 3;
  b.series_index = -1;  // learned shapelet, no provenance
  b.start = 0;
  out.push_back(b);
  return out;
}

TEST(SerializationTest, RoundTripIsExact) {
  const auto original = SampleShapelets();
  const std::string text = SerializeShapelets(original);
  const auto restored = DeserializeShapelets(text);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*restored)[i].values, original[i].values);  // bit-exact
    EXPECT_EQ((*restored)[i].label, original[i].label);
    EXPECT_EQ((*restored)[i].series_index, original[i].series_index);
    EXPECT_EQ((*restored)[i].start, original[i].start);
  }
}

TEST(SerializationTest, EmptySetRoundTrips) {
  const auto restored = DeserializeShapelets(SerializeShapelets({}));
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->empty());
}

TEST(SerializationTest, RejectsWrongMagic) {
  EXPECT_FALSE(DeserializeShapelets("not-a-shapelet-file\n0\n").has_value());
  EXPECT_FALSE(DeserializeShapelets("").has_value());
}

TEST(SerializationTest, RejectsTruncatedInput) {
  std::string text = SerializeShapelets(SampleShapelets());
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeShapelets(text).has_value());
}

TEST(SerializationTest, RejectsCountMismatch) {
  // Claim 5 shapelets but provide 2.
  std::string text = SerializeShapelets(SampleShapelets());
  const size_t pos = text.find("\n2\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "\n5\n");
  EXPECT_FALSE(DeserializeShapelets(text).has_value());
}

TEST(SerializationTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ips_ser_" + std::to_string(::getpid()) + ".txt");
  const auto original = SampleShapelets();
  ASSERT_TRUE(SaveShapelets(original, path.string()));
  const auto restored = LoadShapelets(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ((*restored)[0].values, original[0].values);
}

TEST(SerializationTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadShapelets("/nonexistent/path/shapelets.txt").has_value());
}

TEST(SerializationTest, DiscoveredShapeletsSurviveRoundTrip) {
  GeneratorSpec spec;
  spec.name = "sertest";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};
  const auto discovered = DiscoverShapelets(train, options);
  const auto restored =
      DeserializeShapelets(SerializeShapelets(discovered));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), discovered.size());
  for (size_t i = 0; i < discovered.size(); ++i) {
    EXPECT_EQ((*restored)[i].values, discovered[i].values);
  }
}

}  // namespace
}  // namespace ips
