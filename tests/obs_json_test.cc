#include "obs/json.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace ips::obs {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Dump(), "null");
}

TEST(JsonValueTest, ScalarsDump) {
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, IntegralNumbersHaveNoExponent) {
  // Counter deltas must stay grep-able: no 1e+06 style output.
  EXPECT_EQ(JsonValue(uint64_t{1000000}).Dump(), "1000000");
  EXPECT_EQ(JsonValue(0).Dump(), "0");
}

TEST(JsonValueTest, DoublesRoundTripBitExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-17, 3.141592653589793,
                           std::numeric_limits<double>::min()};
  for (const double d : values) {
    const auto parsed = JsonValue::Parse(JsonValue(d).Dump());
    ASSERT_TRUE(parsed.has_value()) << d;
    EXPECT_EQ(parsed->AsDouble(), d);
  }
}

TEST(JsonValueTest, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  obj.Set("mango", 3);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  // Overwrite keeps the first-insert position.
  obj.Set("zebra", 9);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":9,\"apple\":2,\"mango\":3}");
}

TEST(JsonValueTest, NestedRoundTrip) {
  JsonValue inner = JsonValue::Object();
  inner.Set("count", uint64_t{7});
  inner.Set("seconds", 0.5);
  JsonValue arr = JsonValue::Array();
  arr.Append(inner);
  arr.Append(JsonValue("text with \"quotes\" and \\slash\n"));
  JsonValue root = JsonValue::Object();
  root.Set("spans", arr);
  root.Set("ok", true);

  const auto parsed = JsonValue::Parse(root.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), root.Dump());
  EXPECT_EQ(parsed->Get("spans").At(0).Get("count").AsUint64(), 7u);
  EXPECT_EQ(parsed->Get("spans").At(1).AsString(),
            "text with \"quotes\" and \\slash\n");
  EXPECT_TRUE(parsed->Get("ok").AsBool());
}

TEST(JsonValueTest, PrettyPrintParsesBack) {
  JsonValue root = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append(2);
  root.Set("xs", arr);
  const std::string pretty = root.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto parsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), root.Dump());
}

TEST(JsonValueTest, WrongKindAccessReturnsFallback) {
  const JsonValue num(5);
  EXPECT_EQ(num.AsBool(true), true);
  EXPECT_EQ(JsonValue("x").AsDouble(-1.0), -1.0);
  EXPECT_EQ(num.Find("k"), nullptr);
  EXPECT_TRUE(num.Get("k").is_null());
  EXPECT_TRUE(num.At(0).is_null());
  JsonValue obj = JsonValue::Object();
  obj.Set("present", 1);
  EXPECT_EQ(obj.Find("absent"), nullptr);
  EXPECT_TRUE(obj.At(99).is_null());
}

TEST(JsonValueTest, AsUint64OnNonIntegralFallsBack) {
  EXPECT_EQ(JsonValue(2.5).AsUint64(77), 77u);
  EXPECT_EQ(JsonValue(-1).AsUint64(77), 77u);
  EXPECT_EQ(JsonValue(uint64_t{123}).AsUint64(), 123u);
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
  // Trailing garbage after a complete document is an error.
  EXPECT_FALSE(JsonValue::Parse("{} x").has_value());
  EXPECT_FALSE(JsonValue::Parse("1 2").has_value());
}

TEST(JsonValueTest, ParseAcceptsWhitespaceAndEscapes) {
  const auto v = JsonValue::Parse(" { \"a\" : [ 1 , \"\\t\\u0041\" ] } ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Get("a").At(1).AsString(), "\tA");
}

}  // namespace
}  // namespace ips::obs
