#include "core/distance_engine.h"

#include <cmath>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/rng.h"
#include "data/generator.h"
#include "transform/shapelet_transform.h"

namespace ips {
namespace {

std::vector<double> RandomSeries(Rng& rng, size_t n) {
  std::vector<double> s(n);
  for (double& v : s) v = rng.Uniform(-2.0, 2.0);
  return s;
}

Dataset SyntheticData(const char* name, size_t train_size, size_t length) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = train_size;
  spec.test_size = 2;
  spec.length = length;
  return GenerateDataset(spec).train;
}

// ---------------------------------------------------------------- single pair

TEST(DistanceEngineTest, SubsequenceMinMatchesKernelBitwise) {
  Rng rng(7);
  DistanceEngine engine(1);
  for (const auto& [m, n] : std::vector<std::pair<size_t, size_t>>{
           {1, 1}, {5, 5}, {8, 31}, {31, 8}, {63, 200}, {64, 64}}) {
    const std::vector<double> a = RandomSeries(rng, m);
    const std::vector<double> b = RandomSeries(rng, n);
    const double expected = SubsequenceDistance(a, b);
    EXPECT_EQ(engine.SubsequenceMin(a, b), expected) << m << "x" << n;
    // Cached second evaluation must agree exactly with the first.
    EXPECT_EQ(engine.SubsequenceMin(a, b, /*cache_b=*/true), expected);
    EXPECT_EQ(engine.SubsequenceMin(a, b, /*cache_b=*/true), expected);
  }
}

TEST(DistanceEngineTest, SubsequenceMinFftPathMatchesKernelBitwise) {
  Rng rng(11);
  // Long query over a long series forces the FFT sliding-product path
  // (m >= kFftCutoff and the cost model prefers n log n).
  const std::vector<double> query = RandomSeries(rng, 512);
  const std::vector<double> series = RandomSeries(rng, 4096);
  const double expected = SubsequenceDistance(query, series);

  DistanceEngine engine(1);
  EXPECT_EQ(engine.SubsequenceMin(query, series), expected);
  // With series-side FFT/prefix caching: first call fills, second call hits.
  EXPECT_EQ(engine.SubsequenceMin(query, series, /*cache_b=*/true), expected);
  EXPECT_EQ(engine.SubsequenceMin(query, series, /*cache_b=*/true), expected);
  EXPECT_GT(engine.counters().stats_cache_hits, 0u);
}

TEST(DistanceEngineTest, SubsequenceMinZNormMatchesKernelBitwise) {
  Rng rng(13);
  DistanceEngine engine(1);
  for (const auto& [m, n] : std::vector<std::pair<size_t, size_t>>{
           {4, 24}, {16, 16}, {24, 4}, {80, 640}}) {
    const std::vector<double> a = RandomSeries(rng, m);
    const std::vector<double> b = RandomSeries(rng, n);
    const double expected = SubsequenceDistanceZNorm(a, b);
    EXPECT_EQ(engine.SubsequenceMinZNorm(a, b), expected) << m << "x" << n;
    EXPECT_EQ(engine.SubsequenceMinZNorm(a, b, /*cache_b=*/true), expected);
    EXPECT_EQ(engine.SubsequenceMinZNorm(a, b, /*cache_b=*/true), expected);
  }
}

TEST(DistanceEngineTest, ZNormHandlesFlatWindows) {
  DistanceEngine engine(1);
  const std::vector<double> flat(8, 3.0);
  const std::vector<double> mixed{0, 0, 0, 0, 0, 0, 0, 0, 1, 5, -2, 4,
                                  1, 2, 3, 4};
  EXPECT_EQ(engine.SubsequenceMinZNorm(flat, mixed),
            SubsequenceDistanceZNorm(flat, mixed));
  EXPECT_EQ(engine.SubsequenceMinZNorm(mixed, flat),
            SubsequenceDistanceZNorm(mixed, flat));
  EXPECT_EQ(engine.SubsequenceMinZNorm(flat, flat),
            SubsequenceDistanceZNorm(flat, flat));
}

// -------------------------------------------------------------------- batched

TEST(DistanceEngineTest, ProfileAgainstSeriesMatchesKernelBitwise) {
  Rng rng(17);
  DistanceEngine engine(1);
  for (const size_t m : {3u, 70u}) {
    const std::vector<double> query = RandomSeries(rng, m);
    const std::vector<double> series = RandomSeries(rng, 300);
    EXPECT_EQ(engine.ProfileAgainstSeries(query, series),
              DistanceProfileRaw(query, series));
  }
}

TEST(DistanceEngineTest, ProfileAgainstDatasetMatchesPerSeriesProfiles) {
  const Dataset train = SyntheticData("engine-profile", 8, 96);
  Rng rng(19);
  const std::vector<double> query = RandomSeries(rng, 24);
  DistanceEngine engine(2);
  const auto profiles = engine.ProfileAgainstDataset(query, train);
  ASSERT_EQ(profiles.size(), train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(profiles[i], DistanceProfileRaw(query, train[i].view())) << i;
  }
}

TEST(DistanceEngineTest, MinAgainstDatasetMatchesSerialLoop) {
  const Dataset train = SyntheticData("engine-min", 9, 80);
  Rng rng(23);
  const std::vector<double> query = RandomSeries(rng, 120);
  DistanceEngine engine(2);
  const std::vector<double> raw =
      engine.MinAgainstDataset(query, train, MetricId::kRawSquaredEuclidean);
  const std::vector<double> zn =
      engine.MinAgainstDataset(query, train, MetricId::kZNormEuclidean);
  ASSERT_EQ(raw.size(), train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(raw[i], SubsequenceDistance(query, train[i].view())) << i;
    EXPECT_EQ(zn[i], SubsequenceDistanceZNorm(query, train[i].view())) << i;
  }
}

TEST(DistanceEngineTest, PairwiseMatrixMatchesNestedLoops) {
  const Dataset train = SyntheticData("engine-pairwise", 6, 72);
  std::vector<Subsequence> cands;
  for (size_t i = 0; i < train.size(); ++i) {
    cands.push_back(ExtractSubsequence(train[i], i, 20 + (i % 3)));
  }
  const size_t n = cands.size();

  for (const size_t threads : {1u, 2u, 8u}) {
    DistanceEngine engine(threads);
    const std::vector<double> sym = engine.PairwiseSubsequenceMin(cands);
    const std::vector<double> naive =
        engine.PairwiseSubsequenceMin(cands, /*symmetric=*/false);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const double expected =
            i == j ? 0.0
                   : SubsequenceDistance(cands[i].view(), cands[j].view());
        EXPECT_EQ(sym[i * n + j], expected) << i << "," << j;
        EXPECT_EQ(naive[i * n + j], expected) << i << "," << j;
      }
    }
  }
}

TEST(DistanceEngineTest, TransformBatchMatchesTransformSeriesBitwise) {
  const Dataset train = SyntheticData("engine-transform", 10, 64);
  std::vector<Subsequence> shapelets;
  for (size_t i = 0; i < 4; ++i) {
    shapelets.push_back(ExtractSubsequence(train[i], i, 12));
  }
  for (const MetricId metric :
       {MetricId::kRawSquaredEuclidean, MetricId::kZNormEuclidean,
        MetricId::kEuclidean, MetricId::kCosine}) {
    DistanceEngine engine(2);
    const auto rows = engine.TransformBatch(train, shapelets, metric);
    ASSERT_EQ(rows.size(), train.size());
    for (size_t i = 0; i < train.size(); ++i) {
      EXPECT_EQ(rows[i], TransformSeries(train[i], shapelets, metric)) << i;
    }
  }
}

TEST(DistanceEngineTest, BatchedResultsIdenticalAcrossThreadCounts) {
  const Dataset train = SyntheticData("engine-threads", 12, 100);
  std::vector<Subsequence> cands;
  for (size_t i = 0; i < train.size(); ++i) {
    cands.push_back(ExtractSubsequence(train[i], 2 * i, 16 + (i % 5)));
  }
  DistanceEngine serial(1);
  const auto pair_base = serial.PairwiseSubsequenceMin(cands);
  const auto rows_base =
      serial.TransformBatch(train, cands, MetricId::kZNormEuclidean);
  for (const size_t threads : {2u, 8u}) {
    DistanceEngine engine(threads);
    EXPECT_EQ(engine.PairwiseSubsequenceMin(cands), pair_base);
    EXPECT_EQ(engine.TransformBatch(train, cands, MetricId::kZNormEuclidean),
              rows_base);
  }
}

// ------------------------------------------------------------ instrumentation

TEST(DistanceEngineTest, CountersTrackProfilesAndCacheTraffic) {
  Rng rng(29);
  const std::vector<double> a = RandomSeries(rng, 16);
  const std::vector<double> b = RandomSeries(rng, 128);
  DistanceEngine engine(1);
  EXPECT_EQ(engine.counters().profiles_computed, 0u);

  engine.SubsequenceMin(a, b, /*cache_b=*/true);
  const EngineCounters first = engine.counters();
  EXPECT_EQ(first.profiles_computed, 1u);
  EXPECT_GT(first.stats_cache_misses, 0u);
  EXPECT_EQ(first.stats_cache_hits, 0u);

  engine.SubsequenceMin(a, b, /*cache_b=*/true);
  const EngineCounters second = engine.counters();
  EXPECT_EQ(second.profiles_computed, 2u);
  EXPECT_EQ(second.stats_cache_misses, first.stats_cache_misses);
  EXPECT_GT(second.stats_cache_hits, 0u);

  // ClearCaches forces recomputation; ResetCounters zeroes the telemetry.
  engine.ClearCaches();
  engine.ResetCounters();
  engine.SubsequenceMin(a, b, /*cache_b=*/true);
  const EngineCounters third = engine.counters();
  EXPECT_EQ(third.profiles_computed, 1u);
  EXPECT_GT(third.stats_cache_misses, 0u);
  EXPECT_EQ(third.stats_cache_hits, 0u);
}

// ------------------------------------------------------------ threaded stress

// Several threads hammer one shared engine with batched APIs while others
// run the raw kernels on the same data; every thread must observe results
// bitwise identical to the serial baselines. Run under
// -fsanitize=thread in CI (the IPS_SANITIZE build) to catch data races.
TEST(DistanceEngineStressTest, ConcurrentBatchesMatchSerialBitwise) {
  const Dataset train = SyntheticData("engine-stress", 10, 128);
  std::vector<Subsequence> cands;
  for (size_t i = 0; i < train.size(); ++i) {
    cands.push_back(ExtractSubsequence(train[i], i, 24));
  }

  DistanceEngine baseline(1);
  const auto pair_base = baseline.PairwiseSubsequenceMin(cands);
  const auto rows_base =
      baseline.TransformBatch(train, cands, MetricId::kRawSquaredEuclidean);
  Rng rng(31);
  const std::vector<double> query = RandomSeries(rng, 32);
  const auto profile_base = baseline.ProfileAgainstDataset(query, train);

  DistanceEngine shared(2);
  std::atomic<int> mismatches{0};
  auto check = [&](bool ok) {
    if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 4; ++iter) {
        check(shared.PairwiseSubsequenceMin(cands) == pair_base);
        check(shared.TransformBatch(train, cands, MetricId::kRawSquaredEuclidean) ==
              rows_base);
        check(shared.ProfileAgainstDataset(query, train) == profile_base);
      }
    });
  }
  // Raw-kernel threads sharing the same underlying buffers.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 4; ++iter) {
        for (size_t i = 0; i < cands.size(); ++i) {
          check(SubsequenceDistance(query, cands[i].view()) ==
                shared.SubsequenceMin(query, cands[i].view()));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ips
