#include "ips/instance_profile.h"

#include <cmath>

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/rng.h"
#include "core/znorm.h"

namespace ips {
namespace {

std::vector<TimeSeries> RandomSample(Rng& rng, size_t count, size_t len) {
  std::vector<TimeSeries> out;
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> v(len);
    for (auto& x : v) x = rng.Gaussian();
    out.emplace_back(std::move(v), 0);
  }
  return out;
}

// Brute-force Def. 9: nearest z-normalised window among OTHER instances.
double BruteIpEntry(const std::vector<TimeSeries>& sample, size_t m,
                    size_t offset, size_t w) {
  const std::vector<double> query(
      sample[m].values.begin() + static_cast<ptrdiff_t>(offset),
      sample[m].values.begin() + static_cast<ptrdiff_t>(offset + w));
  double best = std::numeric_limits<double>::infinity();
  for (size_t other = 0; other < sample.size(); ++other) {
    if (other == m || sample[other].length() < w) continue;
    const auto profile = DistanceProfileZNorm(query, sample[other].view());
    for (double d : profile) best = std::min(best, d);
  }
  return best;
}

TEST(InstanceProfileTest, MatchesBruteForce) {
  Rng rng(1);
  const auto sample = RandomSample(rng, 3, 40);
  const size_t w = 8;
  const InstanceProfile ip = ComputeInstanceProfile(sample, w);
  ASSERT_EQ(ip.size(), 3 * (40 - w + 1));
  for (size_t e = 0; e < ip.size(); e += 7) {
    const double brute =
        BruteIpEntry(sample, ip.instances[e], ip.offsets[e], w);
    EXPECT_NEAR(ip.values[e], brute, 1e-6) << "entry " << e;
  }
}

TEST(InstanceProfileTest, ProvenanceCoversAllWindows) {
  Rng rng(2);
  const auto sample = RandomSample(rng, 2, 20);
  const InstanceProfile ip = ComputeInstanceProfile(sample, 5);
  std::vector<std::vector<bool>> seen(2, std::vector<bool>(16, false));
  for (size_t e = 0; e < ip.size(); ++e) {
    seen[ip.instances[e]][ip.offsets[e]] = true;
  }
  for (const auto& inst : seen) {
    for (bool b : inst) EXPECT_TRUE(b);
  }
}

TEST(InstanceProfileTest, SharedPatternYieldsMotif) {
  Rng rng(3);
  auto sample = RandomSample(rng, 3, 100);
  // Plant the same strong pattern in every instance at different offsets.
  const std::vector<size_t> offsets = {10, 50, 70};
  for (size_t m = 0; m < 3; ++m) {
    for (size_t i = 0; i < 12; ++i) {
      sample[m].values[offsets[m] + i] +=
          6.0 * std::sin(0.7 * static_cast<double>(i));
    }
  }
  const InstanceProfile ip = ComputeInstanceProfile(sample, 12);
  const auto motifs = InstanceProfileMotifs(ip, 1, 12);
  ASSERT_EQ(motifs.size(), 1u);
  const size_t e = motifs[0];
  const size_t expected = offsets[ip.instances[e]];
  EXPECT_NEAR(static_cast<double>(ip.offsets[e]),
              static_cast<double>(expected), 3.0);
}

TEST(InstanceProfileTest, SingleInstanceFallsBackToSelfJoin) {
  Rng rng(4);
  const auto sample = RandomSample(rng, 1, 50);
  const InstanceProfile ip = ComputeInstanceProfile(sample, 8);
  EXPECT_EQ(ip.size(), 50u - 8 + 1);
  for (double v : ip.values) EXPECT_GE(v, 0.0);
}

TEST(InstanceProfileTest, ShortInstancesSkipped) {
  Rng rng(5);
  std::vector<TimeSeries> sample = RandomSample(rng, 2, 30);
  sample.push_back(TimeSeries(std::vector<double>(4, 1.0), 0));  // too short
  const InstanceProfile ip = ComputeInstanceProfile(sample, 10);
  for (size_t e = 0; e < ip.size(); ++e) {
    EXPECT_LT(ip.instances[e], 2u);
  }
}

TEST(InstanceProfileTest, NeighborOrderOneMatchesDefault) {
  Rng rng(8);
  const auto sample = RandomSample(rng, 3, 30);
  const InstanceProfile a = ComputeInstanceProfile(sample, 6);
  const InstanceProfile b = ComputeInstanceProfile(sample, 6, 1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.values[e], b.values[e]);
  }
}

TEST(InstanceProfileTest, HigherNeighborOrdersAreMonotone) {
  // The k-th smallest per-instance distance is non-decreasing in k.
  Rng rng(9);
  const auto sample = RandomSample(rng, 4, 30);
  const InstanceProfile k1 = ComputeInstanceProfile(sample, 6, 1);
  const InstanceProfile k2 = ComputeInstanceProfile(sample, 6, 2);
  const InstanceProfile k3 = ComputeInstanceProfile(sample, 6, 3);
  ASSERT_EQ(k1.size(), k2.size());
  for (size_t e = 0; e < k1.size(); ++e) {
    EXPECT_LE(k1.values[e], k2.values[e] + 1e-12);
    EXPECT_LE(k2.values[e], k3.values[e] + 1e-12);
  }
}

TEST(InstanceProfileTest, NeighborOrderClampedToSampleSize) {
  Rng rng(10);
  const auto sample = RandomSample(rng, 3, 30);  // only 2 other instances
  const InstanceProfile k2 = ComputeInstanceProfile(sample, 6, 2);
  const InstanceProfile k9 = ComputeInstanceProfile(sample, 6, 9);
  for (size_t e = 0; e < k2.size(); ++e) {
    EXPECT_DOUBLE_EQ(k2.values[e], k9.values[e]);
  }
}

TEST(InstanceProfileMotifsTest, ExclusionAppliesWithinInstanceOnly) {
  InstanceProfile ip;
  // Two instances, adjacent offsets with tiny values.
  ip.values = {0.1, 0.2, 0.15, 0.25};
  ip.instances = {0, 0, 1, 1};
  ip.offsets = {5, 6, 5, 6};
  const auto motifs = InstanceProfileMotifs(ip, 4, 8);
  // Within each instance the two offsets are inside the exclusion zone, so
  // one survives per instance.
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(ip.instances[motifs[0]], 0u);
  EXPECT_EQ(ip.instances[motifs[1]], 1u);
}

TEST(InstanceProfileDiscordsTest, PicksLargest) {
  InstanceProfile ip;
  ip.values = {0.5, 3.0, 1.0};
  ip.instances = {0, 1, 2};
  ip.offsets = {0, 0, 0};
  const auto discords = InstanceProfileDiscords(ip, 1, 4);
  ASSERT_EQ(discords.size(), 1u);
  EXPECT_EQ(discords[0], 1u);
}

}  // namespace
}  // namespace ips
