// Concurrency tests of the serving hot-swap contract (serve/model_registry.h),
// run under TSan/ASan via the `concurrency` CTest label: classify traffic
// hammers the registry while models are swapped underneath it. Every
// in-flight prediction must be bitwise identical to a serial run against
// whichever model version it started on, and no request may ever observe
// a half-loaded model (nullptr, empty shapelets, or labels matching
// neither version).

#include "serve/model_registry.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/ucr_loader.h"
#include "ips/pipeline.h"
#include "ips/serialization.h"
#include "serve/admission_queue.h"

namespace ips::serve {
namespace {

IpsOptions FastOptions() {
  IpsOptions o;
  o.sample_count = 4;
  o.sample_size = 3;
  o.length_ratios = {0.2};
  o.shapelets_per_class = 3;
  return o;
}

/// Two genuinely different artifacts over one train split, plus the
/// serially-computed expected labels for each. Odd registry versions serve
/// artifact A (loaded first), even versions artifact B (the swap target).
class RegistrySwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    namespace fs = std::filesystem;
    dir_ = fs::temp_directory_path() /
           ("ips_reg_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    artifact_path_ = (dir_ / "model.ipsrun").string();
    train_path_ = (dir_ / "train.tsv").string();

    GeneratorSpec spec;
    spec.name = "registry";
    spec.train_size = 12;
    spec.test_size = 8;
    spec.length = 64;
    data_ = GenerateDataset(spec);
    ASSERT_TRUE(SaveUcrFile(data_.train, train_path_));

    IpsClassifier a(FastOptions());
    a.Fit(data_.train);
    artifact_a_ = SerializeRunResult(a.result());

    IpsOptions alt = FastOptions();
    alt.seed = 777;
    alt.shapelets_per_class = 2;
    IpsClassifier b(alt);
    b.Fit(data_.train);
    artifact_b_ = SerializeRunResult(b.result());
    ASSERT_NE(artifact_a_, artifact_b_) << "swap would be unobservable";

    // The serial ground truth per artifact: rebuild exactly the way the
    // registry does and predict the test batch once.
    IpsClassifier serial_a(FastOptions());
    serial_a.FitFromRunResult(data_.train, a.result());
    expected_a_ = serial_a.PredictBatch(data_.test);
    IpsClassifier serial_b(FastOptions());
    serial_b.FitFromRunResult(data_.train, b.result());
    expected_b_ = serial_b.PredictBatch(data_.test);

    WriteArtifact(artifact_a_);
    std::string error;
    ASSERT_EQ(registry_.Load("m",
                             ModelSource{artifact_path_, train_path_,
                                         FastOptions()},
                             &error),
              1u)
        << error;
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteArtifact(const std::string& text) {
    std::ofstream out(artifact_path_, std::ios::trunc);
    out << text;
  }

  const std::vector<int>& ExpectedForVersion(uint32_t version) const {
    return version % 2 == 1 ? expected_a_ : expected_b_;
  }

  std::filesystem::path dir_;
  std::string artifact_path_, train_path_;
  TrainTestSplit data_;
  std::string artifact_a_, artifact_b_;
  std::vector<int> expected_a_, expected_b_;
  ModelRegistry registry_;
};

TEST_F(RegistrySwapTest, ClassifyTrafficDuringHotSwaps) {
  constexpr int kReaders = 4;
  constexpr int kSwaps = 6;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ServedModel> model = registry_.Get("m");
        // A registered name must never resolve to nothing or to a model
        // without shapelets, no matter where the swap is.
        if (model == nullptr || model->shapelet_count() == 0) {
          failures.fetch_add(1);
          continue;
        }
        const uint32_t version = model->version();
        const std::vector<int> labels = model->Classify(data_.test);
        // Bitwise identical to the serial run against the version this
        // request started on -- even if the slot was swapped mid-call.
        if (labels != ExpectedForVersion(version)) failures.fetch_add(1);
      }
    });
  }

  uint32_t version = 1;
  for (int s = 0; s < kSwaps; ++s) {
    WriteArtifact(s % 2 == 0 ? artifact_b_ : artifact_a_);
    std::string error;
    const uint32_t swapped = registry_.Reload("m", &error);
    ASSERT_EQ(swapped, version + 1) << error;
    version = swapped;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry_.Get("m")->version(), 1u + kSwaps);
}

TEST_F(RegistrySwapTest, InFlightHoldersFinishOnTheirVersion) {
  const std::shared_ptr<const ServedModel> old_model = registry_.Get("m");
  ASSERT_EQ(old_model->version(), 1u);

  WriteArtifact(artifact_b_);
  std::string error;
  ASSERT_EQ(registry_.Reload("m", &error), 2u) << error;

  // The held pointer still serves artifact A's predictions, bit for bit;
  // new Get()s see version 2.
  EXPECT_EQ(old_model->Classify(data_.test), expected_a_);
  EXPECT_EQ(old_model->version(), 1u);
  const std::shared_ptr<const ServedModel> new_model = registry_.Get("m");
  EXPECT_EQ(new_model->version(), 2u);
  EXPECT_NE(new_model.get(), old_model.get());
  EXPECT_EQ(new_model->Classify(data_.test), expected_b_);
}

TEST_F(RegistrySwapTest, AdmissionQueueBatchesSplitCleanlyAcrossSwap) {
  AdmissionQueue::Options queue_options;
  queue_options.batch_window_us = 200;
  queue_options.max_batch = 16;
  AdmissionQueue queue(queue_options);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::atomic<bool> stop_swapping{false};

  std::thread swapper([&] {
    int s = 0;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      WriteArtifact(s++ % 2 == 0 ? artifact_b_ : artifact_a_);
      std::string error;
      if (registry_.Reload("m", &error) == 0) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t index = static_cast<size_t>(i) % data_.test.size();
        const std::shared_ptr<const ServedModel> model = registry_.Get("m");
        auto future =
            queue.Submit(model, data_.test[index].values);
        const AdmissionQueue::Result result = future.get();
        // The queue groups batches by model instance, so the result must
        // carry the version the request was admitted with and the label
        // the serial run of THAT version produces for this series.
        if (result.model_version != model->version() ||
            result.label != ExpectedForVersion(result.model_version)[index]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queue.batches_dispatched(), 0u);
}

TEST_F(RegistrySwapTest, ConcurrentReloadsSerialiseWithMonotonicVersions) {
  constexpr int kThreads = 4;
  constexpr int kReloadsEach = 3;
  std::vector<std::vector<uint32_t>> versions(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReloadsEach; ++i) {
        std::string error;
        const uint32_t v = registry_.Reload("m", &error);
        if (v != 0) versions[static_cast<size_t>(t)].push_back(v);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every reload succeeded and was assigned a distinct version; the final
  // slot version is the initial 1 plus one per reload.
  std::vector<uint32_t> all;
  for (const auto& v : versions) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kReloadsEach));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate version assigned";
  EXPECT_EQ(all.back(), 1u + kThreads * kReloadsEach);
  EXPECT_EQ(registry_.Get("m")->version(), all.back());
}

TEST(ModelRegistryTest, UnknownNamesAndBadSources) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("nope"), nullptr);
  std::string error;
  EXPECT_EQ(registry.Reload("nope", &error), 0u);
  EXPECT_NE(error.find("unknown model"), std::string::npos) << error;
  EXPECT_EQ(registry.Load("bad",
                          ModelSource{"/no/such/artifact", "/no/such/train",
                                      IpsOptions{}},
                          &error),
            0u);
  EXPECT_FALSE(error.empty());
  // A failed first-time Load must not register a half-initialised slot.
  EXPECT_EQ(registry.Get("bad"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace ips::serve
