// Tests for the three search/learning baselines added beyond the core
// reproduction: ST (exhaustive transform discovery), SD (clustering-pruned
// discovery) and LTS (gradient-learned shapelets).

#include <vector>

#include <gtest/gtest.h>

#include "baselines/lts.h"
#include "baselines/sd.h"
#include "baselines/st.h"
#include "data/generator.h"

namespace ips {
namespace {

TrainTestSplit MakeData(const std::string& name, size_t train = 12,
                        size_t test = 40, size_t length = 64) {
  GeneratorSpec spec;
  spec.name = name;
  spec.num_classes = 2;
  spec.train_size = train;
  spec.test_size = test;
  spec.length = length;
  return GenerateDataset(spec);
}

// ------------------------------------------------------------------- ST

TEST(StTest, DiscoversTopGainShapeletsPerClass) {
  const TrainTestSplit data = MakeData("st1");
  StOptions options;
  options.length_ratios = {0.2, 0.3};
  options.shapelets_per_class = 3;
  options.stride = 2;
  const auto shapelets = DiscoverStShapelets(data.train, options);
  EXPECT_GT(shapelets.size(), 0u);
  EXPECT_LE(shapelets.size(), 6u);
  bool c0 = false, c1 = false;
  for (const auto& s : shapelets) {
    if (s.label == 0) c0 = true;
    if (s.label == 1) c1 = true;
  }
  EXPECT_TRUE(c0 && c1);
}

TEST(StTest, SelfSimilarityFilterSuppressesOverlaps) {
  const TrainTestSplit data = MakeData("st2");
  StOptions options;
  options.length_ratios = {0.3};
  options.shapelets_per_class = 5;
  options.stride = 1;
  const auto shapelets = DiscoverStShapelets(data.train, options);
  for (size_t a = 0; a < shapelets.size(); ++a) {
    for (size_t b = a + 1; b < shapelets.size(); ++b) {
      if (shapelets[a].series_index != shapelets[b].series_index) continue;
      const size_t a_end = shapelets[a].start + shapelets[a].length();
      const size_t b_end = shapelets[b].start + shapelets[b].length();
      EXPECT_TRUE(shapelets[a].start >= b_end ||
                  shapelets[b].start >= a_end)
          << "overlapping shapelets from series "
          << shapelets[a].series_index;
    }
  }
}

TEST(StTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("st3");
  StOptions options;
  options.length_ratios = {0.2, 0.3};
  options.stride = 2;
  StClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.6);
}

// ------------------------------------------------------------------- SD

TEST(SdTest, ClusteringPrunesEnumeration) {
  const TrainTestSplit data = MakeData("sd1");
  SdOptions options;
  SdStats stats;
  DiscoverSdShapelets(data.train, options, &stats);
  EXPECT_GT(stats.candidates_enumerated, 0u);
  EXPECT_LT(stats.cluster_representatives, stats.candidates_enumerated);
}

TEST(SdTest, ClassifierBeatsChance) {
  const TrainTestSplit data = MakeData("sd2");
  SdClassifier clf;
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.55);
}

TEST(SdTest, HigherPercentilePrunesMore) {
  const TrainTestSplit data = MakeData("sd3");
  SdOptions loose;
  loose.prune_percentile = 0.05;
  SdOptions tight;
  tight.prune_percentile = 0.75;
  SdStats loose_stats, tight_stats;
  DiscoverSdShapelets(data.train, loose, &loose_stats);
  DiscoverSdShapelets(data.train, tight, &tight_stats);
  EXPECT_GE(loose_stats.cluster_representatives,
            tight_stats.cluster_representatives);
}

// ------------------------------------------------------------------ LTS

TEST(LtsTest, LearnsSeparableData) {
  const TrainTestSplit data = MakeData("lts1", 16, 40, 64);
  LtsOptions options;
  options.max_iters = 150;
  LtsClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 0.6);
}

TEST(LtsTest, TrainingReducesError) {
  // More iterations must not make training accuracy worse (descent on a
  // smooth objective with a small step size).
  const TrainTestSplit data = MakeData("lts2", 16, 4, 64);
  LtsOptions few;
  few.max_iters = 5;
  LtsOptions many = few;
  many.max_iters = 200;
  LtsClassifier clf_few(few), clf_many(many);
  clf_few.Fit(data.train);
  clf_many.Fit(data.train);
  EXPECT_GE(clf_many.Accuracy(data.train),
            clf_few.Accuracy(data.train) - 0.1);
}

TEST(LtsTest, ShapeletCountMatchesOptions) {
  const TrainTestSplit data = MakeData("lts3");
  LtsOptions options;
  options.shapelets_per_scale = 4;
  options.scales = 2;
  options.max_iters = 10;
  LtsClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_EQ(clf.Shapelets().size(), 8u);
}

TEST(LtsTest, LearnedShapeletsHaveExpectedLengths) {
  const TrainTestSplit data = MakeData("lts4", 12, 4, 100);
  LtsOptions options;
  options.length_ratio = 0.2;
  options.scales = 2;
  options.max_iters = 5;
  LtsClassifier clf(options);
  clf.Fit(data.train);
  for (const auto& s : clf.Shapelets()) {
    EXPECT_TRUE(s.length() == 20 || s.length() == 40)
        << "length " << s.length();
  }
}

TEST(LtsTest, MulticlassSupported) {
  GeneratorSpec spec;
  spec.name = "lts5";
  spec.num_classes = 3;
  spec.train_size = 18;
  spec.test_size = 30;
  spec.length = 64;
  const TrainTestSplit data = GenerateDataset(spec);
  LtsOptions options;
  options.max_iters = 150;
  LtsClassifier clf(options);
  clf.Fit(data.train);
  EXPECT_GT(clf.Accuracy(data.test), 1.0 / 3.0);
}

TEST(LtsTest, DeterministicForSameSeed) {
  const TrainTestSplit data = MakeData("lts6");
  LtsOptions options;
  options.max_iters = 20;
  LtsClassifier a(options), b(options);
  a.Fit(data.train);
  b.Fit(data.train);
  for (size_t i = 0; i < data.test.size(); ++i) {
    EXPECT_EQ(a.Predict(data.test[i]), b.Predict(data.test[i]));
  }
}

}  // namespace
}  // namespace ips
