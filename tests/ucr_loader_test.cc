#include "data/ucr_loader.h"

#include <cstdio>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace ips {
namespace {

class UcrLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ips_ucr_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_ / "Demo");
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    std::ofstream out(dir_ / rel);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(UcrLoaderTest, LoadsTabSeparatedSplit) {
  WriteFile("Demo/Demo_TRAIN.tsv",
            "1\t0.1\t0.2\t0.3\n2\t1.0\t1.1\t1.2\n1\t0.0\t0.1\t0.2\n");
  WriteFile("Demo/Demo_TEST.tsv", "2\t1.5\t1.6\t1.7\n1\t0.3\t0.2\t0.1\n");
  const auto split = LoadUcrDataset(dir_.string(), "Demo");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->train.size(), 3u);
  EXPECT_EQ(split->test.size(), 2u);
  // Labels remapped densely: raw 1 -> 0, raw 2 -> 1.
  EXPECT_EQ(split->train[0].label, 0);
  EXPECT_EQ(split->train[1].label, 1);
  EXPECT_EQ(split->train[0].values, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST_F(UcrLoaderTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadUcrDataset(dir_.string(), "Nope").has_value());
}

TEST_F(UcrLoaderTest, MissingTestFileReturnsNullopt) {
  WriteFile("Demo/Demo_TRAIN.tsv", "1\t0.1\t0.2\n");
  EXPECT_FALSE(LoadUcrDataset(dir_.string(), "Demo").has_value());
}

TEST_F(UcrLoaderTest, CommaSeparatedAccepted) {
  WriteFile("Demo/Demo_TRAIN.tsv", "0,1.0,2.0\n1,3.0,4.0\n");
  WriteFile("Demo/Demo_TEST.tsv", "0,1.0,2.0\n");
  const auto split = LoadUcrDataset(dir_.string(), "Demo");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->train[0].values, (std::vector<double>{1.0, 2.0}));
}

TEST_F(UcrLoaderTest, TrailingNanPaddingTrimmed) {
  WriteFile("Demo/Demo_TRAIN.tsv", "0\t1.0\t2.0\tNaN\tNaN\n1\t3.0\t4.0\t5.0\tNaN\n");
  WriteFile("Demo/Demo_TEST.tsv", "0\t1.0\t2.0\n");
  const auto split = LoadUcrDataset(dir_.string(), "Demo");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->train[0].length(), 2u);
  EXPECT_EQ(split->train[1].length(), 3u);
}

TEST_F(UcrLoaderTest, NegativeAndScientificValuesParsed) {
  WriteFile("Demo/Demo_TRAIN.tsv", "-1\t-0.5\t1e-3\t2.5E2\n1\t0\t0\t0\n");
  WriteFile("Demo/Demo_TEST.tsv", "-1\t1\t2\t3\n");
  const auto split = LoadUcrDataset(dir_.string(), "Demo");
  ASSERT_TRUE(split.has_value());
  EXPECT_DOUBLE_EQ(split->train[0].values[1], 1e-3);
  EXPECT_DOUBLE_EQ(split->train[0].values[2], 250.0);
}

TEST_F(UcrLoaderTest, GarbageLineFailsCleanly) {
  WriteFile("Demo/Demo_TRAIN.tsv", "1\tnot_a_number\t2.0\n");
  WriteFile("Demo/Demo_TEST.tsv", "1\t1.0\t2.0\n");
  EXPECT_FALSE(LoadUcrDataset(dir_.string(), "Demo").has_value());
}

TEST_F(UcrLoaderTest, EmptyLinesSkipped) {
  WriteFile("Demo/Demo_TRAIN.tsv", "0\t1.0\t2.0\n\n1\t3.0\t4.0\n\n");
  WriteFile("Demo/Demo_TEST.tsv", "0\t1.0\t2.0\n");
  const auto split = LoadUcrDataset(dir_.string(), "Demo");
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->train.size(), 2u);
}

TEST_F(UcrLoaderTest, LoadUcrFileDirectly) {
  WriteFile("single.tsv", "5\t1.0\t2.0\n7\t3.0\t4.0\n5\t5.0\t6.0\n");
  const auto data = LoadUcrFile((dir_ / "single.tsv").string());
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->size(), 3u);
  EXPECT_EQ(data->NumClasses(), 2);
  EXPECT_EQ((*data)[0].label, (*data)[2].label);
}

}  // namespace
}  // namespace ips
