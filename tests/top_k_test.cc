#include "ips/top_k.h"

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

Subsequence MakeSub(double marker, int label) {
  Subsequence s;
  s.values = {marker};
  s.label = label;
  return s;
}

CandidateScore Score(double combined) {
  CandidateScore s;
  s.intra = 0.5 + combined;  // inter = instance = 0 contribution
  s.inter = 0.5;
  s.instance = 0.5;
  // Combined() = intra - inter + instance = 0.5 + combined.
  return s;
}

TEST(SelectTopKShapeletsTest, PicksSmallestScores) {
  CandidatePool pool;
  pool.motifs[0] = {MakeSub(10, 0), MakeSub(20, 0), MakeSub(30, 0)};
  std::map<int, std::vector<CandidateScore>> scores;
  scores[0] = {Score(0.3), Score(0.1), Score(0.2)};

  const auto shapelets = SelectTopKShapelets(pool, scores, 2);
  ASSERT_EQ(shapelets.size(), 2u);
  EXPECT_DOUBLE_EQ(shapelets[0].values[0], 20.0);  // lowest combined
  EXPECT_DOUBLE_EQ(shapelets[1].values[0], 30.0);
}

TEST(SelectTopKShapeletsTest, PerClassSelection) {
  CandidatePool pool;
  pool.motifs[0] = {MakeSub(1, 0), MakeSub(2, 0)};
  pool.motifs[1] = {MakeSub(3, 1), MakeSub(4, 1)};
  std::map<int, std::vector<CandidateScore>> scores;
  scores[0] = {Score(0.1), Score(0.2)};
  scores[1] = {Score(0.2), Score(0.1)};

  const auto shapelets = SelectTopKShapelets(pool, scores, 1);
  ASSERT_EQ(shapelets.size(), 2u);
  EXPECT_EQ(shapelets[0].label, 0);
  EXPECT_EQ(shapelets[1].label, 1);
  EXPECT_DOUBLE_EQ(shapelets[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(shapelets[1].values[0], 4.0);
}

TEST(SelectTopKShapeletsTest, KLargerThanPool) {
  CandidatePool pool;
  pool.motifs[0] = {MakeSub(1, 0)};
  std::map<int, std::vector<CandidateScore>> scores;
  scores[0] = {Score(0.0)};
  EXPECT_EQ(SelectTopKShapelets(pool, scores, 10).size(), 1u);
}

TEST(SelectTopKShapeletsTest, ClassWithoutScoresSkipped) {
  CandidatePool pool;
  pool.motifs[0] = {MakeSub(1, 0)};
  pool.motifs[1] = {MakeSub(2, 1)};
  std::map<int, std::vector<CandidateScore>> scores;
  scores[0] = {Score(0.0)};
  const auto shapelets = SelectTopKShapelets(pool, scores, 1);
  ASSERT_EQ(shapelets.size(), 1u);
  EXPECT_EQ(shapelets[0].label, 0);
}

TEST(SelectTopKShapeletsTest, EmptyPool) {
  CandidatePool pool;
  std::map<int, std::vector<CandidateScore>> scores;
  EXPECT_TRUE(SelectTopKShapelets(pool, scores, 5).empty());
}

}  // namespace
}  // namespace ips
