// The metrics registry: identity of named metrics, histogram bucketing,
// snapshot/delta windowing, and exactness of concurrent increments (the
// `concurrency` label puts this binary under the sanitizer sweeps).

#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace ips::obs {
namespace {

TEST(MetricsRegistryTest, SameNameYieldsSameCounter) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& a = reg.GetCounter("obs_metrics_test.identity");
  Counter& b = reg.GetCounter("obs_metrics_test.identity");
  EXPECT_EQ(&a, &b);
  Counter& other = reg.GetCounter("obs_metrics_test.identity2");
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, CounterAddsAndReads) {
  Counter& c = MetricsRegistry::Instance().GetCounter("obs_metrics_test.add");
  const uint64_t start = c.Value();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), start + 42);
}

TEST(MetricsRegistryTest, DeltaIsolatesAWindow) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& inside = reg.GetCounter("obs_metrics_test.inside");
  Counter& outside = reg.GetCounter("obs_metrics_test.outside");
  outside.Add(5);
  const MetricsSnapshot before = reg.Snapshot();
  inside.Add(3);
  const MetricsSnapshot delta = reg.DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("obs_metrics_test.inside"), 3u);
  // Untouched metrics are dropped from the delta entirely.
  EXPECT_EQ(delta.counters.count("obs_metrics_test.outside"), 0u);
  EXPECT_EQ(delta.CounterValue("obs_metrics_test.outside"), 0u);
  EXPECT_EQ(delta.CounterValue("obs_metrics_test.never_registered"), 0u);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  // Huge samples clamp into the final open-ended bucket.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(HistogramTest, ObserveUpdatesCountSumBuckets) {
  Histogram& h =
      MetricsRegistry::Instance().GetHistogram("obs_metrics_test.hist");
  const uint64_t count0 = h.Count();
  const uint64_t sum0 = h.Sum();
  const uint64_t b2_before = h.BucketCount(2);
  h.Observe(2);
  h.Observe(3);
  h.Observe(100);
  EXPECT_EQ(h.Count(), count0 + 3);
  EXPECT_EQ(h.Sum(), sum0 + 105);
  EXPECT_EQ(h.BucketCount(2), b2_before + 2);
}

TEST(MetricsRegistryTest, HistogramDeltaSubtractsPerBucket) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Histogram& h = reg.GetHistogram("obs_metrics_test.hist_delta");
  h.Observe(1);
  const MetricsSnapshot before = reg.Snapshot();
  h.Observe(4);
  h.Observe(5);
  const MetricsSnapshot delta = reg.DeltaSince(before);
  const auto it = delta.histograms.find("obs_metrics_test.hist_delta");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_EQ(it->second.sum, 9u);
  EXPECT_EQ(it->second.buckets[Histogram::BucketIndex(4)], 2u);
  EXPECT_EQ(it->second.buckets[Histogram::BucketIndex(1)], 0u);
}

TEST(MetricsExportTest, JsonListsCountersAndSparseBuckets) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  const MetricsSnapshot before = reg.Snapshot();
  reg.GetCounter("obs_metrics_test.json_counter").Add(7);
  reg.GetHistogram("obs_metrics_test.json_hist").Observe(6);
  const MetricsSnapshot delta = reg.DeltaSince(before);
  const JsonValue json = MetricsToJson(delta);
  EXPECT_EQ(
      json.Get("counters").Get("obs_metrics_test.json_counter").AsUint64(),
      7u);
  const JsonValue& hist =
      json.Get("histograms").Get("obs_metrics_test.json_hist");
  EXPECT_EQ(hist.Get("count").AsUint64(), 1u);
  EXPECT_EQ(hist.Get("sum").AsUint64(), 6u);
  // Sparse buckets: exactly one entry, lower bound 4 (bucket of sample 6).
  ASSERT_EQ(hist.Get("buckets").size(), 1u);
  EXPECT_EQ(hist.Get("buckets").At(0).Get("ge").AsUint64(), 4u);
  EXPECT_EQ(hist.Get("buckets").At(0).Get("count").AsUint64(), 1u);
}

// Concurrency: increments from many threads must all land; registration
// races (first GetCounter of a name from several threads) must yield one
// instance. Run under TSan via the `concurrency` ctest label.
TEST(MetricsConcurrencyTest, ConcurrentAddsAreExact) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& c = reg.GetCounter("obs_metrics_test.concurrent_add");
  Histogram& h = reg.GetHistogram("obs_metrics_test.concurrent_hist");
  const uint64_t start = c.Value();
  const uint64_t hist_start = h.Count();
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIters; ++i) {
        c.Add();
        h.Observe(static_cast<uint64_t>(i % 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), start + uint64_t{kThreads} * kIters);
  EXPECT_EQ(h.Count(), hist_start + uint64_t{kThreads} * kIters);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationYieldsOneInstance) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.GetCounter("obs_metrics_test.race_registration");
      c.Add();
      seen[static_cast<size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_GE(reg.GetCounter("obs_metrics_test.race_registration").Value(),
            uint64_t{kThreads});
}

TEST(MetricsConcurrencyTest, SnapshotDuringWritesIsSafe) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter& c = reg.GetCounter("obs_metrics_test.snapshot_race");
  std::thread writer([&c] {
    for (int i = 0; i < 20000; ++i) c.Add();
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.Snapshot();
    const uint64_t now = snap.CounterValue("obs_metrics_test.snapshot_race");
    EXPECT_GE(now, last);  // monotonic under concurrent writes
    last = now;
  }
  writer.join();
  EXPECT_EQ(c.Value(), 20000u);
}

}  // namespace
}  // namespace ips::obs
