#include "lsh/lsh.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

LshParams ParamsFor(LshScheme scheme) {
  LshParams p;
  p.scheme = scheme;
  p.input_dim = 16;
  p.num_hashes = 8;
  p.bucket_width = 2.0;
  p.seed = 11;
  return p;
}

std::vector<double> RandomVector(Rng& rng, size_t dim) {
  std::vector<double> v(dim);
  for (auto& x : v) x = rng.Gaussian();
  return v;
}

TEST(LshSchemeNameTest, Names) {
  EXPECT_EQ(LshSchemeName(LshScheme::kL2PStable), "L2");
  EXPECT_EQ(LshSchemeName(LshScheme::kCosine), "Cosine");
  EXPECT_EQ(LshSchemeName(LshScheme::kHamming), "Hamming");
}

class LshFamilySweep : public ::testing::TestWithParam<LshScheme> {};

TEST_P(LshFamilySweep, DeterministicForSameSeed) {
  const auto family_a = MakeLshFamily(ParamsFor(GetParam()));
  const auto family_b = MakeLshFamily(ParamsFor(GetParam()));
  Rng rng(3);
  const auto v = RandomVector(rng, 16);
  EXPECT_EQ(family_a->HashKey(v), family_b->HashKey(v));
  EXPECT_EQ(family_a->Project(v), family_b->Project(v));
}

TEST_P(LshFamilySweep, IdenticalInputsCollide) {
  const auto family = MakeLshFamily(ParamsFor(GetParam()));
  Rng rng(4);
  const auto v = RandomVector(rng, 16);
  EXPECT_EQ(family->HashKey(v), family->HashKey(v));
}

TEST_P(LshFamilySweep, OutputSizesMatchNumHashes) {
  const auto family = MakeLshFamily(ParamsFor(GetParam()));
  Rng rng(5);
  const auto v = RandomVector(rng, 16);
  EXPECT_EQ(family->Project(v).size(), 8u);
  EXPECT_EQ(family->HashKey(v).size(), 8u);
}

TEST_P(LshFamilySweep, CloserPairsCollideMoreOften) {
  // Locality property: near pairs share more hash coordinates than far
  // pairs, on average.
  Rng rng(6);
  double near_matches = 0.0, far_matches = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    LshParams p = ParamsFor(GetParam());
    p.seed = 100 + static_cast<uint64_t>(t);
    const auto family = MakeLshFamily(p);
    const auto x = RandomVector(rng, 16);
    std::vector<double> near(x), far(x);
    for (auto& v : near) v += rng.Gaussian(0.0, 0.05);
    for (auto& v : far) v = rng.Gaussian() * 3.0;
    const auto hx = family->HashKey(x);
    const auto hn = family->HashKey(near);
    const auto hf = family->HashKey(far);
    for (size_t i = 0; i < hx.size(); ++i) {
      if (hx[i] == hn[i]) near_matches += 1.0;
      if (hx[i] == hf[i]) far_matches += 1.0;
    }
  }
  EXPECT_GT(near_matches, far_matches);
}

INSTANTIATE_TEST_SUITE_P(Schemes, LshFamilySweep,
                         ::testing::Values(LshScheme::kL2PStable,
                                           LshScheme::kCosine,
                                           LshScheme::kHamming));

TEST(PStableLshTest, TranslationChangesBucketProportionally) {
  // Moving along a hash direction by the bucket width shifts that hash by
  // roughly one; small perturbations rarely change the key.
  LshParams p = ParamsFor(LshScheme::kL2PStable);
  const auto family = MakeLshFamily(p);
  Rng rng(7);
  const auto x = RandomVector(rng, 16);
  auto y = x;
  for (auto& v : y) v += 1e-6;
  int same = 0;
  const auto hx = family->HashKey(x);
  const auto hy = family->HashKey(y);
  for (size_t i = 0; i < hx.size(); ++i) {
    if (hx[i] == hy[i]) ++same;
  }
  EXPECT_GE(same, 7);  // at most one boundary crossing expected
}

TEST(CosineLshTest, KeysAreSignBits) {
  const auto family = MakeLshFamily(ParamsFor(LshScheme::kCosine));
  Rng rng(8);
  const auto v = RandomVector(rng, 16);
  const auto key = family->HashKey(v);
  const auto proj = family->Project(v);
  for (size_t i = 0; i < key.size(); ++i) {
    EXPECT_TRUE(key[i] == 0 || key[i] == 1);
    EXPECT_EQ(key[i], proj[i] >= 0.0 ? 1 : 0);
  }
}

TEST(CosineLshTest, ScaleInvariant) {
  const auto family = MakeLshFamily(ParamsFor(LshScheme::kCosine));
  Rng rng(9);
  const auto v = RandomVector(rng, 16);
  std::vector<double> scaled(v);
  for (auto& x : scaled) x *= 7.5;
  EXPECT_EQ(family->HashKey(v), family->HashKey(scaled));
}

TEST(HammingLshTest, KeysAreBits) {
  const auto family = MakeLshFamily(ParamsFor(LshScheme::kHamming));
  Rng rng(10);
  const auto v = RandomVector(rng, 16);
  for (int64_t bit : family->HashKey(v)) {
    EXPECT_TRUE(bit == 0 || bit == 1);
  }
}

}  // namespace
}  // namespace ips
