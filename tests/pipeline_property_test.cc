// Parameterised properties of the end-to-end discovery pipeline across
// several catalogue-shaped datasets: invariants that must hold regardless
// of the workload.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/ucr_catalog.h"
#include "ips/candidate_gen.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

class PipelinePropertySweep : public ::testing::TestWithParam<const char*> {
 protected:
  TrainTestSplit MakeData() const {
    const auto info = FindUcrDataset(GetParam());
    CatalogScale scale;
    scale.count_factor = 0.15;
    scale.length_factor = 0.3;
    scale.max_train = 24;
    scale.max_test = 30;
    scale.min_length = 48;
    scale.max_length = 96;
    return GenerateDataset(SpecFromCatalog(ScaleDataset(*info, scale)));
  }

  IpsOptions FastOptions() const {
    IpsOptions o;
    o.sample_count = 4;
    o.sample_size = 3;
    o.length_ratios = {0.15, 0.3};
    o.shapelets_per_class = 3;
    return o;
  }
};

TEST_P(PipelinePropertySweep, ShapeletLengthsComeFromConfiguredRatios) {
  const TrainTestSplit data = MakeData();
  const IpsOptions options = FastOptions();
  const auto lengths = ResolveCandidateLengths(data.train.MinLength(),
                                               options.length_ratios);
  for (const Subsequence& s : DiscoverShapelets(data.train, options).shapelets) {
    EXPECT_TRUE(std::find(lengths.begin(), lengths.end(), s.length()) !=
                lengths.end())
        << GetParam() << ": unexpected length " << s.length();
  }
}

TEST_P(PipelinePropertySweep, EveryTrainClassGetsShapelets) {
  const TrainTestSplit data = MakeData();
  const auto shapelets = DiscoverShapelets(data.train, FastOptions()).shapelets;
  std::set<int> classes_with_shapelets;
  for (const Subsequence& s : shapelets) classes_with_shapelets.insert(s.label);
  EXPECT_EQ(static_cast<int>(classes_with_shapelets.size()),
            data.train.NumClasses())
      << GetParam();
}

TEST_P(PipelinePropertySweep, StatsAreInternallyConsistent) {
  const TrainTestSplit data = MakeData();
  const RunResult result = DiscoverShapelets(data.train, FastOptions());
  const IpsRunStats& stats = result.stats;
  EXPECT_EQ(stats.shapelets, result.shapelets.size()) << GetParam();
  EXPECT_LE(stats.motifs_after_prune, stats.motifs_generated);
  EXPECT_LE(stats.discords_after_prune, stats.discords_generated);
  EXPECT_GE(stats.candidate_gen_seconds, 0.0);
  EXPECT_GE(stats.pruning_seconds, 0.0);
  EXPECT_GE(stats.selection_seconds, 0.0);
}

TEST_P(PipelinePropertySweep, PredictionsAreValidLabels) {
  const TrainTestSplit data = MakeData();
  IpsClassifier clf(FastOptions());
  clf.Fit(data.train);
  const int num_classes = data.train.NumClasses();
  for (size_t i = 0; i < data.test.size(); ++i) {
    const int label = clf.Predict(data.test[i]);
    EXPECT_GE(label, 0) << GetParam();
    EXPECT_LT(label, num_classes) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(CatalogDatasets, PipelinePropertySweep,
                         ::testing::Values("ArrowHead", "CBF", "ECG200",
                                           "GunPoint", "SyntheticControl",
                                           "TwoLeadECG"));

}  // namespace
}  // namespace ips
