#include "classify/linalg.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(CovarianceTest, KnownValues) {
  // Two perfectly correlated variables.
  const std::vector<std::vector<double>> rows = {
      {1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const Matrix cov = Covariance(rows);
  EXPECT_NEAR(cov.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov.at(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov.at(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov.at(1, 0), 2.0, 1e-12);
}

TEST(CovarianceTest, SingleRowIsZero) {
  const std::vector<std::vector<double>> rows = {{3.0, 4.0}};
  const Matrix cov = Covariance(rows);
  EXPECT_DOUBLE_EQ(cov.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cov.at(1, 1), 0.0);
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a(3, 3, 0.0);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = 1.0;
  a.at(2, 2) = 2.0;
  const EigenResult r = JacobiEigenSymmetric(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[2], 1.0, 1e-10);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const EigenResult r = JacobiEigenSymmetric(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = r.eigenvectors.at(0, 0);
  const double v1 = r.eigenvectors.at(1, 0);
  EXPECT_NEAR(std::abs(v0), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  // A = V diag(w) V^T for a random symmetric matrix.
  Rng rng(1);
  const size_t n = 5;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.Gaussian();
      a.at(j, i) = a.at(i, j);
    }
  }
  const EigenResult r = JacobiEigenSymmetric(a);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < n; ++k) {
        sum += r.eigenvectors.at(i, k) * r.eigenvalues[k] *
               r.eigenvectors.at(j, k);
      }
      EXPECT_NEAR(sum, a.at(i, j), 1e-8) << "entry " << i << "," << j;
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  Rng rng(2);
  const size_t n = 6;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.Gaussian();
      a.at(j, i) = a.at(i, j);
    }
  }
  const EigenResult r = JacobiEigenSymmetric(a);
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = 0; q < n; ++q) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dot += r.eigenvectors.at(i, p) * r.eigenvectors.at(i, q);
      }
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiEigenTest, CovarianceEigenvaluesNonNegative) {
  Rng rng(3);
  std::vector<std::vector<double>> rows(40, std::vector<double>(4));
  for (auto& row : rows) {
    for (auto& v : row) v = rng.Gaussian();
  }
  const EigenResult r = JacobiEigenSymmetric(Covariance(rows));
  for (double w : r.eigenvalues) EXPECT_GE(w, -1e-10);
}

}  // namespace
}  // namespace ips
