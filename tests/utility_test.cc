#include "ips/utility.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generator.h"
#include "ips/candidate_gen.h"

namespace ips {
namespace {

struct Fixture {
  Dataset train;
  CandidatePool pool;
  std::unique_ptr<Dabf> dabf;
};

Fixture MakeFixture() {
  GeneratorSpec spec;
  spec.name = "utiltest";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  Fixture f;
  f.train = GenerateDataset(spec).train;

  IpsOptions o;
  o.sample_count = 3;
  o.sample_size = 3;
  o.length_ratios = {0.2, 0.3};
  Rng rng(1);
  f.pool = GenerateCandidates(f.train, o, rng);

  std::map<int, std::vector<Subsequence>> by_class;
  for (const auto& [label, motifs] : f.pool.motifs) {
    by_class[label] = f.pool.AllOfClass(label);
  }
  DabfOptions d;
  d.projection_dim = 16;
  // Fine-grained buckets: the DT coordinate approximation sharpens as the
  // bucket width shrinks, which is what the correlation test measures.
  d.num_hashes = 8;
  d.bucket_width = 3.0;
  d.seed = 9;
  f.dabf = std::make_unique<Dabf>(by_class, d);
  return f;
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1.0) + Sigmoid(-1.0), 1.0, 1e-12);
}

TEST(CandidateScoreTest, CombinedFormula) {
  CandidateScore s;
  s.intra = 0.6;
  s.inter = 0.9;
  s.instance = 0.7;
  EXPECT_NEAR(s.Combined(), 0.4, 1e-12);
}

TEST(ScoreAllCandidatesTest, ExactNaiveMatchesExactCr) {
  // CR only reuses computation; the scores must be identical.
  const Fixture f = MakeFixture();
  const auto naive = ScoreAllCandidates(f.pool, f.train,
                                        UtilityMode::kExactNaive, nullptr);
  const auto reuse = ScoreAllCandidates(f.pool, f.train,
                                        UtilityMode::kExactWithCr, nullptr);
  ASSERT_EQ(naive.size(), reuse.size());
  for (const auto& [label, scores] : naive) {
    const auto& other = reuse.at(label);
    ASSERT_EQ(scores.size(), other.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      EXPECT_NEAR(scores[i].intra, other[i].intra, 1e-12);
      EXPECT_NEAR(scores[i].inter, other[i].inter, 1e-12);
      EXPECT_NEAR(scores[i].instance, other[i].instance, 1e-12);
    }
  }
}

TEST(ScoreAllCandidatesTest, OneScorePerMotif) {
  const Fixture f = MakeFixture();
  const auto scores =
      ScoreAllCandidates(f.pool, f.train, UtilityMode::kDtCr, f.dabf.get());
  for (const auto& [label, motifs] : f.pool.motifs) {
    ASSERT_TRUE(scores.count(label));
    EXPECT_EQ(scores.at(label).size(), motifs.size());
  }
}

TEST(ScoreAllCandidatesTest, UtilitiesInSigmoidRange) {
  const Fixture f = MakeFixture();
  for (UtilityMode mode : {UtilityMode::kExactNaive, UtilityMode::kDtCr}) {
    const auto scores =
        ScoreAllCandidates(f.pool, f.train, mode, f.dabf.get());
    for (const auto& [label, class_scores] : scores) {
      for (const CandidateScore& s : class_scores) {
        EXPECT_GE(s.intra, 0.5);  // sigmoid of a non-negative mean
        EXPECT_LT(s.intra, 1.0);
        EXPECT_GE(s.inter, 0.5);
        EXPECT_LT(s.inter, 1.0);
        EXPECT_GE(s.instance, 0.5);
        EXPECT_LT(s.instance, 1.0);
      }
    }
  }
}

TEST(ScoreAllCandidatesTest, DtRankingCorrelatesWithExact) {
  // DT is an approximation; the orderings should be positively correlated
  // (Spearman over combined scores).
  const Fixture f = MakeFixture();
  const auto exact = ScoreAllCandidates(f.pool, f.train,
                                        UtilityMode::kExactWithCr, nullptr);
  const auto dt =
      ScoreAllCandidates(f.pool, f.train, UtilityMode::kDtCr, f.dabf.get());

  double correlation_sum = 0.0;
  int classes = 0;
  for (const auto& [label, exact_scores] : exact) {
    const auto& dt_scores = dt.at(label);
    const size_t n = exact_scores.size();
    if (n < 3) continue;
    // Spearman via rank vectors.
    auto ranks = [](const std::vector<CandidateScore>& scores) {
      std::vector<size_t> order(scores.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a].Combined() < scores[b].Combined();
      });
      std::vector<double> r(scores.size());
      for (size_t i = 0; i < order.size(); ++i) {
        r[order[i]] = static_cast<double>(i);
      }
      return r;
    };
    const auto ra = ranks(exact_scores);
    const auto rb = ranks(dt_scores);
    double d2 = 0.0;
    for (size_t i = 0; i < n; ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
    const double nd = static_cast<double>(n);
    correlation_sum += 1.0 - 6.0 * d2 / (nd * (nd * nd - 1.0));
    ++classes;
  }
  ASSERT_GT(classes, 0);
  EXPECT_GT(correlation_sum / classes, 0.0);
}

TEST(ScoreAllCandidatesTest, DuplicateCandidatesScoreEqually) {
  // Two identical motifs must receive identical utilities in every mode --
  // the DT bucket coordinates and the exact distances are both functions of
  // the candidate's values only.
  Fixture f = MakeFixture();
  auto& motifs = f.pool.motifs.begin()->second;
  ASSERT_GE(motifs.size(), 1u);
  motifs.push_back(motifs.front());  // duplicate
  const size_t a = 0;
  const size_t b = motifs.size() - 1;

  for (UtilityMode mode : {UtilityMode::kExactWithCr, UtilityMode::kDtCr}) {
    const auto scores =
        ScoreAllCandidates(f.pool, f.train, mode, f.dabf.get());
    const auto& class_scores = scores.at(f.pool.motifs.begin()->first);
    EXPECT_NEAR(class_scores[a].inter, class_scores[b].inter, 1e-12);
    EXPECT_NEAR(class_scores[a].instance, class_scores[b].instance, 1e-12);
    // intra differs only by the self-exclusion term, which is the distance
    // to the duplicate (zero), so it is also equal.
    EXPECT_NEAR(class_scores[a].intra, class_scores[b].intra, 1e-12);
  }
}

TEST(ScoreAllCandidatesTest, EmptyPoolGivesEmptyScores) {
  CandidatePool pool;
  Dataset train;
  train.Add(TimeSeries(std::vector<double>(32, 1.0), 0));
  const auto scores =
      ScoreAllCandidates(pool, train, UtilityMode::kExactNaive, nullptr);
  EXPECT_TRUE(scores.empty());
}

}  // namespace
}  // namespace ips
