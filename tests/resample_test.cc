#include "core/resample.h"

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(ResampleTest, IdentityWhenDimMatches) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const auto r = ResampleToDim(x, 4);
  EXPECT_EQ(r, x);
}

TEST(ResampleTest, EndpointsPreserved) {
  const std::vector<double> x = {5.0, 1.0, 9.0, 2.0, 7.0};
  const auto r = ResampleToDim(x, 11);
  EXPECT_DOUBLE_EQ(r.front(), 5.0);
  EXPECT_DOUBLE_EQ(r.back(), 7.0);
}

TEST(ResampleTest, LinearRampResamplesExactly) {
  // A linear function is reproduced exactly by linear interpolation.
  std::vector<double> x(10);
  for (size_t i = 0; i < 10; ++i) x[i] = 2.0 * static_cast<double>(i);
  const auto r = ResampleToDim(x, 19);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], static_cast<double>(i), 1e-12);
  }
}

TEST(ResampleTest, DownsampleMidpoint) {
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const auto r = ResampleToDim(x, 2);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

TEST(ResampleTest, SingleInputReplicated) {
  const std::vector<double> x = {3.5};
  const auto r = ResampleToDim(x, 5);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(ResampleTest, SingleOutputTakesMiddle) {
  const std::vector<double> x = {1.0, 9.0, 5.0};
  const auto r = ResampleToDim(x, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 9.0);
}

class ResampleSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ResampleSweep, OutputBoundedByInputRange) {
  const auto [in_len, out_len] = GetParam();
  std::vector<double> x(in_len);
  for (size_t i = 0; i < in_len; ++i) {
    x[i] = (i % 3 == 0 ? 1.0 : -1.0) * static_cast<double>(i % 5);
  }
  const double mn = *std::min_element(x.begin(), x.end());
  const double mx = *std::max_element(x.begin(), x.end());
  const auto r = ResampleToDim(x, out_len);
  ASSERT_EQ(r.size(), out_len);
  // Linear interpolation never overshoots the hull of its inputs.
  for (double v : r) {
    EXPECT_GE(v, mn - 1e-12);
    EXPECT_LE(v, mx + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ResampleSweep,
    ::testing::Values(std::pair<size_t, size_t>{5, 32},
                      std::pair<size_t, size_t>{32, 5},
                      std::pair<size_t, size_t>{100, 100},
                      std::pair<size_t, size_t>{2, 7},
                      std::pair<size_t, size_t>{7, 2}));

}  // namespace
}  // namespace ips
