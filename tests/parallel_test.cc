#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ips/pipeline.h"
#include "ips/utility.h"
#include "transform/shapelet_transform.h"

namespace ips {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(hits.size(), 4, [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, 16, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, SumMatchesSequential) {
  std::vector<long> partial(100, 0);
  ParallelFor(partial.size(), 8, [&](size_t i) {
    partial[i] = static_cast<long>(i) * static_cast<long>(i);
  });
  long total = std::accumulate(partial.begin(), partial.end(), 0L);
  long expected = 0;
  for (long i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

// Determinism of the discovery pipeline across thread counts: all
// randomness is drawn before the parallel regions, and the DistanceEngine's
// batched stages aggregate serially in a fixed order, so the discovered
// shapelets AND the utility scores behind them must be bitwise identical
// for every num_threads.
TEST(ParallelDiscoveryTest, IdenticalResultsAcrossThreadCounts) {
  GeneratorSpec spec;
  spec.name = "parallel";
  spec.num_classes = 2;
  spec.train_size = 14;
  spec.test_size = 2;
  spec.length = 80;
  const Dataset train = GenerateDataset(spec).train;

  IpsOptions options;
  options.num_threads = 1;
  const auto a = DiscoverShapelets(train, options).shapelets;

  for (const size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const auto b = DiscoverShapelets(train, options).shapelets;
    ASSERT_EQ(a.size(), b.size()) << threads << " threads";
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].values, b[i].values)
          << "shapelet " << i << " at " << threads << " threads";
      EXPECT_EQ(a[i].label, b[i].label);
    }
  }
}

// Same determinism check one level down: the exact utility scores (the
// quantities top-k selection ranks by) across thread counts, for both exact
// modes.
TEST(ParallelDiscoveryTest, IdenticalScoresAcrossThreadCounts) {
  GeneratorSpec spec;
  spec.name = "parallel-scores";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 72;
  const Dataset train = GenerateDataset(spec).train;

  IpsOptions options;
  Rng rng(options.seed);
  CandidatePool pool = GenerateCandidates(train, options, rng);

  for (const UtilityMode mode :
       {UtilityMode::kExactNaive, UtilityMode::kExactWithCr}) {
    const auto base = ScoreAllCandidates(pool, train, mode, nullptr,
                                         /*engine=*/nullptr,
                                         /*num_threads=*/1);
    for (const size_t threads : {2u, 8u}) {
      const auto got = ScoreAllCandidates(pool, train, mode, nullptr,
                                          /*engine=*/nullptr, threads);
      ASSERT_EQ(got.size(), base.size());
      for (const auto& [label, expected] : base) {
        const auto& actual = got.at(label);
        ASSERT_EQ(actual.size(), expected.size());
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(actual[i].intra, expected[i].intra);
          EXPECT_EQ(actual[i].inter, expected[i].inter);
          EXPECT_EQ(actual[i].instance, expected[i].instance);
        }
      }
    }
  }
}

TEST(ParallelTransformTest, IdenticalResultsAcrossThreadCounts) {
  GeneratorSpec spec;
  spec.name = "ptransform";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  std::vector<Subsequence> shapelets;
  for (size_t i = 0; i < 4; ++i) {
    shapelets.push_back(ExtractSubsequence(train[i], i, 12));
  }
  const TransformedData a =
      ShapeletTransform(train, shapelets, MetricId::kZNormEuclidean, 1);
  const TransformedData b =
      ShapeletTransform(train, shapelets, MetricId::kZNormEuclidean, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.features[i], b.features[i]);
    EXPECT_EQ(a.labels[i], b.labels[i]);
  }
}

}  // namespace
}  // namespace ips
