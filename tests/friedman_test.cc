#include "eval/friedman.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(FractionalRanksTest, DescendingNoTies) {
  const std::vector<double> v = {0.3, 0.9, 0.6};
  const auto r = FractionalRanksDescending(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  const std::vector<double> v = {0.5, 0.9, 0.5, 0.1};
  const auto r = FractionalRanksDescending(v);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(FractionalRanksTest, AllTied) {
  const std::vector<double> v = {1.0, 1.0, 1.0};
  for (double r : FractionalRanksDescending(v)) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(FriedmanTest, ClearWinnerGetsRankOne) {
  // Method 0 wins every dataset, method 2 always last.
  std::vector<std::vector<double>> scores;
  for (int d = 0; d < 10; ++d) {
    scores.push_back({0.9, 0.7, 0.5});
  }
  const FriedmanResult r = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[2], 3.0);
  EXPECT_LT(r.p_value, 0.01);  // differences are maximal
}

TEST(FriedmanTest, IdenticalMethodsNotSignificant) {
  std::vector<std::vector<double>> scores;
  for (int d = 0; d < 10; ++d) {
    scores.push_back({0.5, 0.5, 0.5});
  }
  const FriedmanResult r = FriedmanTest(scores);
  EXPECT_NEAR(r.chi_squared, 0.0, 1e-9);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(FriedmanTest, TextbookExample) {
  // Demsar 2006, Table 6-style check: hand-computed chi^2 for a small
  // matrix. scores[dataset][method].
  const std::vector<std::vector<double>> scores = {
      {0.9, 0.8, 0.7},
      {0.6, 0.8, 0.7},
      {0.9, 0.6, 0.7},
      {0.8, 0.7, 0.6},
  };
  const FriedmanResult r = FriedmanTest(scores);
  // Ranks per dataset: {1,2,3},{3,1,2},{1,3,2},{1,2,3} -> sums 6,8,10
  // -> averages 1.5, 2.0, 2.5.
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[2], 2.5);
  // chi2 = 12*4/(3*4) * (1.5^2+2^2+2.5^2 - 3*16/4) = 4*(12.5-12) = 2.
  EXPECT_NEAR(r.chi_squared, 2.0, 1e-9);
}

TEST(NemenyiCriticalDifferenceTest, KnownValue) {
  // Demsar: k=13, N=46 -> CD = 3.313 * sqrt(13*14/(6*46)) ~ 2.688.
  EXPECT_NEAR(NemenyiCriticalDifference(13, 46), 2.688, 0.01);
  // k=2 reduces to the normal quantile case.
  EXPECT_NEAR(NemenyiCriticalDifference(2, 100), 1.96 * std::sqrt(6.0 / 600.0),
              1e-9);
}

TEST(NemenyiCriticalDifferenceTest, ShrinksWithMoreDatasets) {
  EXPECT_GT(NemenyiCriticalDifference(5, 10), NemenyiCriticalDifference(5, 100));
}

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {0.5, 0.6, 0.7, 0.8};
  EXPECT_DOUBLE_EQ(WilcoxonSignedRankTest(a, a), 1.0);
}

TEST(WilcoxonTest, ConsistentLargeDifferencesSignificant) {
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(0.9 + 0.001 * i);
    b.push_back(0.5 + 0.001 * i);
  }
  EXPECT_LT(WilcoxonSignedRankTest(a, b), 0.001);
}

TEST(WilcoxonTest, SymmetricMixedDifferencesNotSignificant) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.5 + (i % 2 == 0 ? 0.1 : -0.1));
    b.push_back(0.5);
  }
  EXPECT_GT(WilcoxonSignedRankTest(a, b), 0.5);
}

TEST(HolmCorrectionTest, StepDownBehaviour) {
  // p = {0.001, 0.02, 0.04}, alpha = 0.05, m = 3:
  // 0.001 <= 0.05/3 -> reject; 0.02 <= 0.05/2 -> reject;
  // 0.04 <= 0.05/1 -> reject.
  const std::vector<double> p1 = {0.001, 0.02, 0.04};
  const auto r1 = HolmCorrection(p1, 0.05);
  EXPECT_TRUE(r1[0] && r1[1] && r1[2]);

  // p = {0.001, 0.03, 0.04}: 0.03 > 0.05/2 -> stop; only the first rejected.
  const std::vector<double> p2 = {0.001, 0.03, 0.04};
  const auto r2 = HolmCorrection(p2, 0.05);
  EXPECT_TRUE(r2[0]);
  EXPECT_FALSE(r2[1]);
  EXPECT_FALSE(r2[2]);
}

TEST(HolmCorrectionTest, OrderIndependentOfInput) {
  const std::vector<double> p = {0.04, 0.001, 0.03};
  const auto r = HolmCorrection(p, 0.05);
  EXPECT_TRUE(r[1]);
  EXPECT_FALSE(r[0]);
  EXPECT_FALSE(r[2]);
}

TEST(HolmCorrectionTest, EmptyInput) {
  EXPECT_TRUE(HolmCorrection(std::vector<double>{}, 0.05).empty());
}

}  // namespace
}  // namespace ips
