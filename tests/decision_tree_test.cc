#include "classify/decision_tree.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

TEST(EntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({4, 0}, 4), 0.0);
  EXPECT_NEAR(Entropy({2, 2}, 4), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({}, 0), 0.0);
}

TEST(DecisionTreeTest, PureDataGivesSingleLeaf) {
  LabeledMatrix data;
  data.x = {{1.0}, {2.0}, {3.0}};
  data.y = {1, 1, 1};
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<double>{5.0}), 1);
}

TEST(DecisionTreeTest, AxisAlignedSplitLearned) {
  LabeledMatrix data;
  for (double v = 0.0; v < 10.0; v += 1.0) {
    data.x.push_back({v});
    data.y.push_back(v < 5.0 ? 0 : 1);
  }
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_DOUBLE_EQ(tree.Accuracy(data), 1.0);
  EXPECT_EQ(tree.Predict(std::vector<double>{2.0}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{8.0}), 1);
}

TEST(DecisionTreeTest, XorNeedsDepthTwo) {
  LabeledMatrix data;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int rep = 0; rep < 5; ++rep) {
        data.x.push_back({static_cast<double>(a), static_cast<double>(b)});
        data.y.push_back(a ^ b);
      }
    }
  }
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_DOUBLE_EQ(tree.Accuracy(data), 1.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  Rng rng(1);
  LabeledMatrix data;
  for (int i = 0; i < 200; ++i) {
    data.x.push_back({rng.Gaussian(), rng.Gaussian()});
    data.y.push_back(rng.UniformInt(0, 1) == 0 ? 0 : 1);
  }
  DecisionTreeOptions o;
  o.max_depth = 1;
  DecisionTree stump(o);
  stump.Fit(data);
  EXPECT_LE(stump.NumNodes(), 3u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  LabeledMatrix data;
  for (double v = 0.0; v < 8.0; v += 1.0) {
    data.x.push_back({v});
    data.y.push_back(v < 1.0 ? 0 : 1);  // a 1-sample left split candidate
  }
  DecisionTreeOptions o;
  o.min_samples_leaf = 2;
  DecisionTree tree(o);
  tree.Fit(data);
  // The only perfect split (v < 0.5) is forbidden; tree may be imperfect but
  // must respect the constraint (no crash, sensible predictions).
  EXPECT_GE(tree.Accuracy(data), 0.8);
}

TEST(DecisionTreeTest, MulticlassSupported) {
  LabeledMatrix data;
  for (double v = 0.0; v < 12.0; v += 1.0) {
    data.x.push_back({v});
    data.y.push_back(static_cast<int>(v) / 4);
  }
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_DOUBLE_EQ(tree.Accuracy(data), 1.0);
}

TEST(DecisionTreeTest, DuplicateFeatureValuesDifferentLabels) {
  LabeledMatrix data;
  data.x = {{1.0}, {1.0}, {1.0}};
  data.y = {0, 1, 0};
  DecisionTree tree;
  tree.Fit(data);
  // No split boundary exists; must fall back to the majority leaf.
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<double>{1.0}), 0);
}

}  // namespace
}  // namespace ips
