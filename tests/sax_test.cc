#include "baselines/sax.h"

#include <cmath>

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

TEST(PaaTest, ExactSegments) {
  const std::vector<double> x = {1.0, 3.0, 5.0, 7.0};
  const auto paa = Paa(x, 2);
  ASSERT_EQ(paa.size(), 2u);
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 6.0);
}

TEST(PaaTest, SingleSegmentIsMean) {
  const std::vector<double> x = {2.0, 4.0, 6.0};
  const auto paa = Paa(x, 1);
  ASSERT_EQ(paa.size(), 1u);
  EXPECT_DOUBLE_EQ(paa[0], 4.0);
}

TEST(PaaTest, SegmentsClampedToLength) {
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_EQ(Paa(x, 10).size(), 2u);
}

TEST(PaaTest, UnevenDivision) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto paa = Paa(x, 2);
  ASSERT_EQ(paa.size(), 2u);
  // floor(i*2/5): 0,0,0,1,1.
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 4.5);
}

TEST(SaxBreakpointsTest, StandardTableValues) {
  const auto b2 = SaxBreakpoints(2);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_DOUBLE_EQ(b2[0], 0.0);
  const auto b4 = SaxBreakpoints(4);
  ASSERT_EQ(b4.size(), 3u);
  EXPECT_NEAR(b4[0], -0.67, 1e-9);
  EXPECT_NEAR(b4[1], 0.0, 1e-9);
  EXPECT_NEAR(b4[2], 0.67, 1e-9);
}

TEST(SaxBreakpointsTest, LargeCardinalityViaInverseNormal) {
  const auto b10 = SaxBreakpoints(10);
  ASSERT_EQ(b10.size(), 9u);
  // Symmetric around 0; monotone ascending.
  for (size_t i = 1; i < b10.size(); ++i) EXPECT_GT(b10[i], b10[i - 1]);
  EXPECT_NEAR(b10[4], 0.0, 1e-6);                  // median
  EXPECT_NEAR(b10[0], -b10[8], 1e-6);              // symmetry
  EXPECT_NEAR(b10[0], -1.2815515655, 1e-4);        // 10% quantile of N(0,1)
}

TEST(SaxWordTest, LengthAndAlphabet) {
  Rng rng(1);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.Gaussian();
  const std::string word = SaxWord(x, 8, 4);
  ASSERT_EQ(word.size(), 8u);
  for (char c : word) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'd');
  }
}

TEST(SaxWordTest, ScaleShiftInvariant) {
  Rng rng(2);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<double> y(x);
  for (auto& v : y) v = 10.0 * v + 42.0;
  EXPECT_EQ(SaxWord(x, 6, 4), SaxWord(y, 6, 4));
}

TEST(SaxWordTest, RampProducesAscendingSymbols) {
  std::vector<double> x(32);
  for (size_t i = 0; i < 32; ++i) x[i] = static_cast<double>(i);
  const std::string word = SaxWord(x, 4, 4);
  for (size_t i = 1; i < word.size(); ++i) EXPECT_GE(word[i], word[i - 1]);
  EXPECT_EQ(word.front(), 'a');
  EXPECT_EQ(word.back(), 'd');
}

TEST(SaxWordTest, SimilarInputsShareWord) {
  Rng rng(3);
  std::vector<double> x(32);
  for (size_t i = 0; i < 32; ++i) {
    x[i] = std::sin(0.3 * static_cast<double>(i));
  }
  std::vector<double> y(x);
  for (auto& v : y) v += rng.Gaussian(0.0, 0.01);
  EXPECT_EQ(SaxWord(x, 8, 4), SaxWord(y, 8, 4));
}

}  // namespace
}  // namespace ips
