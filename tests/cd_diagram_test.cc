#include "eval/cd_diagram.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ips {
namespace {

TEST(CdCliquesTest, AllWithinCdFormOneClique) {
  const std::vector<double> ranks = {1.0, 1.5, 2.0};
  const auto cliques = CdCliques(ranks, 1.5);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::pair<size_t, size_t>{0, 2}));
}

TEST(CdCliquesTest, DistantMethodsNoClique) {
  const std::vector<double> ranks = {1.0, 3.0, 5.0};
  EXPECT_TRUE(CdCliques(ranks, 0.5).empty());
}

TEST(CdCliquesTest, OverlappingCliquesKeptMaximal) {
  const std::vector<double> ranks = {1.0, 2.0, 3.0, 4.0};
  const auto cliques = CdCliques(ranks, 1.5);
  // {0,1}, {1,2}, {2,3}: each extends further than the previous.
  ASSERT_EQ(cliques.size(), 3u);
  EXPECT_EQ(cliques[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(cliques[1], (std::pair<size_t, size_t>{1, 2}));
  EXPECT_EQ(cliques[2], (std::pair<size_t, size_t>{2, 3}));
}

TEST(CdCliquesTest, ContainedCliqueDropped) {
  const std::vector<double> ranks = {1.0, 1.2, 1.4};
  const auto cliques = CdCliques(ranks, 0.5);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::pair<size_t, size_t>{0, 2}));
}

TEST(RenderCdDiagramTest, ContainsAllMethodsSortedByRank) {
  std::vector<CdEntry> entries = {
      {"MethodB", 2.5}, {"MethodA", 1.2}, {"MethodC", 4.0}};
  const std::string diagram = RenderCdDiagram(entries, 1.5);
  const size_t pos_a = diagram.find("MethodA");
  const size_t pos_b = diagram.find("MethodB");
  const size_t pos_c = diagram.find("MethodC");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
}

TEST(RenderCdDiagramTest, ShowsCriticalDifference) {
  std::vector<CdEntry> entries = {{"X", 1.0}, {"Y", 2.0}};
  const std::string diagram = RenderCdDiagram(entries, 1.234);
  EXPECT_NE(diagram.find("1.234"), std::string::npos);
}

TEST(RenderCdDiagramTest, GroupBarsMarkCliqueMembers) {
  std::vector<CdEntry> entries = {{"A", 1.0}, {"B", 1.3}, {"C", 9.0}};
  const std::string diagram = RenderCdDiagram(entries, 1.0);
  // A and B grouped; C alone: exactly one clique column, with bars on the
  // first two method rows only.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < diagram.size()) {
    const size_t end = diagram.find('\n', start);
    lines.push_back(diagram.substr(start, end - start));
    start = end == std::string::npos ? diagram.size() : end + 1;
  }
  ASSERT_GE(lines.size(), 5u);
  EXPECT_NE(lines[2].find('|'), std::string::npos);  // A row
  EXPECT_NE(lines[3].find('|'), std::string::npos);  // B row
  EXPECT_EQ(lines[4].find('|'), std::string::npos);  // C row
}

}  // namespace
}  // namespace ips
