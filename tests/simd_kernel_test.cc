// Bitwise-identity property tests for the SIMD kernel layer (core/simd.h).
//
// Every dispatched kernel must produce output bit-for-bit equal to its
// scalar reference (simd::scalar::*) -- and, where one exists, to the
// historic scalar loop it replaced -- over shapes that exercise the
// remainder handling: counts of 1, kLanes - 1, kLanes, kLanes + 1 and a
// spread of primes, with inputs that include flat (zero-variance) windows
// so the masked/blended lanes are hit too. Comparisons go through
// std::bit_cast so -0.0 vs +0.0 or NaN-payload drift would fail, not pass.

#include "core/simd.h"

#include <bit>
#include <cmath>
#include <cstdint>

#include <algorithm>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/znorm.h"
#include "gtest/gtest.h"
#include "matrix_profile/stomp_common.h"

namespace ips {
namespace {

constexpr size_t kW = simd::kLanes;

// Counts around the vector width plus primes; filtered to >= 1 and deduped.
std::vector<size_t> TestCounts() {
  std::vector<size_t> counts = {1, 2, 3, 5, 7, 13, 31, 97, 257};
  if (kW > 1) {
    counts.push_back(kW - 1);
    counts.push_back(kW);
    counts.push_back(kW + 1);
    counts.push_back(4 * kW + 3);
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// Gaussian data with occasional constant stretches so flat-window branches
// (stds below kFlatStdEpsilon) are exercised, not just the main path.
std::vector<double> RandomSeries(Rng& rng, size_t n, bool with_flats) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian(0.0, 1.0);
  if (with_flats && n >= 8) {
    const size_t start = rng.Index(n / 2);
    const size_t len = 4 + rng.Index(n / 4);
    const double c = rng.Gaussian(0.0, 1.0);
    for (size_t i = start; i < std::min(n, start + len); ++i) x[i] = c;
  }
  return x;
}

void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(got[i]), std::bit_cast<uint64_t>(want[i]))
        << what << " diverges at index " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

TEST(SimdBackendTest, WidthAndNameAreConsistent) {
  const std::string name = simd::BackendName();
#if defined(IPS_DISABLE_SIMD)
  EXPECT_EQ(name, "scalar");
  EXPECT_EQ(kW, 1u);
#else
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2" ||
              name == "neon");
  if (name == "scalar") {
    EXPECT_EQ(kW, 1u);
  } else if (name == "sse2" || name == "neon") {
    EXPECT_EQ(kW, 2u);
  } else {
    EXPECT_EQ(kW, 4u);
  }
#endif
}

TEST(SimdKernelTest, SlidingDotsMatchesScalarAndHistoricLoop) {
  Rng rng(7);
  for (size_t count : TestCounts()) {
    for (size_t m : {size_t{1}, size_t{3}, size_t{16}}) {
      const size_t n = count + m - 1;
      const std::vector<double> q = RandomSeries(rng, m, false);
      const std::vector<double> s = RandomSeries(rng, n, false);

      std::vector<double> got(count), ref(count), historic(count);
      simd::SlidingDots(q.data(), m, s.data(), n, got.data());
      simd::scalar::SlidingDots(q.data(), m, s.data(), n, ref.data());
      for (size_t i = 0; i < count; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < m; ++j) acc += q[j] * s[i + j];
        historic[i] = acc;
      }
      ExpectBitEqual(got, ref, "SlidingDots vs scalar");
      ExpectBitEqual(got, historic, "SlidingDots vs historic loop");
    }
  }
}

TEST(SimdKernelTest, RawProfileAndMinMatchScalar) {
  Rng rng(11);
  for (size_t count : TestCounts()) {
    const size_t m = 1 + rng.Index(8);
    const size_t n = count + m - 1;
    const std::vector<double> q = RandomSeries(rng, m, false);
    const std::vector<double> s = RandomSeries(rng, n, false);

    double qq = 0.0;
    for (double v : q) qq += v * v;
    std::vector<double> sq(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) sq[i + 1] = sq[i] + s[i] * s[i];
    std::vector<double> dots(count);
    simd::scalar::SlidingDots(q.data(), m, s.data(), n, dots.data());

    std::vector<double> got(count), ref(count), historic(count);
    simd::RawProfileFromDots(qq, sq.data(), m, dots.data(), count, got.data());
    simd::scalar::RawProfileFromDots(qq, sq.data(), m, dots.data(), count,
                                     ref.data());
    const double md = static_cast<double>(m);
    for (size_t i = 0; i < count; ++i) {
      const double window_sq = sq[i + m] - sq[i];
      historic[i] = std::max(0.0, (qq - 2.0 * dots[i] + window_sq) / md);
    }
    ExpectBitEqual(got, ref, "RawProfileFromDots vs scalar");
    ExpectBitEqual(got, historic, "RawProfileFromDots vs historic loop");

    const double min_got = simd::RawMinFromDots(qq, sq.data(), m, dots.data(),
                                                count);
    const double min_ref = simd::scalar::RawMinFromDots(qq, sq.data(), m,
                                                        dots.data(), count);
    const double min_hist = *std::min_element(historic.begin(), historic.end());
    EXPECT_EQ(std::bit_cast<uint64_t>(min_got), std::bit_cast<uint64_t>(min_ref));
    EXPECT_EQ(std::bit_cast<uint64_t>(min_got), std::bit_cast<uint64_t>(min_hist));
  }
}

TEST(SimdKernelTest, ZNormProfileAndMinMatchScalarIncludingFlats) {
  Rng rng(13);
  for (size_t count : TestCounts()) {
    for (bool query_flat : {false, true}) {
      const size_t m = 2 + rng.Index(6);
      const size_t n = count + m - 1;
      const std::vector<double> s = RandomSeries(rng, n, /*with_flats=*/true);
      const RollingStats stats = ComputeRollingStats(s, m);
      ASSERT_EQ(stats.stds.size(), count);
      std::vector<double> dots(count);
      for (double& v : dots) v = rng.Gaussian(0.0, static_cast<double>(m));

      std::vector<double> got(count), ref(count), historic(count);
      simd::ZNormProfileFromDots(dots.data(), stats.stds.data(), count, m,
                                 query_flat, got.data());
      simd::scalar::ZNormProfileFromDots(dots.data(), stats.stds.data(), count,
                                         m, query_flat, ref.data());
      const double md = static_cast<double>(m);
      for (size_t i = 0; i < count; ++i) {
        const double sig = stats.stds[i];
        const bool window_flat = sig < kFlatStdEpsilon;
        if (query_flat && window_flat) {
          historic[i] = 0.0;
        } else if (query_flat || window_flat) {
          historic[i] = std::sqrt(md);
        } else {
          historic[i] = std::sqrt(std::max(0.0, 2.0 * md - 2.0 * dots[i] / sig));
        }
      }
      ExpectBitEqual(got, ref, "ZNormProfileFromDots vs scalar");
      ExpectBitEqual(got, historic, "ZNormProfileFromDots vs historic loop");

      const double min_got = simd::ZNormMinFromDots(
          dots.data(), stats.stds.data(), count, m, query_flat);
      const double min_ref = simd::scalar::ZNormMinFromDots(
          dots.data(), stats.stds.data(), count, m, query_flat);
      const double min_hist =
          *std::min_element(historic.begin(), historic.end());
      EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
                std::bit_cast<uint64_t>(min_ref));
      EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
                std::bit_cast<uint64_t>(min_hist));
    }
  }
}

TEST(SimdKernelTest, RollingMomentsMatchScalarIncludingFlats) {
  Rng rng(17);
  for (size_t count : TestCounts()) {
    const size_t w = 2 + rng.Index(6);
    const size_t n = count + w - 1;
    const std::vector<double> x = RandomSeries(rng, n, /*with_flats=*/true);

    double gm = 0.0;
    for (double v : x) gm += v;
    gm /= static_cast<double>(n);
    std::vector<double> sum(n + 1, 0.0), sq(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double c = x[i] - gm;
      sum[i + 1] = sum[i] + c;
      sq[i + 1] = sq[i] + c * c;
    }

    std::vector<double> means_got(count), stds_got(count);
    std::vector<double> means_ref(count), stds_ref(count);
    simd::RollingMomentsFromPrefix(sum.data(), sq.data(), count, w, gm,
                                   means_got.data(), stds_got.data());
    simd::scalar::RollingMomentsFromPrefix(sum.data(), sq.data(), count, w, gm,
                                           means_ref.data(), stds_ref.data());
    ExpectBitEqual(means_got, means_ref, "RollingMoments means vs scalar");
    ExpectBitEqual(stds_got, stds_ref, "RollingMoments stds vs scalar");

    // And against the public entry point that routes through the kernel.
    const RollingStats rs = ComputeRollingStats(x, w);
    ExpectBitEqual(means_got, rs.means, "RollingMoments vs ComputeRollingStats");
    ExpectBitEqual(stds_got, rs.stds, "RollingMoments vs ComputeRollingStats");
  }
}

TEST(SimdKernelTest, QtRowAdvanceMatchesScalarAcrossChainedRows) {
  Rng rng(19);
  for (size_t count : TestCounts()) {
    const size_t w = 3;
    const size_t rows = 5;
    const std::vector<double> a = RandomSeries(rng, rows + w - 1, false);
    const std::vector<double> b = RandomSeries(rng, count + w - 1, false);

    // Row 0 seed: dot products of a's first window against b's windows.
    std::vector<double> qt_got(count), qt_ref(count), qt_hist(count);
    simd::scalar::SlidingDots(a.data(), w, b.data(), b.size(), qt_got.data());
    qt_ref = qt_got;
    qt_hist = qt_got;

    const std::span<const double> av(a), bv(b);
    for (size_t i = 1; i < rows; ++i) {
      // Chained updates: errors would compound across rows if any lane
      // diverged, so the comparison after the loop is a strong check.
      simd::QtRowAdvance(qt_got.data(), count, b.data(), w, a[i - 1],
                         a[i + w - 1]);
      simd::scalar::QtRowAdvance(qt_ref.data(), count, b.data(), w, a[i - 1],
                                 a[i + w - 1]);
      for (size_t j = count; j-- > 1;) {
        qt_hist[j] = StompAdvance(qt_hist[j - 1], av, bv, i, j, w);
      }
      // The caller reseeds column 0 from cached products; replicate with the
      // true dot product so later rows keep chaining.
      double col0 = 0.0;
      for (size_t k = 0; k < w; ++k) col0 += a[i + k] * b[k];
      qt_got[0] = col0;
      qt_ref[0] = col0;
      qt_hist[0] = col0;
    }
    ExpectBitEqual(qt_got, qt_ref, "QtRowAdvance vs scalar");
    ExpectBitEqual(qt_got, qt_hist, "QtRowAdvance vs StompAdvance loop");
  }
}

TEST(SimdKernelTest, StompRowDistancesMatchesScalarAndStompZNormDistance) {
  Rng rng(23);
  for (size_t count : TestCounts()) {
    const size_t w = 4;
    const std::vector<double> b = RandomSeries(rng, count + w - 1,
                                               /*with_flats=*/true);
    const RollingStats sb = ComputeRollingStats(b, w);
    ASSERT_EQ(sb.stds.size(), count);
    std::vector<double> qt(count);
    for (double& v : qt) v = rng.Gaussian(0.0, static_cast<double>(w));

    // Flat and non-flat row sides both matter: flat_a takes the early-out.
    const double mu_flat = 0.7;
    for (double sig_a : {1.3, 0.0}) {
      const double mu_a = sig_a == 0.0 ? mu_flat : -0.4;
      std::vector<double> got(count), ref(count), historic(count);
      simd::StompRowDistances(qt.data(), sb.means.data(), sb.stds.data(),
                              count, w, mu_a, sig_a, got.data());
      simd::scalar::StompRowDistances(qt.data(), sb.means.data(),
                                      sb.stds.data(), count, w, mu_a, sig_a,
                                      ref.data());
      for (size_t j = 0; j < count; ++j) {
        historic[j] = StompZNormDistance(qt[j], w, mu_a, sig_a, sb.means[j],
                                         sb.stds[j]);
      }
      ExpectBitEqual(got, ref, "StompRowDistances vs scalar");
      ExpectBitEqual(got, historic, "StompRowDistances vs StompZNormDistance");
    }
  }
}

TEST(SimdKernelTest, SquaredEuclideanChainedMatchesHistoricLoop) {
  Rng rng(29);
  for (size_t n : TestCounts()) {
    const std::vector<double> a = RandomSeries(rng, n, false);
    const std::vector<double> b = RandomSeries(rng, n, false);
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      s += d * d;
    }
    const double got = simd::SquaredEuclideanChained(a.data(), b.data(), n);
    const double ref =
        simd::scalar::SquaredEuclideanChained(a.data(), b.data(), n);
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(s));
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(ref));
  }
}

// ------------------------------------------------------- per-metric kernels

TEST(SimdKernelTest, L2ProfileAndMinMatchScalarAndHistoricLoop) {
  Rng rng(31);
  for (size_t count : TestCounts()) {
    const size_t m = 1 + rng.Index(8);
    const size_t n = count + m - 1;
    const std::vector<double> q = RandomSeries(rng, m, false);
    const std::vector<double> s = RandomSeries(rng, n, false);

    double qq = 0.0;
    for (double v : q) qq += v * v;
    std::vector<double> sq(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) sq[i + 1] = sq[i] + s[i] * s[i];
    std::vector<double> dots(count);
    simd::scalar::SlidingDots(q.data(), m, s.data(), n, dots.data());

    std::vector<double> got(count), ref(count), historic(count);
    simd::L2ProfileFromDots(qq, sq.data(), m, dots.data(), count, got.data());
    simd::scalar::L2ProfileFromDots(qq, sq.data(), m, dots.data(), count,
                                    ref.data());
    for (size_t i = 0; i < count; ++i) {
      const double window_sq = sq[i + m] - sq[i];
      historic[i] = std::sqrt(std::max(0.0, qq - 2.0 * dots[i] + window_sq));
    }
    ExpectBitEqual(got, ref, "L2ProfileFromDots vs scalar");
    ExpectBitEqual(got, historic, "L2ProfileFromDots vs historic loop");

    const double min_got =
        simd::L2MinFromDots(qq, sq.data(), m, dots.data(), count);
    const double min_ref =
        simd::scalar::L2MinFromDots(qq, sq.data(), m, dots.data(), count);
    const double min_hist = *std::min_element(historic.begin(), historic.end());
    EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
              std::bit_cast<uint64_t>(min_ref));
    EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
              std::bit_cast<uint64_t>(min_hist));
  }
}

TEST(SimdKernelTest, CosineProfileAndMinMatchScalarIncludingFlats) {
  Rng rng(37);
  for (size_t count : TestCounts()) {
    for (bool query_flat : {false, true}) {
      const size_t m = 2 + rng.Index(6);
      const size_t n = count + m - 1;
      // A zeroed stretch makes some window norms flat, so the blended
      // convention lanes (both -> 0, one -> 1) are exercised.
      std::vector<double> s = RandomSeries(rng, n, false);
      if (n >= 8) {
        const size_t start = rng.Index(n / 2);
        for (size_t i = start; i < std::min(n, start + m + 2); ++i) s[i] = 0.0;
      }
      const std::vector<double> q =
          query_flat ? std::vector<double>(m, 0.0) : RandomSeries(rng, m,
                                                                  false);

      double qq = 0.0;
      for (double v : q) qq += v * v;
      std::vector<double> sq(n + 1, 0.0);
      for (size_t i = 0; i < n; ++i) sq[i + 1] = sq[i] + s[i] * s[i];
      std::vector<double> dots(count);
      simd::scalar::SlidingDots(q.data(), m, s.data(), n, dots.data());

      std::vector<double> got(count), ref(count), historic(count);
      simd::CosineProfileFromDots(qq, sq.data(), m, dots.data(), count,
                                  got.data());
      simd::scalar::CosineProfileFromDots(qq, sq.data(), m, dots.data(), count,
                                          ref.data());
      const double qn = std::sqrt(qq);
      for (size_t i = 0; i < count; ++i) {
        const double wn = std::sqrt(sq[i + m] - sq[i]);
        const bool q_flat = qn < kFlatStdEpsilon;
        const bool w_flat = wn < kFlatStdEpsilon;
        if (q_flat && w_flat) {
          historic[i] = 0.0;
        } else if (q_flat || w_flat) {
          historic[i] = 1.0;
        } else {
          historic[i] = std::max(0.0, 1.0 - dots[i] / (qn * wn));
        }
      }
      ExpectBitEqual(got, ref, "CosineProfileFromDots vs scalar");
      ExpectBitEqual(got, historic, "CosineProfileFromDots vs historic loop");

      const double min_got =
          simd::CosineMinFromDots(qq, sq.data(), m, dots.data(), count);
      const double min_ref =
          simd::scalar::CosineMinFromDots(qq, sq.data(), m, dots.data(),
                                          count);
      const double min_hist =
          *std::min_element(historic.begin(), historic.end());
      EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
                std::bit_cast<uint64_t>(min_ref));
      EXPECT_EQ(std::bit_cast<uint64_t>(min_got),
                std::bit_cast<uint64_t>(min_hist));
    }
  }
}

TEST(SimdKernelTest, StompRowDistancesRawL2CosineMatchScalarAndHelpers) {
  Rng rng(41);
  for (size_t count : TestCounts()) {
    const size_t w = 4;
    // Window energies of a series with a zeroed stretch: flat-norm lanes
    // for the cosine row alongside ordinary ones.
    std::vector<double> b = RandomSeries(rng, count + w - 1, false);
    if (b.size() >= 8) {
      const size_t start = rng.Index(b.size() / 2);
      for (size_t i = start; i < std::min(b.size(), start + w + 2); ++i) {
        b[i] = 0.0;
      }
    }
    const std::vector<double> energies = ComputeWindowEnergies(b, w);
    ASSERT_EQ(energies.size(), count);
    std::vector<double> qt(count);
    for (double& v : qt) v = rng.Gaussian(0.0, static_cast<double>(w));

    for (double ssq_a : {2.75, 0.0}) {
      std::vector<double> got(count), ref(count), historic(count);

      simd::StompRowDistancesRaw(qt.data(), energies.data(), count, w, ssq_a,
                                 got.data());
      simd::scalar::StompRowDistancesRaw(qt.data(), energies.data(), count, w,
                                         ssq_a, ref.data());
      for (size_t j = 0; j < count; ++j) {
        historic[j] = StompRawDistance(qt[j], w, ssq_a, energies[j]);
      }
      ExpectBitEqual(got, ref, "StompRowDistancesRaw vs scalar");
      ExpectBitEqual(got, historic, "StompRowDistancesRaw vs StompRawDistance");

      simd::StompRowDistancesL2(qt.data(), energies.data(), count, w, ssq_a,
                                got.data());
      simd::scalar::StompRowDistancesL2(qt.data(), energies.data(), count, w,
                                        ssq_a, ref.data());
      for (size_t j = 0; j < count; ++j) {
        historic[j] = StompL2Distance(qt[j], ssq_a, energies[j]);
      }
      ExpectBitEqual(got, ref, "StompRowDistancesL2 vs scalar");
      ExpectBitEqual(got, historic, "StompRowDistancesL2 vs StompL2Distance");

      simd::StompRowDistancesCosine(qt.data(), energies.data(), count, w,
                                    ssq_a, got.data());
      simd::scalar::StompRowDistancesCosine(qt.data(), energies.data(), count,
                                            w, ssq_a, ref.data());
      const double norm_a = std::sqrt(ssq_a);
      for (size_t j = 0; j < count; ++j) {
        historic[j] = StompCosineDistance(qt[j], norm_a,
                                          std::sqrt(energies[j]));
      }
      ExpectBitEqual(got, ref, "StompRowDistancesCosine vs scalar");
      ExpectBitEqual(got, historic,
                     "StompRowDistancesCosine vs StompCosineDistance");
    }
  }
}

}  // namespace
}  // namespace ips
