#include "classify/rotation_forest.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

LabeledMatrix GaussianBlobs(size_t per_class, size_t dim, Rng& rng) {
  LabeledMatrix data;
  for (size_t i = 0; i < per_class; ++i) {
    std::vector<double> a(dim), b(dim);
    for (size_t j = 0; j < dim; ++j) {
      a[j] = rng.Gaussian(1.5, 0.6);
      b[j] = rng.Gaussian(-1.5, 0.6);
    }
    data.x.push_back(std::move(a));
    data.y.push_back(0);
    data.x.push_back(std::move(b));
    data.y.push_back(1);
  }
  return data;
}

TEST(RotationForestTest, FitsSeparableData) {
  Rng rng(1);
  const LabeledMatrix data = GaussianBlobs(40, 8, rng);
  RotationForestOptions o;
  o.num_trees = 5;
  RotationForest forest(o);
  forest.Fit(data);
  EXPECT_EQ(forest.num_trees(), 5u);
  EXPECT_GE(forest.Accuracy(data), 0.95);
}

TEST(RotationForestTest, GeneralizesToFreshDraws) {
  Rng rng(2);
  const LabeledMatrix train = GaussianBlobs(40, 8, rng);
  const LabeledMatrix test = GaussianBlobs(40, 8, rng);
  RotationForest forest;
  forest.Fit(train);
  EXPECT_GE(forest.Accuracy(test), 0.9);
}

TEST(RotationForestTest, DimensionNotMultipleOfSubsetSize) {
  Rng rng(3);
  const LabeledMatrix data = GaussianBlobs(30, 7, rng);  // 7 % 4 != 0
  RotationForestOptions o;
  o.num_trees = 3;
  o.features_per_subset = 4;
  RotationForest forest(o);
  forest.Fit(data);
  EXPECT_GE(forest.Accuracy(data), 0.9);
}

TEST(RotationForestTest, SingleFeature) {
  Rng rng(4);
  LabeledMatrix data;
  for (int i = 0; i < 50; ++i) {
    data.x.push_back({rng.Gaussian(i % 2 == 0 ? 2.0 : -2.0, 0.5)});
    data.y.push_back(i % 2);
  }
  RotationForestOptions o;
  o.num_trees = 3;
  RotationForest forest(o);
  forest.Fit(data);
  EXPECT_GE(forest.Accuracy(data), 0.9);
}

TEST(RotationForestTest, MulticlassVoting) {
  Rng rng(5);
  LabeledMatrix data;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      std::vector<double> row(6);
      for (auto& v : row) {
        v = rng.Gaussian(3.0 * static_cast<double>(c), 0.5);
      }
      data.x.push_back(std::move(row));
      data.y.push_back(c);
    }
  }
  RotationForest forest;
  forest.Fit(data);
  EXPECT_GE(forest.Accuracy(data), 0.9);
}

TEST(RotationForestTest, DeterministicForSameSeed) {
  Rng rng(6);
  const LabeledMatrix data = GaussianBlobs(20, 6, rng);
  RotationForestOptions o;
  o.num_trees = 4;
  o.seed = 77;
  RotationForest a(o), b(o);
  a.Fit(data);
  b.Fit(data);
  Rng probe_rng(7);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> probe(6);
    for (auto& v : probe) v = probe_rng.Gaussian();
    EXPECT_EQ(a.Predict(probe), b.Predict(probe));
  }
}

}  // namespace
}  // namespace ips
