// IpsRunStats::FromRegistry: the mapping from registry deltas (named
// counters + trace leaves) to the flat stats view, plus the guarantee that
// the mapping works identically through the live registries.

#include "ips/run_result.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "ips/pipeline.h"

namespace ips {
namespace {

TEST(FromRegistryTest, MapsEveryCounterByName) {
  obs::MetricsSnapshot metrics;
  metrics.counters["ips.motifs_generated"] = 10;
  metrics.counters["ips.discords_generated"] = 9;
  metrics.counters["ips.motifs_after_prune"] = 4;
  metrics.counters["ips.discords_after_prune"] = 3;
  metrics.counters["ips.shapelets_selected"] = 6;
  metrics.counters["engine.profiles_computed"] = 100;
  metrics.counters["engine.stats_cache_hits"] = 20;
  metrics.counters["engine.stats_cache_misses"] = 5;
  metrics.counters["mp.joins_computed"] = 50;
  metrics.counters["mp.qt_sweeps"] = 25;
  metrics.counters["mp.joins_halved"] = 12;
  metrics.counters["mp.cache_hits"] = 7;
  metrics.counters["mp.cache_misses"] = 2;
  metrics.counters["pool.regions_dispatched"] = 11;
  metrics.counters["pool.regions_inline"] = 13;
  metrics.counters["pool.tasks_run"] = 1000;
  metrics.counters["pool.chunk_steals"] = 17;

  const IpsRunStats s = IpsRunStats::FromRegistry(metrics, {});
  EXPECT_EQ(s.motifs_generated, 10u);
  EXPECT_EQ(s.discords_generated, 9u);
  EXPECT_EQ(s.motifs_after_prune, 4u);
  EXPECT_EQ(s.discords_after_prune, 3u);
  EXPECT_EQ(s.shapelets, 6u);
  EXPECT_EQ(s.profiles_computed, 100u);
  EXPECT_EQ(s.stats_cache_hits, 20u);
  EXPECT_EQ(s.stats_cache_misses, 5u);
  EXPECT_EQ(s.mp_joins_computed, 50u);
  EXPECT_EQ(s.mp_qt_sweeps, 25u);
  EXPECT_EQ(s.mp_joins_halved, 12u);
  EXPECT_EQ(s.mp_cache_hits, 7u);
  EXPECT_EQ(s.mp_cache_misses, 2u);
  EXPECT_EQ(s.pool_regions, 11u);
  EXPECT_EQ(s.pool_inline_regions, 13u);
  EXPECT_EQ(s.pool_tasks_run, 1000u);
  EXPECT_EQ(s.pool_steals, 17u);
  // No trace -> no timings.
  EXPECT_EQ(s.TotalDiscoverySeconds(), 0.0);
}

TEST(FromRegistryTest, MapsStageSecondsByLeafName) {
  obs::TraceReport trace;
  // Both a bare-discovery path and a classifier path must feed the same
  // field: the mapping is by leaf name, not full path.
  trace.spans.push_back({"discover/candidate_gen", 1, 1.0});
  trace.spans.push_back({"fit/discover/candidate_gen", 1, 0.5});
  trace.spans.push_back({"fit/discover/candidate_gen/instance_profile", 1,
                         0.25});
  trace.spans.push_back({"fit/discover/dabf_build", 1, 0.125});
  trace.spans.push_back({"fit/discover/pruning", 1, 2.0});
  trace.spans.push_back({"fit/discover/selection", 1, 4.0});
  trace.spans.push_back({"fit/transform", 1, 8.0});
  trace.spans.push_back({"fit/backend_fit", 1, 16.0});

  const IpsRunStats s = IpsRunStats::FromRegistry({}, trace);
  EXPECT_EQ(s.candidate_gen_seconds, 1.5);
  EXPECT_EQ(s.profile_seconds, 0.25);
  EXPECT_EQ(s.dabf_build_seconds, 0.125);
  EXPECT_EQ(s.pruning_seconds, 2.0);
  EXPECT_EQ(s.selection_seconds, 4.0);
  EXPECT_EQ(s.transform_seconds, 8.0);
  EXPECT_EQ(s.backend_fit_seconds, 16.0);
  EXPECT_EQ(s.TotalDiscoverySeconds(), 1.5 + 0.125 + 2.0 + 4.0);
}

TEST(FromRegistryTest, EmptyDeltaYieldsZeroStats) {
  const IpsRunStats s = IpsRunStats::FromRegistry({}, {});
  EXPECT_EQ(s.motifs_generated, 0u);
  EXPECT_EQ(s.pool_tasks_run, 0u);
  EXPECT_EQ(s.TotalDiscoverySeconds(), 0.0);
}

TEST(FromRegistryTest, LiveRegistryWindowMatchesMapping) {
  // Drive the real registries the way the pipeline does: snapshot, bump,
  // delta, map. Works identically with tracing compiled out because
  // TraceRegistry::Record is registry-level, not Span-level.
  auto& metrics_reg = obs::MetricsRegistry::Instance();
  auto& trace_reg = obs::TraceRegistry::Instance();
  const obs::MetricsSnapshot m0 = metrics_reg.Snapshot();
  const obs::TraceSnapshot t0 = trace_reg.Snapshot();

  metrics_reg.GetCounter("ips.motifs_generated").Add(21);
  metrics_reg.GetCounter("engine.profiles_computed").Add(34);
  trace_reg.Record("discover/pruning", 0.75);

  const IpsRunStats s = IpsRunStats::FromRegistry(
      metrics_reg.DeltaSince(m0), trace_reg.DeltaSince(t0));
  EXPECT_EQ(s.motifs_generated, 21u);
  EXPECT_EQ(s.profiles_computed, 34u);
  EXPECT_EQ(s.pruning_seconds, 0.75);
}

TEST(RunResultTest, CountersMatchRegardlessOfTracingConfig) {
  // The event counters feeding IpsRunStats are live in both build configs;
  // only the *_seconds fields go dark under -DIPS_DISABLE_TRACING. Discovery
  // output itself must not depend on the config either -- CI diffs the
  // discovery_fingerprint binary across builds; here we pin the runtime
  // invariants that diff relies on.
  GeneratorSpec spec;
  spec.name = "run_result_neutrality";
  spec.num_classes = 2;
  spec.train_size = 10;
  spec.test_size = 2;
  spec.length = 64;
  const Dataset train = GenerateDataset(spec).train;
  IpsOptions options;
  options.sample_count = 3;
  options.length_ratios = {0.2};

  const RunResult a = DiscoverShapelets(train, options);
  const RunResult b = DiscoverShapelets(train, options);

  // Work counters are deterministic for a fixed dataset/config (unlike
  // pool scheduling counters, which depend on timing).
  EXPECT_EQ(a.stats.motifs_generated, b.stats.motifs_generated);
  EXPECT_EQ(a.stats.discords_generated, b.stats.discords_generated);
  EXPECT_EQ(a.stats.motifs_after_prune, b.stats.motifs_after_prune);
  EXPECT_EQ(a.stats.discords_after_prune, b.stats.discords_after_prune);
  EXPECT_EQ(a.stats.profiles_computed, b.stats.profiles_computed);
  EXPECT_EQ(a.stats.mp_joins_computed, b.stats.mp_joins_computed);
  EXPECT_EQ(a.stats.shapelets, a.shapelets.size());
  EXPECT_GT(a.stats.motifs_generated, 0u);
  // Candidate generation always runs matrix-profile joins; the
  // DistanceEngine profile counters depend on the utility/pruning config,
  // so equality across runs (above) is all we pin for them.
  EXPECT_GT(a.stats.mp_joins_computed, 0u);

  if (obs::kTracingEnabled) {
    EXPECT_FALSE(a.trace.empty());
  } else {
    EXPECT_TRUE(a.trace.empty());
    EXPECT_EQ(a.stats.TotalDiscoverySeconds(), 0.0);
  }
}

}  // namespace
}  // namespace ips
