#include "dabf/dabf.h"

#include <cmath>

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace ips {
namespace {

Subsequence MakeSub(std::vector<double> values, int label) {
  Subsequence s;
  s.values = std::move(values);
  s.label = label;
  return s;
}

// A population of similar sine-shaped subsequences with small jitter.
std::vector<Subsequence> SinePopulation(int label, size_t count, size_t len,
                                        double freq, Rng& rng) {
  std::vector<Subsequence> out;
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> v(len);
    for (size_t j = 0; j < len; ++j) {
      v[j] = std::sin(freq * static_cast<double>(j)) +
             rng.Gaussian(0.0, 0.05);
    }
    out.push_back(MakeSub(std::move(v), label));
  }
  return out;
}

DabfOptions TestOptions() {
  DabfOptions o;
  o.projection_dim = 16;
  o.num_hashes = 6;
  o.bucket_width = 8.0;
  o.seed = 5;
  return o;
}

TEST(ClassDabfTest, ReportsFitMetadata) {
  Rng rng(1);
  const auto pop = SinePopulation(0, 60, 32, 0.4, rng);
  const ClassDabf dabf(pop, TestOptions());
  EXPECT_GT(dabf.NumItems(), 0u);
  EXPECT_GT(dabf.NumBuckets(), 0u);
  EXPECT_FALSE(dabf.best_fit_name().empty());
  EXPECT_GE(dabf.nmse(), 0.0);
  EXPECT_GT(dabf.stddev(), 0.0);
}

TEST(ClassDabfTest, MemberOfPopulationIsClose) {
  Rng rng(2);
  const auto pop = SinePopulation(0, 80, 32, 0.4, rng);
  const ClassDabf dabf(pop, TestOptions());
  // A fresh draw from the same population should look typical.
  Rng rng2(99);
  const auto probe = SinePopulation(0, 1, 32, 0.4, rng2).front();
  EXPECT_TRUE(dabf.PossiblyCloseToMost(probe.view()));
  EXPECT_LE(std::abs(dabf.NormalizedDistance(probe.view())), 3.0);
}

TEST(ClassDabfTest, BucketCoordinateWithinRange) {
  Rng rng(3);
  const auto pop = SinePopulation(0, 40, 32, 0.4, rng);
  const ClassDabf dabf(pop, TestOptions());
  const auto probe = pop.front();
  EXPECT_LT(dabf.BucketCoordinate(probe.view()), dabf.NumBuckets());
  for (size_t i = 0; i < pop.size(); ++i) {
    EXPECT_LT(dabf.ItemBucketCoordinate(i), dabf.NumBuckets());
  }
}

TEST(ClassDabfTest, HandlesVariableLengthCandidates) {
  Rng rng(4);
  std::vector<Subsequence> pop;
  for (size_t len : {16, 24, 32, 48}) {
    auto group = SinePopulation(0, 10, len, 0.4, rng);
    pop.insert(pop.end(), group.begin(), group.end());
  }
  const ClassDabf dabf(pop, TestOptions());
  EXPECT_EQ(dabf.NumItems(), 40u);
}

class DabfSchemeSweep : public ::testing::TestWithParam<LshScheme> {};

TEST_P(DabfSchemeSweep, BuildAndQueryWorkUnderEveryScheme) {
  Rng rng(20);
  std::map<int, std::vector<Subsequence>> pools;
  pools[0] = SinePopulation(0, 40, 32, 0.2, rng);
  pools[1] = SinePopulation(1, 40, 32, 0.9, rng);
  DabfOptions options = TestOptions();
  options.scheme = GetParam();
  const Dabf dabf(pools, options);
  ASSERT_NE(dabf.ForClass(0), nullptr);
  ASSERT_NE(dabf.ForClass(1), nullptr);
  // Query machinery well-defined for every scheme.
  const auto& probe = pools[0].front();
  dabf.CloseToAnyOtherClass(probe.view(), 0);
  EXPECT_LT(dabf.ForClass(0)->BucketCoordinate(probe.view()),
            dabf.ForClass(0)->NumBuckets());
  EXPECT_GE(dabf.ForClass(0)->nmse(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DabfSchemeSweep,
                         ::testing::Values(LshScheme::kL2PStable,
                                           LshScheme::kCosine,
                                           LshScheme::kHamming));

TEST(DabfTest, BuildsOneFilterPerClass) {
  Rng rng(5);
  std::map<int, std::vector<Subsequence>> pools;
  pools[0] = SinePopulation(0, 30, 32, 0.2, rng);
  pools[1] = SinePopulation(1, 30, 32, 0.9, rng);
  const Dabf dabf(pools, TestOptions());
  EXPECT_NE(dabf.ForClass(0), nullptr);
  EXPECT_NE(dabf.ForClass(1), nullptr);
  EXPECT_EQ(dabf.ForClass(2), nullptr);
}

TEST(DabfTest, EmptyPoolSkipped) {
  Rng rng(6);
  std::map<int, std::vector<Subsequence>> pools;
  pools[0] = SinePopulation(0, 20, 32, 0.2, rng);
  pools[1] = {};
  const Dabf dabf(pools, TestOptions());
  EXPECT_NE(dabf.ForClass(0), nullptr);
  EXPECT_EQ(dabf.ForClass(1), nullptr);
}

TEST(DabfTest, CloseToAnyOtherClassIgnoresOwnClass) {
  Rng rng(7);
  std::map<int, std::vector<Subsequence>> pools;
  pools[0] = SinePopulation(0, 40, 32, 0.2, rng);
  const Dabf dabf(pools, TestOptions());
  // Only one class exists: nothing can be close to an *other* class.
  const auto probe = pools[0].front();
  EXPECT_FALSE(dabf.CloseToAnyOtherClass(probe.view(), 0));
}

TEST(DabfTest, TypicalOtherClassMemberIsFlagged) {
  Rng rng(8);
  std::map<int, std::vector<Subsequence>> pools;
  pools[0] = SinePopulation(0, 60, 32, 0.2, rng);
  pools[1] = SinePopulation(1, 60, 32, 0.2, rng);  // same population shape
  const Dabf dabf(pools, TestOptions());
  // A class-0 candidate drawn from the same distribution as class 1 should
  // be recognised as close to class 1 -> prune signal.
  const auto probe = pools[0].front();
  EXPECT_TRUE(dabf.CloseToAnyOtherClass(probe.view(), 0));
}

}  // namespace
}  // namespace ips
