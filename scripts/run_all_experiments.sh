#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/ (text +
# CSV where the experiment is tabular).
#
#   ./scripts/run_all_experiments.sh [extra bench args...]
#
# Pass --full to run at archive sizes, or --ucr_dir=PATH to use the real
# UCR Archive. Requires a completed build in ./build.

set -euo pipefail

cd "$(dirname "$0")/.."
BENCH=build/bench
OUT=results
mkdir -p "$OUT"

run() {
  local name=$1
  shift
  echo "=== $name ==="
  "$BENCH/$name" "$@" | tee "$OUT/$name.txt"
  echo
}

run_csv() {
  local name=$1
  shift
  echo "=== $name ==="
  "$BENCH/$name" --csv="$OUT/$name.csv" "$@" | tee "$OUT/$name.txt"
  echo
}

run_csv exp_table2_base_topk "$@"
run_csv exp_table3_distribution_fit "$@"
run_csv exp_table4_efficiency "$@"
# Table V also emits the per-stage span trace + metrics report
# (obs/export.h schema, see docs/observability.md).
echo "=== exp_table5_breakdown ==="
"$BENCH/exp_table5_breakdown" --json="$OUT/BENCH_table5.json" "$@" |
  tee "$OUT/exp_table5_breakdown.txt"
echo
run_csv exp_table6_accuracy "$@"
run_csv exp_table7_lsh "$@"
run exp_fig3_4_motivation "$@"
run exp_fig9_efficiency_vs_k "$@"
run_csv exp_fig10_dabf_dtcr "$@"
run exp_fig11_cd_diagram "$@"
run_csv exp_fig12_accuracy_vs_k "$@"
run exp_fig13_interpretability
run exp_ablation_sampling "$@"
run_csv exp_ablation_backend "$@"
run_csv exp_ablation_profile "$@"
run_csv exp_pruning_quality "$@"

echo "=== micro_kernels ==="
"$BENCH/micro_kernels" --benchmark_min_time=0.05 | tee "$OUT/micro_kernels.txt"

# Machine-readable before/after numbers for the DistanceEngine refactor:
# seed-style per-pair loops vs batched engine APIs at 1 and 8 threads.
echo "=== BENCH_engine ==="
"$BENCH/micro_kernels" \
  --benchmark_filter='Pairwise|TransformBatch' \
  --benchmark_min_time=0.05 \
  --benchmark_out="$OUT/BENCH_engine.json" \
  --benchmark_out_format=json |
  tee "$OUT/BENCH_engine.txt"

# Machine-readable before/after numbers for the MatrixProfileEngine:
# historic per-ordered-pair AbJoinProfile construction vs the pair-symmetric
# cached engine, per ComputeInstanceProfile call and on the Table V
# candidate-generation workload, at 1 and 8 threads.
echo "=== BENCH_mp ==="
"$BENCH/micro_kernels" \
  --benchmark_filter='InstanceProfile|TableVProfile' \
  --benchmark_min_time=0.1 \
  --benchmark_out="$OUT/BENCH_mp.json" \
  --benchmark_out_format=json |
  tee "$OUT/BENCH_mp.txt"

# Machine-readable scalar-vs-SIMD numbers for the core/simd.h kernel layer
# (per-kernel speedup + checksum equality) and PredictBatch vs the
# per-series Predict loop. bench_simd writes the JSON itself.
echo "=== BENCH_simd ==="
"$BENCH/bench_simd" --out="$OUT/BENCH_simd.json" | tee "$OUT/BENCH_simd.txt"

# Per-metric cost/accuracy comparison over every registered MetricPolicy
# (QT sweep, transform batch, end-to-end fit). bench_metric writes the
# JSON itself.
echo "=== BENCH_metric ==="
"$BENCH/bench_metric" --out="$OUT/BENCH_metric.json" |
  tee "$OUT/BENCH_metric.txt"

# Early-abandon cascade vs exhaustive dense path (transform + PredictBatch,
# per metric, 1 and 8 threads). bench_eab writes the JSON itself and exits
# nonzero if the pruned and exhaustive outputs are not bitwise identical.
echo "=== BENCH_eab ==="
"$BENCH/bench_eab" --out="$OUT/BENCH_eab.json" | tee "$OUT/BENCH_eab.txt"

# Out-of-core columnar store: discovery + transform on a corpus larger
# than the chunk-residency budget, bitwise-diffed against the in-RAM path.
# bench_store writes the JSON itself and exits nonzero if results diverge
# or peak resident chunk bytes exceed the budget.
echo "=== BENCH_store ==="
"$BENCH/bench_store" --json="$OUT/BENCH_store.json" |
  tee "$OUT/BENCH_store.txt"

# The machine-readable before/after artefacts double as repo-root files so
# tooling (and the acceptance checks) can diff them without knowing the
# results/ layout.
cp "$OUT"/BENCH_*.json .

echo
echo "All outputs under $OUT/ (BENCH_*.json copied to the repo root)"
