// SD: scalable shapelet discovery in the style of Grabocka et al. (KAIS
// 2016) -- the paper's SD column. Candidates are enumerated on a coarse
// grid and pruned ONLINE: a candidate within a data-derived distance
// threshold of any previously accepted candidate is considered redundant
// and skipped (distance-based clustering), so only cluster representatives
// are scored (information gain) and selected.

#ifndef IPS_BASELINES_SD_H_
#define IPS_BASELINES_SD_H_

#include <cstddef>

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"

namespace ips {

/// SD parameters.
struct SdOptions {
  std::vector<double> length_ratios = {0.2, 0.4};
  size_t shapelets_per_class = 5;
  /// Offset stride of the grid enumeration.
  size_t stride = 4;
  /// The pruning threshold is this percentile of a sample of pairwise
  /// candidate distances (the paper derives it from the data likewise).
  double prune_percentile = 0.25;
  SvmOptions svm;
};

/// Instrumentation of one discovery run.
struct SdStats {
  size_t candidates_enumerated = 0;
  size_t cluster_representatives = 0;
};

/// Runs SD discovery. `stats` may be null.
std::vector<Subsequence> DiscoverSdShapelets(const DatasetView& train,
                                             const SdOptions& options,
                                             SdStats* stats = nullptr);

/// SD as a series classifier (transform + linear SVM back-end).
class SdClassifier final : public SeriesClassifier {
 public:
  explicit SdClassifier(SdOptions options = {}) : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  const std::vector<Subsequence>& shapelets() const { return shapelets_; }
  const SdStats& stats() const { return stats_; }

 private:
  SdOptions options_;
  std::vector<Subsequence> shapelets_;
  LinearSvm svm_;
  SdStats stats_;
};

}  // namespace ips

#endif  // IPS_BASELINES_SD_H_
