#include "baselines/elis.h"

#include <algorithm>
#include <map>

#include "baselines/sax.h"
#include "baselines/shapelet_quality.h"
#include "core/resample.h"
#include "ips/candidate_gen.h"
#include "util/check.h"

namespace ips {

namespace {

// PAA smoothing at the original length: average over `factor`-wide chunks,
// then linearly interpolate back (ELIS's low-resolution candidate trick).
std::vector<double> PaaSmooth(std::span<const double> x, size_t factor) {
  if (factor <= 1 || x.size() <= factor) {
    return std::vector<double>(x.begin(), x.end());
  }
  const std::vector<double> coarse = Paa(x, x.size() / factor);
  return ResampleToDim(coarse, x.size());
}

}  // namespace

std::vector<std::vector<double>> SelectElisCandidates(
    const DatasetView& train, const ElisOptions& options) {
  IPS_CHECK(!train.empty());
  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  struct Scored {
    std::vector<double> values;
    double info_gain;
  };
  std::map<int, std::vector<Scored>> per_class;

  for (size_t window : lengths) {
    for (size_t i = 0; i < train.size(); ++i) {
      const SeriesView t = train.At(i);
      if (t.length() < window) continue;
      for (size_t off = 0; off + window <= t.length();
           off += options.stride) {
        Subsequence cand =
            ExtractSubsequence(t, off, window, static_cast<int>(i));
        cand.values = PaaSmooth(cand.values, options.paa_factor);
        const double gain =
            EvaluateSplitQuality(cand, train, num_classes).info_gain;
        per_class[t.label].push_back({std::move(cand.values), gain});
      }
    }
  }

  std::vector<std::vector<double>> selected;
  for (auto& [label, scored] : per_class) {
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.info_gain > b.info_gain;
                     });
    const size_t take =
        std::min(options.candidates_per_class, scored.size());
    for (size_t i = 0; i < take; ++i) {
      selected.push_back(std::move(scored[i].values));
    }
  }
  return selected;
}

void ElisClassifier::Fit(const DatasetView& train) {
  std::vector<std::vector<double>> initial =
      SelectElisCandidates(train, options_);
  IPS_CHECK_MSG(!initial.empty(), "ELIS selected no candidates");
  lts_ = LtsClassifier(options_.adjust);
  lts_.SetInitialShapelets(std::move(initial));
  lts_.Fit(train);
}

int ElisClassifier::Predict(SeriesView series) const {
  return lts_.Predict(series);
}

}  // namespace ips
