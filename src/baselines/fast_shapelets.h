// Fast Shapelets (Rakthanmanon & Keogh, SDM 2013) -- the FS column of the
// paper's Table VI.
//
// Candidates are summarised as SAX words; repeated random masking projects
// the words into lower-dimensional hash signatures, and words whose masked
// signatures collide mostly within one class receive high distinguishing
// power. The top-scoring words are mapped back to raw subsequences, refined
// by information gain, and the best per class are kept as shapelets. This
// implementation classifies with a decision tree over the shapelet
// transform, mirroring the original's tree-based classifier.

#ifndef IPS_BASELINES_FAST_SHAPELETS_H_
#define IPS_BASELINES_FAST_SHAPELETS_H_

#include <cstdint>

#include <vector>

#include "classify/classifier.h"
#include "classify/decision_tree.h"
#include "core/time_series.h"

namespace ips {

/// Fast Shapelets parameters.
struct FastShapeletsOptions {
  std::vector<double> length_ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  size_t shapelets_per_class = 5;
  /// SAX parameters.
  size_t sax_segments = 8;
  size_t sax_cardinality = 4;
  /// Offset stride of the candidate enumeration.
  size_t stride = 2;
  /// Random-masking rounds and masked positions per round.
  size_t masking_rounds = 10;
  size_t masked_positions = 3;
  /// Words refined by exact information gain, per class and length.
  size_t top_words = 10;
  DecisionTreeOptions tree;
  uint64_t seed = 17;
};

/// Runs Fast Shapelets discovery.
std::vector<Subsequence> DiscoverFastShapelets(
    const DatasetView& train, const FastShapeletsOptions& options);

/// Fast Shapelets as a series classifier (transform + decision tree).
class FastShapeletsClassifier final : public SeriesClassifier {
 public:
  explicit FastShapeletsClassifier(FastShapeletsOptions options = {})
      : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  const std::vector<Subsequence>& shapelets() const { return shapelets_; }

 private:
  FastShapeletsOptions options_;
  std::vector<Subsequence> shapelets_;
  DecisionTree tree_;
};

}  // namespace ips

#endif  // IPS_BASELINES_FAST_SHAPELETS_H_
