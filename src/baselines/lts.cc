#include "baselines/lts.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <span>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

namespace {

double SigmoidStable(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

// Per-window mean squared distances between `series` and `shapelet`.
std::vector<double> WindowDistances(std::span<const double> series,
                                    const std::vector<double>& shapelet) {
  const size_t l = shapelet.size();
  IPS_CHECK(series.size() >= l);
  std::vector<double> out(series.size() - l + 1);
  for (size_t j = 0; j < out.size(); ++j) {
    double s = 0.0;
    for (size_t p = 0; p < l; ++p) {
      const double d = series[j + p] - shapelet[p];
      s += d * d;
    }
    out[j] = s / static_cast<double>(l);
  }
  return out;
}

// Soft minimum of `d` with sharpness alpha (< 0), plus the softmax weights
// psi_j used by the gradient: M = sum_j d_j e^{alpha d_j} / sum_j e^{alpha
// d_j}. Shift by min(d) for numerical stability.
double SoftMin(const std::vector<double>& d, double alpha,
               std::vector<double>* psi) {
  const double mn = *std::min_element(d.begin(), d.end());
  double num = 0.0, den = 0.0;
  std::vector<double> e(d.size());
  for (size_t j = 0; j < d.size(); ++j) {
    e[j] = std::exp(alpha * (d[j] - mn));
    num += d[j] * e[j];
    den += e[j];
  }
  const double m = num / den;
  if (psi != nullptr) {
    // dM/dd_j = e_j (1 + alpha (d_j - M)) / den.
    psi->resize(d.size());
    for (size_t j = 0; j < d.size(); ++j) {
      (*psi)[j] = e[j] * (1.0 + alpha * (d[j] - m)) / den;
    }
  }
  return m;
}

// Lightweight k-means over equal-length segments for shapelet
// initialisation (the published scheme).
std::vector<std::vector<double>> KMeansCentroids(
    const std::vector<std::vector<double>>& segments, size_t k, Rng& rng) {
  IPS_CHECK(!segments.empty());
  k = std::min(k, segments.size());
  std::vector<std::vector<double>> centroids;
  for (size_t idx : rng.SampleWithoutReplacement(segments.size(), k)) {
    centroids.push_back(segments[idx]);
  }
  std::vector<size_t> assignment(segments.size(), 0);
  for (int iter = 0; iter < 10; ++iter) {
    // Assign.
    for (size_t i = 0; i < segments.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centroids.size(); ++c) {
        double d = 0.0;
        for (size_t p = 0; p < segments[i].size(); ++p) {
          const double diff = segments[i][p] - centroids[c][p];
          d += diff * diff;
        }
        if (d < best) {
          best = d;
          assignment[i] = c;
        }
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(
        centroids.size(), std::vector<double>(segments[0].size(), 0.0));
    std::vector<size_t> counts(centroids.size(), 0);
    for (size_t i = 0; i < segments.size(); ++i) {
      for (size_t p = 0; p < segments[i].size(); ++p) {
        sums[assignment[i]][p] += segments[i][p];
      }
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;
      for (size_t p = 0; p < centroids[c].size(); ++p) {
        centroids[c][p] = sums[c][p] / static_cast<double>(counts[c]);
      }
    }
  }
  return centroids;
}

}  // namespace

void LtsClassifier::SetInitialShapelets(
    std::vector<std::vector<double>> shapelets) {
  initial_shapelets_ = std::move(shapelets);
}

void LtsClassifier::Fit(const DatasetView& train) {
  IPS_CHECK(!train.empty());
  num_classes_ = train.NumClasses();
  const size_t n = train.size();
  const size_t series_len = train.MinLength();
  Rng rng(options_.seed);

  // ---- Initialise shapelets: injected starting points (ELIS-style
  // select-then-adjust) or k-means centroids of segments per scale.
  shapelets_.clear();
  if (!initial_shapelets_.empty()) {
    for (const auto& s : initial_shapelets_) {
      IPS_CHECK(s.size() >= 4 && s.size() <= series_len);
    }
    shapelets_ = initial_shapelets_;
  }
  const size_t base_len = std::clamp<size_t>(
      static_cast<size_t>(options_.length_ratio *
                          static_cast<double>(series_len)),
      4, series_len);
  const bool kmeans_init = shapelets_.empty();
  for (size_t r = 0; kmeans_init && r < options_.scales; ++r) {
    const size_t len = std::min(series_len, base_len * (r + 1));
    std::vector<std::vector<double>> segments;
    const size_t stride = std::max<size_t>(1, len / 2);
    for (size_t i = 0; i < n; ++i) {
      const SeriesView t = train.At(i);
      for (size_t off = 0; off + len <= t.length(); off += stride) {
        segments.emplace_back(
            t.values.begin() + static_cast<ptrdiff_t>(off),
            t.values.begin() + static_cast<ptrdiff_t>(off + len));
      }
    }
    if (segments.empty()) continue;
    for (auto& centroid :
         KMeansCentroids(segments, options_.shapelets_per_scale, rng)) {
      shapelets_.push_back(std::move(centroid));
    }
  }
  IPS_CHECK_MSG(!shapelets_.empty(), "LTS initialised no shapelets");
  const size_t k = shapelets_.size();

  // ---- Joint gradient descent on (shapelets, logistic weights).
  weights_.assign(static_cast<size_t>(num_classes_),
                  std::vector<double>(k + 1, 0.0));

  std::vector<std::vector<double>> m(n, std::vector<double>(k));
  std::vector<std::vector<std::vector<double>>> psi(
      n, std::vector<std::vector<double>>(k));

  const double eta = options_.learning_rate;
  for (size_t iter = 0; iter < options_.max_iters; ++iter) {
    // Forward: soft-min features and softmax weights.
    for (size_t i = 0; i < n; ++i) {
      for (size_t s = 0; s < k; ++s) {
        const std::vector<double> d =
            WindowDistances(train.At(i).view(), shapelets_[s]);
        m[i][s] = SoftMin(d, options_.alpha, &psi[i][s]);
      }
    }

    // Per-class logistic errors.
    std::vector<std::vector<double>> error(
        static_cast<size_t>(num_classes_), std::vector<double>(n));
    for (int c = 0; c < num_classes_; ++c) {
      auto& w = weights_[static_cast<size_t>(c)];
      for (size_t i = 0; i < n; ++i) {
        double z = w[k];
        for (size_t s = 0; s < k; ++s) z += w[s] * m[i][s];
        const double y = train.At(i).label == c ? 1.0 : 0.0;
        error[static_cast<size_t>(c)][i] = SigmoidStable(z) - y;
      }
    }

    // Weight gradients.
    for (int c = 0; c < num_classes_; ++c) {
      auto& w = weights_[static_cast<size_t>(c)];
      const auto& err = error[static_cast<size_t>(c)];
      for (size_t s = 0; s < k; ++s) {
        double g = options_.lambda * w[s];
        for (size_t i = 0; i < n; ++i) g += err[i] * m[i][s];
        w[s] -= eta * g / static_cast<double>(n);
      }
      double g0 = 0.0;
      for (size_t i = 0; i < n; ++i) g0 += err[i];
      w[k] -= eta * g0 / static_cast<double>(n);
    }

    // Shapelet gradients: dL/ds_p = sum_c sum_i err_ci w_cs dM_is/ds_p,
    // dM/ds_p = sum_j psi_j * 2 (s_p - t_{j+p}) / len.
    for (size_t s = 0; s < k; ++s) {
      const size_t len = shapelets_[s].size();
      std::vector<double> grad(len, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const SeriesView ti = train.At(i);
        double coeff = 0.0;
        for (int c = 0; c < num_classes_; ++c) {
          coeff += error[static_cast<size_t>(c)][i] *
                   weights_[static_cast<size_t>(c)][s];
        }
        if (coeff == 0.0) continue;
        const auto& p = psi[i][s];
        for (size_t j = 0; j < p.size(); ++j) {
          if (p[j] == 0.0) continue;
          const double scaled =
              coeff * p[j] * 2.0 / static_cast<double>(len);
          for (size_t q = 0; q < len; ++q) {
            grad[q] += scaled * (shapelets_[s][q] - ti[j + q]);
          }
        }
      }
      for (size_t q = 0; q < len; ++q) {
        shapelets_[s][q] -= eta * grad[q] / static_cast<double>(n);
      }
    }
  }
}

std::vector<double> LtsClassifier::Featurize(SeriesView series) const {
  std::vector<double> out(shapelets_.size());
  for (size_t s = 0; s < shapelets_.size(); ++s) {
    if (series.length() < shapelets_[s].size()) {
      out[s] = 0.0;
      continue;
    }
    const std::vector<double> d =
        WindowDistances(series.view(), shapelets_[s]);
    out[s] = SoftMin(d, options_.alpha, nullptr);
  }
  return out;
}

int LtsClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  const std::vector<double> m = Featurize(series);
  int best = 0;
  double best_z = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < num_classes_; ++c) {
    const auto& w = weights_[static_cast<size_t>(c)];
    double z = w[m.size()];
    for (size_t s = 0; s < m.size(); ++s) z += w[s] * m[s];
    if (z > best_z) {
      best_z = z;
      best = c;
    }
  }
  return best;
}

std::vector<Subsequence> LtsClassifier::Shapelets() const {
  std::vector<Subsequence> out;
  for (const auto& values : shapelets_) {
    Subsequence s;
    s.values = values;
    s.label = -1;  // learned, not extracted from a series
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ips
