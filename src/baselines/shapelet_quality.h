// Classic shapelet quality measurement (Ye & Keogh [35]): the information
// gain of the best binary split of the training instances by their distance
// to a candidate. Shared by the BSPCOVER and Fast Shapelets baselines.

#ifndef IPS_BASELINES_SHAPELET_QUALITY_H_
#define IPS_BASELINES_SHAPELET_QUALITY_H_

#include <cstddef>

#include <vector>

#include "core/time_series.h"

namespace ips {

class DistanceEngine;

/// Result of evaluating a candidate's best distance split.
struct SplitQuality {
  /// Information gain (nats) of the best threshold; 0 when no split helps.
  double info_gain = 0.0;
  /// The best threshold (midpoint between the straddling distances).
  double threshold = 0.0;
  /// Training-instance indices on the near side of the split that share the
  /// candidate's class -- the candidate's "coverage" (BSPCOVER's p-cover).
  std::vector<size_t> covered;
};

/// Shannon entropy (nats) of per-class counts summing to `total`.
double LabelEntropy(const std::vector<size_t>& counts, size_t total);

/// Evaluates `candidate` against every series of `train` with the Def. 4
/// distance, sorts, and returns the best information-gain split. Requires a
/// non-empty training set and labels dense in [0, num_classes).
///
/// The distances run through a DistanceEngine. Pass `engine` to amortise
/// train-side artefacts (prefix sums, FFTs) across repeated evaluations;
/// the candidate's artefacts are then cached too, so both must outlive the
/// engine's caches (ClearCaches() otherwise). A null engine uses a
/// call-local one. Results are bitwise identical either way.
SplitQuality EvaluateSplitQuality(const Subsequence& candidate,
                                  const DatasetView& train, int num_classes,
                                  DistanceEngine* engine = nullptr);

}  // namespace ips

#endif  // IPS_BASELINES_SHAPELET_QUALITY_H_
