// BSPCOVER: reimplementation of Li et al., "Efficient Shapelet Discovery for
// Time Series Classification" (TKDE 2020) -- the paper's state-of-the-art
// efficiency comparator.
//
// Pipeline (following the published description):
//   1. generate dense shapelet candidates (every offset of every training
//      instance, per candidate length, at a configurable stride);
//   2. prune similar candidates with a Bloom filter keyed on the discretised
//      PAA word of the z-normalised candidate;
//   3. score surviving candidates by information gain of their best distance
//      split over the training instances, and record which own-class
//      instances each candidate "covers" (distance below the split);
//   4. greedy p-shapelet set cover per class: repeatedly take the candidate
//      covering the most still-uncovered own-class instances (ties by
//      information gain) until k shapelets are chosen;
//   5. classify via shapelet transform + linear SVM.
//
// The dense candidate enumeration of step 1 is what makes BSPCOVER orders of
// magnitude slower than IPS on the paper's Table IV, and this implementation
// preserves that cost structure.

#ifndef IPS_BASELINES_BSPCOVER_H_
#define IPS_BASELINES_BSPCOVER_H_

#include <cstddef>

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"

namespace ips {

/// BSPCOVER parameters.
struct BspCoverOptions {
  std::vector<double> length_ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  size_t shapelets_per_class = 5;
  /// Offset stride of the dense candidate enumeration (1 = every offset).
  size_t stride = 1;
  /// PAA word length and alphabet size of the bloom-filter key. Fine words:
  /// the filter is meant to drop only near-identical candidates.
  size_t paa_segments = 10;
  size_t paa_cardinality = 6;
  /// Bloom filter false-positive target.
  double bloom_fpr = 0.01;
  SvmOptions svm;
};

/// Instrumentation of one discovery run.
struct BspCoverStats {
  size_t candidates_enumerated = 0;
  size_t candidates_after_bloom = 0;
  size_t shapelets = 0;
};

/// Runs BSPCOVER discovery. `stats` may be null.
std::vector<Subsequence> DiscoverBspCoverShapelets(
    const DatasetView& train, const BspCoverOptions& options,
    BspCoverStats* stats = nullptr);

/// BSPCOVER as a series classifier (transform + linear SVM back-end).
class BspCoverClassifier final : public SeriesClassifier {
 public:
  explicit BspCoverClassifier(BspCoverOptions options = {})
      : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  const std::vector<Subsequence>& shapelets() const { return shapelets_; }
  const BspCoverStats& stats() const { return stats_; }

 private:
  BspCoverOptions options_;
  std::vector<Subsequence> shapelets_;
  LinearSvm svm_;
  BspCoverStats stats_;
};

}  // namespace ips

#endif  // IPS_BASELINES_BSPCOVER_H_
