#include "baselines/shapelet_quality.h"

#include <cmath>

#include <algorithm>
#include <span>

#include "core/distance_engine.h"
#include "util/check.h"

namespace ips {

double LabelEntropy(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

SplitQuality EvaluateSplitQuality(const Subsequence& candidate,
                                  const DatasetView& train, int num_classes,
                                  DistanceEngine* engine) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(num_classes >= 1);
  const size_t n = train.size();

  DistanceEngine local(1);
  DistanceEngine& eng = engine != nullptr ? *engine : local;

  // Batched (train[i], candidate) pairs in the serial loop's argument order,
  // so the sorted distances are bitwise identical to it.
  std::vector<std::span<const double>> views;
  views.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) views.push_back(train.At(i).view());
  views.push_back(candidate.view());
  std::vector<IndexPair> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<uint32_t>(i), static_cast<uint32_t>(n)};
  }
  const std::vector<double> dists = eng.MinForPairs(views, pairs);

  std::vector<std::pair<double, size_t>> by_distance(n);
  for (size_t i = 0; i < n; ++i) {
    by_distance[i] = {dists[i], i};
  }
  std::sort(by_distance.begin(), by_distance.end());

  std::vector<size_t> total_counts(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < n; ++i) {
    IPS_CHECK(train.At(i).label >= 0 && train.At(i).label < num_classes);
    ++total_counts[static_cast<size_t>(train.At(i).label)];
  }
  const double parent = LabelEntropy(total_counts, n);

  SplitQuality best;
  std::vector<size_t> left(static_cast<size_t>(num_classes), 0);
  size_t best_split = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const size_t idx = by_distance[i].second;
    ++left[static_cast<size_t>(train.At(idx).label)];
    if (by_distance[i].first >= by_distance[i + 1].first) continue;
    std::vector<size_t> right(total_counts);
    for (size_t c = 0; c < right.size(); ++c) right[c] -= left[c];
    const size_t nl = i + 1;
    const size_t nr = n - nl;
    const double child =
        (static_cast<double>(nl) * LabelEntropy(left, nl) +
         static_cast<double>(nr) * LabelEntropy(right, nr)) /
        static_cast<double>(n);
    const double gain = parent - child;
    if (gain > best.info_gain) {
      best.info_gain = gain;
      best.threshold =
          0.5 * (by_distance[i].first + by_distance[i + 1].first);
      best_split = nl;
    }
  }

  for (size_t i = 0; i < best_split; ++i) {
    const size_t idx = by_distance[i].second;
    if (train.At(idx).label == candidate.label) best.covered.push_back(idx);
  }
  return best;
}

}  // namespace ips
