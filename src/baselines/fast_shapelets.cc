#include "baselines/fast_shapelets.h"

#include <cmath>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "baselines/sax.h"
#include "baselines/shapelet_quality.h"
#include "core/distance.h"
#include "core/rng.h"
#include "ips/candidate_gen.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

namespace {

struct WordInfo {
  Subsequence representative;          // first raw subsequence with the word
  std::set<size_t> instances;          // training instances containing it
  double distinguishing_power = 0.0;
};

// Exact information gain of the candidate's best distance split.
double InfoGain(const Subsequence& candidate, const DatasetView& train,
                int num_classes) {
  return EvaluateSplitQuality(candidate, train, num_classes).info_gain;
}

}  // namespace

std::vector<Subsequence> DiscoverFastShapelets(
    const DatasetView& train, const FastShapeletsOptions& options) {
  IPS_CHECK(!train.empty());
  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();
  Rng rng(options.seed);

  // Per-class per-instance counts for normalising collision frequencies.
  std::vector<size_t> class_sizes(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < train.size(); ++i) {
    ++class_sizes[static_cast<size_t>(train.At(i).label)];
  }

  std::vector<Subsequence> shapelets;
  for (size_t window : lengths) {
    // Collect SAX words per class.
    std::map<std::string, WordInfo> words;
    for (size_t i = 0; i < train.size(); ++i) {
      const SeriesView t = train.At(i);
      if (t.length() < window) continue;
      for (size_t off = 0; off + window <= t.length();
           off += options.stride) {
        Subsequence sub = ExtractSubsequence(t, off, window,
                                             static_cast<int>(i));
        std::string word =
            SaxWord(sub.view(), options.sax_segments, options.sax_cardinality);
        auto [it, inserted] = words.emplace(std::move(word), WordInfo{});
        if (inserted) it->second.representative = std::move(sub);
        it->second.instances.insert(i);
      }
    }
    if (words.empty()) continue;

    // Random masking rounds: group words by masked signature, credit each
    // word with how class-skewed its collision group is.
    const size_t word_len = words.begin()->first.size();
    const size_t mask_count = std::min(options.masked_positions, word_len);
    for (size_t round = 0; round < options.masking_rounds; ++round) {
      const std::vector<size_t> mask =
          rng.SampleWithoutReplacement(word_len, mask_count);
      std::map<std::string, std::vector<WordInfo*>> groups;
      for (auto& [word, info] : words) {
        std::string masked = word;
        for (size_t p : mask) masked[p] = '*';
        groups[std::move(masked)].push_back(&info);
      }
      for (auto& [masked, members] : groups) {
        // Per-class fraction of instances hit by the collision group.
        std::vector<std::set<size_t>> hit(static_cast<size_t>(num_classes));
        for (const WordInfo* info : members) {
          for (size_t i : info->instances) {
            hit[static_cast<size_t>(train.At(i).label)].insert(i);
          }
        }
        std::vector<double> frac(static_cast<size_t>(num_classes), 0.0);
        double mean = 0.0;
        for (int c = 0; c < num_classes; ++c) {
          if (class_sizes[static_cast<size_t>(c)] == 0) continue;
          frac[static_cast<size_t>(c)] =
              static_cast<double>(hit[static_cast<size_t>(c)].size()) /
              static_cast<double>(class_sizes[static_cast<size_t>(c)]);
          mean += frac[static_cast<size_t>(c)];
        }
        mean /= static_cast<double>(num_classes);
        double skew = 0.0;
        for (double f : frac) skew = std::max(skew, std::abs(f - mean));
        for (WordInfo* info : members) info->distinguishing_power += skew;
      }
    }

    // Top words per class, refined by exact information gain.
    for (int label = 0; label < num_classes; ++label) {
      std::vector<WordInfo*> class_words;
      for (auto& [word, info] : words) {
        if (info.representative.label == label) class_words.push_back(&info);
      }
      std::sort(class_words.begin(), class_words.end(),
                [](const WordInfo* a, const WordInfo* b) {
                  return a->distinguishing_power > b->distinguishing_power;
                });
      class_words.resize(std::min(class_words.size(), options.top_words));

      std::vector<std::pair<double, const WordInfo*>> refined;
      for (const WordInfo* info : class_words) {
        refined.emplace_back(
            InfoGain(info->representative, train, num_classes), info);
      }
      std::sort(refined.begin(), refined.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const size_t per_length = std::max<size_t>(
          1, options.shapelets_per_class / lengths.size());
      for (size_t i = 0; i < per_length && i < refined.size(); ++i) {
        shapelets.push_back(refined[i].second->representative);
      }
    }
  }
  return shapelets;
}

void FastShapeletsClassifier::Fit(const DatasetView& train) {
  shapelets_ = DiscoverFastShapelets(train, options_);
  IPS_CHECK_MSG(!shapelets_.empty(), "FS discovered no shapelets");
  const TransformedData transformed = ShapeletTransform(train, shapelets_);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  tree_ = DecisionTree(options_.tree);
  tree_.Fit(matrix);
}

int FastShapeletsClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  return tree_.Predict(TransformSeries(series, shapelets_));
}

}  // namespace ips
