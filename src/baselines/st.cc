#include "baselines/st.h"

#include <algorithm>

#include "baselines/shapelet_quality.h"
#include "ips/candidate_gen.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

namespace {

struct Scored {
  Subsequence shapelet;
  double info_gain;
};

// The original's self-similarity filter: two candidates from the same
// training series whose windows overlap are redundant; keep the better.
bool Overlaps(const Subsequence& a, const Subsequence& b) {
  if (a.series_index != b.series_index) return false;
  const size_t a_end = a.start + a.length();
  const size_t b_end = b.start + b.length();
  return a.start < b_end && b.start < a_end;
}

}  // namespace

std::vector<Subsequence> DiscoverStShapelets(const DatasetView& train,
                                             const StOptions& options) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(options.stride >= 1);
  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  // Exhaustive enumeration + information-gain scoring.
  std::vector<std::vector<Scored>> per_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < train.size(); ++i) {
    const SeriesView t = train.At(i);
    for (size_t window : lengths) {
      if (t.length() < window) continue;
      for (size_t off = 0; off + window <= t.length();
           off += options.stride) {
        Subsequence cand =
            ExtractSubsequence(t, off, window, static_cast<int>(i));
        const double gain =
            EvaluateSplitQuality(cand, train, num_classes).info_gain;
        per_class[static_cast<size_t>(t.label)].push_back(
            {std::move(cand), gain});
      }
    }
  }

  std::vector<Subsequence> shapelets;
  for (auto& scored : per_class) {
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.info_gain > b.info_gain;
                     });
    std::vector<Subsequence> kept;
    for (Scored& s : scored) {
      if (kept.size() >= options.shapelets_per_class) break;
      const bool redundant = std::any_of(
          kept.begin(), kept.end(),
          [&](const Subsequence& k) { return Overlaps(k, s.shapelet); });
      if (!redundant) kept.push_back(std::move(s.shapelet));
    }
    shapelets.insert(shapelets.end(),
                     std::make_move_iterator(kept.begin()),
                     std::make_move_iterator(kept.end()));
  }
  return shapelets;
}

void StClassifier::Fit(const DatasetView& train) {
  shapelets_ = DiscoverStShapelets(train, options_);
  IPS_CHECK_MSG(!shapelets_.empty(), "ST discovered no shapelets");
  const TransformedData transformed = ShapeletTransform(train, shapelets_);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  svm_ = LinearSvm(options_.svm);
  svm_.Fit(matrix);
}

int StClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  return svm_.Predict(TransformSeries(series, shapelets_));
}

}  // namespace ips
