#include "baselines/sax.h"

#include <cmath>

#include <algorithm>

#include "core/znorm.h"
#include "util/check.h"

namespace ips {

std::vector<double> Paa(std::span<const double> x, size_t segments) {
  IPS_CHECK(!x.empty());
  IPS_CHECK(segments >= 1);
  segments = std::min(segments, x.size());
  std::vector<double> out(segments, 0.0);
  // Fractional assignment: point i contributes to segment floor(i*s/n),
  // giving equal-width segments up to integer rounding.
  std::vector<size_t> counts(segments, 0);
  for (size_t i = 0; i < x.size(); ++i) {
    const size_t seg = i * segments / x.size();
    out[seg] += x[i];
    ++counts[seg];
  }
  for (size_t s = 0; s < segments; ++s) {
    out[s] /= static_cast<double>(counts[s]);
  }
  return out;
}

std::vector<double> SaxBreakpoints(size_t cardinality) {
  IPS_CHECK(cardinality >= 2 && cardinality <= 16);
  // Quantiles of N(0,1) at i/cardinality, i = 1..cardinality-1, from the
  // standard SAX lookup table (Lin et al. 2003) up to cardinality 8 and the
  // Beasley-Springer-Moro approximation beyond.
  static const std::vector<std::vector<double>> kTable = {
      /*2*/ {0.0},
      /*3*/ {-0.43, 0.43},
      /*4*/ {-0.67, 0.0, 0.67},
      /*5*/ {-0.84, -0.25, 0.25, 0.84},
      /*6*/ {-0.97, -0.43, 0.0, 0.43, 0.97},
      /*7*/ {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
      /*8*/ {-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15},
  };
  if (cardinality <= 8) return kTable[cardinality - 2];

  // Acklam/BSM-style inverse-normal approximation for larger cardinalities.
  auto inv_norm = [](double p) {
    // Peter Acklam's rational approximation; |relative error| < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    double q, r;
    if (p < p_low) {
      q = std::sqrt(-2.0 * std::log(p));
      return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
      q = p - 0.5;
      r = q * q;
      return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
              a[5]) *
             q /
             (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
              1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  };

  std::vector<double> out;
  for (size_t i = 1; i < cardinality; ++i) {
    out.push_back(
        inv_norm(static_cast<double>(i) / static_cast<double>(cardinality)));
  }
  return out;
}

std::string SaxWord(std::span<const double> x, size_t segments,
                    size_t cardinality) {
  const std::vector<double> z = ZNormalize(x);
  const std::vector<double> paa = Paa(z, segments);
  const std::vector<double> breaks = SaxBreakpoints(cardinality);
  std::string word;
  word.reserve(paa.size());
  for (double v : paa) {
    const size_t symbol = static_cast<size_t>(
        std::upper_bound(breaks.begin(), breaks.end(), v) - breaks.begin());
    word.push_back(static_cast<char>('a' + symbol));
  }
  return word;
}

}  // namespace ips
