// ELIS-style baseline: Efficient Learning of Interpretable Shapelets in the
// spirit of Fang et al. (ICDE 2018) -- the paper's ELIS column.
//
// ELIS's two-phase scheme is "select, then adjust": a small set of
// promising candidate shapelets is picked cheaply (here: PAA-smoothed
// subsequences ranked by information gain, top-k per class), and those
// candidates are then fine-tuned by the LTS gradient machinery (soft-min
// features + logistic heads) instead of being used as-is. This keeps the
// interpretability of extracted subsequences while gaining the accuracy of
// learned ones.

#ifndef IPS_BASELINES_ELIS_H_
#define IPS_BASELINES_ELIS_H_

#include <cstddef>

#include <vector>

#include "baselines/lts.h"
#include "classify/classifier.h"
#include "core/time_series.h"

namespace ips {

/// ELIS parameters.
struct ElisOptions {
  std::vector<double> length_ratios = {0.2, 0.35};
  /// Candidates selected per class before adjustment.
  size_t candidates_per_class = 4;
  /// Enumeration stride and PAA smoothing factor of phase 1.
  size_t stride = 4;
  size_t paa_factor = 2;  ///< Each candidate is PAA-smoothed by this factor.
  /// Phase-2 adjustment (LTS machinery) parameters.
  LtsOptions adjust;
};

/// ELIS as a series classifier.
class ElisClassifier final : public SeriesClassifier {
 public:
  explicit ElisClassifier(ElisOptions options = {}) : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  /// The adjusted shapelets (valid after Fit()).
  std::vector<Subsequence> Shapelets() const { return lts_.Shapelets(); }

 private:
  ElisOptions options_;
  LtsClassifier lts_{LtsOptions{}};
};

/// Phase 1 alone: the PAA-smoothed, information-gain-selected initial
/// shapelets. Exposed for testing.
std::vector<std::vector<double>> SelectElisCandidates(
    const DatasetView& train, const ElisOptions& options);

}  // namespace ips

#endif  // IPS_BASELINES_ELIS_H_
