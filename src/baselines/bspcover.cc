#include "baselines/bspcover.h"

#include <cmath>

#include <algorithm>
#include <map>

#include "baselines/sax.h"
#include "baselines/shapelet_quality.h"
#include "dabf/bloom_filter.h"
#include "ips/candidate_gen.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

namespace {

struct ScoredCandidate {
  Subsequence shapelet;
  double info_gain = 0.0;
  std::vector<size_t> covered;  // own-class instance indices below the split
};

ScoredCandidate EvaluateCandidate(Subsequence candidate, const DatasetView& train,
                                  int num_classes) {
  SplitQuality quality = EvaluateSplitQuality(candidate, train, num_classes);
  ScoredCandidate out;
  out.shapelet = std::move(candidate);
  out.info_gain = quality.info_gain;
  out.covered = std::move(quality.covered);
  return out;
}

}  // namespace

std::vector<Subsequence> DiscoverBspCoverShapelets(
    const DatasetView& train, const BspCoverOptions& options,
    BspCoverStats* stats) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(options.stride >= 1);
  BspCoverStats local;
  BspCoverStats& s = stats != nullptr ? *stats : local;
  s = BspCoverStats{};

  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  // 1+2: dense enumeration with bloom-filter dedup per class.
  std::map<int, std::vector<ScoredCandidate>> scored_by_class;
  for (int label = 0; label < num_classes; ++label) {
    const std::vector<size_t> class_indices = train.IndicesOfClass(label);
    if (class_indices.empty()) continue;

    size_t expected = 0;
    for (size_t idx : class_indices) {
      for (size_t window : lengths) {
        if (train.At(idx).length() >= window) {
          expected += (train.At(idx).length() - window) / options.stride + 1;
        }
      }
    }
    BloomFilter bloom = BloomFilter::WithCapacity(std::max<size_t>(expected, 8),
                                                  options.bloom_fpr);

    auto& scored = scored_by_class[label];
    for (size_t idx : class_indices) {
      const SeriesView t = train.At(idx);
      for (size_t window : lengths) {
        if (t.length() < window) continue;
        for (size_t off = 0; off + window <= t.length();
             off += options.stride) {
          ++s.candidates_enumerated;
          Subsequence cand =
              ExtractSubsequence(t, off, window, static_cast<int>(idx));
          const std::string word =
              SaxWord(cand.view(), options.paa_segments,
                      options.paa_cardinality) +
              static_cast<char>('0' + window % 10);
          if (bloom.MayContain(word)) continue;  // similar candidate seen
          bloom.Add(word);
          ++s.candidates_after_bloom;
          // 3: information-gain + coverage scoring.
          scored.push_back(
              EvaluateCandidate(std::move(cand), train, num_classes));
        }
      }
    }
  }

  // 4: greedy p-shapelet set cover per class.
  std::vector<Subsequence> shapelets;
  for (auto& [label, scored] : scored_by_class) {
    std::vector<bool> covered(train.size(), false);
    std::vector<bool> used(scored.size(), false);
    for (size_t taken = 0;
         taken < options.shapelets_per_class && taken < scored.size();
         ++taken) {
      double best_key = -1.0;
      size_t best = scored.size();
      for (size_t c = 0; c < scored.size(); ++c) {
        if (used[c]) continue;
        size_t new_cover = 0;
        for (size_t idx : scored[c].covered) {
          if (!covered[idx]) ++new_cover;
        }
        // Primary: newly covered instances; secondary: information gain.
        const double key =
            static_cast<double>(new_cover) + scored[c].info_gain * 1e-3;
        if (key > best_key) {
          best_key = key;
          best = c;
        }
      }
      if (best == scored.size()) break;
      used[best] = true;
      for (size_t idx : scored[best].covered) covered[idx] = true;
      shapelets.push_back(scored[best].shapelet);
    }
  }
  s.shapelets = shapelets.size();
  return shapelets;
}

void BspCoverClassifier::Fit(const DatasetView& train) {
  shapelets_ = DiscoverBspCoverShapelets(train, options_, &stats_);
  IPS_CHECK_MSG(!shapelets_.empty(), "BSPCOVER discovered no shapelets");
  const TransformedData transformed = ShapeletTransform(train, shapelets_);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  svm_ = LinearSvm(options_.svm);
  svm_.Fit(matrix);
}

int BspCoverClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  return svm_.Predict(TransformSeries(series, shapelets_));
}

}  // namespace ips
