// Piecewise aggregate approximation (PAA) and symbolic aggregate
// approximation (SAX). Substrate for the Fast Shapelets baseline (SAX words
// + random masking) and the BSPCOVER baseline (discretised words as bloom
// filter keys).

#ifndef IPS_BASELINES_SAX_H_
#define IPS_BASELINES_SAX_H_

#include <cstddef>

#include <span>
#include <string>
#include <vector>

namespace ips {

/// PAA: mean of `segments` equal(ish)-width chunks of x. Requires
/// 1 <= segments and non-empty x; segments > x.size() is clamped.
std::vector<double> Paa(std::span<const double> x, size_t segments);

/// SAX word of `x`: z-normalise, PAA to `segments`, then discretise each
/// segment mean into `cardinality` symbols ('a', 'b', ...) using standard
/// normal breakpoints. Cardinality must be in [2, 16].
std::string SaxWord(std::span<const double> x, size_t segments,
                    size_t cardinality);

/// The standard-normal breakpoints that split the real line into
/// `cardinality` equiprobable regions (cardinality - 1 values, ascending).
std::vector<double> SaxBreakpoints(size_t cardinality);

}  // namespace ips

#endif  // IPS_BASELINES_SAX_H_
