// ST: the classic shapelet-transform discovery of Hills, Lines et al.
// ([26] and the bake-off's ST column) -- exhaustive candidate enumeration,
// information-gain quality, self-similarity filtering, then a conventional
// classifier over the transform.
//
// This is the accuracy gold standard among the paper's shapelet baselines
// and also the slowest: every offset of every training series at every
// candidate length is evaluated against every training series.

#ifndef IPS_BASELINES_ST_H_
#define IPS_BASELINES_ST_H_

#include <cstddef>

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"

namespace ips {

/// ST parameters.
struct StOptions {
  std::vector<double> length_ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  size_t shapelets_per_class = 5;
  /// Offset stride of the enumeration (1 = the literal exhaustive search).
  size_t stride = 1;
  SvmOptions svm;
};

/// Runs ST discovery: top `shapelets_per_class` candidates per class by
/// information gain, with overlapping same-series candidates suppressed
/// (the original's self-similarity filter).
std::vector<Subsequence> DiscoverStShapelets(const DatasetView& train,
                                             const StOptions& options);

/// ST as a series classifier (transform + linear SVM back-end, mirroring
/// the simplified single-classifier variants used in later studies).
class StClassifier final : public SeriesClassifier {
 public:
  explicit StClassifier(StOptions options = {}) : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  const std::vector<Subsequence>& shapelets() const { return shapelets_; }

 private:
  StOptions options_;
  std::vector<Subsequence> shapelets_;
  LinearSvm svm_;
};

}  // namespace ips

#endif  // IPS_BASELINES_ST_H_
