#include "baselines/sd.h"

#include <algorithm>
#include <map>
#include <span>

#include "baselines/shapelet_quality.h"
#include "core/distance_engine.h"
#include "ips/candidate_gen.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

namespace {

// Data-derived pruning radius: a low percentile of the pairwise distances
// among the first accepted representatives of this length. The pairs run
// through the engine in the serial loops' upper-triangle order, so the
// percentile is identical.
double PruneRadius(const std::vector<Subsequence>& sample, double percentile,
                   DistanceEngine& engine) {
  std::vector<std::span<const double>> views;
  views.reserve(sample.size());
  for (const Subsequence& s : sample) views.push_back(s.view());
  std::vector<IndexPair> pairs;
  for (uint32_t i = 0; i < sample.size(); ++i) {
    for (uint32_t j = i + 1; j < sample.size(); ++j) pairs.push_back({i, j});
  }
  std::vector<double> dists = engine.MinForPairs(views, pairs);
  if (dists.empty()) return 0.0;
  std::sort(dists.begin(), dists.end());
  const size_t idx = std::min(
      dists.size() - 1,
      static_cast<size_t>(percentile * static_cast<double>(dists.size())));
  return dists[idx];
}

}  // namespace

std::vector<Subsequence> DiscoverSdShapelets(const DatasetView& train,
                                             const SdOptions& options,
                                             SdStats* stats) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(options.stride >= 1);
  SdStats local;
  SdStats& s = stats != nullptr ? *stats : local;
  s = SdStats{};

  // One engine per run: the redundancy scans and split evaluations below
  // reuse train- and representative-side artefacts through its caches.
  // Everything it caches (seeds, representatives, train) outlives the scope
  // that cached it, and the engine dies with this call.
  DistanceEngine engine(1);

  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  struct Scored {
    Subsequence shapelet;
    double info_gain;
  };
  std::map<int, std::vector<Scored>> per_class;

  for (size_t window : lengths) {
    // Seed the radius estimate from one candidate per training series.
    std::vector<Subsequence> seeds;
    for (size_t i = 0; i < train.size() && seeds.size() < 20; ++i) {
      if (train.At(i).length() < window) continue;
      const SeriesView t = train.At(i);
      seeds.push_back(ExtractSubsequence(t, (t.length() - window) / 2, window,
                                         static_cast<int>(i)));
    }
    const double radius = PruneRadius(seeds, options.prune_percentile, engine);

    // Online clustering over the grid enumeration: accept a candidate only
    // when it is farther than `radius` from every accepted representative
    // of the same length.
    std::vector<Subsequence> representatives;
    for (size_t i = 0; i < train.size(); ++i) {
      const SeriesView t = train.At(i);
      if (t.length() < window) continue;
      for (size_t off = 0; off + window <= t.length();
           off += options.stride) {
        ++s.candidates_enumerated;
        Subsequence cand =
            ExtractSubsequence(t, off, window, static_cast<int>(i));
        // cache_b: accepted representatives recur across the whole scan;
        // the probe side is never cached (most candidates are discarded).
        const bool redundant = std::any_of(
            representatives.begin(), representatives.end(),
            [&](const Subsequence& rep) {
              return engine.SubsequenceMin(cand.view(), rep.view(),
                                           /*cache_b=*/true) <= radius;
            });
        if (redundant) continue;
        representatives.push_back(std::move(cand));
      }
    }
    s.cluster_representatives += representatives.size();

    // Score the representatives only.
    for (Subsequence& rep : representatives) {
      const double gain =
          EvaluateSplitQuality(rep, train, num_classes, &engine).info_gain;
      per_class[rep.label].push_back({std::move(rep), gain});
    }
  }

  std::vector<Subsequence> shapelets;
  for (auto& [label, scored] : per_class) {
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.info_gain > b.info_gain;
                     });
    const size_t take =
        std::min(options.shapelets_per_class, scored.size());
    for (size_t i = 0; i < take; ++i) {
      shapelets.push_back(std::move(scored[i].shapelet));
    }
  }
  return shapelets;
}

void SdClassifier::Fit(const DatasetView& train) {
  shapelets_ = DiscoverSdShapelets(train, options_, &stats_);
  IPS_CHECK_MSG(!shapelets_.empty(), "SD discovered no shapelets");
  const TransformedData transformed = ShapeletTransform(train, shapelets_);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  svm_ = LinearSvm(options_.svm);
  svm_.Fit(matrix);
}

int SdClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  return svm_.Predict(TransformSeries(series, shapelets_));
}

}  // namespace ips
