// BASE: the matrix-profile shapelet baseline of Yeh et al. [37], as the
// paper describes it in §II-B (Formula 4).
//
// Per class C, all class-C training instances are concatenated into one long
// series T_C and all other instances into T_notC. The self-join profile
// P_CC and the AB-join profile P_C,notC are computed per candidate length;
// the positions with the largest |P_C,notC - P_CC| become the class's
// shapelets. This inherits the two issues the paper analyses (discords as
// "shapelets"; diversity loss from concatenation), which is exactly what the
// Table II / Table VI experiments measure.

#ifndef IPS_BASELINES_MP_BASE_H_
#define IPS_BASELINES_MP_BASE_H_

#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"

namespace ips {

/// BASE discovery/classification parameters.
struct MpBaseOptions {
  /// Candidate lengths as fractions of the series length (matched to IPS).
  std::vector<double> length_ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  /// Shapelets per class (top-k largest profile differences).
  size_t shapelets_per_class = 5;
  /// Worker threads for the per-class self-/AB-joins (sharded through the
  /// MatrixProfileEngine; results are identical at every thread count).
  size_t num_threads = 1;
  /// Back-end SVM on the shapelet transform.
  SvmOptions svm;
};

/// Discovers BASE shapelets for every class of `train`.
std::vector<Subsequence> DiscoverMpBaseShapelets(
    const DatasetView& train, const MpBaseOptions& options);

/// BASE as a series classifier: discovery + shapelet transform + linear SVM
/// (the same back-end as IPS, per the paper's fairness setup).
class MpBaseClassifier final : public SeriesClassifier {
 public:
  explicit MpBaseClassifier(MpBaseOptions options = {}) : options_(options) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  const std::vector<Subsequence>& shapelets() const { return shapelets_; }

 private:
  MpBaseOptions options_;
  std::vector<Subsequence> shapelets_;
  LinearSvm svm_;
};

}  // namespace ips

#endif  // IPS_BASELINES_MP_BASE_H_
