// LTS: Learning Time-series Shapelets (Grabocka et al., KDD 2014) -- the
// paper's LTS column. Instead of searching candidates, LTS *learns*
// shapelets jointly with a logistic-regression classifier by gradient
// descent: the feature of (series i, shapelet k) is the soft-minimum of the
// window distances, which is differentiable in the shapelet values.
//
// This implementation follows the published model: shapelets at several
// scales initialised from k-means centroids of training segments, shared
// across one-vs-all logistic heads, trained with full-batch gradient
// descent and L2 regularisation on the weights.

#ifndef IPS_BASELINES_LTS_H_
#define IPS_BASELINES_LTS_H_

#include <cstddef>
#include <cstdint>

#include <vector>

#include "classify/classifier.h"
#include "core/time_series.h"

namespace ips {

/// LTS hyper-parameters (defaults follow the published ranges).
struct LtsOptions {
  /// Learned shapelets per scale.
  size_t shapelets_per_scale = 6;
  /// Base shapelet length as a fraction of the series length.
  double length_ratio = 0.2;
  /// Number of scales; scale r uses length (r+1) * base length.
  size_t scales = 2;
  /// Soft-minimum sharpness (the published alpha; more negative = closer
  /// to a hard minimum).
  double alpha = -30.0;
  /// L2 regularisation on the logistic weights.
  double lambda = 0.01;
  double learning_rate = 0.1;
  size_t max_iters = 300;
  uint64_t seed = 23;
};

/// LTS as a series classifier.
class LtsClassifier final : public SeriesClassifier {
 public:
  explicit LtsClassifier(LtsOptions options = {}) : options_(options) {}

  /// Overrides the k-means initialisation with explicit starting shapelets
  /// (the ELIS-style "select then adjust" scheme). Must be called before
  /// Fit(); each inner vector is one shapelet's values.
  void SetInitialShapelets(std::vector<std::vector<double>> shapelets);

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  /// The learned shapelets (label -1: learned, not extracted).
  std::vector<Subsequence> Shapelets() const;

 private:
  /// Soft-minimum feature of one series against every learned shapelet.
  std::vector<double> Featurize(SeriesView series) const;

  LtsOptions options_;
  std::vector<std::vector<double>> initial_shapelets_;
  std::vector<std::vector<double>> shapelets_;      // learned values
  std::vector<std::vector<double>> weights_;        // [class][shapelet+1]
  int num_classes_ = 0;
};

}  // namespace ips

#endif  // IPS_BASELINES_LTS_H_
