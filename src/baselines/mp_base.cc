#include "baselines/mp_base.h"

#include <algorithm>

#include "ips/candidate_gen.h"
#include "matrix_profile/matrix_profile.h"
#include "matrix_profile/motif.h"
#include "matrix_profile/mp_engine.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

std::vector<Subsequence> DiscoverMpBaseShapelets(
    const DatasetView& train, const MpBaseOptions& options) {
  IPS_CHECK(!train.empty());
  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  // One engine for all joins: rolling stats and seed products of T_C /
  // T_notC are shared across the candidate lengths of a class, and each
  // join's diagonals are sharded over the option's threads.
  MatrixProfileEngine engine(options.num_threads);

  std::vector<Subsequence> shapelets;
  // T_C / T_notC scratch, materialised lazily per class from the view's
  // ClassConcat -- capacity is reused across classes, so peak memory is the
  // two largest concatenations rather than per-class copies.
  std::vector<double> own;
  std::vector<double> other;
  for (int label = 0; label < num_classes; ++label) {
    train.ConcatenateClass(label).CopyTo(&own);
    if (own.empty()) continue;

    // Concatenate every other class (the baseline's T_B).
    other.clear();
    for (size_t i = 0; i < train.size(); ++i) {
      const SeriesView t = train.At(i);
      if (t.label == label) continue;
      other.insert(other.end(), t.values.begin(), t.values.end());
    }
    if (other.empty()) continue;

    // Candidate = (diff value, length, offset in T_C); best per position
    // across lengths, then top-k with exclusion per length group.
    struct Candidate {
      double diff;
      size_t length;
      size_t offset;
    };
    std::vector<Candidate> candidates;
    for (size_t window : lengths) {
      if (own.size() <= window || other.size() < window) continue;
      const MatrixProfile self = engine.SelfJoin(own, window);
      const MatrixProfile cross = engine.AbJoin(own, other, window);
      const std::vector<double> diff = ProfileDiff(cross, self);
      // Largest differences, separated by an exclusion zone (Formula 4
      // extended to top-k, as the paper notes).
      const std::vector<size_t> tops = FindDiscords(
          diff, options.shapelets_per_class, DefaultExclusionZone(window));
      for (size_t pos : tops) {
        candidates.push_back({diff[pos], window, pos});
      }
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.diff > b.diff;
              });
    const size_t take =
        std::min(options.shapelets_per_class, candidates.size());
    for (size_t i = 0; i < take; ++i) {
      shapelets.push_back(ExtractSubsequence(
          SeriesView(own, label), candidates[i].offset, candidates[i].length,
          /*series_index=*/-1));
    }
    // T_C / T_notC storage is reused by the next class; the pointer-keyed
    // caches must not survive into the next class's contents.
    engine.ClearCaches();
  }
  return shapelets;
}

void MpBaseClassifier::Fit(const DatasetView& train) {
  shapelets_ = DiscoverMpBaseShapelets(train, options_);
  IPS_CHECK_MSG(!shapelets_.empty(), "BASE discovered no shapelets");
  const TransformedData transformed = ShapeletTransform(train, shapelets_);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  svm_ = LinearSvm(options_.svm);
  svm_.Fit(matrix);
}

int MpBaseClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!shapelets_.empty());
  return svm_.Predict(TransformSeries(series, shapelets_));
}

}  // namespace ips
