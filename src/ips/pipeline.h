// End-to-end IPS pipeline (paper Fig. 5):
//   (1) sample instances per class           -> candidate generation with the
//   (2) instance profiles -> motifs/discords    instance profile (Alg. 1)
//   (3) DABF construction (Alg. 2)
//   (4) candidate pruning (Alg. 3)
//   (5) utility scoring + top-k selection (Alg. 4, DT & CR)
// followed by the shapelet transform and a linear SVM for classification.
//
// Every entry point returns (or exposes) a RunResult: the shapelets plus
// the run's observability record, derived from the obs registries -- see
// ips/run_result.h for the stats view and docs/observability.md for the
// span/metric taxonomy the stages emit.

#ifndef IPS_IPS_PIPELINE_H_
#define IPS_IPS_PIPELINE_H_

#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"
#include "ips/candidate_gen.h"
#include "ips/config.h"
#include "ips/pruning.h"
#include "ips/run_result.h"

namespace ips {

class DistanceEngine;

/// Runs shapelet discovery (stages 1-5) on a training set and returns the
/// shapelets together with the run's stats and span trace. Requires a
/// non-empty training set whose shortest series has at least 4 points.
RunResult DiscoverShapelets(const DatasetView& train,
                            const IpsOptions& options);

/// IPS as a drop-in time-series classifier: discovery + shapelet transform
/// + a configurable back-end (linear SVM by default, per §III-D).
class IpsClassifier final : public SeriesClassifier {
 public:
  // Both out of line: DistanceEngine is incomplete here.
  explicit IpsClassifier(IpsOptions options = {});
  ~IpsClassifier() override;

  void Fit(const DatasetView& train) override;

  /// Rebuilds the classifier from a saved run artifact plus the training
  /// set it was discovered on: discovery is skipped entirely (the
  /// artifact's shapelets and metric are taken as-is, overriding
  /// options.metric), the training set is shapelet-transformed and the
  /// configured back-end refit. Deterministic in (artifact, train,
  /// options); the serving layer's model-load path. Requires a non-empty
  /// artifact shapelet set and training set.
  void FitFromRunResult(const DatasetView& train,
                        const RunResult& artifact);

  int Predict(SeriesView series) const override;

  /// Batched inference: one shapelet transform over the whole test set on
  /// `options.num_threads` workers (shapelet-side artefacts computed once,
  /// series sharded across the pool) instead of a per-series Predict loop.
  /// Labels are identical to the loop -- the transform rows are bitwise
  /// equal to TransformSeries -- just faster; Accuracy() uses this path.
  std::vector<int> PredictBatch(const DatasetView& test) const override;

  /// The fit's full outcome (valid after Fit()): shapelets, the stats
  /// view, and the span trace covering discovery + transform + back-end.
  const RunResult& result() const { return result_; }

  /// Discovered shapelets (valid after Fit()).
  const std::vector<Subsequence>& shapelets() const {
    return result_.shapelets;
  }

 private:
  IpsOptions options_;
  std::unique_ptr<Classifier> backend_;
  // Owns the distance caches shared by transform-time and predict-time
  // Def. 4 evaluations. Reset (caches cleared) on every Fit.
  std::unique_ptr<DistanceEngine> engine_;
  RunResult result_;
};

}  // namespace ips

#endif  // IPS_IPS_PIPELINE_H_
