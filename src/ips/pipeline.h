// End-to-end IPS pipeline (paper Fig. 5):
//   (1) sample instances per class           -> candidate generation with the
//   (2) instance profiles -> motifs/discords    instance profile (Alg. 1)
//   (3) DABF construction (Alg. 2)
//   (4) candidate pruning (Alg. 3)
//   (5) utility scoring + top-k selection (Alg. 4, DT & CR)
// followed by the shapelet transform and a linear SVM for classification.

#ifndef IPS_IPS_PIPELINE_H_
#define IPS_IPS_PIPELINE_H_

#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "classify/svm.h"
#include "core/time_series.h"
#include "ips/candidate_gen.h"
#include "ips/config.h"
#include "ips/pruning.h"

namespace ips {

class DistanceEngine;

/// Wall-clock and size instrumentation of one discovery run (Table V).
struct IpsRunStats {
  double candidate_gen_seconds = 0.0;
  double dabf_build_seconds = 0.0;
  double pruning_seconds = 0.0;
  double selection_seconds = 0.0;

  /// Classifier-only stages (filled by IpsClassifier::Fit, zero after a bare
  /// DiscoverShapelets): shapelet-transforming the training set, and fitting
  /// the back-end on the transformed features.
  double transform_seconds = 0.0;
  double backend_fit_seconds = 0.0;

  size_t motifs_generated = 0;
  size_t discords_generated = 0;
  size_t motifs_after_prune = 0;
  size_t discords_after_prune = 0;
  size_t shapelets = 0;

  /// DistanceEngine counters over the run: Def. 4 evaluations (profiles or
  /// single-pair minima) and rolling-stats cache hits/misses.
  size_t profiles_computed = 0;
  size_t stats_cache_hits = 0;
  size_t stats_cache_misses = 0;

  /// The instance-profile stage of candidate generation (a sub-interval of
  /// candidate_gen_seconds: Alg. 1 line 5 across all sampling tasks) and
  /// the MatrixProfileEngine counters aggregated over the per-task engines.
  /// mp_joins_halved counts directed joins served by a pair-symmetric
  /// sweep's far side -- work the pre-engine code computed from scratch.
  double profile_seconds = 0.0;
  size_t mp_joins_computed = 0;
  size_t mp_qt_sweeps = 0;
  size_t mp_joins_halved = 0;
  size_t mp_cache_hits = 0;
  size_t mp_cache_misses = 0;

  /// Persistent-pool activity over the run (deltas of the process-wide
  /// util/thread_pool.h counters): regions dispatched to the pool, regions
  /// run inline (serial fast path or the nested-inline rule), indices
  /// executed inside pooled regions, and chunks claimed from another
  /// participant's shard by work stealing.
  size_t pool_regions = 0;
  size_t pool_inline_regions = 0;
  size_t pool_tasks_run = 0;
  size_t pool_steals = 0;

  double TotalDiscoverySeconds() const {
    return candidate_gen_seconds + dabf_build_seconds + pruning_seconds +
           selection_seconds;
  }
};

/// Runs shapelet discovery (stages 1-5) on a training set. `stats` may be
/// null. Requires a non-empty training set whose shortest series has at
/// least 4 points.
std::vector<Subsequence> DiscoverShapelets(const Dataset& train,
                                           const IpsOptions& options,
                                           IpsRunStats* stats = nullptr);

/// IPS as a drop-in time-series classifier: discovery + shapelet transform
/// + a configurable back-end (linear SVM by default, per §III-D).
class IpsClassifier final : public SeriesClassifier {
 public:
  // Both out of line: DistanceEngine is incomplete here.
  explicit IpsClassifier(IpsOptions options = {});
  ~IpsClassifier() override;

  void Fit(const Dataset& train) override;
  int Predict(const TimeSeries& series) const override;

  /// Batched inference: one shapelet transform over the whole test set on
  /// `options.num_threads` workers (shapelet-side artefacts computed once,
  /// series sharded across the pool) instead of a per-series Predict loop.
  /// Labels are identical to the loop -- the transform rows are bitwise
  /// equal to TransformSeries -- just faster; Accuracy() uses this path.
  std::vector<int> PredictBatch(const Dataset& test) const override;

  /// Discovered shapelets (valid after Fit()).
  const std::vector<Subsequence>& shapelets() const { return shapelets_; }

  /// Discovery instrumentation (valid after Fit()).
  const IpsRunStats& stats() const { return stats_; }

 private:
  IpsOptions options_;
  std::vector<Subsequence> shapelets_;
  std::unique_ptr<Classifier> backend_;
  // Owns the distance caches shared by transform-time and predict-time
  // Def. 4 evaluations. Reset (caches cleared) on every Fit.
  std::unique_ptr<DistanceEngine> engine_;
  IpsRunStats stats_;
};

}  // namespace ips

#endif  // IPS_IPS_PIPELINE_H_
