#include "ips/instance_profile.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <numeric>

#include "matrix_profile/matrix_profile.h"
#include "matrix_profile/mp_engine.h"
#include "util/check.h"

namespace ips {

InstanceProfile ComputeInstanceProfile(std::span<const TimeSeries> sample,
                                       size_t window, size_t neighbors,
                                       MatrixProfileEngine* engine,
                                       MetricId metric) {
  std::vector<SeriesView> views(sample.begin(), sample.end());
  return ComputeInstanceProfile(std::span<const SeriesView>(views), window,
                                neighbors, engine, metric);
}

InstanceProfile ComputeInstanceProfile(std::span<const SeriesView> sample,
                                       size_t window, size_t neighbors,
                                       MatrixProfileEngine* engine,
                                       MetricId metric) {
  IPS_CHECK(!sample.empty());
  IPS_CHECK(window >= 2);
  IPS_CHECK(neighbors >= 1);

  // Indices of instances long enough to contribute windows.
  std::vector<size_t> usable;
  for (size_t m = 0; m < sample.size(); ++m) {
    if (sample[m].length() >= window) usable.push_back(m);
  }
  IPS_CHECK_MSG(!usable.empty(),
                "no instance in the sample is as long as the window");

  MatrixProfileEngine local_engine(1);
  MatrixProfileEngine& eng = engine != nullptr ? *engine : local_engine;

  InstanceProfile ip;

  if (usable.size() == 1) {
    // Degenerate sample: self-join with exclusion zone (the MP extreme).
    const size_t m = usable.front();
    const SeriesView t = sample[m];
    if (t.length() > window) {
      const MatrixProfile mp =
          eng.SelfJoin(t.view(), window, /*exclusion=*/0, metric);
      for (size_t i = 0; i < mp.size(); ++i) {
        ip.values.push_back(mp.values[i]);
        ip.instances.push_back(m);
        ip.offsets.push_back(i);
      }
    } else {
      // Exactly one window; it has no neighbour, annotate with 0.
      ip.values.push_back(0.0);
      ip.instances.push_back(m);
      ip.offsets.push_back(0);
    }
    return ip;
  }

  // Every unordered pair once; the sweep's far side serves the reverse
  // direction that the historic code recomputed from scratch.
  std::vector<std::span<const double>> views;
  views.reserve(usable.size());
  for (size_t m : usable) views.push_back(sample[m].view());
  // Parallel precompute pass: one immutable artifact table (statistics,
  // forward FFTs, QT seed rows) for the whole batch, built before the
  // O(|sample|^2) pair loop so its sweeps read artifacts lock-free by
  // index. The engine retains the table, so the join below reuses it.
  if (eng.use_artifact_table()) eng.PrepareAllPairs(views, window, metric);
  const std::vector<PairJoin> joins = eng.JoinAllPairs(views, window, metric);

  // Flat num_windows x |others| scatter buffer per usable instance: row i
  // holds window i's nearest-window distance to each OTHER instance. One
  // allocation per instance instead of num_windows inner vectors.
  const size_t others = usable.size() - 1;
  std::vector<std::vector<double>> per_instance(usable.size());
  std::vector<size_t> num_windows(usable.size());
  for (size_t u = 0; u < usable.size(); ++u) {
    num_windows[u] = sample[usable[u]].length() - window + 1;
    per_instance[u].resize(num_windows[u] * others);
  }
  for (const PairJoin& pj : joins) {
    // Column of v in u's buffer: usable order with u itself skipped.
    const size_t col_b = pj.b > pj.a ? pj.b - 1 : pj.b;
    const size_t col_a = pj.a > pj.b ? pj.a - 1 : pj.a;
    std::vector<double>& buf_a = per_instance[pj.a];
    for (size_t i = 0; i < num_windows[pj.a]; ++i) {
      buf_a[i * others + col_b] = pj.a_vs_b.values[i];
    }
    std::vector<double>& buf_b = per_instance[pj.b];
    for (size_t j = 0; j < num_windows[pj.b]; ++j) {
      buf_b[j * others + col_a] = pj.b_vs_a.values[j];
    }
  }

  const size_t k = std::min(neighbors, others);
  for (size_t u = 0; u < usable.size(); ++u) {
    std::vector<double>& buf = per_instance[u];
    for (size_t i = 0; i < num_windows[u]; ++i) {
      auto row = buf.begin() + static_cast<ptrdiff_t>(i * others);
      // k-th smallest of the per-instance minima (k=1 is Def. 9's 1-NN).
      // The k-th order statistic is a pure function of the row's multiset,
      // so this matches the historic per-window vectors bitwise.
      std::nth_element(row, row + static_cast<ptrdiff_t>(k - 1),
                       row + static_cast<ptrdiff_t>(others));
      ip.values.push_back(row[static_cast<ptrdiff_t>(k - 1)]);
      ip.instances.push_back(usable[u]);
      ip.offsets.push_back(i);
    }
  }
  return ip;
}

namespace {

std::vector<size_t> SelectProfileEntries(const InstanceProfile& profile,
                                         size_t k, size_t window,
                                         bool smallest_first) {
  std::vector<size_t> order(profile.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return smallest_first ? profile.values[a] < profile.values[b]
                          : profile.values[a] > profile.values[b];
  });

  const size_t exclusion = (window + 1) / 2;
  std::vector<size_t> selected;
  for (size_t e : order) {
    if (selected.size() >= k) break;
    if (!std::isfinite(profile.values[e])) continue;
    const bool clashes = std::any_of(
        selected.begin(), selected.end(), [&](size_t s) {
          if (profile.instances[s] != profile.instances[e]) return false;
          const size_t a = profile.offsets[s];
          const size_t b = profile.offsets[e];
          return (a > b ? a - b : b - a) <= exclusion;
        });
    if (!clashes) selected.push_back(e);
  }
  return selected;
}

}  // namespace

std::vector<size_t> InstanceProfileMotifs(const InstanceProfile& profile,
                                          size_t k, size_t window) {
  return SelectProfileEntries(profile, k, window, /*smallest_first=*/true);
}

std::vector<size_t> InstanceProfileDiscords(const InstanceProfile& profile,
                                            size_t k, size_t window) {
  return SelectProfileEntries(profile, k, window, /*smallest_first=*/false);
}

}  // namespace ips
