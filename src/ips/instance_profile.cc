#include "ips/instance_profile.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <numeric>

#include "matrix_profile/matrix_profile.h"
#include "util/check.h"

namespace ips {

InstanceProfile ComputeInstanceProfile(std::span<const TimeSeries> sample,
                                       size_t window, size_t neighbors) {
  IPS_CHECK(!sample.empty());
  IPS_CHECK(window >= 2);
  IPS_CHECK(neighbors >= 1);

  // Indices of instances long enough to contribute windows.
  std::vector<size_t> usable;
  for (size_t m = 0; m < sample.size(); ++m) {
    if (sample[m].length() >= window) usable.push_back(m);
  }
  IPS_CHECK_MSG(!usable.empty(),
                "no instance in the sample is as long as the window");

  InstanceProfile ip;

  if (usable.size() == 1) {
    // Degenerate sample: self-join with exclusion zone (the MP extreme).
    const size_t m = usable.front();
    const TimeSeries& t = sample[m];
    if (t.length() > window) {
      const MatrixProfile mp = SelfJoinProfile(t.view(), window);
      for (size_t i = 0; i < mp.size(); ++i) {
        ip.values.push_back(mp.values[i]);
        ip.instances.push_back(m);
        ip.offsets.push_back(i);
      }
    } else {
      // Exactly one window; it has no neighbour, annotate with 0.
      ip.values.push_back(0.0);
      ip.instances.push_back(m);
      ip.offsets.push_back(0);
    }
    return ip;
  }

  for (size_t m : usable) {
    const TimeSeries& t = sample[m];
    const size_t num_windows = t.length() - window + 1;
    // Per window: the nearest-window distance to each OTHER instance.
    std::vector<std::vector<double>> per_other(num_windows);
    for (size_t other : usable) {
      if (other == m) continue;
      const MatrixProfile join =
          AbJoinProfile(t.view(), sample[other].view(), window);
      for (size_t i = 0; i < num_windows; ++i) {
        per_other[i].push_back(join.values[i]);
      }
    }
    const size_t k = std::min(neighbors, usable.size() - 1);
    for (size_t i = 0; i < num_windows; ++i) {
      // k-th smallest of the per-instance minima (k=1 is Def. 9's 1-NN).
      std::nth_element(per_other[i].begin(),
                       per_other[i].begin() + static_cast<ptrdiff_t>(k - 1),
                       per_other[i].end());
      ip.values.push_back(per_other[i][k - 1]);
      ip.instances.push_back(m);
      ip.offsets.push_back(i);
    }
  }
  return ip;
}

namespace {

std::vector<size_t> SelectProfileEntries(const InstanceProfile& profile,
                                         size_t k, size_t window,
                                         bool smallest_first) {
  std::vector<size_t> order(profile.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return smallest_first ? profile.values[a] < profile.values[b]
                          : profile.values[a] > profile.values[b];
  });

  const size_t exclusion = (window + 1) / 2;
  std::vector<size_t> selected;
  for (size_t e : order) {
    if (selected.size() >= k) break;
    if (!std::isfinite(profile.values[e])) continue;
    const bool clashes = std::any_of(
        selected.begin(), selected.end(), [&](size_t s) {
          if (profile.instances[s] != profile.instances[e]) return false;
          const size_t a = profile.offsets[s];
          const size_t b = profile.offsets[e];
          return (a > b ? a - b : b - a) <= exclusion;
        });
    if (!clashes) selected.push_back(e);
  }
  return selected;
}

}  // namespace

std::vector<size_t> InstanceProfileMotifs(const InstanceProfile& profile,
                                          size_t k, size_t window) {
  return SelectProfileEntries(profile, k, window, /*smallest_first=*/true);
}

std::vector<size_t> InstanceProfileDiscords(const InstanceProfile& profile,
                                            size_t k, size_t window) {
  return SelectProfileEntries(profile, k, window, /*smallest_first=*/false);
}

}  // namespace ips
