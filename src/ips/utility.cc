#include "ips/utility.h"

#include <cmath>

#include <algorithm>

#include "core/distance_engine.h"
#include "util/check.h"

namespace ips {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

namespace {

double MeanOrZero(double sum, size_t count) {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

// ------------------------------------------------------------------ exact

// Exact-mode scorer. All Def. 4 distances are evaluated up front through
// the DistanceEngine (parallel, scratch- and artefact-cached), then
// aggregated serially in the same order as the original per-pair loops, so
// the scores are bitwise identical to them for any thread count. With
// `reuse` each unordered candidate pair is computed once and mirrored (the
// CR optimisation of §III-E2); without it both orders are computed
// independently, preserving the work profile of the deliberate Fig. 10(b)
// baseline.
std::map<int, std::vector<CandidateScore>> ScoreExact(
    const CandidatePool& pool, const DatasetView& train, bool reuse,
    DistanceEngine& engine) {
  // Global candidate index: motifs first per class, then discords.
  struct Ref {
    const Subsequence* sub;
    int label;
    bool motif;
  };
  std::vector<Ref> all;
  std::map<int, std::vector<size_t>> motif_ids;    // per class
  std::map<int, std::vector<size_t>> inter_pool;   // per class: other-class ids

  for (const auto& [label, motifs] : pool.motifs) {
    for (const auto& m : motifs) {
      motif_ids[label].push_back(all.size());
      all.push_back({&m, label, true});
    }
  }
  for (const auto& [label, discords] : pool.discords) {
    for (const auto& d : discords) all.push_back({&d, label, false});
  }
  for (const auto& [label, ids] : motif_ids) {
    auto& inter = inter_pool[label];
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].label != label) inter.push_back(i);
    }
  }

  const size_t n = all.size();

  // Views: candidates first, then the raw training instances.
  std::vector<std::span<const double>> views;
  views.reserve(n + train.size());
  for (const Ref& r : all) views.push_back(r.sub->view());
  for (size_t t = 0; t < train.size(); ++t) {
    views.push_back(train.At(t).view());
  }

  // The serial scorer touches an ordered candidate pair (i, j) only when i
  // is a motif and j is either a same-class motif or any other-class
  // candidate (intra / inter utilities).
  auto touched = [&](size_t i, size_t j) {
    return all[i].motif &&
           (all[i].label != all[j].label || all[j].motif);
  };

  std::vector<IndexPair> pairs;
  if (reuse) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (touched(i, j) || touched(j, i)) {
          pairs.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j)});
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i != j && touched(i, j)) {
          pairs.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j)});
        }
      }
    }
  }
  const size_t num_cc = pairs.size();

  // Candidate-instance work items, in the aggregation's iteration order.
  for (const auto& [label, ids] : motif_ids) {
    const std::vector<size_t> instance_ids = train.IndicesOfClass(label);
    for (size_t i : ids) {
      for (size_t t : instance_ids) {
        pairs.push_back({static_cast<uint32_t>(i),
                         static_cast<uint32_t>(n + t)});
      }
    }
  }

  const std::vector<double> dists = engine.MinForPairs(views, pairs);

  std::vector<double> cc(n * n, 0.0);
  for (size_t t = 0; t < num_cc; ++t) {
    const auto [i, j] = pairs[t];
    cc[static_cast<size_t>(i) * n + j] = dists[t];
    if (reuse) cc[static_cast<size_t>(j) * n + i] = dists[t];
  }

  // Serial aggregation in the original loop order; `cursor` walks the
  // candidate-instance results, which were queued in this same order.
  size_t cursor = num_cc;
  std::map<int, std::vector<CandidateScore>> scores;
  for (const auto& [label, ids] : motif_ids) {
    const std::vector<size_t>& inter = inter_pool[label];
    const std::vector<size_t> instance_ids = train.IndicesOfClass(label);
    auto& out = scores[label];
    out.resize(ids.size());

    for (size_t a = 0; a < ids.size(); ++a) {
      const size_t i = ids[a];
      CandidateScore cs;

      double intra_sum = 0.0;
      for (size_t b = 0; b < ids.size(); ++b) {
        if (b == a) continue;
        intra_sum += cc[i * n + ids[b]];
      }
      cs.intra = Sigmoid(MeanOrZero(intra_sum, ids.size() - 1));

      double inter_sum = 0.0;
      for (size_t j : inter) inter_sum += cc[i * n + j];
      cs.inter = Sigmoid(MeanOrZero(inter_sum, inter.size()));

      double inst_sum = 0.0;
      for (size_t t = 0; t < instance_ids.size(); ++t) {
        inst_sum += dists[cursor++];
      }
      cs.instance = Sigmoid(MeanOrZero(inst_sum, instance_ids.size()));

      out[a] = cs;
    }
  }
  return scores;
}

// ------------------------------------------------------------------ DT+CR

// DT mode: candidates and instances are mapped once to ranked-bucket
// coordinates of the scoring class's DABF; utilities then aggregate O(1)
// integer gaps. Gaps are normalised by the bucket count so the sigmoid
// stays responsive regardless of table size.
std::map<int, std::vector<CandidateScore>> ScoreDtCr(
    const CandidatePool& pool, const DatasetView& train, const Dabf& dabf) {
  std::map<int, std::vector<CandidateScore>> scores;

  for (const auto& [label, motifs] : pool.motifs) {
    auto& out = scores[label];
    out.resize(motifs.size());
    const ClassDabf* filter = dabf.ForClass(label);
    if (filter == nullptr || motifs.empty()) continue;

    const double denom =
        std::max<double>(1.0, static_cast<double>(filter->NumBuckets() - 1));

    // CR: one hash per object, coordinates cached up front.
    std::vector<double> own(motifs.size());
    for (size_t a = 0; a < motifs.size(); ++a) {
      own[a] = static_cast<double>(filter->BucketCoordinate(motifs[a].view()));
    }
    std::vector<double> inter;
    for (const auto& [other, other_motifs] : pool.motifs) {
      if (other == label) continue;
      for (const auto& c : other_motifs) {
        inter.push_back(
            static_cast<double>(filter->BucketCoordinate(c.view())));
      }
    }
    for (const auto& [other, other_discords] : pool.discords) {
      if (other == label) continue;
      for (const auto& c : other_discords) {
        inter.push_back(
            static_cast<double>(filter->BucketCoordinate(c.view())));
      }
    }
    std::vector<double> instances;
    for (size_t t : train.IndicesOfClass(label)) {
      instances.push_back(
          static_cast<double>(filter->BucketCoordinate(train.At(t).view())));
    }

    for (size_t a = 0; a < motifs.size(); ++a) {
      CandidateScore cs;
      double intra_sum = 0.0;
      for (size_t b = 0; b < own.size(); ++b) {
        if (b == a) continue;
        intra_sum += std::abs(own[a] - own[b]) / denom;
      }
      cs.intra = Sigmoid(MeanOrZero(intra_sum, own.size() - 1));

      double inter_sum = 0.0;
      for (double c : inter) inter_sum += std::abs(own[a] - c) / denom;
      cs.inter = Sigmoid(MeanOrZero(inter_sum, inter.size()));

      double inst_sum = 0.0;
      for (double c : instances) inst_sum += std::abs(own[a] - c) / denom;
      cs.instance = Sigmoid(MeanOrZero(inst_sum, instances.size()));

      out[a] = cs;
    }
  }
  return scores;
}

}  // namespace

std::map<int, std::vector<CandidateScore>> ScoreAllCandidates(
    const CandidatePool& pool, const DatasetView& train, UtilityMode mode,
    const Dabf* dabf, DistanceEngine* engine, size_t num_threads) {
  DistanceEngine local(num_threads);
  DistanceEngine& eng = engine != nullptr ? *engine : local;
  switch (mode) {
    case UtilityMode::kExactNaive:
      return ScoreExact(pool, train, /*reuse=*/false, eng);
    case UtilityMode::kExactWithCr:
      return ScoreExact(pool, train, /*reuse=*/true, eng);
    case UtilityMode::kDtCr:
      IPS_CHECK_MSG(dabf != nullptr, "kDtCr scoring requires a DABF");
      return ScoreDtCr(pool, train, *dabf);
  }
  return {};
}

}  // namespace ips
