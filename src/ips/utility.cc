#include "ips/utility.h"

#include <cmath>

#include <algorithm>

#include "core/distance.h"
#include "util/check.h"

namespace ips {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

namespace {

double MeanOrZero(double sum, size_t count) {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

// ------------------------------------------------------------------ exact

// Exact-mode scorer. With `reuse` the candidate-candidate distances are
// computed once into a symmetric cache; without it every lookup recomputes
// the Def. 4 distance (the deliberate Fig. 10(b) baseline).
std::map<int, std::vector<CandidateScore>> ScoreExact(
    const CandidatePool& pool, const Dataset& train, bool reuse) {
  // Global candidate index: motifs first per class, then discords.
  struct Ref {
    const Subsequence* sub;
    int label;
  };
  std::vector<Ref> all;
  std::map<int, std::vector<size_t>> motif_ids;    // per class
  std::map<int, std::vector<size_t>> inter_pool;   // per class: other-class ids

  for (const auto& [label, motifs] : pool.motifs) {
    for (const auto& m : motifs) {
      motif_ids[label].push_back(all.size());
      all.push_back({&m, label});
    }
  }
  for (const auto& [label, discords] : pool.discords) {
    for (const auto& d : discords) all.push_back({&d, label});
  }
  for (const auto& [label, ids] : motif_ids) {
    auto& inter = inter_pool[label];
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].label != label) inter.push_back(i);
    }
  }

  const size_t n = all.size();
  std::vector<double> cache;
  if (reuse) {
    cache.assign(n * n, -1.0);
  }
  auto dist = [&](size_t i, size_t j) {
    if (!reuse) {
      return SubsequenceDistance(all[i].sub->view(), all[j].sub->view());
    }
    double& slot = cache[i * n + j];
    if (slot < 0.0) {
      slot = SubsequenceDistance(all[i].sub->view(), all[j].sub->view());
      cache[j * n + i] = slot;  // CR: the symmetric pair is free
    }
    return slot;
  };

  std::map<int, std::vector<CandidateScore>> scores;
  for (const auto& [label, ids] : motif_ids) {
    const std::vector<size_t>& inter = inter_pool[label];
    const std::vector<size_t> instance_ids = train.IndicesOfClass(label);
    auto& out = scores[label];
    out.resize(ids.size());

    for (size_t a = 0; a < ids.size(); ++a) {
      const size_t i = ids[a];
      CandidateScore cs;

      double intra_sum = 0.0;
      for (size_t b = 0; b < ids.size(); ++b) {
        if (b == a) continue;
        intra_sum += dist(i, ids[b]);
      }
      cs.intra = Sigmoid(MeanOrZero(intra_sum, ids.size() - 1));

      double inter_sum = 0.0;
      for (size_t j : inter) inter_sum += dist(i, j);
      cs.inter = Sigmoid(MeanOrZero(inter_sum, inter.size()));

      double inst_sum = 0.0;
      for (size_t t : instance_ids) {
        inst_sum += SubsequenceDistance(all[i].sub->view(), train[t].view());
      }
      cs.instance = Sigmoid(MeanOrZero(inst_sum, instance_ids.size()));

      out[a] = cs;
    }
  }
  return scores;
}

// ------------------------------------------------------------------ DT+CR

// DT mode: candidates and instances are mapped once to ranked-bucket
// coordinates of the scoring class's DABF; utilities then aggregate O(1)
// integer gaps. Gaps are normalised by the bucket count so the sigmoid
// stays responsive regardless of table size.
std::map<int, std::vector<CandidateScore>> ScoreDtCr(
    const CandidatePool& pool, const Dataset& train, const Dabf& dabf) {
  std::map<int, std::vector<CandidateScore>> scores;

  for (const auto& [label, motifs] : pool.motifs) {
    auto& out = scores[label];
    out.resize(motifs.size());
    const ClassDabf* filter = dabf.ForClass(label);
    if (filter == nullptr || motifs.empty()) continue;

    const double denom =
        std::max<double>(1.0, static_cast<double>(filter->NumBuckets() - 1));

    // CR: one hash per object, coordinates cached up front.
    std::vector<double> own(motifs.size());
    for (size_t a = 0; a < motifs.size(); ++a) {
      own[a] = static_cast<double>(filter->BucketCoordinate(motifs[a].view()));
    }
    std::vector<double> inter;
    for (const auto& [other, other_motifs] : pool.motifs) {
      if (other == label) continue;
      for (const auto& c : other_motifs) {
        inter.push_back(
            static_cast<double>(filter->BucketCoordinate(c.view())));
      }
    }
    for (const auto& [other, other_discords] : pool.discords) {
      if (other == label) continue;
      for (const auto& c : other_discords) {
        inter.push_back(
            static_cast<double>(filter->BucketCoordinate(c.view())));
      }
    }
    std::vector<double> instances;
    for (size_t t : train.IndicesOfClass(label)) {
      instances.push_back(
          static_cast<double>(filter->BucketCoordinate(train[t].view())));
    }

    for (size_t a = 0; a < motifs.size(); ++a) {
      CandidateScore cs;
      double intra_sum = 0.0;
      for (size_t b = 0; b < own.size(); ++b) {
        if (b == a) continue;
        intra_sum += std::abs(own[a] - own[b]) / denom;
      }
      cs.intra = Sigmoid(MeanOrZero(intra_sum, own.size() - 1));

      double inter_sum = 0.0;
      for (double c : inter) inter_sum += std::abs(own[a] - c) / denom;
      cs.inter = Sigmoid(MeanOrZero(inter_sum, inter.size()));

      double inst_sum = 0.0;
      for (double c : instances) inst_sum += std::abs(own[a] - c) / denom;
      cs.instance = Sigmoid(MeanOrZero(inst_sum, instances.size()));

      out[a] = cs;
    }
  }
  return scores;
}

}  // namespace

std::map<int, std::vector<CandidateScore>> ScoreAllCandidates(
    const CandidatePool& pool, const Dataset& train, UtilityMode mode,
    const Dabf* dabf) {
  switch (mode) {
    case UtilityMode::kExactNaive:
      return ScoreExact(pool, train, /*reuse=*/false);
    case UtilityMode::kExactWithCr:
      return ScoreExact(pool, train, /*reuse=*/true);
    case UtilityMode::kDtCr:
      IPS_CHECK_MSG(dabf != nullptr, "kDtCr scoring requires a DABF");
      return ScoreDtCr(pool, train, *dabf);
  }
  return {};
}

}  // namespace ips
