#include "ips/serialization.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "core/metric.h"
#include "obs/export.h"

namespace ips {

namespace {

constexpr const char* kMagic = "ips-shapelets v1";
constexpr const char* kRunMagicPrefix = "ips-run v";

// "ips-run v2.0" -> {2, 0}; nullopt on any deviation.
std::optional<FormatVersion> ParseRunHeader(const std::string& line) {
  const std::string prefix(kRunMagicPrefix);
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  FormatVersion v;
  char trailing = '\0';
  const int fields = std::sscanf(line.c_str() + prefix.size(), "%d.%d%c",
                                 &v.major, &v.minor, &trailing);
  if (fields != 2 || v.major < 0 || v.minor < 0) return std::nullopt;
  return v;
}

// One "<key> <json>" line, or nullopt when the line does not start with
// `key` + space or the remainder is not valid JSON.
std::optional<obs::JsonValue> ParseTaggedJsonLine(const std::string& line,
                                                  const std::string& key) {
  const std::string prefix = key + " ";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  return obs::JsonValue::Parse(line.substr(prefix.size()));
}

std::optional<double> ReadDouble(const obs::JsonValue& json,
                                 const std::string& key) {
  const obs::JsonValue* v = json.Find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->AsDouble();
}

std::optional<size_t> ReadCount(const obs::JsonValue& json,
                                const std::string& key) {
  const obs::JsonValue* v = json.Find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->AsDouble();
  if (d < 0.0 || d != static_cast<double>(static_cast<uint64_t>(d))) {
    return std::nullopt;
  }
  return static_cast<size_t>(d);
}

}  // namespace

std::string SerializeShapelets(const std::vector<Subsequence>& shapelets) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kMagic << '\n' << shapelets.size() << '\n';
  for (const Subsequence& s : shapelets) {
    out << s.label << ' ' << s.series_index << ' ' << s.start << ' '
        << s.length();
    for (double v : s.values) out << ' ' << v;
    out << '\n';
  }
  return out.str();
}

std::optional<std::vector<Subsequence>> DeserializeShapelets(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) return std::nullopt;

  size_t count = 0;
  if (!(in >> count)) return std::nullopt;
  // Declared sizes are bounded by the bytes actually present before any
  // allocation happens: every shapelet needs at least one line and every
  // value at least two characters, so a header declaring more than the
  // remaining text could ever hold is corrupt (a bit-flipped or hostile
  // count must fail cleanly, not drive a multi-gigabyte resize).
  if (count > text.size()) return std::nullopt;

  std::vector<Subsequence> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Subsequence s;
    size_t length = 0;
    if (!(in >> s.label >> s.series_index >> s.start >> length)) {
      return std::nullopt;
    }
    if (length > text.size() / 2) return std::nullopt;
    s.values.resize(length);
    for (size_t j = 0; j < length; ++j) {
      if (!(in >> s.values[j])) return std::nullopt;
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool SaveShapelets(const std::vector<Subsequence>& shapelets,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << SerializeShapelets(shapelets);
  return static_cast<bool>(out);
}

std::optional<std::vector<Subsequence>> LoadShapelets(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeShapelets(buffer.str());
}

obs::JsonValue RunStatsToJson(const IpsRunStats& stats) {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("candidate_gen_seconds", stats.candidate_gen_seconds);
  json.Set("dabf_build_seconds", stats.dabf_build_seconds);
  json.Set("pruning_seconds", stats.pruning_seconds);
  json.Set("selection_seconds", stats.selection_seconds);
  json.Set("transform_seconds", stats.transform_seconds);
  json.Set("backend_fit_seconds", stats.backend_fit_seconds);
  json.Set("motifs_generated", stats.motifs_generated);
  json.Set("discords_generated", stats.discords_generated);
  json.Set("motifs_after_prune", stats.motifs_after_prune);
  json.Set("discords_after_prune", stats.discords_after_prune);
  json.Set("shapelets", stats.shapelets);
  json.Set("profiles_computed", stats.profiles_computed);
  json.Set("stats_cache_hits", stats.stats_cache_hits);
  json.Set("stats_cache_misses", stats.stats_cache_misses);
  json.Set("profile_seconds", stats.profile_seconds);
  json.Set("mp_joins_computed", stats.mp_joins_computed);
  json.Set("mp_qt_sweeps", stats.mp_qt_sweeps);
  json.Set("mp_joins_halved", stats.mp_joins_halved);
  json.Set("mp_cache_hits", stats.mp_cache_hits);
  json.Set("mp_cache_misses", stats.mp_cache_misses);
  json.Set("pool_regions", stats.pool_regions);
  json.Set("pool_inline_regions", stats.pool_inline_regions);
  json.Set("pool_tasks_run", stats.pool_tasks_run);
  json.Set("pool_steals", stats.pool_steals);
  return json;
}

std::optional<IpsRunStats> RunStatsFromJson(const obs::JsonValue& json) {
  if (!json.is_object()) return std::nullopt;
  IpsRunStats s;

  const auto read_double = [&](const char* key, double& dst) {
    const std::optional<double> v = ReadDouble(json, key);
    if (v) dst = *v;
    return v.has_value();
  };
  const auto read_count = [&](const char* key, size_t& dst) {
    const std::optional<size_t> v = ReadCount(json, key);
    if (v) dst = *v;
    return v.has_value();
  };

  const bool ok =
      read_double("candidate_gen_seconds", s.candidate_gen_seconds) &&
      read_double("dabf_build_seconds", s.dabf_build_seconds) &&
      read_double("pruning_seconds", s.pruning_seconds) &&
      read_double("selection_seconds", s.selection_seconds) &&
      read_double("transform_seconds", s.transform_seconds) &&
      read_double("backend_fit_seconds", s.backend_fit_seconds) &&
      read_count("motifs_generated", s.motifs_generated) &&
      read_count("discords_generated", s.discords_generated) &&
      read_count("motifs_after_prune", s.motifs_after_prune) &&
      read_count("discords_after_prune", s.discords_after_prune) &&
      read_count("shapelets", s.shapelets) &&
      read_count("profiles_computed", s.profiles_computed) &&
      read_count("stats_cache_hits", s.stats_cache_hits) &&
      read_count("stats_cache_misses", s.stats_cache_misses) &&
      read_double("profile_seconds", s.profile_seconds) &&
      read_count("mp_joins_computed", s.mp_joins_computed) &&
      read_count("mp_qt_sweeps", s.mp_qt_sweeps) &&
      read_count("mp_joins_halved", s.mp_joins_halved) &&
      read_count("mp_cache_hits", s.mp_cache_hits) &&
      read_count("mp_cache_misses", s.mp_cache_misses) &&
      read_count("pool_regions", s.pool_regions) &&
      read_count("pool_inline_regions", s.pool_inline_regions) &&
      read_count("pool_tasks_run", s.pool_tasks_run) &&
      read_count("pool_steals", s.pool_steals);
  if (!ok) return std::nullopt;
  return s;
}

std::string SerializeRunResult(const RunResult& result) {
  std::ostringstream out;
  out << kRunMagicPrefix << kRunFormatVersion.major << '.'
      << kRunFormatVersion.minor << '\n';
  out << "metric " << MetricName(result.metric) << '\n';
  out << "stats " << RunStatsToJson(result.stats).Dump() << '\n';
  out << "trace " << obs::TraceToJson(result.trace).Dump() << '\n';
  out << SerializeShapelets(result.shapelets);
  return out.str();
}

std::optional<RunResult> DeserializeRunResult(const std::string& text,
                                              std::string* error) {
  const auto fail = [&](std::string reason) -> std::optional<RunResult> {
    if (error != nullptr) *error = std::move(reason);
    return std::nullopt;
  };
  if (error != nullptr) error->clear();

  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line)) return fail("empty artifact");
  const std::optional<FormatVersion> version = ParseRunHeader(line);
  // Any minor within a known major parses (minors only add fields the
  // loaders below ignore); an unknown major is a different format.
  if (!version || version->major != kRunFormatVersion.major) {
    return fail("unrecognised run header: \"" + line + "\"");
  }

  // v2.1 added the metric line; a v2.0 artifact predates selectable
  // metrics and so was implicitly z-normalised Euclidean.
  MetricId metric = MetricId::kZNormEuclidean;
  if (version->minor >= 1) {
    if (!std::getline(in, line)) return fail("truncated after header");
    constexpr const char* kMetricPrefix = "metric ";
    if (line.rfind(kMetricPrefix, 0) != 0) {
      return fail("v2.1 artifact is missing the metric line");
    }
    const std::string name = line.substr(std::string(kMetricPrefix).size());
    const MetricPolicy* policy = FindMetricByName(name);
    if (policy == nullptr) {
      // A metric this build does not register: the shapelet distances in
      // the artifact are meaningless here, so refuse rather than guess.
      return fail("run artifact uses unknown metric \"" + name + "\"");
    }
    metric = policy->id;
  }

  if (!std::getline(in, line)) return fail("truncated before stats");
  const std::optional<obs::JsonValue> stats_json =
      ParseTaggedJsonLine(line, "stats");
  if (!stats_json) return fail("malformed stats line");
  std::optional<IpsRunStats> stats = RunStatsFromJson(*stats_json);
  if (!stats) return fail("stats JSON is missing fields");

  if (!std::getline(in, line)) return fail("truncated before trace");
  const std::optional<obs::JsonValue> trace_json =
      ParseTaggedJsonLine(line, "trace");
  if (!trace_json) return fail("malformed trace line");
  std::optional<obs::TraceReport> trace = obs::TraceFromJson(*trace_json);
  if (!trace) return fail("trace JSON does not match the trace schema");

  std::ostringstream rest;
  rest << in.rdbuf();
  std::optional<std::vector<Subsequence>> shapelets =
      DeserializeShapelets(rest.str());
  if (!shapelets) return fail("malformed shapelet block");

  RunResult result;
  result.shapelets = std::move(*shapelets);
  result.metric = metric;
  result.stats = *stats;
  result.trace = std::move(*trace);
  return result;
}

bool SaveRunResult(const RunResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << SerializeRunResult(result);
  return static_cast<bool>(out);
}

std::optional<RunResult> LoadRunResult(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open \"" + path + "\"";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeRunResult(buffer.str(), error);
}

std::optional<RunResult> LoadRunResultFromFd(int fd, std::string* error) {
  if (fd < 0) {
    if (error != nullptr) *error = "invalid file descriptor";
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("read failed: ") + std::strerror(errno);
      }
      return std::nullopt;
    }
    text.append(buf, static_cast<size_t>(n));
  }
  return DeserializeRunResult(text, error);
}

}  // namespace ips
