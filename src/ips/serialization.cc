#include "ips/serialization.h"

#include <cinttypes>
#include <cstdio>

#include <fstream>
#include <limits>
#include <sstream>

namespace ips {

namespace {

constexpr const char* kMagic = "ips-shapelets v1";

}  // namespace

std::string SerializeShapelets(const std::vector<Subsequence>& shapelets) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kMagic << '\n' << shapelets.size() << '\n';
  for (const Subsequence& s : shapelets) {
    out << s.label << ' ' << s.series_index << ' ' << s.start << ' '
        << s.length();
    for (double v : s.values) out << ' ' << v;
    out << '\n';
  }
  return out.str();
}

std::optional<std::vector<Subsequence>> DeserializeShapelets(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) return std::nullopt;

  size_t count = 0;
  if (!(in >> count)) return std::nullopt;

  std::vector<Subsequence> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Subsequence s;
    size_t length = 0;
    if (!(in >> s.label >> s.series_index >> s.start >> length)) {
      return std::nullopt;
    }
    s.values.resize(length);
    for (size_t j = 0; j < length; ++j) {
      if (!(in >> s.values[j])) return std::nullopt;
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool SaveShapelets(const std::vector<Subsequence>& shapelets,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << SerializeShapelets(shapelets);
  return static_cast<bool>(out);
}

std::optional<std::vector<Subsequence>> LoadShapelets(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeShapelets(buffer.str());
}

}  // namespace ips
