#include "ips/run_result.h"

namespace ips {

IpsRunStats IpsRunStats::FromRegistry(const obs::MetricsSnapshot& metrics,
                                      const obs::TraceReport& trace) {
  IpsRunStats s;

  s.candidate_gen_seconds = trace.LeafSeconds("candidate_gen");
  s.dabf_build_seconds = trace.LeafSeconds("dabf_build");
  s.pruning_seconds = trace.LeafSeconds("pruning");
  s.selection_seconds = trace.LeafSeconds("selection");
  s.transform_seconds = trace.LeafSeconds("transform");
  s.backend_fit_seconds = trace.LeafSeconds("backend_fit");
  s.profile_seconds = trace.LeafSeconds("instance_profile");

  s.motifs_generated = metrics.CounterValue("ips.motifs_generated");
  s.discords_generated = metrics.CounterValue("ips.discords_generated");
  s.motifs_after_prune = metrics.CounterValue("ips.motifs_after_prune");
  s.discords_after_prune = metrics.CounterValue("ips.discords_after_prune");
  s.shapelets = metrics.CounterValue("ips.shapelets_selected");

  s.profiles_computed = metrics.CounterValue("engine.profiles_computed");
  s.stats_cache_hits = metrics.CounterValue("engine.stats_cache_hits");
  s.stats_cache_misses = metrics.CounterValue("engine.stats_cache_misses");

  s.eab_candidates = metrics.CounterValue("engine.eab.candidates");
  s.eab_lb_pruned = metrics.CounterValue("engine.eab.lb_pruned");
  s.eab_abandoned = metrics.CounterValue("engine.eab.abandoned");
  s.eab_full = metrics.CounterValue("engine.eab.full");

  s.mp_joins_computed = metrics.CounterValue("mp.joins_computed");
  s.mp_qt_sweeps = metrics.CounterValue("mp.qt_sweeps");
  s.mp_joins_halved = metrics.CounterValue("mp.joins_halved");
  s.mp_cache_hits = metrics.CounterValue("mp.cache_hits");
  s.mp_cache_misses = metrics.CounterValue("mp.cache_misses");

  s.artifact_tables_built = metrics.CounterValue("engine.artifact_table.builds");
  s.artifact_tables_reused =
      metrics.CounterValue("engine.artifact_table.reuses");
  s.artifact_entries = metrics.CounterValue("engine.artifact_table.entries");
  s.artifact_reads = metrics.CounterValue("engine.artifact_table.reads");

  s.arena_acquires = metrics.CounterValue("engine.arena.acquires");
  s.arena_slab_allocs = metrics.CounterValue("engine.arena.slab_allocs");
  s.arena_slab_bytes = metrics.CounterValue("engine.arena.slab_bytes");

  s.pool_regions = metrics.CounterValue("pool.regions_dispatched");
  s.pool_inline_regions = metrics.CounterValue("pool.regions_inline");
  s.pool_tasks_run = metrics.CounterValue("pool.tasks_run");
  s.pool_steals = metrics.CounterValue("pool.chunk_steals");

  return s;
}

}  // namespace ips
