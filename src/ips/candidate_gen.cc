#include "ips/candidate_gen.h"

#include <algorithm>

#include "ips/instance_profile.h"
#include "matrix_profile/mp_engine.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/check.h"

namespace ips {

size_t CandidatePool::TotalMotifs() const {
  size_t n = 0;
  for (const auto& [label, pool] : motifs) n += pool.size();
  return n;
}

size_t CandidatePool::TotalDiscords() const {
  size_t n = 0;
  for (const auto& [label, pool] : discords) n += pool.size();
  return n;
}

std::vector<Subsequence> CandidatePool::AllOfClass(int label) const {
  std::vector<Subsequence> out;
  if (const auto it = motifs.find(label); it != motifs.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (const auto it = discords.find(label); it != discords.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::map<int, std::vector<Subsequence>> CandidatePool::MergedByClass() const {
  std::map<int, std::vector<Subsequence>> by_class;
  for (const auto& [label, pool] : motifs) {
    if (pool.empty()) continue;
    auto merged = AllOfClass(label);
    by_class.emplace(label, std::move(merged));
  }
  for (const auto& [label, pool] : discords) {
    if (pool.empty() || by_class.count(label) != 0) continue;
    auto merged = AllOfClass(label);
    by_class.emplace(label, std::move(merged));
  }
  return by_class;
}

std::vector<size_t> ResolveCandidateLengths(
    size_t series_length, std::span<const double> ratios) {
  IPS_CHECK(series_length >= 4);
  std::vector<size_t> lengths;
  for (double r : ratios) {
    size_t l = static_cast<size_t>(r * static_cast<double>(series_length));
    l = std::clamp<size_t>(l, 4, series_length);
    lengths.push_back(l);
  }
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());
  return lengths;
}

CandidatePool GenerateCandidates(const DatasetView& train,
                                 const IpsOptions& options, Rng& rng) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(options.sample_size >= 1);
  IPS_CHECK(options.sample_count >= 1);

  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  // Draw every (class, sample) task up front with the shared RNG, so the
  // parallel profile computation below is deterministic for any thread
  // count (Alg. 1 line 4's random sampling).
  struct Task {
    int label;
    // Views into the training view's storage, not copies: for an
    // out-of-core train set the samples address mapped chunks directly,
    // which is what lets the engine's stats provider recognise them.
    std::vector<SeriesView> sample;
    std::vector<size_t> dataset_index;  // provenance of each sample member
    std::vector<Subsequence> motifs;    // task-local outputs
    std::vector<Subsequence> discords;
  };
  std::vector<Task> tasks;
  for (int label = 0; label < num_classes; ++label) {
    const std::vector<size_t> class_indices = train.IndicesOfClass(label);
    if (class_indices.empty()) continue;
    const size_t sample_size =
        std::min(options.sample_size, class_indices.size());
    for (size_t s = 0; s < options.sample_count; ++s) {
      const std::vector<size_t> picks =
          rng.SampleWithoutReplacement(class_indices.size(), sample_size);
      Task task;
      task.label = label;
      for (size_t p : picks) {
        task.dataset_index.push_back(class_indices[p]);
        task.sample.push_back(train.At(class_indices[p]));
      }
      tasks.push_back(std::move(task));
    }
  }

  // Instance profiles per task (the expensive part). The pool's
  // nested-inline rule means only one level can fan out, so the thread
  // budget goes entirely to tasks (outer) when there are enough of them,
  // and entirely to each task's MatrixProfileEngine (inner: diagonal
  // sharding within a join) otherwise -- few tasks still use every core.
  // Neither split affects results: the engine is bitwise thread-count
  // independent and the merge below runs in task order.
  const size_t threads = ResolveNumThreads(options.num_threads);
  const size_t outer = tasks.size() >= threads ? threads : 1;
  const size_t inner = outer == 1 ? threads : 1;
  const size_t min_length = train.MinLength();
  // The span covers every task's profile computation (Alg. 1 line 5); its
  // leaf feeds IpsRunStats::profile_seconds. The per-task engines publish
  // their mp.* counters to the metrics registry as they run.
  {
    IPS_SPAN("instance_profile");
    ParallelFor(tasks.size(), outer, [&](size_t t) {
      Task& task = tasks[t];
      // Per-task engine: its artefact caches span every window length of
      // the task, and the task's sample storage outlives it. The scheduler
      // knobs thread through from the run options (A/B parity runs and the
      // fingerprint CI matrix pin them off).
      MatrixProfileEngine engine(inner);
      // Store-backed training views serve write-time sidecars through this,
      // replacing the engine's stats pass with bitwise-identical fills.
      engine.set_stats_provider(train.stats_provider());
      engine.set_use_artifact_table(options.enable_mp_artifact_table);
      engine.set_use_arena(options.enable_mp_arena);
      engine.set_tile_size(options.mp_tile_size);
      for (size_t window : lengths) {
        if (min_length < window) continue;
        const InstanceProfile ip = ComputeInstanceProfile(
            std::span<const SeriesView>(task.sample), window,
            options.profile_neighbors, &engine, options.metric);

        auto extract = [&](std::span<const size_t> entries,
                           std::vector<Subsequence>& dst) {
          for (size_t e : entries) {
            const size_t m = ip.instances[e];
            dst.push_back(ExtractSubsequence(
                task.sample[m], ip.offsets[e], window,
                static_cast<int>(task.dataset_index[m])));
          }
        };
        extract(
            InstanceProfileMotifs(ip, options.candidates_per_profile, window),
            task.motifs);
        extract(InstanceProfileDiscords(ip, options.candidates_per_profile,
                                        window),
                task.discords);
      }
    });
  }

  // Merge in task order (stable across thread counts).
  CandidatePool pool;
  for (Task& task : tasks) {
    auto& motif_pool = pool.motifs[task.label];
    auto& discord_pool = pool.discords[task.label];
    for (auto& m : task.motifs) motif_pool.push_back(std::move(m));
    for (auto& d : task.discords) discord_pool.push_back(std::move(d));
  }
  return pool;
}

}  // namespace ips
