#include "ips/candidate_gen.h"

#include <algorithm>

#include "ips/instance_profile.h"
#include "util/parallel.h"
#include "util/check.h"

namespace ips {

size_t CandidatePool::TotalMotifs() const {
  size_t n = 0;
  for (const auto& [label, pool] : motifs) n += pool.size();
  return n;
}

size_t CandidatePool::TotalDiscords() const {
  size_t n = 0;
  for (const auto& [label, pool] : discords) n += pool.size();
  return n;
}

std::vector<Subsequence> CandidatePool::AllOfClass(int label) const {
  std::vector<Subsequence> out;
  if (const auto it = motifs.find(label); it != motifs.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (const auto it = discords.find(label); it != discords.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<size_t> ResolveCandidateLengths(
    size_t series_length, std::span<const double> ratios) {
  IPS_CHECK(series_length >= 4);
  std::vector<size_t> lengths;
  for (double r : ratios) {
    size_t l = static_cast<size_t>(r * static_cast<double>(series_length));
    l = std::clamp<size_t>(l, 4, series_length);
    lengths.push_back(l);
  }
  std::sort(lengths.begin(), lengths.end());
  lengths.erase(std::unique(lengths.begin(), lengths.end()), lengths.end());
  return lengths;
}

CandidatePool GenerateCandidates(const Dataset& train,
                                 const IpsOptions& options, Rng& rng) {
  IPS_CHECK(!train.empty());
  IPS_CHECK(options.sample_size >= 1);
  IPS_CHECK(options.sample_count >= 1);

  const std::vector<size_t> lengths =
      ResolveCandidateLengths(train.MinLength(), options.length_ratios);
  const int num_classes = train.NumClasses();

  // Draw every (class, sample) task up front with the shared RNG, so the
  // parallel profile computation below is deterministic for any thread
  // count (Alg. 1 line 4's random sampling).
  struct Task {
    int label;
    std::vector<TimeSeries> sample;
    std::vector<size_t> dataset_index;  // provenance of each sample member
    std::vector<Subsequence> motifs;    // task-local outputs
    std::vector<Subsequence> discords;
  };
  std::vector<Task> tasks;
  for (int label = 0; label < num_classes; ++label) {
    const std::vector<size_t> class_indices = train.IndicesOfClass(label);
    if (class_indices.empty()) continue;
    const size_t sample_size =
        std::min(options.sample_size, class_indices.size());
    for (size_t s = 0; s < options.sample_count; ++s) {
      const std::vector<size_t> picks =
          rng.SampleWithoutReplacement(class_indices.size(), sample_size);
      Task task;
      task.label = label;
      for (size_t p : picks) {
        task.dataset_index.push_back(class_indices[p]);
        task.sample.push_back(train[class_indices[p]]);
      }
      tasks.push_back(std::move(task));
    }
  }

  // Instance profiles per task (the expensive part; embarrassingly
  // parallel).
  const size_t min_length = train.MinLength();
  ParallelFor(tasks.size(), options.num_threads, [&](size_t t) {
    Task& task = tasks[t];
    for (size_t window : lengths) {
      if (min_length < window) continue;
      const InstanceProfile ip = ComputeInstanceProfile(
          task.sample, window, options.profile_neighbors);

      auto extract = [&](std::span<const size_t> entries,
                         std::vector<Subsequence>& dst) {
        for (size_t e : entries) {
          const size_t m = ip.instances[e];
          dst.push_back(ExtractSubsequence(
              task.sample[m], ip.offsets[e], window,
              static_cast<int>(task.dataset_index[m])));
        }
      };
      extract(
          InstanceProfileMotifs(ip, options.candidates_per_profile, window),
          task.motifs);
      extract(InstanceProfileDiscords(ip, options.candidates_per_profile,
                                      window),
              task.discords);
    }
  });

  // Merge in task order (stable across thread counts).
  CandidatePool pool;
  for (Task& task : tasks) {
    auto& motif_pool = pool.motifs[task.label];
    auto& discord_pool = pool.discords[task.label];
    for (auto& m : task.motifs) motif_pool.push_back(std::move(m));
    for (auto& d : task.discords) discord_pool.push_back(std::move(d));
  }
  return pool;
}

}  // namespace ips
