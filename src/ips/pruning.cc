#include "ips/pruning.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/distance.h"
#include "util/check.h"

namespace ips {

namespace {

// Restores the most-discriminative pruned motifs of a class when the
// survivor count falls below `min_keep`. `atypicality[i]` scores pruned
// motif i (higher = more discriminative = restore first).
void RestoreMotifs(std::vector<Subsequence>& kept,
                   std::vector<Subsequence>& pruned,
                   std::vector<double>& atypicality, size_t min_keep) {
  while (kept.size() < min_keep && !pruned.empty()) {
    const size_t best = static_cast<size_t>(
        std::max_element(atypicality.begin(), atypicality.end()) -
        atypicality.begin());
    kept.push_back(std::move(pruned[best]));
    pruned.erase(pruned.begin() + static_cast<ptrdiff_t>(best));
    atypicality.erase(atypicality.begin() + static_cast<ptrdiff_t>(best));
  }
}

}  // namespace

PruneStats PruneWithDabf(CandidatePool& pool, const Dabf& dabf,
                         size_t min_keep_motifs) {
  PruneStats stats;
  stats.motifs_before = pool.TotalMotifs();
  stats.discords_before = pool.TotalDiscords();

  for (auto& [label, motifs] : pool.motifs) {
    std::vector<Subsequence> kept;
    std::vector<Subsequence> pruned;
    std::vector<double> atypicality;
    for (auto& cand : motifs) {
      // Minimum |normalised distance| across the other classes whose bloom
      // bit collides: small means some other class finds the candidate
      // typical (Algorithm 3's disjunction).
      double min_abs_z = std::numeric_limits<double>::infinity();
      bool close = false;
      for (const auto& [other, filter] : dabf.filters()) {
        if (other == label) continue;
        const double z = std::abs(filter.NormalizedDistance(cand.view()));
        min_abs_z = std::min(min_abs_z, z);
        if (filter.PossiblyCloseToMost(cand.view())) close = true;
      }
      if (close) {
        pruned.push_back(std::move(cand));
        atypicality.push_back(min_abs_z);
      } else {
        kept.push_back(std::move(cand));
      }
    }
    RestoreMotifs(kept, pruned, atypicality, min_keep_motifs);
    motifs = std::move(kept);
  }

  for (auto& [label, discords] : pool.discords) {
    std::vector<Subsequence> kept;
    for (auto& cand : discords) {
      if (!dabf.CloseToAnyOtherClass(cand.view(), label)) {
        kept.push_back(std::move(cand));
      }
    }
    discords = std::move(kept);
  }

  stats.motifs_after = pool.TotalMotifs();
  stats.discords_after = pool.TotalDiscords();
  return stats;
}

namespace {

// Median pairwise Def. 4 distance within a candidate set (the naive
// pruner's closeness radius r).
double MedianPairwiseDistance(const std::vector<Subsequence>& pool) {
  std::vector<double> dists;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      dists.push_back(
          SubsequenceDistance(pool[i].view(), pool[j].view()));
    }
  }
  if (dists.empty()) return 0.0;
  const size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<ptrdiff_t>(mid), dists.end());
  return dists[mid];
}

}  // namespace

PruneStats PruneNaive(CandidatePool& pool, size_t min_keep_motifs,
                      double majority_fraction) {
  PruneStats stats;
  stats.motifs_before = pool.TotalMotifs();
  stats.discords_before = pool.TotalDiscords();

  // Closeness radius per class.
  std::map<int, double> radius;
  for (const auto& [label, motifs] : pool.motifs) {
    std::vector<Subsequence> all = pool.AllOfClass(label);
    radius[label] = MedianPairwiseDistance(all);
  }

  auto close_to_most = [&](const Subsequence& cand, int own_label) {
    double best_margin = -std::numeric_limits<double>::infinity();
    for (const auto& [other, motifs] : pool.motifs) {
      if (other == own_label) continue;
      const std::vector<Subsequence> others = pool.AllOfClass(other);
      if (others.empty()) continue;
      size_t close = 0;
      for (const auto& o : others) {
        if (SubsequenceDistance(cand.view(), o.view()) <= radius[other]) {
          ++close;
        }
      }
      const double frac = static_cast<double>(close) /
                          static_cast<double>(others.size());
      best_margin = std::max(best_margin, frac - majority_fraction);
    }
    return best_margin >= 0.0 ? best_margin : -1.0;
  };

  for (auto& [label, motifs] : pool.motifs) {
    std::vector<Subsequence> kept, pruned;
    std::vector<double> atypicality;
    for (auto& cand : motifs) {
      const double margin = close_to_most(cand, label);
      if (margin >= 0.0) {
        pruned.push_back(std::move(cand));
        atypicality.push_back(-margin);  // smaller margin = more atypical
      } else {
        kept.push_back(std::move(cand));
      }
    }
    RestoreMotifs(kept, pruned, atypicality, min_keep_motifs);
    motifs = std::move(kept);
  }

  for (auto& [label, discords] : pool.discords) {
    std::vector<Subsequence> kept;
    for (auto& cand : discords) {
      if (close_to_most(cand, label) < 0.0) kept.push_back(std::move(cand));
    }
    discords = std::move(kept);
  }

  stats.motifs_after = pool.TotalMotifs();
  stats.discords_after = pool.TotalDiscords();
  return stats;
}

}  // namespace ips
