#include "ips/pruning.h"

#include <cmath>

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "core/distance_engine.h"
#include "util/check.h"

namespace ips {

namespace {

// Restores the most-discriminative pruned motifs of a class when the
// survivor count falls below `min_keep`. `atypicality[i]` scores pruned
// motif i (higher = more discriminative = restore first).
void RestoreMotifs(std::vector<Subsequence>& kept,
                   std::vector<Subsequence>& pruned,
                   std::vector<double>& atypicality, size_t min_keep) {
  while (kept.size() < min_keep && !pruned.empty()) {
    const size_t best = static_cast<size_t>(
        std::max_element(atypicality.begin(), atypicality.end()) -
        atypicality.begin());
    kept.push_back(std::move(pruned[best]));
    pruned.erase(pruned.begin() + static_cast<ptrdiff_t>(best));
    atypicality.erase(atypicality.begin() + static_cast<ptrdiff_t>(best));
  }
}

}  // namespace

PruneStats PruneWithDabf(CandidatePool& pool, const Dabf& dabf,
                         size_t min_keep_motifs) {
  PruneStats stats;
  stats.motifs_before = pool.TotalMotifs();
  stats.discords_before = pool.TotalDiscords();

  for (auto& [label, motifs] : pool.motifs) {
    std::vector<Subsequence> kept;
    std::vector<Subsequence> pruned;
    std::vector<double> atypicality;
    for (auto& cand : motifs) {
      // Minimum |normalised distance| across the other classes whose bloom
      // bit collides: small means some other class finds the candidate
      // typical (Algorithm 3's disjunction).
      double min_abs_z = std::numeric_limits<double>::infinity();
      bool close = false;
      for (const auto& [other, filter] : dabf.filters()) {
        if (other == label) continue;
        const double z = std::abs(filter.NormalizedDistance(cand.view()));
        min_abs_z = std::min(min_abs_z, z);
        if (filter.PossiblyCloseToMost(cand.view())) close = true;
      }
      if (close) {
        pruned.push_back(std::move(cand));
        atypicality.push_back(min_abs_z);
      } else {
        kept.push_back(std::move(cand));
      }
    }
    RestoreMotifs(kept, pruned, atypicality, min_keep_motifs);
    motifs = std::move(kept);
  }

  for (auto& [label, discords] : pool.discords) {
    std::vector<Subsequence> kept;
    for (auto& cand : discords) {
      if (!dabf.CloseToAnyOtherClass(cand.view(), label)) {
        kept.push_back(std::move(cand));
      }
    }
    discords = std::move(kept);
  }

  stats.motifs_after = pool.TotalMotifs();
  stats.discords_after = pool.TotalDiscords();
  return stats;
}

namespace {

// Median pairwise Def. 4 distance within a candidate set (the naive
// pruner's closeness radius r). The pairwise distances are evaluated
// through the engine (parallel, artefact-cached) in the same upper-triangle
// order the serial loops produced, so the median is identical.
double MedianPairwiseDistance(const std::vector<Subsequence>& pool,
                              DistanceEngine& engine) {
  std::vector<std::span<const double>> views;
  views.reserve(pool.size());
  for (const Subsequence& s : pool) views.push_back(s.view());
  std::vector<IndexPair> pairs;
  for (uint32_t i = 0; i < pool.size(); ++i) {
    for (uint32_t j = i + 1; j < pool.size(); ++j) pairs.push_back({i, j});
  }
  std::vector<double> dists = engine.MinForPairs(views, pairs);
  if (dists.empty()) return 0.0;
  const size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(),
                   dists.begin() + static_cast<ptrdiff_t>(mid), dists.end());
  return dists[mid];
}

// Closeness margins of `cands` against the pool's other classes in its
// CURRENT state (earlier classes may already be pruned -- the sequential
// semantics of the original per-candidate scan). margins[c] >= 0 means
// cands[c] is "close to most" of some other class; -1 otherwise.
std::vector<double> CloseToMostMargins(
    const CandidatePool& pool, const std::vector<Subsequence>& cands,
    int own_label, const std::map<int, double>& radius,
    double majority_fraction, DistanceEngine& engine) {
  std::vector<double> best_margin(
      cands.size(), -std::numeric_limits<double>::infinity());
  for (const auto& [other, motifs] : pool.motifs) {
    if (other == own_label) continue;
    const std::vector<Subsequence> others = pool.AllOfClass(other);
    if (others.empty()) continue;

    // One batched candidate x other-class matrix per class pair.
    std::vector<std::span<const double>> views;
    views.reserve(cands.size() + others.size());
    for (const Subsequence& c : cands) views.push_back(c.view());
    for (const Subsequence& o : others) views.push_back(o.view());
    std::vector<IndexPair> pairs;
    pairs.reserve(cands.size() * others.size());
    for (uint32_t c = 0; c < cands.size(); ++c) {
      for (uint32_t o = 0; o < others.size(); ++o) {
        pairs.push_back({c, static_cast<uint32_t>(cands.size()) + o});
      }
    }
    const std::vector<double> dists = engine.MinForPairs(views, pairs);

    const double r = radius.at(other);
    for (size_t c = 0; c < cands.size(); ++c) {
      size_t close = 0;
      for (size_t o = 0; o < others.size(); ++o) {
        if (dists[c * others.size() + o] <= r) ++close;
      }
      const double frac = static_cast<double>(close) /
                          static_cast<double>(others.size());
      best_margin[c] = std::max(best_margin[c], frac - majority_fraction);
    }
  }
  for (double& m : best_margin) {
    m = m >= 0.0 ? m : -1.0;
  }
  return best_margin;
}

}  // namespace

PruneStats PruneNaive(CandidatePool& pool, size_t min_keep_motifs,
                      double majority_fraction, DistanceEngine* engine,
                      size_t num_threads) {
  DistanceEngine local(num_threads);
  DistanceEngine& eng = engine != nullptr ? *engine : local;

  PruneStats stats;
  stats.motifs_before = pool.TotalMotifs();
  stats.discords_before = pool.TotalDiscords();

  // Closeness radius per class.
  std::map<int, double> radius;
  for (const auto& [label, motifs] : pool.motifs) {
    std::vector<Subsequence> all = pool.AllOfClass(label);
    radius[label] = MedianPairwiseDistance(all, eng);
  }

  for (auto& [label, motifs] : pool.motifs) {
    const std::vector<double> margins = CloseToMostMargins(
        pool, motifs, label, radius, majority_fraction, eng);
    std::vector<Subsequence> kept, pruned;
    std::vector<double> atypicality;
    for (size_t c = 0; c < motifs.size(); ++c) {
      Subsequence& cand = motifs[c];
      const double margin = margins[c];
      if (margin >= 0.0) {
        pruned.push_back(std::move(cand));
        atypicality.push_back(-margin);  // smaller margin = more atypical
      } else {
        kept.push_back(std::move(cand));
      }
    }
    RestoreMotifs(kept, pruned, atypicality, min_keep_motifs);
    motifs = std::move(kept);
  }

  for (auto& [label, discords] : pool.discords) {
    const std::vector<double> margins = CloseToMostMargins(
        pool, discords, label, radius, majority_fraction, eng);
    std::vector<Subsequence> kept;
    for (size_t c = 0; c < discords.size(); ++c) {
      if (margins[c] < 0.0) kept.push_back(std::move(discords[c]));
    }
    discords = std::move(kept);
  }

  stats.motifs_after = pool.TotalMotifs();
  stats.discords_after = pool.TotalDiscords();
  return stats;
}

}  // namespace ips
