// Top-k shapelet selection (Algorithm 4).
//
// Motif candidates are scored by the three utilities; the k candidates with
// the smallest combined score u = U_intra - U_inter + U_DC per class become
// the final shapelets.

#ifndef IPS_IPS_TOP_K_H_
#define IPS_IPS_TOP_K_H_

#include <map>
#include <vector>

#include "core/time_series.h"
#include "ips/candidate_gen.h"
#include "ips/utility.h"

namespace ips {

/// Selects up to `k` motif candidates per class by ascending combined
/// score. `scores` must be the output of ScoreAllCandidates over `pool`.
/// The returned set is the union over classes (the paper's S).
std::vector<Subsequence> SelectTopKShapelets(
    const CandidatePool& pool,
    const std::map<int, std::vector<CandidateScore>>& scores, size_t k);

}  // namespace ips

#endif  // IPS_IPS_TOP_K_H_
