// Candidate utility scoring (paper Defs. 11-13, §III-E optimisations).
//
// Each motif candidate of class C receives three utilities:
//   U_intra -- sigmoid of its mean distance to C's other motif candidates
//              (small = representative of its class);
//   U_inter -- sigmoid of its mean distance to the motifs AND discords of
//              the other classes (large = far from them);
//   U_DC    -- sigmoid of its mean Def. 4 distance to C's raw training
//              instances (small = the class's instances contain it).
// The combined score minimised by top-k selection (Algorithm 4 line 6) is
//   u = U_intra - U_inter + U_DC.
//
// Deviation from the paper's formulas, documented in DESIGN.md: the sigmoid
// is applied to the MEAN rather than the SUM of distances. The sum of
// hundreds of non-negative distances saturates the sigmoid to exactly 1.0 in
// double precision, erasing all ranking information; the mean preserves the
// monotone ordering the formulas intend while keeping the utilities in the
// sigmoid's responsive range.
//
// Three computation modes (IpsOptions::utility_mode):
//   kExactNaive  -- every pairwise Def. 4 distance computed on demand, the
//                   symmetric pair twice (the unoptimised baseline of
//                   Fig. 10(b)).
//   kExactWithCr -- computation reuse: the symmetric candidate-candidate
//                   distance matrix is computed once (§III-E2).
//   kDtCr        -- distribution transformation + reuse: distances are
//                   replaced by ranked-bucket coordinate gaps |B_i - B_j|
//                   obtained from the class DABF (Formula 15/16), O(1) per
//                   pair after one O(N) hash per candidate.

#ifndef IPS_IPS_UTILITY_H_
#define IPS_IPS_UTILITY_H_

#include <map>
#include <vector>

#include "dabf/dabf.h"
#include "ips/candidate_gen.h"
#include "ips/config.h"

namespace ips {

class DistanceEngine;

/// Logistic function 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// The three utilities of one candidate, plus the combined score.
struct CandidateScore {
  double intra = 0.0;
  double inter = 0.0;
  double instance = 0.0;

  /// Algorithm 4 line 6; smaller is better.
  double Combined() const { return intra - inter + instance; }
};

/// Scores every motif candidate in `pool` against the training data.
/// Returns, per class, one CandidateScore per motif candidate (same order
/// as pool.motifs.at(label)). `dabf` is required for kDtCr mode and ignored
/// otherwise.
///
/// The exact modes evaluate their Def. 4 distances through a
/// DistanceEngine: pass `engine` to reuse caches across pipeline stages
/// (its thread count then governs), or leave it null to use a call-local
/// engine sharded over `num_threads`. Scores are bitwise identical to the
/// serial per-pair loops for every engine/thread configuration.
std::map<int, std::vector<CandidateScore>> ScoreAllCandidates(
    const CandidatePool& pool, const DatasetView& train, UtilityMode mode,
    const Dabf* dabf, DistanceEngine* engine = nullptr,
    size_t num_threads = 1);

}  // namespace ips

#endif  // IPS_IPS_UTILITY_H_
