// Shapelet candidate pruning (Algorithm 3).
//
// A candidate of class C is removed when it is "possibly close to most
// elements" of some other class -- it cannot discriminate C. The DABF
// answers that query in O(N); the naive comparator (kept for the Fig. 10(a)
// ablation) scans all other-class candidates in O(|Phi| * N).

#ifndef IPS_IPS_PRUNING_H_
#define IPS_IPS_PRUNING_H_

#include <cstddef>

#include "dabf/dabf.h"
#include "ips/candidate_gen.h"

namespace ips {

class DistanceEngine;

/// Before/after counts of a pruning pass.
struct PruneStats {
  size_t motifs_before = 0;
  size_t motifs_after = 0;
  size_t discords_before = 0;
  size_t discords_after = 0;

  size_t Pruned() const {
    return (motifs_before - motifs_after) +
           (discords_before - discords_after);
  }
};

/// Algorithm 3: DABF-based pruning, in place. `min_keep_motifs` guards
/// against over-pruning -- when fewer than that many motifs of a class
/// survive, the most atypical pruned motifs (largest |normalised distance|
/// against the other classes) are restored, so top-k selection always has
/// material to work with.
PruneStats PruneWithDabf(CandidatePool& pool, const Dabf& dabf,
                         size_t min_keep_motifs);

/// Naive quadratic pruning: candidate e of class C is removed when, for some
/// other class, at least `majority_fraction` of that class's candidates lie
/// within distance r of e, where r is the median pairwise distance among
/// that class's candidates. Same min-keep guard as the DABF variant.
///
/// All Def. 4 distances run through a DistanceEngine
/// (core/distance_engine.h): pass `engine` to share caches with other
/// pipeline stages (its thread count then governs), or leave it null for a
/// call-local engine sharded over `num_threads`. The pruning decisions are
/// identical to the serial scan for every configuration.
PruneStats PruneNaive(CandidatePool& pool, size_t min_keep_motifs,
                      double majority_fraction = 0.5,
                      DistanceEngine* engine = nullptr,
                      size_t num_threads = 1);

}  // namespace ips

#endif  // IPS_IPS_PRUNING_H_
