// The result of one IPS run: discovered shapelets plus the run's
// observability record (stats view + span trace).
//
// IpsRunStats used to be a bag of out-param fields every stage mutated in
// place; it is now an immutable view computed once per run from the
// process-wide registries (obs/metrics.h, obs/trace.h). The pipeline takes
// a snapshot of both registries before the run, runs the stages (which
// open spans and bump named counters), and derives the stats from the
// deltas -- see IpsRunStats::FromRegistry for the exact field-to-metric
// mapping. Persist a RunResult with ips/serialization.h's SaveRunResult.

#ifndef IPS_IPS_RUN_RESULT_H_
#define IPS_IPS_RUN_RESULT_H_

#include <cstddef>
#include <vector>

#include "core/metric.h"
#include "core/time_series.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ips {

/// Wall-clock and size instrumentation of one discovery run (Table V).
/// Built by FromRegistry; the fields are a stable, flat view over the
/// registry deltas so consumers need not know metric names or span paths.
struct IpsRunStats {
  /// Stage wall-clock, from the span trace. All zero when the library is
  /// built with -DIPS_DISABLE_TRACING (obs::kTracingEnabled == false);
  /// the event counters below stay live in both configurations.
  double candidate_gen_seconds = 0.0;
  double dabf_build_seconds = 0.0;
  double pruning_seconds = 0.0;
  double selection_seconds = 0.0;

  /// Classifier-only stages (non-zero only after IpsClassifier::Fit, not a
  /// bare DiscoverShapelets): shapelet-transforming the training set, and
  /// fitting the back-end on the transformed features.
  double transform_seconds = 0.0;
  double backend_fit_seconds = 0.0;

  size_t motifs_generated = 0;
  size_t discords_generated = 0;
  size_t motifs_after_prune = 0;
  size_t discords_after_prune = 0;
  size_t shapelets = 0;

  /// DistanceEngine activity over the run: Def. 4 evaluations (profiles or
  /// single-pair minima) and rolling-stats cache hits/misses.
  size_t profiles_computed = 0;
  size_t stats_cache_hits = 0;
  size_t stats_cache_misses = 0;

  /// Early-abandon cascade accounting over the run (docs/pruning.md),
  /// summed across metrics: alignments considered by the pruned min path,
  /// skipped whole by a lower bound, scans cut short by the partial-sum
  /// test, and scans run to completion. All zero when the cascade is off
  /// (IpsOptions::enable_early_abandon == false or
  /// -DIPS_DISABLE_EARLY_ABANDON builds); otherwise
  /// eab_candidates == eab_lb_pruned + eab_abandoned + eab_full.
  size_t eab_candidates = 0;
  size_t eab_lb_pruned = 0;
  size_t eab_abandoned = 0;
  size_t eab_full = 0;

  /// The instance-profile stage of candidate generation (a sub-interval of
  /// candidate_gen_seconds: Alg. 1 line 5 across all sampling tasks) and
  /// the MatrixProfileEngine totals over the per-task engines.
  /// mp_joins_halved counts directed joins served by a pair-symmetric
  /// sweep's far side -- work the pre-engine code computed from scratch.
  double profile_seconds = 0.0;
  size_t mp_joins_computed = 0;
  size_t mp_qt_sweeps = 0;
  size_t mp_joins_halved = 0;
  size_t mp_cache_hits = 0;
  size_t mp_cache_misses = 0;

  /// Tiled all-pairs join scheduler accounting (docs/memory.md): immutable
  /// artifact tables built by the parallel precompute pass / served again
  /// from the engine's single-slot cache, entries materialised in those
  /// tables, and pair contexts filled lock-free from a table instead of
  /// the mutex-guarded caches.
  size_t artifact_tables_built = 0;
  size_t artifact_tables_reused = 0;
  size_t artifact_entries = 0;
  size_t artifact_reads = 0;

  /// Scratch-arena traffic (util/scratch_arena.h): spans handed out of the
  /// thread-local bump arenas, and the heap slabs (count / bytes) actually
  /// allocated to back them -- flat after warmup, which is what makes the
  /// sweep hot loop allocation-free.
  size_t arena_acquires = 0;
  size_t arena_slab_allocs = 0;
  size_t arena_slab_bytes = 0;

  /// Persistent-pool activity over the run (deltas of the process-wide
  /// pool.* counters): regions dispatched to the pool, regions run inline
  /// (serial fast path or the nested-inline rule), indices executed inside
  /// pooled regions, and chunks claimed from another participant's shard
  /// by work stealing.
  size_t pool_regions = 0;
  size_t pool_inline_regions = 0;
  size_t pool_tasks_run = 0;
  size_t pool_steals = 0;

  double TotalDiscoverySeconds() const {
    return candidate_gen_seconds + dabf_build_seconds + pruning_seconds +
           selection_seconds;
  }

  /// Derives the stats of one observation window from its registry deltas.
  /// Stage seconds come from the trace by span *leaf* name (so any entry
  /// point works: "fit/discover/pruning" and "discover/pruning" both feed
  /// pruning_seconds); counters come from the metrics delta by name.
  static IpsRunStats FromRegistry(const obs::MetricsSnapshot& metrics,
                                  const obs::TraceReport& trace);
};

/// What one discovery (or fit) returns: the shapelets plus the run's
/// observability record. `trace` is empty under -DIPS_DISABLE_TRACING.
struct RunResult {
  std::vector<Subsequence> shapelets;
  /// The distance metric the run's joins and transform were parameterised
  /// with (IpsOptions::metric); recorded in v2.1 artifacts.
  MetricId metric = MetricId::kZNormEuclidean;
  IpsRunStats stats;
  obs::TraceReport trace;
};

}  // namespace ips

#endif  // IPS_IPS_RUN_RESULT_H_
