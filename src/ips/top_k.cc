#include "ips/top_k.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.h"

namespace ips {

std::vector<Subsequence> SelectTopKShapelets(
    const CandidatePool& pool,
    const std::map<int, std::vector<CandidateScore>>& scores, size_t k) {
  std::vector<Subsequence> shapelets;
  for (const auto& [label, motifs] : pool.motifs) {
    const auto it = scores.find(label);
    if (it == scores.end() || motifs.empty()) continue;
    const std::vector<CandidateScore>& class_scores = it->second;
    IPS_CHECK(class_scores.size() == motifs.size());

    // Min-priority queue over combined score (Algorithm 4 lines 3-9).
    using Entry = std::pair<double, size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    for (size_t i = 0; i < motifs.size(); ++i) {
      queue.emplace(class_scores[i].Combined(), i);
    }
    for (size_t taken = 0; taken < k && !queue.empty(); ++taken) {
      shapelets.push_back(motifs[queue.top().second]);
      queue.pop();
    }
  }
  return shapelets;
}

}  // namespace ips
