#include "ips/pipeline.h"

#include <map>
#include <memory>

#include "dabf/dabf.h"
#include "classify/logistic.h"
#include "classify/naive_bayes.h"
#include "ips/top_k.h"
#include "ips/utility.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"
#include "util/timer.h"

namespace ips {

std::vector<Subsequence> DiscoverShapelets(const Dataset& train,
                                           const IpsOptions& options,
                                           IpsRunStats* stats) {
  IPS_CHECK(!train.empty());
  IpsRunStats local;
  IpsRunStats& s = stats != nullptr ? *stats : local;
  s = IpsRunStats{};

  // (1)+(2) Candidate generation with the instance profile (Alg. 1).
  Rng rng(options.seed);
  Timer timer;
  CandidatePool pool = GenerateCandidates(train, options, rng);
  s.candidate_gen_seconds = timer.ElapsedSeconds();
  s.motifs_generated = pool.TotalMotifs();
  s.discords_generated = pool.TotalDiscords();

  // (3) DABF construction (Alg. 2). Needed for DABF pruning and for the
  // DT utility coordinates, so it is built whenever either is active.
  const bool need_dabf = options.use_dabf_pruning ||
                         options.utility_mode == UtilityMode::kDtCr;
  std::unique_ptr<Dabf> dabf;
  if (need_dabf) {
    timer.Reset();
    std::map<int, std::vector<Subsequence>> by_class;
    for (const auto& [label, motifs] : pool.motifs) {
      auto merged = pool.AllOfClass(label);
      if (!merged.empty()) by_class.emplace(label, std::move(merged));
    }
    DabfOptions dabf_options = options.dabf;
    dabf_options.seed = options.dabf.seed + options.seed;
    dabf = std::make_unique<Dabf>(by_class, dabf_options);
    s.dabf_build_seconds = timer.ElapsedSeconds();
  }

  // (4) Pruning (Alg. 3).
  timer.Reset();
  if (options.use_dabf_pruning) {
    PruneWithDabf(pool, *dabf, options.shapelets_per_class);
  } else {
    PruneNaive(pool, options.shapelets_per_class);
  }
  s.pruning_seconds = timer.ElapsedSeconds();
  s.motifs_after_prune = pool.TotalMotifs();
  s.discords_after_prune = pool.TotalDiscords();

  // (5) Utility scoring + top-k (Alg. 4).
  timer.Reset();
  const auto scores =
      ScoreAllCandidates(pool, train, options.utility_mode, dabf.get());
  std::vector<Subsequence> shapelets =
      SelectTopKShapelets(pool, scores, options.shapelets_per_class);
  s.selection_seconds = timer.ElapsedSeconds();
  s.shapelets = shapelets.size();
  return shapelets;
}

namespace {

std::unique_ptr<Classifier> MakeBackend(const IpsOptions& options) {
  switch (options.backend) {
    case TransformBackend::kLinearSvm:
      return std::make_unique<LinearSvm>(options.svm);
    case TransformBackend::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case TransformBackend::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case TransformBackend::kNearestNeighbor:
      return std::make_unique<FeatureKnn>(1);
  }
  return nullptr;
}

}  // namespace

void IpsClassifier::Fit(const Dataset& train) {
  shapelets_ = DiscoverShapelets(train, options_, &stats_);
  IPS_CHECK_MSG(!shapelets_.empty(), "IPS discovered no shapelets");
  const TransformedData transformed =
      ShapeletTransform(train, shapelets_, options_.transform_distance,
                        options_.num_threads);
  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  backend_ = MakeBackend(options_);
  backend_->Fit(matrix);
}

int IpsClassifier::Predict(const TimeSeries& series) const {
  IPS_CHECK(!shapelets_.empty());
  return backend_->Predict(
      TransformSeries(series, shapelets_, options_.transform_distance));
}

}  // namespace ips
