#include "ips/pipeline.h"

#include <map>
#include <memory>
#include <utility>

#include "dabf/dabf.h"
#include "classify/logistic.h"
#include "classify/naive_bayes.h"
#include "core/distance_engine.h"
#include "ips/top_k.h"
#include "ips/utility.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

namespace {

// Pipeline-level event counters ("ips.*"). The stage sizes used to be
// IpsRunStats out-param fields; they are registry counters now, so the
// stats view (IpsRunStats::FromRegistry) and the exporters read them the
// same way they read the engine and pool counters.
struct PipelineMetrics {
  obs::Counter& motifs_generated;
  obs::Counter& discords_generated;
  obs::Counter& motifs_after_prune;
  obs::Counter& discords_after_prune;
  obs::Counter& shapelets_selected;
};

PipelineMetrics& Metrics() {
  static PipelineMetrics* metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
    return new PipelineMetrics{
        registry.GetCounter("ips.motifs_generated"),
        registry.GetCounter("ips.discords_generated"),
        registry.GetCounter("ips.motifs_after_prune"),
        registry.GetCounter("ips.discords_after_prune"),
        registry.GetCounter("ips.shapelets_selected")};
  }();
  return *metrics;
}

// Stages 1-5 with their spans and counters. Both public entry points wrap
// this in an observation window (registry snapshots before, deltas after);
// under IpsClassifier::Fit the "discover" span nests inside "fit".
std::vector<Subsequence> RunDiscovery(const DatasetView& train,
                                      const IpsOptions& options) {
  IPS_CHECK(!train.empty());
  IPS_SPAN("discover");

  // One engine for every Def. 4 evaluation of the run: pruning and exact
  // utility scoring share its rolling-stats/FFT caches and thread pool.
  DistanceEngine engine(options.num_threads);
  engine.set_early_abandon(options.enable_early_abandon);

  // (1)+(2) Candidate generation with the instance profile (Alg. 1).
  Rng rng(options.seed);
  CandidatePool pool;
  {
    IPS_SPAN("candidate_gen");
    pool = GenerateCandidates(train, options, rng);
  }
  Metrics().motifs_generated.Add(pool.TotalMotifs());
  Metrics().discords_generated.Add(pool.TotalDiscords());

  // (3) DABF construction (Alg. 2). Needed for DABF pruning and for the
  // DT utility coordinates, so it is built whenever either is active.
  const bool need_dabf = options.use_dabf_pruning ||
                         options.utility_mode == UtilityMode::kDtCr;
  std::unique_ptr<Dabf> dabf;
  if (need_dabf) {
    IPS_SPAN("dabf_build");
    // Label set from the union of motif and discord keys: a class whose
    // surviving candidates are all discords still needs a ClassDabf, or its
    // candidates would sail through pruning unchecked.
    std::map<int, std::vector<Subsequence>> by_class = pool.MergedByClass();
    DabfOptions dabf_options = options.dabf;
    dabf_options.seed = options.dabf.seed + options.seed;
    dabf = std::make_unique<Dabf>(by_class, dabf_options);
  }

  // (4) Pruning (Alg. 3).
  {
    IPS_SPAN("pruning");
    if (options.use_dabf_pruning) {
      PruneWithDabf(pool, *dabf, options.shapelets_per_class);
    } else {
      PruneNaive(pool, options.shapelets_per_class, /*majority_fraction=*/0.5,
                 &engine);
    }
  }
  Metrics().motifs_after_prune.Add(pool.TotalMotifs());
  Metrics().discords_after_prune.Add(pool.TotalDiscords());

  // (5) Utility scoring + top-k (Alg. 4).
  std::vector<Subsequence> shapelets;
  {
    IPS_SPAN("selection");
    const auto scores = ScoreAllCandidates(pool, train, options.utility_mode,
                                           dabf.get(), &engine);
    shapelets = SelectTopKShapelets(pool, scores, options.shapelets_per_class);
  }
  Metrics().shapelets_selected.Add(shapelets.size());
  return shapelets;
}

std::unique_ptr<Classifier> MakeBackend(const IpsOptions& options) {
  switch (options.backend) {
    case TransformBackend::kLinearSvm:
      return std::make_unique<LinearSvm>(options.svm);
    case TransformBackend::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case TransformBackend::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case TransformBackend::kNearestNeighbor:
      return std::make_unique<FeatureKnn>(1);
  }
  return nullptr;
}

}  // namespace

RunResult DiscoverShapelets(const DatasetView& train,
                            const IpsOptions& options) {
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Instance().Snapshot();
  const obs::TraceSnapshot trace_before =
      obs::TraceRegistry::Instance().Snapshot();

  RunResult result;
  result.metric = options.metric;
  result.shapelets = RunDiscovery(train, options);
  result.trace = obs::TraceRegistry::Instance().DeltaSince(trace_before);
  result.stats = IpsRunStats::FromRegistry(
      obs::MetricsRegistry::Instance().DeltaSince(metrics_before),
      result.trace);
  return result;
}

IpsClassifier::IpsClassifier(IpsOptions options) : options_(options) {}
IpsClassifier::~IpsClassifier() = default;

void IpsClassifier::Fit(const DatasetView& train) {
  // Fresh engine per fit: pointer-keyed caches must not outlive the series
  // and shapelets they describe.
  engine_ = std::make_unique<DistanceEngine>(options_.num_threads);
  engine_->set_early_abandon(options_.enable_early_abandon);

  // One observation window over discovery AND the classifier-only stages,
  // so result_.stats attributes the whole fit and the trace nests every
  // stage under "fit".
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Instance().Snapshot();
  const obs::TraceSnapshot trace_before =
      obs::TraceRegistry::Instance().Snapshot();
  result_ = RunResult{};
  result_.metric = options_.metric;
  {
    IPS_SPAN("fit");
    result_.shapelets = RunDiscovery(train, options_);
    IPS_CHECK_MSG(!result_.shapelets.empty(), "IPS discovered no shapelets");

    TransformedData transformed;
    {
      IPS_SPAN("transform");
      transformed =
          ShapeletTransform(train, result_.shapelets,
                            options_.metric, options_.num_threads,
                            engine_.get());
    }

    LabeledMatrix matrix;
    matrix.x = std::move(transformed.features);
    matrix.y = std::move(transformed.labels);
    backend_ = MakeBackend(options_);
    {
      IPS_SPAN("backend_fit");
      backend_->Fit(matrix);
    }
  }
  result_.trace = obs::TraceRegistry::Instance().DeltaSince(trace_before);
  result_.stats = IpsRunStats::FromRegistry(
      obs::MetricsRegistry::Instance().DeltaSince(metrics_before),
      result_.trace);
}

void IpsClassifier::FitFromRunResult(const DatasetView& train,
                                     const RunResult& artifact) {
  IPS_CHECK_MSG(!artifact.shapelets.empty(), "run artifact has no shapelets");
  IPS_CHECK(!train.empty());
  engine_ = std::make_unique<DistanceEngine>(options_.num_threads);
  engine_->set_early_abandon(options_.enable_early_abandon);
  // The artifact's metric governs: its shapelet distances are only
  // meaningful under the metric the run was discovered with.
  options_.metric = artifact.metric;

  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Instance().Snapshot();
  const obs::TraceSnapshot trace_before =
      obs::TraceRegistry::Instance().Snapshot();
  result_ = RunResult{};
  result_.metric = artifact.metric;
  result_.shapelets = artifact.shapelets;
  {
    IPS_SPAN("fit_from_artifact");
    TransformedData transformed;
    {
      IPS_SPAN("transform");
      transformed =
          ShapeletTransform(train, result_.shapelets, options_.metric,
                            options_.num_threads, engine_.get());
    }
    LabeledMatrix matrix;
    matrix.x = std::move(transformed.features);
    matrix.y = std::move(transformed.labels);
    backend_ = MakeBackend(options_);
    {
      IPS_SPAN("backend_fit");
      backend_->Fit(matrix);
    }
  }
  result_.trace = obs::TraceRegistry::Instance().DeltaSince(trace_before);
  result_.stats = IpsRunStats::FromRegistry(
      obs::MetricsRegistry::Instance().DeltaSince(metrics_before),
      result_.trace);
}

int IpsClassifier::Predict(SeriesView series) const {
  IPS_CHECK(!result_.shapelets.empty());
  // The engine caches only shapelet-side artefacts here; the query series
  // is never cached, so a caller-owned temporary is safe.
  return backend_->Predict(TransformSeries(series, result_.shapelets,
                                           options_.metric,
                                           engine_.get()));
}

std::vector<int> IpsClassifier::PredictBatch(
    const DatasetView& test) const {
  IPS_CHECK(!result_.shapelets.empty());
  // A call-local engine rather than the member engine_: the batch path
  // caches test-series artefacts too, and test sets are caller-owned
  // temporaries that must not outlive their pointer-keyed cache entries.
  // Built explicitly (instead of letting ShapeletTransform default one) so
  // the run's early-abandon setting is honoured. Rows are bitwise equal to
  // TransformSeries, so every label matches the per-series Predict loop.
  DistanceEngine local_engine(options_.num_threads);
  local_engine.set_early_abandon(options_.enable_early_abandon);
  const TransformedData transformed =
      ShapeletTransform(test, result_.shapelets, options_.metric,
                        options_.num_threads, &local_engine);
  std::vector<int> out(transformed.features.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = backend_->Predict(transformed.features[i]);
  }
  return out;
}

}  // namespace ips
