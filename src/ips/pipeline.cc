#include "ips/pipeline.h"

#include <map>
#include <memory>

#include "dabf/dabf.h"
#include "classify/logistic.h"
#include "classify/naive_bayes.h"
#include "core/distance_engine.h"
#include "ips/top_k.h"
#include "ips/utility.h"
#include "transform/shapelet_transform.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ips {

namespace {

// Accumulates the change in the process-wide pool counters since `before`
// into `stats` (the counters are monotonic, so subtraction is safe even
// with other threads running concurrent regions -- their work is simply
// attributed to whichever run observes it).
void AddPoolDelta(const ThreadPoolCounters& before, IpsRunStats& stats) {
  const ThreadPoolCounters now = ThreadPool::Counters();
  stats.pool_regions += now.regions_dispatched - before.regions_dispatched;
  stats.pool_inline_regions += now.regions_inline - before.regions_inline;
  stats.pool_tasks_run += now.tasks_run - before.tasks_run;
  stats.pool_steals += now.chunk_steals - before.chunk_steals;
}

}  // namespace

std::vector<Subsequence> DiscoverShapelets(const Dataset& train,
                                           const IpsOptions& options,
                                           IpsRunStats* stats) {
  IPS_CHECK(!train.empty());
  IpsRunStats local;
  IpsRunStats& s = stats != nullptr ? *stats : local;
  s = IpsRunStats{};
  const ThreadPoolCounters pool_before = ThreadPool::Counters();

  // One engine for every Def. 4 evaluation of the run: pruning and exact
  // utility scoring share its rolling-stats/FFT caches and thread pool.
  DistanceEngine engine(options.num_threads);

  // (1)+(2) Candidate generation with the instance profile (Alg. 1).
  Rng rng(options.seed);
  Timer timer;
  CandidatePool pool = GenerateCandidates(train, options, rng, &s);
  s.candidate_gen_seconds = timer.ElapsedSeconds();
  s.motifs_generated = pool.TotalMotifs();
  s.discords_generated = pool.TotalDiscords();

  // (3) DABF construction (Alg. 2). Needed for DABF pruning and for the
  // DT utility coordinates, so it is built whenever either is active.
  const bool need_dabf = options.use_dabf_pruning ||
                         options.utility_mode == UtilityMode::kDtCr;
  std::unique_ptr<Dabf> dabf;
  if (need_dabf) {
    timer.Reset();
    // Label set from the union of motif and discord keys: a class whose
    // surviving candidates are all discords still needs a ClassDabf, or its
    // candidates would sail through pruning unchecked.
    std::map<int, std::vector<Subsequence>> by_class = pool.MergedByClass();
    DabfOptions dabf_options = options.dabf;
    dabf_options.seed = options.dabf.seed + options.seed;
    dabf = std::make_unique<Dabf>(by_class, dabf_options);
    s.dabf_build_seconds = timer.ElapsedSeconds();
  }

  // (4) Pruning (Alg. 3).
  timer.Reset();
  if (options.use_dabf_pruning) {
    PruneWithDabf(pool, *dabf, options.shapelets_per_class);
  } else {
    PruneNaive(pool, options.shapelets_per_class, /*majority_fraction=*/0.5,
               &engine);
  }
  s.pruning_seconds = timer.ElapsedSeconds();
  s.motifs_after_prune = pool.TotalMotifs();
  s.discords_after_prune = pool.TotalDiscords();

  // (5) Utility scoring + top-k (Alg. 4).
  timer.Reset();
  const auto scores =
      ScoreAllCandidates(pool, train, options.utility_mode, dabf.get(),
                         &engine);
  std::vector<Subsequence> shapelets =
      SelectTopKShapelets(pool, scores, options.shapelets_per_class);
  s.selection_seconds = timer.ElapsedSeconds();
  s.shapelets = shapelets.size();

  const EngineCounters counters = engine.counters();
  s.profiles_computed += counters.profiles_computed;
  s.stats_cache_hits += counters.stats_cache_hits;
  s.stats_cache_misses += counters.stats_cache_misses;
  AddPoolDelta(pool_before, s);
  return shapelets;
}

namespace {

std::unique_ptr<Classifier> MakeBackend(const IpsOptions& options) {
  switch (options.backend) {
    case TransformBackend::kLinearSvm:
      return std::make_unique<LinearSvm>(options.svm);
    case TransformBackend::kLogisticRegression:
      return std::make_unique<LogisticRegression>();
    case TransformBackend::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case TransformBackend::kNearestNeighbor:
      return std::make_unique<FeatureKnn>(1);
  }
  return nullptr;
}

}  // namespace

IpsClassifier::IpsClassifier(IpsOptions options) : options_(options) {}
IpsClassifier::~IpsClassifier() = default;

void IpsClassifier::Fit(const Dataset& train) {
  // Fresh engine per fit: pointer-keyed caches must not outlive the series
  // and shapelets they describe.
  engine_ = std::make_unique<DistanceEngine>(options_.num_threads);
  shapelets_ = DiscoverShapelets(train, options_, &stats_);
  IPS_CHECK_MSG(!shapelets_.empty(), "IPS discovered no shapelets");

  // Pool activity of the classifier-only stages (the transform's sharded
  // batch) on top of the discovery deltas recorded above.
  const ThreadPoolCounters pool_before = ThreadPool::Counters();
  Timer timer;
  const TransformedData transformed =
      ShapeletTransform(train, shapelets_, options_.transform_distance,
                        options_.num_threads, engine_.get());
  stats_.transform_seconds = timer.ElapsedSeconds();

  LabeledMatrix matrix;
  matrix.x = transformed.features;
  matrix.y = transformed.labels;
  backend_ = MakeBackend(options_);
  timer.Reset();
  backend_->Fit(matrix);
  stats_.backend_fit_seconds = timer.ElapsedSeconds();

  const EngineCounters counters = engine_->counters();
  stats_.profiles_computed += counters.profiles_computed;
  stats_.stats_cache_hits += counters.stats_cache_hits;
  stats_.stats_cache_misses += counters.stats_cache_misses;
  AddPoolDelta(pool_before, stats_);
}

int IpsClassifier::Predict(const TimeSeries& series) const {
  IPS_CHECK(!shapelets_.empty());
  // The engine caches only shapelet-side artefacts here; the query series
  // is never cached, so a caller-owned temporary is safe.
  return backend_->Predict(TransformSeries(
      series, shapelets_, options_.transform_distance, engine_.get()));
}

std::vector<int> IpsClassifier::PredictBatch(const Dataset& test) const {
  IPS_CHECK(!shapelets_.empty());
  // A call-local engine (ShapeletTransform builds one when none is passed)
  // rather than the member engine_: the batch path caches test-series
  // artefacts too, and test sets are caller-owned temporaries that must not
  // outlive their pointer-keyed cache entries. Rows are bitwise equal to
  // TransformSeries, so every label matches the per-series Predict loop.
  const TransformedData transformed = ShapeletTransform(
      test, shapelets_, options_.transform_distance, options_.num_threads);
  std::vector<int> out(transformed.features.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = backend_->Predict(transformed.features[i]);
  }
  return out;
}

}  // namespace ips
