// Plain-text persistence for discovered shapelets.
//
// Format (line-oriented, locale-independent):
//   ips-shapelets v1
//   <count>
//   <label> <series_index> <start> <length> v_0 v_1 ... v_{length-1}
//   ...
// Doubles are written with max_digits10 so a round trip is bit-exact.
// A saved shapelet set plus the training set is sufficient to rebuild a
// classifier (refit the transform + SVM), so no classifier state is stored.

#ifndef IPS_IPS_SERIALIZATION_H_
#define IPS_IPS_SERIALIZATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/time_series.h"

namespace ips {

/// Serialises `shapelets` to a string in the v1 format.
std::string SerializeShapelets(const std::vector<Subsequence>& shapelets);

/// Parses the v1 format; nullopt on any syntax error.
std::optional<std::vector<Subsequence>> DeserializeShapelets(
    const std::string& text);

/// Writes the serialisation to `path`. Returns false on I/O failure.
bool SaveShapelets(const std::vector<Subsequence>& shapelets,
                   const std::string& path);

/// Reads shapelets from `path`; nullopt on I/O or syntax failure.
std::optional<std::vector<Subsequence>> LoadShapelets(
    const std::string& path);

}  // namespace ips

#endif  // IPS_IPS_SERIALIZATION_H_
