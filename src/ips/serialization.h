// Plain-text persistence for discovered shapelets and whole runs.
//
// Shapelet format (line-oriented, locale-independent, unchanged since v1):
//   ips-shapelets v1
//   <count>
//   <label> <series_index> <start> <length> v_0 v_1 ... v_{length-1}
//   ...
// Doubles are written with max_digits10 so a round trip is bit-exact.
// A saved shapelet set plus the training set is sufficient to rebuild a
// classifier (refit the transform + SVM), so no classifier state is stored.
//
// Run format (one artifact: shapelets + metric + stats + trace):
//   ips-run v<major>.<minor>
//   metric <name>          (v2.1+: the run's MetricId by registered name)
//   stats <one-line JSON object, the IpsRunStats fields by name>
//   trace <one-line JSON object, obs/export.h's trace schema>
//   <the ips-shapelets v1 block verbatim>
// The version header is explicit (FormatVersion): loaders reject a major
// they do not speak and accept any minor within a known major, so fields
// can be added minor-compatibly. The metric line was added in v2.1; a v2.0
// artifact (no metric line) loads with the z-normalised Euclidean default,
// and an artifact naming a metric this build does not register is REJECTED
// -- its shapelet distances are meaningless under a different metric.
// JSON blocks use obs/json.h, the same schema the BENCH_*.json exporters
// emit.

#ifndef IPS_IPS_SERIALIZATION_H_
#define IPS_IPS_SERIALIZATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "ips/run_result.h"
#include "obs/json.h"

namespace ips {

/// Version stamp of the run artifact format.
struct FormatVersion {
  int major = 0;
  int minor = 0;

  friend bool operator==(const FormatVersion&, const FormatVersion&) = default;
};

/// The run format this library writes. Readers accept major == 2 with any
/// minor (additive fields only within a major). Minor 1 added the metric
/// line.
inline constexpr FormatVersion kRunFormatVersion{2, 1};

/// Serialises `shapelets` to a string in the v1 format.
std::string SerializeShapelets(const std::vector<Subsequence>& shapelets);

/// Parses the v1 format; nullopt on any syntax error.
std::optional<std::vector<Subsequence>> DeserializeShapelets(
    const std::string& text);

/// Writes the serialisation to `path`. Returns false on I/O failure.
bool SaveShapelets(const std::vector<Subsequence>& shapelets,
                   const std::string& path);

/// Reads shapelets from `path`; nullopt on I/O or syntax failure.
std::optional<std::vector<Subsequence>> LoadShapelets(
    const std::string& path);

/// IpsRunStats as a flat JSON object (field name -> value). Shared by the
/// run artifact below and exp_* benchmark emitters.
obs::JsonValue RunStatsToJson(const IpsRunStats& stats);

/// Inverse of RunStatsToJson; nullopt when a field is missing or of the
/// wrong type.
std::optional<IpsRunStats> RunStatsFromJson(const obs::JsonValue& json);

/// Serialises a whole run (shapelets + metric + stats + trace) in the run
/// format.
std::string SerializeRunResult(const RunResult& result);

/// Parses the run format; nullopt on syntax error, a major version this
/// reader does not speak, or a metric name this build does not register.
/// When `error` is non-null it receives a human-readable reason on
/// failure (and is cleared on success).
std::optional<RunResult> DeserializeRunResult(const std::string& text,
                                              std::string* error = nullptr);

/// Writes one run artifact to `path`. Returns false on I/O failure.
bool SaveRunResult(const RunResult& result, const std::string& path);

/// Reads a run artifact from `path`; nullopt on I/O or syntax failure,
/// with the reason in `*error` when provided.
std::optional<RunResult> LoadRunResult(const std::string& path,
                                       std::string* error = nullptr);

/// Reads a run artifact from an already-open file descriptor (read to EOF;
/// the fd is NOT closed). This is the serving layer's reload path: the
/// registry opens the artifact itself (so it can apply O_NOFOLLOW-style
/// policy) and hands the fd here, and socket-fed artifacts load without
/// touching the filesystem. nullopt on read or parse failure, with the
/// reason in `*error` when provided.
std::optional<RunResult> LoadRunResultFromFd(int fd,
                                             std::string* error = nullptr);

}  // namespace ips

#endif  // IPS_IPS_SERIALIZATION_H_
