// Configuration for the IPS shapelet-discovery pipeline (paper §IV-A
// parameter settings).

#ifndef IPS_IPS_CONFIG_H_
#define IPS_IPS_CONFIG_H_

#include <cstdint>

#include <vector>

#include "classify/svm.h"
#include "core/metric.h"
#include "dabf/dabf.h"
#include "transform/shapelet_transform.h"

namespace ips {

/// How candidate utilities (Defs. 11-13) are computed.
enum class UtilityMode {
  /// Exact Def. 4 distances, each pair computed on demand (no reuse).
  kExactNaive,
  /// Exact distances with computation reuse (CR): the symmetric pairwise
  /// distance matrix is computed once.
  kExactWithCr,
  /// Distribution transformation (DT) + CR: distances are replaced by
  /// ranked-bucket coordinate differences from the class DABF (Formula
  /// 15/16), computed in O(1) per pair. The paper's default.
  kDtCr,
};

/// Which classifier consumes the shapelet transform (§III-D adopts the
/// linear SVM; the paper's §I notes the transform also feeds Nearest
/// Neighbor and Naive Bayes).
enum class TransformBackend {
  kLinearSvm,
  kLogisticRegression,
  kNaiveBayes,
  kNearestNeighbor,
};

/// End-to-end IPS parameters.
struct IpsOptions {
  /// Number of instance samples per class (Q_N). Paper sweeps {10,20,50,100}.
  size_t sample_count = 10;
  /// Instances per sample (Q_S). Paper sweeps {2,3,4,5,10}.
  size_t sample_size = 3;
  /// Candidate lengths as fractions of the series length (paper:
  /// {0.1, 0.2, 0.3, 0.4, 0.5}).
  std::vector<double> length_ratios = {0.1, 0.2, 0.3, 0.4, 0.5};
  /// Motifs and discords extracted per (sample, length) pair. Algorithm 1
  /// takes the top-1 of each.
  size_t candidates_per_profile = 1;
  /// Profile neighbour order: 1 = the paper's instance profile (Def. 9's
  /// 1-NN); k > 1 annotates with the k-th smallest per-instance nearest
  /// distance -- the neighbor-profile variant of He et al. (ICDE 2020),
  /// more robust to a single chance match (see exp_ablation_profile).
  size_t profile_neighbors = 1;
  /// Final shapelets per class (top-k). Paper default 5.
  size_t shapelets_per_class = 5;

  /// Whether DABF pruning (Algorithm 3) runs; disabled for the Fig. 10(a)
  /// ablation, which falls back to the quadratic naive pruner.
  bool use_dabf_pruning = true;
  /// Utility computation mode; kDtCr is the paper's optimised path,
  /// kExactNaive the Fig. 10(b,c) ablation baseline.
  UtilityMode utility_mode = UtilityMode::kDtCr;

  /// DABF construction/query parameters.
  DabfOptions dabf;
  /// Classifier applied to the shapelet transform (paper default: SVM).
  TransformBackend backend = TransformBackend::kLinearSvm;
  /// SVM hyper-parameters (used when backend == kLinearSvm).
  SvmOptions svm;
  /// Distance metric (core/metric.h) the run is parameterised by: governs
  /// the instance-profile matrix-profile joins AND the shapelet-transform
  /// embedding (and prediction-time transforms). kZNormEuclidean is the
  /// matrix-profile / shapelet-transform literature's convention and the
  /// default; the recorded run artifact carries the metric (v2.1). Note
  /// candidate utility scoring, pruning and the DABF always use the
  /// paper's Def. 4 raw distance -- that is part of the IPS algorithm
  /// itself, not a profile choice.
  MetricId metric = MetricId::kZNormEuclidean;

  /// Whether the DistanceEngine's early-abandon lower-bound cascade
  /// (docs/pruning.md) serves min-alignment distance queries. Purely a
  /// performance knob: minima are bitwise identical either way, so
  /// discovery, transforms and predictions do not change. On by default;
  /// exists so A/B parity runs (and the early-abandon-off CI job) can pin
  /// it off per run. Builds with -DIPS_DISABLE_EARLY_ABANDON force it off.
  bool enable_early_abandon = true;

  /// Matrix-profile join scheduler knobs (docs/memory.md). All three are
  /// scheduling / memory-reuse choices only: candidate generation is
  /// bitwise identical for every combination (the fingerprint-diff CI
  /// matrix pins this). `mp_tile_size`: cache-blocking tile width of the
  /// all-pairs join in series -- 0 auto-tunes from series length, 1
  /// disables tiling (the historic lexicographic pair order), B >= 2 is an
  /// explicit width. `enable_mp_artifact_table`: serve the O(N^2) pair
  /// loop from an immutable precomputed artifact table (lock-free reads)
  /// instead of the engine's mutex-guarded caches.
  /// `enable_mp_arena`: serve sweep scratch from thread-local bump arenas
  /// instead of fresh heap vectors.
  size_t mp_tile_size = 0;
  bool enable_mp_artifact_table = true;
  bool enable_mp_arena = true;

  /// Worker threads for candidate generation and the shapelet transform:
  /// 1 = sequential, 0 = auto (HardwareThreads()). Parallel regions run on
  /// the persistent process-wide pool (util/thread_pool.h). Results are
  /// bitwise identical for every thread count: all randomness is drawn
  /// before the parallel regions (see docs/threading.md).
  size_t num_threads = 1;

  uint64_t seed = 42;
};

}  // namespace ips

#endif  // IPS_IPS_CONFIG_H_
