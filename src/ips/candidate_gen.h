// Shapelet candidate generation with the instance profile (Algorithm 1).
//
// For every class, Q_N samples of Q_S training instances are drawn (bagging
// [5]); for every candidate length, the sample's instance profile yields its
// top motif(s) -- frequent, class-typical patterns -- and top discord(s).
// Motifs are the shapelet candidates proper; discords participate only in
// inter-class utility scoring (Def. 12).

#ifndef IPS_IPS_CANDIDATE_GEN_H_
#define IPS_IPS_CANDIDATE_GEN_H_

#include <cstddef>

#include <map>
#include <span>
#include <vector>

#include "core/rng.h"
#include "core/time_series.h"
#include "ips/config.h"

namespace ips {

/// The per-class candidate pools Phi of Algorithm 1.
struct CandidatePool {
  std::map<int, std::vector<Subsequence>> motifs;
  std::map<int, std::vector<Subsequence>> discords;

  size_t TotalMotifs() const;
  size_t TotalDiscords() const;

  /// Motifs and discords of one class merged (the paper's Phi_C).
  std::vector<Subsequence> AllOfClass(int label) const;

  /// AllOfClass for every class with at least one surviving candidate of
  /// EITHER kind. The label set is the union of the motif and discord keys:
  /// a class can hold discords but no motifs (or vice versa) after pruning,
  /// and it must still be represented.
  std::map<int, std::vector<Subsequence>> MergedByClass() const;
};

/// Concrete candidate lengths for a dataset whose shortest series has
/// `series_length` points: each ratio is rounded to samples, clamped to
/// [4, series_length], and de-duplicated.
std::vector<size_t> ResolveCandidateLengths(
    size_t series_length, std::span<const double> ratios);

/// Runs Algorithm 1 over the training set. Classes with no training
/// instance produce empty pools. Requires a non-empty training set.
///
/// `options.num_threads` is split between sampling tasks (outer) and each
/// task's MatrixProfileEngine (inner: diagonal sharding within a join), so
/// the profile stage scales with cores even when there are few tasks. The
/// pool is identical for every thread count. Instrumentation goes through
/// the obs registries: the profile stage opens an "instance_profile" span
/// and the per-task engines publish the "mp.*" counters, both of which
/// IpsRunStats::FromRegistry folds into the run's stats view.
CandidatePool GenerateCandidates(const DatasetView& train,
                                 const IpsOptions& options, Rng& rng);

}  // namespace ips

#endif  // IPS_IPS_CANDIDATE_GEN_H_
