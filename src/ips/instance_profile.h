// Instance profile (paper Defs. 8-9).
//
// Where the matrix profile annotates windows of ONE series with their
// nearest neighbour in that same series, the instance profile annotates
// every window of every instance in a sample with its nearest neighbour
// among the windows of the OTHER instances of the sample (Def. 9's m' != m
// restriction). Computing it as pairwise AB-joins keeps the exclusion
// semantics exact and avoids spurious matches across concatenation
// boundaries.

#ifndef IPS_IPS_INSTANCE_PROFILE_H_
#define IPS_IPS_INSTANCE_PROFILE_H_

#include <cstddef>

#include <span>
#include <vector>

#include "core/metric.h"
#include "core/time_series.h"

namespace ips {

class MatrixProfileEngine;

/// The instance profile of a sample of instances for one window length.
/// Entry e annotates the window starting at `offsets[e]` of instance
/// `instances[e]` (an index into the sample) with its nearest-neighbour
/// distance `values[e]` among all windows of the sample's other instances.
struct InstanceProfile {
  std::vector<double> values;
  std::vector<size_t> instances;
  std::vector<size_t> offsets;

  size_t size() const { return values.size(); }
};

/// Computes the instance profile of `sample` at window length `window`.
/// Instances shorter than `window` contribute no windows. A single-instance
/// sample degenerates to its self-join matrix profile (with the default
/// exclusion zone), matching the MP-baseline extreme the paper identifies.
/// Requires at least one instance with length >= window.
///
/// `neighbors` generalises the annotation from the 1-NN distance (the
/// paper's Def. 9, the default) to the k-th smallest of the per-other-
/// instance nearest distances -- the neighbor-profile idea of He et al.
/// (ICDE 2020) that the paper's related work credits for the bagging view.
/// k is clamped to the number of other instances.
///
/// When `engine` is non-null the sample's unordered pairs are joined through
/// it -- one pair-symmetric QT sweep per pair, artefacts cached across
/// window lengths, diagonals sharded over the engine's threads. A null
/// engine uses a private serial engine. Either way the result is bitwise
/// identical to the historic pairwise-AbJoinProfile construction at every
/// thread count (tests/mp_engine_test.cc).
///
/// `metric` selects the distance the joins annotate with (core/metric.h);
/// the default keeps the matrix profile's z-normalised Euclidean.
InstanceProfile ComputeInstanceProfile(
    std::span<const SeriesView> sample, size_t window, size_t neighbors = 1,
    MatrixProfileEngine* engine = nullptr,
    MetricId metric = MetricId::kZNormEuclidean);

/// Convenience overload for owned samples: each TimeSeries is viewed, not
/// copied.
InstanceProfile ComputeInstanceProfile(
    std::span<const TimeSeries> sample, size_t window, size_t neighbors = 1,
    MatrixProfileEngine* engine = nullptr,
    MetricId metric = MetricId::kZNormEuclidean);

/// Positions of the `k` smallest (motifs) profile entries, with an
/// exclusion zone of half the window length between selections *within the
/// same instance*.
std::vector<size_t> InstanceProfileMotifs(const InstanceProfile& profile,
                                          size_t k, size_t window);

/// Positions of the `k` largest (discords) entries under the same rule.
std::vector<size_t> InstanceProfileDiscords(const InstanceProfile& profile,
                                            size_t k, size_t window);

}  // namespace ips

#endif  // IPS_IPS_INSTANCE_PROFILE_H_
