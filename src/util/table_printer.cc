#include "util/table_printer.h"

#include <cstdio>

#include <algorithm>

#include "util/check.h"

namespace ips {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  IPS_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  IPS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  append_row(out, header_);
  size_t rule = 0;
  for (size_t c = 0; c < width.size(); ++c) rule += width[c] + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += CsvEscape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  append(header_);
  for (const auto& row : rows_) append(row);
  return out;
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = ToCsv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

std::string TablePrinter::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace ips
