// Lightweight precondition-checking macros.
//
// The library does not use exceptions (Google C++ style). Unrecoverable
// programming errors -- violated preconditions, broken invariants -- abort the
// process with a diagnostic. Recoverable failures (e.g. missing files) are
// reported through return values instead.

#ifndef IPS_UTIL_CHECK_H_
#define IPS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ips::internal {

/// Prints a fatal-check diagnostic and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "IPS_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " -- " : "", msg);
  std::abort();
}

}  // namespace ips::internal

/// Aborts with a diagnostic when `cond` is false. Always evaluated (including
/// in release builds): the library's correctness contracts are cheap relative
/// to the numeric kernels they guard.
#define IPS_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ips::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                \
  } while (0)

/// IPS_CHECK with an explanatory message literal.
#define IPS_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ips::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                 \
  } while (0)

#endif  // IPS_UTIL_CHECK_H_
