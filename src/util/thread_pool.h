// Process-wide persistent thread pool behind ParallelFor (util/parallel.h).
//
// The pre-pool ParallelFor spawned and joined std::threads on every call,
// which on the short regions that dominate the Table V breakdown (one
// instance-profile join, one candidate batch) costs as much as the work
// itself. The pool keeps `HardwareThreads() - 1` workers alive for the
// process lifetime; a parallel region is executed by the calling thread
// plus however many workers are idle, with per-participant index shards,
// chunked claiming (one fetch_add per chunk instead of per item) and work
// stealing across shards once a participant's own shard is drained.
//
// Scheduling never changes results: callers keep the ParallelFor contract
// that writes are disjoint per index and randomness is pre-assigned, so
// which participant runs which index is unobservable. See docs/threading.md
// for the lifecycle, determinism rules and the scratch-slot contract.
//
// Lifecycle: lazily started on the first pooled region, shut down cleanly
// via std::atexit (workers joined; later regions run inline). A region
// submitted from inside a pool task runs inline instead of re-entering the
// pool (the nested-submission guard), so nested ParallelFor cannot
// deadlock or oversubscribe.

#ifndef IPS_UTIL_THREAD_POOL_H_
#define IPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace ips {

/// Monotonic process-wide counters, readable at any time (relaxed atomics
/// underneath). IpsRunStats records deltas of these across a run.
struct ThreadPoolCounters {
  /// Parallel regions executed on the pool (caller + workers).
  size_t regions_dispatched = 0;
  /// Regions run entirely on the calling thread: the serial fast path
  /// (num_threads <= 1 or count <= 1), the nested-submission guard, and
  /// regions submitted after shutdown or on single-core machines.
  size_t regions_inline = 0;
  /// Indices executed inside pooled regions (caller and workers).
  size_t tasks_run = 0;
  /// Chunks claimed from another participant's shard (work stealing).
  size_t chunk_steals = 0;
};

class ThreadPool {
 public:
  /// Type-erased region body: fn(ctx, index, slot). `slot` is the stable
  /// participant id in [0, shards) handed to ParallelForWorkers callers.
  using RegionFn = void (*)(void* ctx, size_t index, size_t slot);

  /// The process-wide pool, started on first use (workers =
  /// HardwareThreads() - 1, overridable via the IPS_THREAD_POOL_WORKERS
  /// environment variable) and registered for std::atexit shutdown.
  static ThreadPool& Instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Persistent workers (0 on single-core machines or after Shutdown; the
  /// calling thread always participates on top of this).
  size_t worker_count() const { return workers_.size(); }

  /// Runs fn(ctx, i, slot) for every i in [0, count) using at most
  /// `max_workers` concurrent participants including the calling thread.
  /// Blocks until every index has executed and no worker still touches
  /// region state. Slots are unique per region and < min(max_workers,
  /// count). Falls back to an inline loop (slot 0) when no workers exist
  /// or the pool has shut down.
  void Run(size_t count, size_t max_workers, RegionFn fn, void* ctx);

  /// True while the current thread is executing region indices (worker or
  /// caller). ParallelFor uses this as the nested-submission guard.
  static bool InRegion();

  /// Snapshot of the process-wide counters. Valid before first use (all
  /// zero) -- reading them never starts the pool.
  static ThreadPoolCounters Counters();

  /// Records an inline region in the counters without starting the pool.
  static void NoteInlineRegion();

  /// Joins all workers; later regions run inline. Idempotent, called from
  /// std::atexit. Must not be called from inside a region.
  void Shutdown();

 private:
  struct Region;

  explicit ThreadPool(size_t workers);
  ~ThreadPool() = default;  // never runs: leaky singleton, atexit joins

  void WorkerLoop();
  static void Participate(Region& region, size_t slot);

  std::mutex mu_;
  std::condition_variable cv_;
  // Active regions still accepting participants, in submission order.
  std::vector<Region*> regions_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace ips

#endif  // IPS_UTIL_THREAD_POOL_H_
