// Thread-local bump/reuse scratch arenas for the hot join paths.
//
// The matrix-profile sweeps used to allocate fresh std::vectors for every
// QT row, distance row and partial-minima buffer -- at 8+ threads the
// allocator (not the SIMD kernels) becomes the bottleneck of the O(N^2)
// all-pairs join (docs/memory.md). A ScratchArena replaces those with bump
// allocation out of thread-owned slabs that persist across parallel
// regions: the first sweep on a thread grows the slabs, every later sweep
// reuses them without touching malloc.
//
// Ownership model (the PR 4 pool contract): ParallelFor regions run on the
// persistent process-wide pool, whose worker threads are stable for the
// process lifetime. `ForCurrentThread()` therefore hands each pool worker
// (and the caller thread, which participates as slot 0) one arena that
// lives as long as the thread does -- "bound to the worker slot" without
// any slot bookkeeping. An arena is only ever *cursor-manipulated* by its
// owning thread; handing an allocated span's MEMORY to other threads (the
// per-chunk partial buffers of a join, written by workers and merged by
// the caller) is fine because the owning thread's Scope outlives the
// parallel region, and the region join/dispatch edges order the accesses.
//
// Scopes nest: a work item executed inline on the caller (the pool's
// nested-inline rule) opens an inner Scope after the call-level setup
// spans and rewinds exactly its own allocations.
//
// Every span is 64-byte aligned and 64-byte granular, so two consecutive
// allocations never share a cache line -- adjacent per-chunk partials can
// be written by different workers without false sharing.

#ifndef IPS_UTIL_SCRATCH_ARENA_H_
#define IPS_UTIL_SCRATCH_ARENA_H_

#include <cstddef>

#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ips {

class ScratchArena {
 public:
  /// Cache-line alignment and granularity of every allocation.
  static constexpr size_t kAlign = 64;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena. Stable for the thread's lifetime; pool
  /// workers are persistent, so their arenas warm up once per process.
  static ScratchArena& ForCurrentThread();

  /// RAII cursor mark: restores the arena to its construction-time cursor,
  /// releasing (for reuse, not to the heap) everything allocated since.
  /// Spans allocated inside the scope are dead once it ends.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena), slab_(arena.slab_), offset_(arena.offset_) {}
    ~Scope() {
      arena_.slab_ = slab_;
      arena_.offset_ = offset_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    size_t slab_;
    size_t offset_;
  };

  /// An uninitialised span of `count` Ts, valid until the enclosing Scope
  /// ends (or Reset()). T must be trivially destructible -- nothing runs
  /// when the cursor rewinds. Callers must write before reading; non-
  /// trivially-default-constructible Ts want placement new per element.
  template <typename T>
  std::span<T> Alloc(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kAlign);
    return {static_cast<T*>(AllocBytes(count * sizeof(T))), count};
  }

  /// Rewinds the cursor to empty without freeing slabs.
  void Reset() {
    slab_ = 0;
    offset_ = 0;
  }

  /// Total bytes of slab capacity currently held (monotone per thread
  /// until ReleaseSlabs).
  size_t capacity_bytes() const;

  /// Returns all slabs to the heap (tests; the cursor must be at a point
  /// where no live spans exist).
  void ReleaseSlabs();

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;  // 64-byte-aligned into storage
    size_t size = 0;            // usable bytes from base
  };

  void* AllocBytes(size_t bytes);

  std::vector<Slab> slabs_;
  size_t slab_ = 0;    // current slab index (may be == slabs_.size())
  size_t offset_ = 0;  // bump cursor within the current slab
};

}  // namespace ips

#endif  // IPS_UTIL_SCRATCH_ARENA_H_
