// Fixed-width text table printer for the benchmark harness. Each exp_* binary
// regenerates one table/figure of the paper; this formats the rows the same
// way the paper reports them.

#ifndef IPS_UTIL_TABLE_PRINTER_H_
#define IPS_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ips {

/// Collects rows of string cells and prints them as an aligned text table
/// with a header rule, suitable for terminal output and for diffing runs.
class TablePrinter {
 public:
  /// Sets the column headers. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends one row; the cell count must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Renders the table as RFC-4180 CSV (cells containing commas, quotes or
  /// newlines are quoted).
  std::string ToCsv() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Writes the CSV rendering to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  /// Formats a double with `digits` decimal places.
  static std::string Num(double value, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ips

#endif  // IPS_UTIL_TABLE_PRINTER_H_
