#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ips {
namespace {

// The pool's process-wide counters are registry metrics (obs/metrics.h):
// ThreadPoolCounters is a view over them, and run-level consumers
// (IpsRunStats::FromRegistry, the JSON exporters) read the same names.
// Bound once here so the hot paths pay one relaxed fetch_add per event and
// the inline fast paths of ParallelFor can record regions without starting
// the workers.
struct PoolMetrics {
  obs::Counter& regions_dispatched;
  obs::Counter& regions_inline;
  obs::Counter& tasks_run;
  obs::Counter& chunk_steals;
  obs::Histogram& region_items;
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
    return new PoolMetrics{registry.GetCounter("pool.regions_dispatched"),
                           registry.GetCounter("pool.regions_inline"),
                           registry.GetCounter("pool.tasks_run"),
                           registry.GetCounter("pool.chunk_steals"),
                           registry.GetHistogram("pool.region_items")};
  }();
  return *metrics;
}

// Nested-submission guard: > 0 while this thread executes region indices.
thread_local int t_region_depth = 0;

ThreadPool* g_pool = nullptr;
std::once_flag g_pool_once;

void ShutdownAtExit() { ThreadPool::Instance().Shutdown(); }

size_t DefaultWorkerCount() {
  // IPS_THREAD_POOL_WORKERS overrides the worker count -- deployments cap
  // it below the core count, and the concurrency tests raise it above so
  // single-core machines still exercise real cross-thread scheduling.
  if (const char* env = std::getenv("IPS_THREAD_POOL_WORKERS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<size_t>(hw) - 1 : 0;
}

}  // namespace

// One parallel region, stack-allocated in Run(). Shard s owns indices
// [bounds[s], bounds[s + 1]); cursor[s] is its next unclaimed index.
// Participants drain their own shard first (chunked fetch_add), then steal
// chunks from the other shards. `joined` (guarded by the pool mutex) hands
// out slot ids; `done` counts executed indices with release semantics so
// the caller's final acquire load sees every fn write; `exited` lets the
// caller wait until no worker still touches this object before returning.
struct ThreadPool::Region {
  RegionFn fn = nullptr;
  void* ctx = nullptr;
  size_t count = 0;
  size_t shards = 0;
  size_t chunk = 1;
  std::vector<size_t> bounds;
  std::vector<std::atomic<size_t>> cursor;
  size_t joined = 1;  // slot 0 is the caller; guarded by the pool mutex
  std::atomic<size_t> done{0};
  std::atomic<size_t> exited{0};
};

ThreadPool& ThreadPool::Instance() {
  std::call_once(g_pool_once, [] {
    g_pool = new ThreadPool(DefaultWorkerCount());
    std::atexit(ShutdownAtExit);
  });
  return *g_pool;
}

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::InRegion() { return t_region_depth > 0; }

ThreadPoolCounters ThreadPool::Counters() {
  const PoolMetrics& m = Metrics();
  ThreadPoolCounters c;
  c.regions_dispatched = m.regions_dispatched.Value();
  c.regions_inline = m.regions_inline.Value();
  c.tasks_run = m.tasks_run.Value();
  c.chunk_steals = m.chunk_steals.Value();
  return c;
}

void ThreadPool::NoteInlineRegion() {
  Metrics().regions_inline.Add(1);
}

void ThreadPool::Participate(Region& region, size_t slot) {
  ++t_region_depth;
  size_t executed = 0;
  size_t steals = 0;
  for (size_t k = 0; k < region.shards; ++k) {
    const size_t s = (slot + k) % region.shards;
    const size_t end = region.bounds[s + 1];
    for (;;) {
      const size_t begin =
          region.cursor[s].fetch_add(region.chunk, std::memory_order_relaxed);
      if (begin >= end) break;
      const size_t stop = std::min(begin + region.chunk, end);
      for (size_t i = begin; i < stop; ++i) region.fn(region.ctx, i, slot);
      executed += stop - begin;
      if (k != 0) ++steals;
      // Release: pairs with the caller's acquire load in Run() so fn's
      // writes happen-before the region is observed complete.
      region.done.fetch_add(stop - begin, std::memory_order_release);
    }
  }
  --t_region_depth;
  if (executed != 0) Metrics().tasks_run.Add(executed);
  if (steals != 0) Metrics().chunk_steals.Add(steals);
}

void ThreadPool::Run(size_t count, size_t max_workers, RegionFn fn,
                     void* ctx) {
  if (count == 0) return;
  const size_t shards = std::min(max_workers, count);
  if (worker_count() == 0 || shards <= 1) {
    NoteInlineRegion();
    ++t_region_depth;
    for (size_t i = 0; i < count; ++i) fn(ctx, i, 0);
    --t_region_depth;
    return;
  }

  Region region;
  region.fn = fn;
  region.ctx = ctx;
  region.count = count;
  region.shards = shards;
  // One claim per ~1/8th of a shard amortises the fetch_add while leaving
  // enough chunks for stealing to balance uneven item costs.
  region.chunk = std::max<size_t>(1, count / (shards * 8));
  region.bounds.resize(shards + 1);
  for (size_t s = 0; s <= shards; ++s) {
    region.bounds[s] = count * s / shards;
  }
  region.cursor = std::vector<std::atomic<size_t>>(shards);
  for (size_t s = 0; s < shards; ++s) {
    region.cursor[s].store(region.bounds[s], std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      NoteInlineRegion();
      ++t_region_depth;
      for (size_t i = 0; i < count; ++i) fn(ctx, i, 0);
      --t_region_depth;
      return;
    }
    regions_.push_back(&region);
  }
  cv_.notify_all();
  Metrics().regions_dispatched.Add(1);
  Metrics().region_items.Observe(count);
  IPS_SPAN("pool_region");

  Participate(region, 0);

  // The caller drained everything it could claim; in-flight chunks held by
  // workers are at most shards - 1 short tails, so spin-yield is cheaper
  // than a per-region condition variable.
  while (region.done.load(std::memory_order_acquire) < count) {
    std::this_thread::yield();
  }

  size_t joined_workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    regions_.erase(std::find(regions_.begin(), regions_.end(), &region));
    // No worker can join past this point; `joined` is frozen.
    joined_workers = region.joined - 1;
  }
  while (region.exited.load(std::memory_order_acquire) < joined_workers) {
    std::this_thread::yield();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Region* region = nullptr;
    size_t slot = 0;
    for (Region* candidate : regions_) {
      if (candidate->joined < candidate->shards &&
          candidate->done.load(std::memory_order_relaxed) <
              candidate->count) {
        region = candidate;
        slot = candidate->joined++;
        break;
      }
    }
    if (region == nullptr) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }
    lock.unlock();
    Participate(*region, slot);
    // Release: the caller's acquire load on `exited` must see this worker
    // fully out of the region before the Region object is destroyed.
    region->exited.fetch_add(1, std::memory_order_release);
    lock.lock();
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace ips
