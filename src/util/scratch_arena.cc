#include "util/scratch_arena.h"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"

namespace ips {
namespace {

// Arena traffic, surfaced through IpsRunStats / exp_table5_breakdown.
// `acquires` counts spans handed out; `slab_allocs` / `slab_bytes` count
// actual heap growth -- flat after warmup is the whole point.
struct ArenaMetrics {
  obs::Counter& acquires;
  obs::Counter& slab_allocs;
  obs::Counter& slab_bytes;
};

ArenaMetrics& Metrics() {
  static ArenaMetrics m{
      obs::MetricsRegistry::Instance().GetCounter("engine.arena.acquires"),
      obs::MetricsRegistry::Instance().GetCounter("engine.arena.slab_allocs"),
      obs::MetricsRegistry::Instance().GetCounter("engine.arena.slab_bytes"),
  };
  return m;
}

constexpr size_t kMinSlabBytes = size_t{64} * 1024;

size_t RoundUpToAlign(size_t bytes) {
  return (bytes + ScratchArena::kAlign - 1) & ~(ScratchArena::kAlign - 1);
}

}  // namespace

ScratchArena& ScratchArena::ForCurrentThread() {
  static thread_local ScratchArena arena;
  return arena;
}

void* ScratchArena::AllocBytes(size_t bytes) {
  bytes = RoundUpToAlign(std::max<size_t>(bytes, 1));
  Metrics().acquires.Add(1);
  while (true) {
    if (slab_ < slabs_.size()) {
      Slab& s = slabs_[slab_];
      if (s.size - offset_ >= bytes) {
        void* p = s.base + offset_;
        offset_ += bytes;
        return p;
      }
      // Skip to the next (always at-least-as-large) slab; the tail of the
      // current one is dead until the enclosing Scope rewinds past it.
      if (slab_ + 1 < slabs_.size()) {
        ++slab_;
        offset_ = 0;
        continue;
      }
    }
    // Grow: doubling keeps total slab count logarithmic in peak demand.
    const size_t last = slabs_.empty() ? 0 : slabs_.back().size;
    const size_t size = std::max({bytes, 2 * last, kMinSlabBytes});
    Slab s;
    s.storage = std::make_unique<std::byte[]>(size + kAlign);
    const auto raw = reinterpret_cast<uintptr_t>(s.storage.get());
    s.base = s.storage.get() + (RoundUpToAlign(raw) - raw);
    s.size = size;
    Metrics().slab_allocs.Add(1);
    Metrics().slab_bytes.Add(size + kAlign);
    slabs_.push_back(std::move(s));
    slab_ = slabs_.size() - 1;
    offset_ = 0;
  }
}

size_t ScratchArena::capacity_bytes() const {
  size_t total = 0;
  for (const Slab& s : slabs_) total += s.size;
  return total;
}

void ScratchArena::ReleaseSlabs() {
  slabs_.clear();
  slab_ = 0;
  offset_ = 0;
}

}  // namespace ips
