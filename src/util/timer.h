// Wall-clock timing utilities used by the benchmark harness and the
// instrumented IPS pipeline (Table V breakdown).

#ifndef IPS_UTIL_TIMER_H_
#define IPS_UTIL_TIMER_H_

#include <chrono>

namespace ips {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections; used to attribute
/// pipeline time to stages (candidate generation / pruning / selection).
class StageTimer {
 public:
  /// Adds `seconds` to the accumulated total.
  void Add(double seconds) { total_ += seconds; }

  /// Runs `fn` and adds its wall-clock duration to the total. Returns fn().
  template <typename Fn>
  auto Time(Fn&& fn) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      total_ += t.ElapsedSeconds();
    } else {
      auto result = fn();
      total_ += t.ElapsedSeconds();
      return result;
    }
  }

  /// Accumulated seconds.
  double total_seconds() const { return total_; }

  /// Clears the accumulated total.
  void Reset() { total_ = 0.0; }

 private:
  double total_ = 0.0;
};

}  // namespace ips

#endif  // IPS_UTIL_TIMER_H_
