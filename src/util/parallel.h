// Minimal data-parallel loop used by the optional multi-threaded discovery
// path (the paper's future-work direction of distributing IPS, realised
// here as shared-memory parallelism).
//
// Work items are claimed from an atomic counter, so uneven item costs
// balance across threads. Callers are responsible for making `fn` writes
// disjoint per index; the library keeps determinism by pre-assigning all
// randomness before the parallel region.

#ifndef IPS_UTIL_PARALLEL_H_
#define IPS_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace ips {

/// Runs fn(i) for every i in [0, count) on up to `num_threads` threads
/// (including the calling thread). num_threads <= 1 or count <= 1 runs
/// inline. Exceptions must not escape fn (the library does not use them).
template <typename Fn>
void ParallelFor(size_t count, size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const size_t workers = std::min(num_threads, count);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
}

/// Like ParallelFor, but fn also receives the slot index of the worker
/// running it: fn(i, worker) with worker in [0, min(num_threads, count)).
/// Lets callers hand each worker private scratch (e.g. the distance
/// engine's per-thread workspaces) without thread_local state. The same
/// claim-from-atomic-counter scheduling applies, so output determinism is
/// the caller's responsibility exactly as with ParallelFor: writes must be
/// disjoint per index and must not depend on the worker id.
template <typename Fn>
void ParallelForWorkers(size_t count, size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i, size_t{0});
    return;
  }

  const size_t workers = std::min(num_threads, count);
  std::atomic<size_t> next{0};
  auto worker = [&](size_t slot) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i, slot);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) {
    threads.emplace_back(worker, t + 1);
  }
  worker(0);
  for (auto& t : threads) t.join();
}

/// Number of hardware threads, at least 1.
inline size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace ips

#endif  // IPS_UTIL_PARALLEL_H_
