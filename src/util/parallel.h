// Data-parallel loops over the process-wide persistent thread pool
// (util/thread_pool.h). Originally the optional multi-threaded discovery
// path (the paper's future-work direction of distributing IPS, realised
// here as shared-memory parallelism); now the substrate for every parallel
// region in the library. See docs/threading.md for the full contract.
//
// Execution contract (identical for ParallelFor and ParallelForWorkers):
//
//  * Inline by design: `num_threads <= 1` or `count <= 1` runs fn on the
//    calling thread with no pool involvement -- a `count == 1` region with
//    an expensive fn is the caller's problem to shard, not the library's.
//  * Nested-inline rule: a region submitted from inside another region's
//    fn (i.e. on a pool worker, or on a caller thread while it executes
//    its own region's indices) runs inline instead of re-entering the
//    pool. Nested ParallelFor therefore cannot deadlock or oversubscribe;
//    callers that want inner parallelism must not wrap the outer loop in a
//    parallel region (see ips/candidate_gen.cc's outer/inner split).
//  * Scheduling is load-balanced (chunked claiming plus work stealing) and
//    therefore nondeterministic; results must not be. Callers make fn
//    writes disjoint per index and pre-assign all randomness before the
//    region, so outputs are bitwise identical for every thread count.
//  * Exceptions must not escape fn (the library does not use them).

#ifndef IPS_UTIL_PARALLEL_H_
#define IPS_UTIL_PARALLEL_H_

#include <cstddef>
#include <memory>
#include <thread>
#include <type_traits>

#include "util/thread_pool.h"

namespace ips {

namespace internal {

// Type-erases the loop body into ThreadPool::RegionFn. `Fn` may be
// const-qualified (a const lambda lvalue binds Fn to `const L&`).
template <typename Fn>
void* BodyContext(Fn& fn) {
  using Plain = std::remove_const_t<Fn>;
  return const_cast<Plain*>(std::addressof(fn));
}

}  // namespace internal

/// Runs fn(i) for every i in [0, count) on up to `num_threads` concurrent
/// threads (the calling thread plus idle pool workers). num_threads == 0
/// is reserved for callers' "auto" plumbing -- resolve it with
/// ResolveNumThreads before calling; here it runs inline like 1.
template <typename Fn>
void ParallelFor(size_t count, size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1 || ThreadPool::InRegion()) {
    ThreadPool::NoteInlineRegion();
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  using F = std::remove_reference_t<Fn>;
  ThreadPool::Instance().Run(
      count, num_threads,
      [](void* ctx, size_t i, size_t) { (*static_cast<F*>(ctx))(i); },
      internal::BodyContext(fn));
}

/// Like ParallelFor, but fn also receives the slot id of the participant
/// running it: fn(i, slot) with slot in [0, min(num_threads, count)), each
/// slot held by at most one thread per region. Lets callers hand each
/// participant private scratch (e.g. the distance engine's per-thread
/// workspaces) without thread_local state. Output determinism is the
/// caller's responsibility exactly as with ParallelFor: writes must be
/// disjoint per index and must not depend on the slot id.
template <typename Fn>
void ParallelForWorkers(size_t count, size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1 || ThreadPool::InRegion()) {
    ThreadPool::NoteInlineRegion();
    for (size_t i = 0; i < count; ++i) fn(i, size_t{0});
    return;
  }
  using F = std::remove_reference_t<Fn>;
  ThreadPool::Instance().Run(
      count, num_threads,
      [](void* ctx, size_t i, size_t slot) {
        (*static_cast<F*>(ctx))(i, slot);
      },
      internal::BodyContext(fn));
}

/// Number of hardware threads, at least 1.
inline size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

/// Maps the configuration convention `num_threads == 0` ("auto") to
/// HardwareThreads(); any other value passes through.
inline size_t ResolveNumThreads(size_t num_threads) {
  return num_threads == 0 ? HardwareThreads() : num_threads;
}

}  // namespace ips

#endif  // IPS_UTIL_PARALLEL_H_
