// Minimal data-parallel loop used by the optional multi-threaded discovery
// path (the paper's future-work direction of distributing IPS, realised
// here as shared-memory parallelism).
//
// Work items are claimed from an atomic counter, so uneven item costs
// balance across threads. Callers are responsible for making `fn` writes
// disjoint per index; the library keeps determinism by pre-assigning all
// randomness before the parallel region.

#ifndef IPS_UTIL_PARALLEL_H_
#define IPS_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace ips {

/// Runs fn(i) for every i in [0, count) on up to `num_threads` threads
/// (including the calling thread). num_threads <= 1 or count <= 1 runs
/// inline. Exceptions must not escape fn (the library does not use them).
template <typename Fn>
void ParallelFor(size_t count, size_t num_threads, Fn&& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const size_t workers = std::min(num_threads, count);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
}

/// Number of hardware threads, at least 1.
inline size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace ips

#endif  // IPS_UTIL_PARALLEL_H_
