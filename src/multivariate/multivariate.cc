#include "multivariate/multivariate.h"

#include <algorithm>

#include "util/check.h"

namespace ips {

void MultivariateDataset::Add(MultivariateTimeSeries series) {
  IPS_CHECK(!series.channels.empty());
  for (const auto& channel : series.channels) {
    IPS_CHECK(channel.size() == series.channels[0].size());
  }
  if (!series_.empty()) {
    IPS_CHECK(series.num_channels() == series_[0].num_channels());
  }
  series_.push_back(std::move(series));
}

size_t MultivariateDataset::num_channels() const {
  return series_.empty() ? 0 : series_[0].num_channels();
}

int MultivariateDataset::NumClasses() const {
  int mx = -1;
  for (const auto& s : series_) mx = std::max(mx, s.label);
  return mx + 1;
}

std::vector<int> MultivariateDataset::Labels() const {
  std::vector<int> out;
  out.reserve(series_.size());
  for (const auto& s : series_) out.push_back(s.label);
  return out;
}

Dataset MultivariateDataset::ChannelSlice(size_t c) const {
  IPS_CHECK(c < num_channels());
  Dataset out;
  for (const auto& s : series_) {
    out.Add(TimeSeries(s.channels[c], s.label));
  }
  return out;
}

}  // namespace ips
