// Multivariate time-series containers and channel utilities.
//
// The paper's conclusion names multivariate TSC as future work (following
// ShapeNet [24]); this module provides the containers and the channel-wise
// reduction that src/multivariate/mips.h builds the multivariate IPS
// classifier on.

#ifndef IPS_MULTIVARIATE_MULTIVARIATE_H_
#define IPS_MULTIVARIATE_MULTIVARIATE_H_

#include <cstddef>

#include <vector>

#include "core/time_series.h"

namespace ips {

/// A multivariate series: `channels[c]` is the univariate value sequence of
/// channel c; all channels have equal length.
struct MultivariateTimeSeries {
  std::vector<std::vector<double>> channels;
  int label = -1;

  size_t num_channels() const { return channels.size(); }
  size_t length() const { return channels.empty() ? 0 : channels[0].size(); }
};

/// A set of labelled multivariate series with a uniform channel count.
class MultivariateDataset {
 public:
  MultivariateDataset() = default;

  /// Appends a series; its channel count must match earlier series.
  void Add(MultivariateTimeSeries series);

  size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }
  const MultivariateTimeSeries& operator[](size_t i) const {
    return series_[i];
  }

  size_t num_channels() const;
  int NumClasses() const;
  std::vector<int> Labels() const;

  /// The univariate dataset formed by channel `c` of every series (labels
  /// preserved). Requires c < num_channels().
  Dataset ChannelSlice(size_t c) const;

 private:
  std::vector<MultivariateTimeSeries> series_;
};

}  // namespace ips

#endif  // IPS_MULTIVARIATE_MULTIVARIATE_H_
