#include "multivariate/mips.h"

#include "transform/shapelet_transform.h"
#include "util/check.h"

namespace ips {

void MultivariateIpsClassifier::Fit(const MultivariateDataset& train) {
  IPS_CHECK(!train.empty());
  const size_t channels = train.num_channels();
  channel_shapelets_.assign(channels, {});

  LabeledMatrix matrix;
  matrix.y = train.Labels();
  matrix.x.assign(train.size(), {});

  for (size_t c = 0; c < channels; ++c) {
    const Dataset slice = train.ChannelSlice(c);
    IpsOptions channel_options = options_;
    channel_options.seed = options_.seed + 0x9e3779b9u * (c + 1);
    channel_shapelets_[c] = DiscoverShapelets(slice, channel_options).shapelets;

    const TransformedData transformed = ShapeletTransform(
        slice, channel_shapelets_[c], options_.metric,
        options_.num_threads);
    for (size_t i = 0; i < train.size(); ++i) {
      matrix.x[i].insert(matrix.x[i].end(), transformed.features[i].begin(),
                         transformed.features[i].end());
    }
  }

  svm_ = LinearSvm(options_.svm);
  svm_.Fit(matrix);
}

std::vector<double> MultivariateIpsClassifier::Featurize(
    const MultivariateTimeSeries& series) const {
  std::vector<double> features;
  for (size_t c = 0; c < channel_shapelets_.size(); ++c) {
    const TimeSeries channel(series.channels[c], series.label);
    const std::vector<double> row = TransformSeries(
        channel, channel_shapelets_[c], options_.metric);
    features.insert(features.end(), row.begin(), row.end());
  }
  return features;
}

int MultivariateIpsClassifier::Predict(
    const MultivariateTimeSeries& series) const {
  IPS_CHECK(!channel_shapelets_.empty());
  IPS_CHECK(series.num_channels() == channel_shapelets_.size());
  return svm_.Predict(Featurize(series));
}

double MultivariateIpsClassifier::Accuracy(
    const MultivariateDataset& test) const {
  IPS_CHECK(!test.empty());
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (Predict(test[i]) == test[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

const std::vector<Subsequence>& MultivariateIpsClassifier::ChannelShapelets(
    size_t c) const {
  IPS_CHECK(c < channel_shapelets_.size());
  return channel_shapelets_[c];
}

}  // namespace ips
