// Multivariate IPS (M-IPS): the paper's future-work extension to
// multivariate TSC, built channel-wise in the spirit of ShapeNet [24]'s
// per-variable shapelets.
//
// Discovery runs univariate IPS independently on every channel (with
// decorrelated seeds); classification concatenates the per-channel shapelet
// transforms into one feature vector and trains a single linear SVM. A
// channel whose shapelets carry no signal contributes near-constant
// features, which the SVM's standardisation neutralises.

#ifndef IPS_MULTIVARIATE_MIPS_H_
#define IPS_MULTIVARIATE_MIPS_H_

#include <vector>

#include "classify/svm.h"
#include "ips/config.h"
#include "ips/pipeline.h"
#include "multivariate/multivariate.h"

namespace ips {

/// Multivariate IPS classifier.
class MultivariateIpsClassifier {
 public:
  explicit MultivariateIpsClassifier(IpsOptions options = {})
      : options_(options) {}

  /// Discovers shapelets per channel and trains the SVM on the concatenated
  /// transform. Requires a non-empty training set.
  void Fit(const MultivariateDataset& train);

  /// Predicts the class of a multivariate series. Requires Fit().
  int Predict(const MultivariateTimeSeries& series) const;

  /// Fraction of `test` predicted correctly.
  double Accuracy(const MultivariateDataset& test) const;

  /// Shapelets discovered on channel c (valid after Fit()).
  const std::vector<Subsequence>& ChannelShapelets(size_t c) const;

  size_t num_channels() const { return channel_shapelets_.size(); }

 private:
  std::vector<double> Featurize(const MultivariateTimeSeries& series) const;

  IpsOptions options_;
  std::vector<std::vector<Subsequence>> channel_shapelets_;
  LinearSvm svm_;
};

}  // namespace ips

#endif  // IPS_MULTIVARIATE_MIPS_H_
