// Synthetic multivariate dataset generator: each class plants its
// characteristic waveforms into a class-specific SUBSET of channels, so a
// multivariate classifier must find both the right channel and the right
// shape -- the structure ShapeNet-style methods exploit.

#ifndef IPS_MULTIVARIATE_MV_GENERATOR_H_
#define IPS_MULTIVARIATE_MV_GENERATOR_H_

#include <cstdint>

#include <string>

#include "multivariate/multivariate.h"

namespace ips {

/// Parameters of one synthetic multivariate dataset.
struct MvGeneratorSpec {
  std::string name = "mv";
  int num_classes = 2;
  size_t num_channels = 3;
  /// Channels per class that actually carry the class's pattern.
  size_t informative_channels = 1;
  size_t train_size = 20;
  size_t test_size = 60;
  size_t length = 96;
  double noise = 0.35;
  uint64_t seed = 0;  ///< 0 = derive from name.
};

/// A multivariate train/test pair.
struct MvTrainTestSplit {
  MultivariateDataset train;
  MultivariateDataset test;
};

/// Generates the dataset. Deterministic in (spec, seed).
MvTrainTestSplit GenerateMultivariateDataset(const MvGeneratorSpec& spec);

}  // namespace ips

#endif  // IPS_MULTIVARIATE_MV_GENERATOR_H_
