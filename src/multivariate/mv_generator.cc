#include "multivariate/mv_generator.h"

#include <cmath>

#include <algorithm>
#include <numbers>
#include <vector>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

namespace {

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Class-characteristic waveform over t in [0, 1]: a frequency/phase-coded
// burst distinct per (class, slot).
double ClassShape(int cls, int slot, double t) {
  const double freq = 2.0 + static_cast<double>((cls * 3 + slot) % 5);
  const double phase = 0.37 * static_cast<double>(cls + slot);
  return std::sin(2.0 * std::numbers::pi * freq * t + phase) *
         std::sin(std::numbers::pi * t);
}

}  // namespace

MvTrainTestSplit GenerateMultivariateDataset(const MvGeneratorSpec& spec) {
  IPS_CHECK(spec.num_classes >= 2);
  IPS_CHECK(spec.num_channels >= 1);
  IPS_CHECK(spec.informative_channels >= 1);
  IPS_CHECK(spec.informative_channels <= spec.num_channels);
  IPS_CHECK(spec.length >= 16);
  const uint64_t seed = spec.seed != 0 ? spec.seed : HashName(spec.name);
  Rng rng(seed);

  // Per-class: which channels carry the pattern, at which anchor.
  struct ClassPlan {
    std::vector<size_t> channels;
    std::vector<double> anchors;  // fraction of the free range, per channel
  };
  std::vector<ClassPlan> plans(static_cast<size_t>(spec.num_classes));
  for (auto& plan : plans) {
    plan.channels =
        rng.SampleWithoutReplacement(spec.num_channels,
                                     spec.informative_channels);
    for (size_t i = 0; i < plan.channels.size(); ++i) {
      plan.anchors.push_back(rng.Uniform(0.1, 0.9));
    }
  }

  const size_t pattern_len = std::max<size_t>(8, spec.length / 5);

  auto make_series = [&](int label) {
    MultivariateTimeSeries out;
    out.label = label;
    out.channels.assign(spec.num_channels,
                        std::vector<double>(spec.length, 0.0));
    // Background noise on every channel.
    for (auto& channel : out.channels) {
      for (double& v : channel) v = rng.Gaussian(0.0, spec.noise);
    }
    // Class patterns on the class's informative channels.
    const ClassPlan& plan = plans[static_cast<size_t>(label)];
    for (size_t i = 0; i < plan.channels.size(); ++i) {
      const size_t c = plan.channels[i];
      const double free = static_cast<double>(spec.length - pattern_len);
      const double jitter = rng.Uniform(-0.04, 0.04) *
                            static_cast<double>(spec.length);
      const size_t offset = static_cast<size_t>(
          std::clamp(plan.anchors[i] * free + jitter, 0.0, free));
      const double amplitude = 1.5 * (1.0 + rng.Uniform(-0.2, 0.2));
      for (size_t j = 0; j < pattern_len; ++j) {
        const double t = static_cast<double>(j) /
                         static_cast<double>(pattern_len - 1);
        out.channels[c][offset + j] +=
            amplitude * ClassShape(label, static_cast<int>(i), t);
      }
    }
    return out;
  };

  MvTrainTestSplit split;
  for (size_t i = 0; i < spec.train_size; ++i) {
    split.train.Add(make_series(static_cast<int>(i) % spec.num_classes));
  }
  for (size_t i = 0; i < spec.test_size; ++i) {
    split.test.Add(make_series(static_cast<int>(i) % spec.num_classes));
  }
  return split;
}

}  // namespace ips
