#include "lsh/lsh.h"

#include <cmath>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

std::string LshSchemeName(LshScheme scheme) {
  switch (scheme) {
    case LshScheme::kL2PStable:
      return "L2";
    case LshScheme::kCosine:
      return "Cosine";
    case LshScheme::kHamming:
      return "Hamming";
  }
  return "Unknown";
}

namespace {

// Shared Gaussian projection matrix: rows are the a_i vectors.
std::vector<std::vector<double>> DrawGaussianDirections(size_t num_hashes,
                                                        size_t dim,
                                                        Rng& rng) {
  std::vector<std::vector<double>> dirs(num_hashes,
                                        std::vector<double>(dim));
  for (auto& row : dirs) {
    for (auto& v : row) v = rng.Gaussian();
  }
  return dirs;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

class PStableL2Lsh final : public LshFamily {
 public:
  PStableL2Lsh(size_t input_dim, size_t num_hashes, double bucket_width,
               uint64_t seed)
      : LshFamily(input_dim, num_hashes), width_(bucket_width) {
    IPS_CHECK(bucket_width > 0.0);
    Rng rng(seed);
    dirs_ = DrawGaussianDirections(num_hashes, input_dim, rng);
    offsets_.resize(num_hashes);
    for (auto& b : offsets_) b = rng.Uniform(0.0, bucket_width);
  }

  std::vector<double> Project(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    std::vector<double> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) out[i] = Dot(dirs_[i], x);
    return out;
  }

  std::vector<int64_t> HashKey(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    std::vector<int64_t> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) {
      out[i] = static_cast<int64_t>(
          std::floor((Dot(dirs_[i], x) + offsets_[i]) / width_));
    }
    return out;
  }

 private:
  double width_;
  std::vector<std::vector<double>> dirs_;
  std::vector<double> offsets_;
};

class CosineLsh final : public LshFamily {
 public:
  CosineLsh(size_t input_dim, size_t num_hashes, uint64_t seed)
      : LshFamily(input_dim, num_hashes) {
    Rng rng(seed);
    dirs_ = DrawGaussianDirections(num_hashes, input_dim, rng);
  }

  std::vector<double> Project(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    std::vector<double> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) out[i] = Dot(dirs_[i], x);
    return out;
  }

  std::vector<int64_t> HashKey(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    std::vector<int64_t> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) {
      out[i] = Dot(dirs_[i], x) >= 0.0 ? 1 : 0;
    }
    return out;
  }

 private:
  std::vector<std::vector<double>> dirs_;
};

class HammingLsh final : public LshFamily {
 public:
  HammingLsh(size_t input_dim, size_t num_hashes, uint64_t seed)
      : LshFamily(input_dim, num_hashes) {
    Rng rng(seed);
    positions_ = rng.SampleWithReplacement(input_dim, num_hashes);
  }

  std::vector<double> Project(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    // Binarised coordinates at the sampled positions; inputs are
    // z-normalised so 0 is the natural threshold.
    std::vector<double> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) {
      out[i] = x[positions_[i]] >= 0.0 ? 1.0 : 0.0;
    }
    return out;
  }

  std::vector<int64_t> HashKey(std::span<const double> x) const override {
    IPS_CHECK(x.size() == input_dim_);
    std::vector<int64_t> out(num_hashes_);
    for (size_t i = 0; i < num_hashes_; ++i) {
      out[i] = x[positions_[i]] >= 0.0 ? 1 : 0;
    }
    return out;
  }

 private:
  std::vector<size_t> positions_;
};

}  // namespace

std::unique_ptr<LshFamily> MakeLshFamily(const LshParams& params) {
  IPS_CHECK(params.input_dim >= 1);
  IPS_CHECK(params.num_hashes >= 1);
  switch (params.scheme) {
    case LshScheme::kL2PStable:
      return std::make_unique<PStableL2Lsh>(params.input_dim,
                                            params.num_hashes,
                                            params.bucket_width, params.seed);
    case LshScheme::kCosine:
      return std::make_unique<CosineLsh>(params.input_dim, params.num_hashes,
                                         params.seed);
    case LshScheme::kHamming:
      return std::make_unique<HammingLsh>(params.input_dim,
                                          params.num_hashes, params.seed);
  }
  return nullptr;
}

}  // namespace ips
