#include "lsh/lsh_table.h"

#include <cmath>

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ips {

namespace {

double Norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

LshTable::LshTable(const LshFamily* family) : family_(family) {
  IPS_CHECK(family != nullptr);
}

size_t LshTable::Add(std::span<const double> x) {
  IPS_CHECK(!finalized_);
  projections_.push_back(family_->Project(x));
  keys_.push_back(family_->HashKey(x));
  item_norms_.push_back(Norm(projections_.back()));
  return projections_.size() - 1;
}

void LshTable::Finalize() {
  IPS_CHECK(!finalized_);
  IPS_CHECK(!projections_.empty());

  // Group items by key; accumulate centre sums in projection space.
  struct BucketAccum {
    std::vector<double> center_sum;
    size_t count = 0;
  };
  std::map<std::vector<int64_t>, BucketAccum> buckets;
  for (size_t i = 0; i < keys_.size(); ++i) {
    auto& b = buckets[keys_[i]];
    if (b.center_sum.empty()) b.center_sum.assign(family_->num_hashes(), 0.0);
    for (size_t d = 0; d < projections_[i].size(); ++d) {
      b.center_sum[d] += projections_[i][d];
    }
    ++b.count;
  }

  // Rank buckets by centre norm (ascending = closest to origin first).
  struct Entry {
    const std::vector<int64_t>* key;
    double norm;
    size_t count;
  };
  std::vector<Entry> entries;
  entries.reserve(buckets.size());
  for (const auto& [key, acc] : buckets) {
    std::vector<double> center(acc.center_sum);
    for (double& v : center) v /= static_cast<double>(acc.count);
    entries.push_back({&key, Norm(center), acc.count});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.norm < b.norm;
                   });

  bucket_sizes_.resize(entries.size());
  bucket_norms_.resize(entries.size());
  for (size_t r = 0; r < entries.size(); ++r) {
    key_to_rank_[*entries[r].key] = r;
    bucket_sizes_[r] = entries[r].count;
    bucket_norms_[r] = entries[r].norm;
  }

  item_rank_.resize(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    item_rank_[i] = key_to_rank_.at(keys_[i]);
  }
  finalized_ = true;
}

size_t LshTable::NumBuckets() const {
  IPS_CHECK(finalized_);
  return bucket_sizes_.size();
}

size_t LshTable::BucketRankOfItem(size_t id) const {
  IPS_CHECK(finalized_);
  IPS_CHECK(id < item_rank_.size());
  return item_rank_[id];
}

size_t LshTable::BucketSize(size_t rank) const {
  IPS_CHECK(finalized_);
  IPS_CHECK(rank < bucket_sizes_.size());
  return bucket_sizes_[rank];
}

double LshTable::BucketCenterNorm(size_t rank) const {
  IPS_CHECK(finalized_);
  IPS_CHECK(rank < bucket_norms_.size());
  return bucket_norms_[rank];
}

double LshTable::ProjectionNorm(std::span<const double> x) const {
  return Norm(family_->Project(x));
}

bool LshTable::ContainsKey(std::span<const double> x) const {
  IPS_CHECK(finalized_);
  return key_to_rank_.count(family_->HashKey(x)) > 0;
}

size_t LshTable::QueryBucketRank(std::span<const double> x) const {
  IPS_CHECK(finalized_);
  const std::vector<int64_t> key = family_->HashKey(x);
  const auto it = key_to_rank_.find(key);
  if (it != key_to_rank_.end()) return it->second;

  // Unseen key: nearest bucket by centre norm. bucket_norms_ is ascending.
  const double q = Norm(family_->Project(x));
  const auto lb = std::lower_bound(bucket_norms_.begin(), bucket_norms_.end(),
                                   q);
  if (lb == bucket_norms_.begin()) return 0;
  if (lb == bucket_norms_.end()) return bucket_norms_.size() - 1;
  const size_t hi = static_cast<size_t>(lb - bucket_norms_.begin());
  const size_t lo = hi - 1;
  return (q - bucket_norms_[lo]) <= (bucket_norms_[hi] - q) ? lo : hi;
}

}  // namespace ips
