// Locality-sensitive hash families (paper Def. 10, Table VII).
//
// Three schemes are provided:
//  * kL2PStable -- Datar et al.'s p-stable scheme under the L2 norm:
//    h_i(x) = floor((a_i . x + b_i) / w) with a_i ~ N(0, I). This is the
//    family the paper adopts.
//  * kCosine   -- random-hyperplane SimHash; the key is the sign pattern of
//    the projections.
//  * kHamming  -- bit sampling over a thresholded (sign) binarisation of the
//    input; included for the paper's Table VII comparison, where it performs
//    worst.
//
// All families hash fixed-dimension vectors; variable-length shapelet
// candidates are resampled to a fixed dimension by the DABF before hashing
// (see dabf/dabf.h). Each family exposes both the real-valued projection
// (used for bucket ranking and the DABF distance-to-origin statistic) and
// the quantised bucket key.

#ifndef IPS_LSH_LSH_H_
#define IPS_LSH_LSH_H_

#include <cstdint>

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ips {

/// Which LSH family to use.
enum class LshScheme { kL2PStable, kCosine, kHamming };

/// Human-readable scheme name ("L2", "Cosine", "Hamming").
std::string LshSchemeName(LshScheme scheme);

/// A concrete LSH family: `num_hashes` hash functions over `input_dim`
/// dimensional vectors.
class LshFamily {
 public:
  virtual ~LshFamily() = default;

  /// Real-valued projection of x (one value per hash function, before
  /// quantisation). The DABF's distance-to-origin statistic is the L2 norm
  /// of this vector.
  virtual std::vector<double> Project(std::span<const double> x) const = 0;

  /// Quantised bucket key of x (one integer per hash function).
  virtual std::vector<int64_t> HashKey(std::span<const double> x) const = 0;

  size_t input_dim() const { return input_dim_; }
  size_t num_hashes() const { return num_hashes_; }

 protected:
  LshFamily(size_t input_dim, size_t num_hashes)
      : input_dim_(input_dim), num_hashes_(num_hashes) {}

  size_t input_dim_;
  size_t num_hashes_;
};

/// Parameters for MakeLshFamily.
struct LshParams {
  LshScheme scheme = LshScheme::kL2PStable;
  size_t input_dim = 32;
  size_t num_hashes = 8;
  /// Bucket width w of the p-stable scheme (ignored by the other schemes).
  double bucket_width = 1.0;
  uint64_t seed = 7;
};

/// Constructs a family with freshly drawn random projections.
std::unique_ptr<LshFamily> MakeLshFamily(const LshParams& params);

}  // namespace ips

#endif  // IPS_LSH_LSH_H_
