// LSH bucket table: items hashed by an LshFamily, grouped into buckets, with
// buckets ranked by the distance between their centre (in projection space)
// and the origin -- step (2) of the paper's DABF construction (Fig. 7).

#ifndef IPS_LSH_LSH_TABLE_H_
#define IPS_LSH_LSH_TABLE_H_

#include <cstddef>

#include <map>
#include <span>
#include <vector>

#include "lsh/lsh.h"

namespace ips {

/// Groups projected items into LSH buckets and ranks the buckets by the L2
/// norm of their centre. After Finalize():
///  * every item has a bucket rank in [0, NumBuckets());
///  * an arbitrary query vector can be mapped to the rank of the bucket it
///    hits (or, for an unseen key, the bucket whose centre norm is nearest
///    to the query's projection norm).
///
/// The ranked bucket index is the scalar "coordinate" used by the DT
/// optimisation (paper Formula 15/16).
class LshTable {
 public:
  /// `family` must outlive the table.
  explicit LshTable(const LshFamily* family);

  /// Hashes and stores an item. Returns its item id. Must be called before
  /// Finalize().
  size_t Add(std::span<const double> x);

  /// Builds buckets and ranks them. Must be called exactly once, after all
  /// Add() calls; requires at least one item.
  void Finalize();

  size_t NumItems() const { return projections_.size(); }
  size_t NumBuckets() const;

  /// Rank (0 = closest bucket centre to the origin) of the bucket holding
  /// item `id`. Requires Finalize().
  size_t BucketRankOfItem(size_t id) const;

  /// Number of items in the bucket of rank `rank`. Requires Finalize().
  size_t BucketSize(size_t rank) const;

  /// L2 norm of the centre of the bucket of rank `rank`. Requires Finalize().
  double BucketCenterNorm(size_t rank) const;

  /// Projection-space L2 norm of an arbitrary query (its distance to the
  /// origin, the DABF statistic).
  double ProjectionNorm(std::span<const double> x) const;

  /// Bucket rank an arbitrary query maps to: the rank of its exact bucket
  /// when its key was seen during construction, otherwise the rank of the
  /// bucket whose centre norm is closest to the query's projection norm
  /// (O(log B) search). Requires Finalize().
  size_t QueryBucketRank(std::span<const double> x) const;

  /// Whether the query's exact hash key was seen during construction --
  /// the bloom-filter membership bit ("possibly close to a stored
  /// element"). Requires Finalize().
  bool ContainsKey(std::span<const double> x) const;

  /// Distance-to-origin statistic of every stored item (used to fit the
  /// DABF distribution). Requires Finalize().
  const std::vector<double>& item_norms() const { return item_norms_; }

 private:
  const LshFamily* family_;
  bool finalized_ = false;

  std::vector<std::vector<double>> projections_;  // per item
  std::vector<std::vector<int64_t>> keys_;        // per item
  std::vector<double> item_norms_;                // per item

  std::map<std::vector<int64_t>, size_t> key_to_rank_;
  std::vector<size_t> item_rank_;        // per item
  std::vector<size_t> bucket_sizes_;     // per rank
  std::vector<double> bucket_norms_;     // per rank, ascending
};

}  // namespace ips

#endif  // IPS_LSH_LSH_TABLE_H_
