#include "classify/logistic.h"

#include <cmath>

#include <algorithm>

#include "util/check.h"

namespace ips {

namespace {

double SigmoidStable(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  IPS_CHECK(d >= 1);
  const int num_classes = data.NumClasses();

  // Standardisation statistics.
  feature_means_.assign(d, 0.0);
  feature_stds_.assign(d, 0.0);
  for (const auto& row : data.x) {
    for (size_t j = 0; j < d; ++j) feature_means_[j] += row[j];
  }
  for (double& m : feature_means_) m /= static_cast<double>(n);
  for (const auto& row : data.x) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - feature_means_[j];
      feature_stds_[j] += diff * diff;
    }
  }
  for (double& s : feature_stds_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }

  std::vector<std::vector<double>> xs(n, std::vector<double>(d + 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      xs[i][j] = (data.x[i][j] - feature_means_[j]) / feature_stds_[j];
    }
    xs[i][d] = 1.0;
  }

  weights_.assign(static_cast<size_t>(num_classes),
                  std::vector<double>(d + 1, 0.0));
  for (int c = 0; c < num_classes; ++c) {
    auto& w = weights_[static_cast<size_t>(c)];
    for (size_t iter = 0; iter < options_.max_iters; ++iter) {
      std::vector<double> grad(d + 1, 0.0);
      for (size_t i = 0; i < n; ++i) {
        double z = 0.0;
        for (size_t j = 0; j <= d; ++j) z += w[j] * xs[i][j];
        const double err =
            SigmoidStable(z) - (data.y[i] == c ? 1.0 : 0.0);
        for (size_t j = 0; j <= d; ++j) grad[j] += err * xs[i][j];
      }
      for (size_t j = 0; j <= d; ++j) {
        grad[j] = grad[j] / static_cast<double>(n) +
                  (j < d ? options_.lambda * w[j] : 0.0);
        w[j] -= options_.learning_rate * grad[j];
      }
    }
  }
}

std::vector<double> LogisticRegression::Standardize(
    std::span<const double> features) const {
  IPS_CHECK(features.size() == feature_means_.size());
  std::vector<double> out(features.size() + 1);
  for (size_t j = 0; j < features.size(); ++j) {
    out[j] = (features[j] - feature_means_[j]) / feature_stds_[j];
  }
  out[features.size()] = 1.0;
  return out;
}

int LogisticRegression::Predict(std::span<const double> features) const {
  IPS_CHECK(!weights_.empty());
  const std::vector<double> xs = Standardize(features);
  int best = 0;
  double best_z = -1e300;
  for (int c = 0; c < num_classes(); ++c) {
    const auto& w = weights_[static_cast<size_t>(c)];
    double z = 0.0;
    for (size_t j = 0; j < xs.size(); ++j) z += w[j] * xs[j];
    if (z > best_z) {
      best_z = z;
      best = c;
    }
  }
  return best;
}

}  // namespace ips
