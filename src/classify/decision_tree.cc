#include "classify/decision_tree.h"

#include <cmath>

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ips {

double Entropy(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

void DecisionTree::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  nodes_.clear();
  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  Grow(data, indices, 0, data.NumClasses());
}

int DecisionTree::Grow(const LabeledMatrix& data,
                       std::vector<size_t>& indices, size_t depth,
                       int num_classes) {
  std::vector<size_t> counts(static_cast<size_t>(num_classes), 0);
  for (size_t i : indices) ++counts[static_cast<size_t>(data.y[i])];
  const int majority = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const double parent_entropy = Entropy(counts, indices.size());

  auto make_leaf = [&]() {
    Node leaf;
    leaf.label = majority;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (parent_entropy <= 0.0 || depth >= options_.max_depth ||
      indices.size() < 2 * options_.min_samples_leaf) {
    return make_leaf();
  }

  // Best information-gain split over all features.
  const size_t d = data.dim();
  int best_feature = -1;
  double best_threshold = 0.0;
  // Slightly below the threshold so a gain of exactly min_gain qualifies.
  double best_gain = options_.min_gain - 1e-15;

  std::vector<std::pair<double, int>> column(indices.size());
  std::vector<size_t> left_counts(static_cast<size_t>(num_classes));
  for (size_t f = 0; f < d; ++f) {
    for (size_t k = 0; k < indices.size(); ++k) {
      column[k] = {data.x[indices[k]][f], data.y[indices[k]]};
    }
    std::sort(column.begin(), column.end());

    std::fill(left_counts.begin(), left_counts.end(), size_t{0});
    for (size_t k = 0; k + 1 < column.size(); ++k) {
      ++left_counts[static_cast<size_t>(column[k].second)];
      if (column[k].first >= column[k + 1].first) continue;  // no boundary
      const size_t nl = k + 1;
      const size_t nr = column.size() - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
        continue;
      }
      std::vector<size_t> right_counts(counts);
      for (size_t c = 0; c < right_counts.size(); ++c) {
        right_counts[c] -= left_counts[c];
      }
      const double child_entropy =
          (static_cast<double>(nl) * Entropy(left_counts, nl) +
           static_cast<double>(nr) * Entropy(right_counts, nr)) /
          static_cast<double>(column.size());
      const double gain = parent_entropy - child_entropy;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[k].first + column[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    if (data.x[i][static_cast<size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  IPS_CHECK(!left_idx.empty() && !right_idx.empty());

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const int self = static_cast<int>(nodes_.size() - 1);
  const int left = Grow(data, left_idx, depth + 1, num_classes);
  const int right = Grow(data, right_idx, depth + 1, num_classes);
  nodes_[static_cast<size_t>(self)].left = left;
  nodes_[static_cast<size_t>(self)].right = right;
  return self;
}

int DecisionTree::Predict(std::span<const double> features) const {
  IPS_CHECK(!nodes_.empty());
  // The root is node 0: Grow() pushes the root before its subtrees.
  size_t node = 0;
  while (!nodes_[node].IsLeaf()) {
    const Node& n = nodes_[node];
    node = static_cast<size_t>(
        features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right);
  }
  return nodes_[node].label;
}

}  // namespace ips
