#include "classify/classifier.h"

#include <algorithm>

#include "util/check.h"

namespace ips {

int LabeledMatrix::NumClasses() const {
  int mx = -1;
  for (int label : y) mx = std::max(mx, label);
  return mx + 1;
}

double Classifier::Accuracy(const LabeledMatrix& data) const {
  IPS_CHECK(!data.x.empty());
  size_t correct = 0;
  for (size_t i = 0; i < data.x.size(); ++i) {
    if (Predict(data.x[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.x.size());
}

std::vector<int> SeriesClassifier::PredictBatch(
    const DatasetView& test) const {
  std::vector<int> out(test.size());
  for (size_t i = 0; i < test.size(); ++i) out[i] = Predict(test.At(i));
  return out;
}

double SeriesClassifier::Accuracy(const DatasetView& test) const {
  IPS_CHECK(!test.empty());
  const std::vector<int> predicted = PredictBatch(test);
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (predicted[i] == test.At(i).label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace ips
