// Multinomial-by-one-vs-rest logistic regression over feature vectors,
// trained by full-batch gradient descent with L2 regularisation. An
// alternative back-end for the shapelet transform (the LTS classifier uses
// the same head over learned features).

#ifndef IPS_CLASSIFY_LOGISTIC_H_
#define IPS_CLASSIFY_LOGISTIC_H_

#include <cstdint>

#include <vector>

#include "classify/classifier.h"

namespace ips {

/// Logistic-regression hyper-parameters.
struct LogisticOptions {
  double learning_rate = 0.5;
  double lambda = 1e-3;  ///< L2 regularisation on the weights.
  size_t max_iters = 500;
};

/// One-vs-rest logistic regression with internal feature standardisation.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticOptions options = {})
      : options_(options) {}

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

  int num_classes() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<double> Standardize(std::span<const double> features) const;

  LogisticOptions options_;
  std::vector<std::vector<double>> weights_;  // per class, incl. bias
  std::vector<double> feature_means_;
  std::vector<double> feature_stds_;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_LOGISTIC_H_
