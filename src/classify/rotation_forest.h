// Rotation Forest (Rodriguez et al., TPAMI 2006) -- the RotF baseline of the
// paper's Table VI, applied (as in the TSC bake-off [2]) to the raw series
// values as a feature vector.
//
// Each ensemble member partitions the feature set into K disjoint subsets,
// runs PCA on a bootstrap sample of each subset, assembles the principal
// axes into a block-diagonal rotation matrix, and trains a decision tree on
// the rotated data. Prediction is by majority vote.

#ifndef IPS_CLASSIFY_ROTATION_FOREST_H_
#define IPS_CLASSIFY_ROTATION_FOREST_H_

#include <cstdint>

#include <vector>

#include "classify/classifier.h"
#include "classify/decision_tree.h"
#include "classify/linalg.h"

namespace ips {

/// Ensemble parameters.
struct RotationForestOptions {
  size_t num_trees = 10;
  size_t features_per_subset = 4;
  double bootstrap_fraction = 0.75;
  DecisionTreeOptions tree;
  uint64_t seed = 31;
};

/// Rotation Forest over dense feature vectors.
class RotationForest final : public Classifier {
 public:
  explicit RotationForest(RotationForestOptions options = {})
      : options_(options) {}

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Member {
    // Per-subset feature indices and the rotation loading for each subset:
    // rotated feature r of subset s = sum_i loadings[s][i][r] * x[subset[s][i]].
    std::vector<std::vector<size_t>> subsets;
    std::vector<std::vector<std::vector<double>>> loadings;
    DecisionTree tree;
  };

  std::vector<double> Rotate(const Member& member,
                             std::span<const double> features) const;

  RotationForestOptions options_;
  std::vector<Member> trees_;
  int num_classes_ = 0;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_ROTATION_FOREST_H_
