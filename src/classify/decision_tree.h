// Axis-aligned decision tree with information-gain splits (C4.5-style,
// binary thresholds). Base learner of the Rotation Forest baseline.

#ifndef IPS_CLASSIFY_DECISION_TREE_H_
#define IPS_CLASSIFY_DECISION_TREE_H_

#include <cstddef>

#include <memory>
#include <vector>

#include "classify/classifier.h"

namespace ips {

/// Tree growth parameters.
struct DecisionTreeOptions {
  size_t max_depth = 32;
  size_t min_samples_leaf = 1;
  /// Minimum information gain for a split. Gains equal to the threshold are
  /// accepted, so the default of 0 allows zero-gain splits (needed for
  /// XOR-like concepts where the first split alone has no gain).
  double min_gain = 0.0;
};

/// Entropy-based binary decision tree.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {})
      : options_(options) {}

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

  /// Number of nodes in the grown tree (diagnostic).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Internal node: feature/threshold and child indices. Leaf: label.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = -1;
    bool IsLeaf() const { return feature < 0; }
  };

  int Grow(const LabeledMatrix& data, std::vector<size_t>& indices,
           size_t depth, int num_classes);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
};

/// Shannon entropy (nats) of a label multiset given per-class counts and the
/// total. Exposed for testing.
double Entropy(const std::vector<size_t>& counts, size_t total);

}  // namespace ips

#endif  // IPS_CLASSIFY_DECISION_TREE_H_
