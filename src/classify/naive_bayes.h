// Gaussian naive Bayes over feature vectors -- one of the classic
// classifiers the paper's §I names as a shapelet-transform back-end
// ("Nearest Neighbor, Naive Bayes, and SVM").

#ifndef IPS_CLASSIFY_NAIVE_BAYES_H_
#define IPS_CLASSIFY_NAIVE_BAYES_H_

#include <vector>

#include "classify/classifier.h"

namespace ips {

/// Gaussian naive Bayes: per-class, per-feature normal likelihoods with a
/// variance floor, class priors from training frequencies.
class GaussianNaiveBayes final : public Classifier {
 public:
  GaussianNaiveBayes() = default;

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

  int num_classes() const { return static_cast<int>(log_priors_.size()); }

 private:
  std::vector<double> log_priors_;               // per class
  std::vector<std::vector<double>> means_;       // [class][feature]
  std::vector<std::vector<double>> variances_;   // [class][feature]
};

/// k-nearest-neighbour classifier in feature space (k=1 gives the "Nearest
/// Neighbor on the transform" back-end).
class FeatureKnn final : public Classifier {
 public:
  explicit FeatureKnn(size_t k = 1) : k_(k) {}

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

 private:
  size_t k_;
  LabeledMatrix train_;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_NAIVE_BAYES_H_
