#include "classify/nn.h"

#include <cmath>

#include <limits>

#include "core/distance.h"
#include "core/distance_engine.h"
#include "core/dtw.h"
#include "core/metric.h"
#include "util/check.h"

namespace ips {

OneNnEd::OneNnEd(MetricId metric) : metric_(metric) {}
OneNnEd::~OneNnEd() = default;

void OneNnEd::Fit(const DatasetView& train) {
  IPS_CHECK(!train.empty());
  // 1NN retains its training data beyond Fit: the one legitimate deep copy.
  train_ = train.Materialize();
  // Fresh engine: the old one's caches key on the previous train_'s buffers.
  engine_ = std::make_unique<DistanceEngine>(1);
}

int OneNnEd::Predict(SeriesView series) const {
  IPS_CHECK(!train_.empty());
  const bool default_metric = metric_ == MetricId::kRawSquaredEuclidean;
  double best = std::numeric_limits<double>::infinity();
  int label = train_[0].label;
  for (size_t i = 0; i < train_.size(); ++i) {
    const TimeSeries& cand = train_[i];
    double d;
    if (cand.length() == series.length()) {
      // The historic default skips the Def. 4 1/m factor: with equal
      // lengths it scales every candidate alike, so the ranking (and the
      // bake-off accuracy) is unchanged and the old behaviour is preserved
      // bitwise. Other metrics use their registered pairwise distance.
      d = default_metric
              ? SquaredEuclidean(series.view(), cand.view())
              : GetMetric(metric_).pairwise(series.view(), cand.view());
    } else {
      // cache_b: the train-side artefacts persist across Predict calls; the
      // query side is never cached, so the caller's temporary is safe.
      d = engine_->SubsequenceMinMetric(series.view(), cand.view(), metric_,
                                        /*cache_b=*/true);
    }
    if (d < best) {
      best = d;
      label = cand.label;
    }
  }
  return label;
}

void OneNnDtwCv::Fit(const DatasetView& train) {
  IPS_CHECK(!train.empty());
  std::vector<double> grid = candidates_;
  if (grid.empty()) {
    grid = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05,
            0.06, 0.07, 0.08, 0.09, 0.1, 0.15, 0.2};
  }

  size_t best_correct = 0;
  chosen_ = grid.front();
  for (double fraction : grid) {
    // Leave-one-out 1NN over the training set at this window.
    size_t correct = 0;
    for (size_t i = 0; i < train.size(); ++i) {
      const SeriesView query = train.At(i);
      const int window = static_cast<int>(std::ceil(
          fraction * static_cast<double>(query.length())));
      double best = std::numeric_limits<double>::infinity();
      int label = -1;
      for (size_t j = 0; j < train.size(); ++j) {
        if (j == i) continue;
        const SeriesView cand = train.At(j);
        if (cand.length() == query.length() &&
            LbKeogh(query.view(), cand.view(), window) >= best) {
          continue;
        }
        const double d = DtwDistance(query.view(), cand.view(), window);
        if (d < best) {
          best = d;
          label = cand.label;
        }
      }
      if (label == query.label) ++correct;
    }
    // Strictly-better keeps the smallest (cheapest) window on ties.
    if (correct > best_correct) {
      best_correct = correct;
      chosen_ = fraction;
    }
  }

  inner_ = OneNnDtw(chosen_);
  inner_.Fit(train);
}

int OneNnDtwCv::Predict(SeriesView series) const {
  return inner_.Predict(series);
}

void OneNnDtw::Fit(const DatasetView& train) {
  IPS_CHECK(!train.empty());
  train_ = train.Materialize();
}

int OneNnDtw::Predict(SeriesView series) const {
  IPS_CHECK(!train_.empty());
  int window = -1;
  if (window_fraction_ >= 0.0) {
    window = static_cast<int>(
        std::ceil(window_fraction_ * static_cast<double>(series.length())));
  }

  double best = std::numeric_limits<double>::infinity();
  int label = train_[0].label;
  for (size_t i = 0; i < train_.size(); ++i) {
    const TimeSeries& cand = train_[i];
    // LB_Keogh admissibly skips candidates that cannot beat the incumbent.
    if (window >= 0 && cand.length() == series.length() &&
        LbKeogh(series.view(), cand.view(), window) >= best) {
      continue;
    }
    const double d = DtwDistance(series.view(), cand.view(), window);
    if (d < best) {
      best = d;
      label = cand.label;
    }
  }
  return label;
}

}  // namespace ips
