#include "classify/naive_bayes.h"

#include <cmath>

#include <algorithm>
#include <numbers>

#include "util/check.h"

namespace ips {

void GaussianNaiveBayes::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  const int num_classes = data.NumClasses();

  std::vector<size_t> counts(static_cast<size_t>(num_classes), 0);
  means_.assign(static_cast<size_t>(num_classes),
                std::vector<double>(d, 0.0));
  variances_.assign(static_cast<size_t>(num_classes),
                    std::vector<double>(d, 0.0));

  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(data.y[i]);
    ++counts[c];
    for (size_t j = 0; j < d; ++j) means_[c][j] += data.x[i][j];
  }
  for (size_t c = 0; c < means_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (double& m : means_[c]) m /= static_cast<double>(counts[c]);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(data.y[i]);
    for (size_t j = 0; j < d; ++j) {
      const double diff = data.x[i][j] - means_[c][j];
      variances_[c][j] += diff * diff;
    }
  }

  // Variance floor: a small fraction of the global variance keeps empty or
  // constant features from producing infinite likelihood ratios.
  double global_var = 0.0;
  for (size_t c = 0; c < variances_.size(); ++c) {
    for (double v : variances_[c]) global_var += v;
  }
  global_var /= static_cast<double>(n) * static_cast<double>(d);
  const double floor = std::max(1e-9, 1e-3 * global_var);

  log_priors_.assign(static_cast<size_t>(num_classes), -1e300);
  for (size_t c = 0; c < variances_.size(); ++c) {
    if (counts[c] == 0) continue;
    log_priors_[c] = std::log(static_cast<double>(counts[c]) /
                              static_cast<double>(n));
    for (size_t j = 0; j < d; ++j) {
      variances_[c][j] =
          std::max(variances_[c][j] / static_cast<double>(counts[c]), floor);
    }
  }
}

int GaussianNaiveBayes::Predict(std::span<const double> features) const {
  IPS_CHECK(!log_priors_.empty());
  int best = 0;
  double best_score = -1e300;
  for (size_t c = 0; c < log_priors_.size(); ++c) {
    if (log_priors_[c] <= -1e299) continue;  // empty class
    double score = log_priors_[c];
    for (size_t j = 0; j < features.size(); ++j) {
      const double var = variances_[c][j];
      const double diff = features[j] - means_[c][j];
      score += -0.5 * std::log(2.0 * std::numbers::pi * var) -
               diff * diff / (2.0 * var);
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void FeatureKnn::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  IPS_CHECK(k_ >= 1);
  train_ = data;
}

int FeatureKnn::Predict(std::span<const double> features) const {
  IPS_CHECK(!train_.x.empty());
  // Distances to all training rows; partial sort for the k nearest.
  std::vector<std::pair<double, int>> dists(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < features.size(); ++j) {
      const double d = features[j] - train_.x[i][j];
      s += d * d;
    }
    dists[i] = {s, train_.y[i]};
  }
  const size_t k = std::min(k_, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<ptrdiff_t>(k),
                    dists.end());
  std::vector<size_t> votes(static_cast<size_t>(train_.NumClasses()), 0);
  for (size_t i = 0; i < k; ++i) {
    ++votes[static_cast<size_t>(dists[i].second)];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace ips
