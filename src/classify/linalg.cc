#include "classify/linalg.h"

#include <cmath>

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ips {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Covariance(const std::vector<std::vector<double>>& rows) {
  IPS_CHECK(!rows.empty());
  const size_t n = rows.size();
  const size_t d = rows.front().size();

  std::vector<double> mean(d, 0.0);
  for (const auto& row : rows) {
    IPS_CHECK(row.size() == d);
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  Matrix cov(d, d, 0.0);
  for (const auto& row : rows) {
    for (size_t a = 0; a < d; ++a) {
      const double da = row[a] - mean[a];
      for (size_t b = a; b < d; ++b) {
        cov.at(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1)
                             : 1.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov.at(a, b) /= denom;
      cov.at(b, a) = cov.at(a, b);
    }
  }
  return cov;
}

EigenResult JacobiEigenSymmetric(const Matrix& input, size_t max_sweeps) {
  IPS_CHECK(input.rows() == input.cols());
  const size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm for convergence.
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-20) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a.at(x, x) > a.at(y, y);
  });

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = a.at(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      result.eigenvectors.at(i, j) = v.at(i, order[j]);
    }
  }
  return result;
}

}  // namespace ips
