#include "classify/ensemble.h"

#include <algorithm>

#include "util/check.h"

namespace ips {

void VotingEnsemble::AddMember(std::unique_ptr<SeriesClassifier> member) {
  IPS_CHECK(member != nullptr);
  members_.push_back(std::move(member));
}

void VotingEnsemble::Fit(const DatasetView& train) {
  IPS_CHECK(!members_.empty());
  IPS_CHECK(!train.empty());
  num_classes_ = train.NumClasses();
  for (auto& member : members_) member->Fit(train);
}

int VotingEnsemble::Predict(SeriesView series) const {
  IPS_CHECK(!members_.empty());
  std::vector<size_t> votes(static_cast<size_t>(num_classes_), 0);
  std::vector<int> first_voter(static_cast<size_t>(num_classes_), -1);
  for (size_t m = 0; m < members_.size(); ++m) {
    const int label = members_[m]->Predict(series);
    IPS_CHECK(label >= 0 && label < num_classes_);
    ++votes[static_cast<size_t>(label)];
    if (first_voter[static_cast<size_t>(label)] < 0) {
      first_voter[static_cast<size_t>(label)] = static_cast<int>(m);
    }
  }
  // Majority; ties resolve to the label whose first voter is earliest.
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    const size_t cc = static_cast<size_t>(c);
    const size_t bb = static_cast<size_t>(best);
    if (votes[cc] > votes[bb] ||
        (votes[cc] == votes[bb] && votes[cc] > 0 &&
         first_voter[cc] < first_voter[bb])) {
      best = c;
    }
  }
  return best;
}

}  // namespace ips
