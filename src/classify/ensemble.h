// Majority-vote ensemble of series classifiers.
//
// The paper's strongest entries are ensembles (COTE, and COTE-IPS = COTE
// augmented with IPS). COTE itself bundles 35 classifiers across transform
// domains and is out of scope; this voting ensemble over the classifiers
// implemented in this repository (IPS + rotation forest + 1NN-DTW + Fast
// Shapelets, or any other combination) is the same augmentation mechanism
// at reproducible scale.

#ifndef IPS_CLASSIFY_ENSEMBLE_H_
#define IPS_CLASSIFY_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "classify/classifier.h"

namespace ips {

/// Majority vote over member SeriesClassifiers; ties resolve to the member
/// listed first among the tied labels' voters.
class VotingEnsemble final : public SeriesClassifier {
 public:
  VotingEnsemble() = default;

  /// Adds a member. Must be called before Fit().
  void AddMember(std::unique_ptr<SeriesClassifier> member);

  size_t num_members() const { return members_.size(); }

  /// Fits every member on `train`. Requires at least one member.
  void Fit(const DatasetView& train) override;

  /// Majority vote of the members' predictions.
  int Predict(SeriesView series) const override;

 private:
  std::vector<std::unique_ptr<SeriesClassifier>> members_;
  int num_classes_ = 0;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_ENSEMBLE_H_
