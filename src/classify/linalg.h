// Small dense linear-algebra kernels: covariance and a cyclic Jacobi
// symmetric eigensolver. Substrate for the PCA rotations of the Rotation
// Forest baseline.

#ifndef IPS_CLASSIFY_LINALG_H_
#define IPS_CLASSIFY_LINALG_H_

#include <cstddef>

#include <vector>

namespace ips {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sample covariance matrix of `rows` (observations x variables), with the
/// column means subtracted. Requires at least one row.
Matrix Covariance(const std::vector<std::vector<double>>& rows);

/// Eigen decomposition of a symmetric matrix by the cyclic Jacobi method.
/// eigenvalues are returned in descending order; eigenvectors.at(i, j) is
/// component i of the eigenvector for eigenvalues[j].
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};
EigenResult JacobiEigenSymmetric(const Matrix& a, size_t max_sweeps = 64);

}  // namespace ips

#endif  // IPS_CLASSIFY_LINALG_H_
