// Common classifier interfaces.
//
// Feature-space classifiers (SVM, decision tree, rotation forest) consume a
// LabeledMatrix -- e.g. the output of the shapelet transform or raw series
// values. Series classifiers (1NN-ED, 1NN-DTW) consume Datasets directly.

#ifndef IPS_CLASSIFY_CLASSIFIER_H_
#define IPS_CLASSIFY_CLASSIFIER_H_

#include <span>
#include <vector>

#include "core/time_series.h"

namespace ips {

/// Dense feature matrix with labels; row i is the feature vector of sample
/// i. Labels are dense class ids in [0, num_classes).
struct LabeledMatrix {
  std::vector<std::vector<double>> x;
  std::vector<int> y;

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x.front().size(); }
  int NumClasses() const;
};

/// Classifier over fixed-dimension feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the matrix. Requires at least one sample and one class.
  virtual void Fit(const LabeledMatrix& data) = 0;

  /// Predicts the class of a feature vector. Requires Fit().
  virtual int Predict(std::span<const double> features) const = 0;

  /// Fraction of `data` rows predicted correctly.
  double Accuracy(const LabeledMatrix& data) const;
};

/// Classifier over raw (possibly variable-length) time series.
class SeriesClassifier {
 public:
  virtual ~SeriesClassifier() = default;

  /// Trains on the dataset. Requires at least one series.
  virtual void Fit(const Dataset& train) = 0;

  /// Predicts the class of a series. Requires Fit().
  virtual int Predict(const TimeSeries& series) const = 0;

  /// Predicts every series of `test`; out[i] == Predict(test[i]) for all i.
  /// The default is exactly that loop; implementations may override with a
  /// batched path (IpsClassifier drives the whole set through one shapelet
  /// transform on worker threads) as long as labels stay identical.
  virtual std::vector<int> PredictBatch(const Dataset& test) const;

  /// Fraction of `test` series predicted correctly. Routed through
  /// PredictBatch, so batched implementations accelerate it for free.
  double Accuracy(const Dataset& test) const;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_CLASSIFIER_H_
