// Common classifier interfaces.
//
// Feature-space classifiers (SVM, decision tree, rotation forest) consume a
// LabeledMatrix -- e.g. the output of the shapelet transform or raw series
// values. Series classifiers (1NN-ED, 1NN-DTW) consume DatasetViews: any
// backing storage works, in-RAM or the out-of-core columnar store.

#ifndef IPS_CLASSIFY_CLASSIFIER_H_
#define IPS_CLASSIFY_CLASSIFIER_H_

#include <span>
#include <vector>

#include "core/time_series.h"

namespace ips {

/// Dense feature matrix with labels; row i is the feature vector of sample
/// i. Labels are dense class ids in [0, num_classes).
struct LabeledMatrix {
  std::vector<std::vector<double>> x;
  std::vector<int> y;

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x.front().size(); }
  int NumClasses() const;
};

/// Classifier over fixed-dimension feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the matrix. Requires at least one sample and one class.
  virtual void Fit(const LabeledMatrix& data) = 0;

  /// Predicts the class of a feature vector. Requires Fit().
  virtual int Predict(std::span<const double> features) const = 0;

  /// Fraction of `data` rows predicted correctly.
  double Accuracy(const LabeledMatrix& data) const;
};

/// Classifier over raw (possibly variable-length) time series.
class SeriesClassifier {
 public:
  virtual ~SeriesClassifier() = default;

  /// Trains on the dataset. Requires at least one series. Implementations
  /// that must retain training data beyond Fit (1NN) Materialize() it; the
  /// view itself is only guaranteed alive for the duration of the call.
  virtual void Fit(const DatasetView& train) = 0;

  /// Predicts the class of a series. Requires Fit(). TimeSeries converts
  /// implicitly.
  virtual int Predict(SeriesView series) const = 0;

  /// Predicts every series of `test`; out[i] == Predict(test[i]) for all i.
  /// The default is exactly that loop; implementations may override with a
  /// batched path (IpsClassifier drives the whole set through one shapelet
  /// transform on worker threads) as long as labels stay identical.
  virtual std::vector<int> PredictBatch(const DatasetView& test) const;

  /// Fraction of `test` series predicted correctly. Routed through
  /// PredictBatch, so batched implementations accelerate it for free.
  double Accuracy(const DatasetView& test) const;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_CLASSIFIER_H_
