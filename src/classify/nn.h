// Nearest-neighbour time-series classifiers: 1NN-ED and 1NN-DTW (paper
// Table II and the DTW_Rn_1NN column of Table VI).
//
// 1NN-DTW uses a Sakoe-Chiba band expressed as a fraction of the series
// length, with LB_Keogh pruning when query and candidate lengths match.

#ifndef IPS_CLASSIFY_NN_H_
#define IPS_CLASSIFY_NN_H_

#include <memory>

#include "classify/classifier.h"
#include "core/metric.h"
#include "core/time_series.h"

namespace ips {

class DistanceEngine;

/// 1-nearest-neighbour under a registered distance metric (core/metric.h),
/// whole-series Euclidean by default. Equal-length series compare with the
/// metric's pairwise distance; unequal lengths fall back to the sliding
/// subsequence minimum, routed through a DistanceEngine so train-side
/// prefix sums and FFTs are computed once and reused across Predict calls.
/// The engine (and its pointer-keyed caches) is rebuilt on every Fit.
class OneNnEd final : public SeriesClassifier {
 public:
  /// `metric` selects the comparison distance. The default is the Def. 4
  /// length-normalised squared Euclidean the bake-off's ED_1NN uses
  /// (monotone in plain Euclidean, so the neighbour ranking is identical).
  explicit OneNnEd(MetricId metric = MetricId::kRawSquaredEuclidean);
  ~OneNnEd() override;  // out of line: DistanceEngine is incomplete here

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

 private:
  MetricId metric_;
  Dataset train_;
  std::unique_ptr<DistanceEngine> engine_;
};

/// 1-nearest-neighbour under DTW with a Sakoe-Chiba band.
class OneNnDtw final : public SeriesClassifier {
 public:
  /// `window_fraction` is the band half-width as a fraction of the series
  /// length; a negative value means unconstrained DTW. The UCR convention of
  /// 0.1 (10% warping window) is the default.
  explicit OneNnDtw(double window_fraction = 0.1)
      : window_fraction_(window_fraction) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

 private:
  double window_fraction_;
  Dataset train_;
};

/// The bake-off's DTW_Rn_1NN: 1NN-DTW whose warping-window fraction is
/// LEARNED by leave-one-out cross-validation on the training set over a
/// candidate grid, instead of being fixed.
class OneNnDtwCv final : public SeriesClassifier {
 public:
  /// `candidates` are the window fractions searched; defaults to
  /// {0, 0.01, ..., 0.1, 0.15, 0.2} when empty. Ties resolve to the
  /// smallest (cheapest) window.
  explicit OneNnDtwCv(std::vector<double> candidates = {})
      : candidates_(std::move(candidates)) {}

  void Fit(const DatasetView& train) override;
  int Predict(SeriesView series) const override;

  /// The window fraction chosen by cross-validation (valid after Fit()).
  double chosen_window_fraction() const { return chosen_; }

 private:
  std::vector<double> candidates_;
  double chosen_ = 0.1;
  OneNnDtw inner_{0.1};
};

}  // namespace ips

#endif  // IPS_CLASSIFY_NN_H_
