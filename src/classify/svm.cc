#include "classify/svm.h"

#include <cmath>

#include <algorithm>
#include <numeric>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

namespace {

// Dual coordinate descent for the L1-loss (hinge) linear SVM:
//   min_w 1/2 ||w||^2 + C sum max(0, 1 - y_i w.x_i)
// over samples with binary labels y in {-1, +1}. Returns w. The bias is
// expected to be modelled by an appended constant feature.
std::vector<double> TrainBinary(const std::vector<std::vector<double>>& x,
                                const std::vector<int>& y,
                                const SvmOptions& options) {
  const size_t n = x.size();
  const size_t d = x.front().size();
  std::vector<double> w(d, 0.0);
  std::vector<double> alpha(n, 0.0);

  // Diagonal of Q: ||x_i||^2.
  std::vector<double> qd(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (double v : x[i]) s += v * v;
    qd[i] = s;
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(options.seed);

  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    rng.Shuffle(order);
    double max_pg = 0.0;
    for (size_t i : order) {
      if (qd[i] <= 0.0) continue;
      const double yi = static_cast<double>(y[i]);
      double wx = 0.0;
      for (size_t j = 0; j < d; ++j) wx += w[j] * x[i][j];
      const double g = yi * wx - 1.0;

      // Projected gradient.
      double pg = g;
      if (alpha[i] <= 0.0) {
        pg = std::min(g, 0.0);
      } else if (alpha[i] >= options.c) {
        pg = std::max(g, 0.0);
      }
      max_pg = std::max(max_pg, std::abs(pg));
      if (pg == 0.0) continue;

      const double old_alpha = alpha[i];
      alpha[i] = std::clamp(old_alpha - g / qd[i], 0.0, options.c);
      const double delta = (alpha[i] - old_alpha) * yi;
      if (delta != 0.0) {
        for (size_t j = 0; j < d; ++j) w[j] += delta * x[i][j];
      }
    }
    if (max_pg < options.tolerance) break;
  }
  return w;
}

}  // namespace

void LinearSvm::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  IPS_CHECK(d >= 1);
  const int num_classes = data.NumClasses();
  IPS_CHECK(num_classes >= 1);

  // Learn the standardisation.
  feature_means_.assign(d, 0.0);
  feature_stds_.assign(d, 0.0);
  for (const auto& row : data.x) {
    IPS_CHECK(row.size() == d);
    for (size_t j = 0; j < d; ++j) feature_means_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) feature_means_[j] /= static_cast<double>(n);
  for (const auto& row : data.x) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - feature_means_[j];
      feature_stds_[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    feature_stds_[j] = std::sqrt(feature_stds_[j] / static_cast<double>(n));
    if (feature_stds_[j] < 1e-12) feature_stds_[j] = 1.0;
  }

  // Standardised matrix with the bias feature appended.
  std::vector<std::vector<double>> xs(n, std::vector<double>(d + 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      xs[i][j] = (data.x[i][j] - feature_means_[j]) / feature_stds_[j];
    }
    xs[i][d] = 1.0;
  }

  weights_.assign(static_cast<size_t>(num_classes),
                  std::vector<double>(d + 1, 0.0));
  std::vector<int> binary(n);
  for (int c = 0; c < num_classes; ++c) {
    for (size_t i = 0; i < n; ++i) binary[i] = data.y[i] == c ? 1 : -1;
    SvmOptions per_class = options_;
    per_class.seed = options_.seed + static_cast<uint64_t>(c);
    weights_[static_cast<size_t>(c)] = TrainBinary(xs, binary, per_class);
  }
}

std::vector<double> LinearSvm::Standardize(
    std::span<const double> features) const {
  IPS_CHECK(features.size() == feature_means_.size());
  std::vector<double> out(features.size() + 1);
  for (size_t j = 0; j < features.size(); ++j) {
    out[j] = (features[j] - feature_means_[j]) / feature_stds_[j];
  }
  out[features.size()] = 1.0;
  return out;
}

double LinearSvm::DecisionValue(std::span<const double> features,
                                int label) const {
  IPS_CHECK(label >= 0 && label < num_classes());
  const std::vector<double> xs = Standardize(features);
  const auto& w = weights_[static_cast<size_t>(label)];
  double s = 0.0;
  for (size_t j = 0; j < xs.size(); ++j) s += w[j] * xs[j];
  return s;
}

int LinearSvm::Predict(std::span<const double> features) const {
  IPS_CHECK(!weights_.empty());
  const std::vector<double> xs = Standardize(features);
  int best = 0;
  double best_value = -1e300;
  for (int c = 0; c < num_classes(); ++c) {
    const auto& w = weights_[static_cast<size_t>(c)];
    double s = 0.0;
    for (size_t j = 0; j < xs.size(); ++j) s += w[j] * xs[j];
    if (s > best_value) {
      best_value = s;
      best = c;
    }
  }
  return best;
}

}  // namespace ips
