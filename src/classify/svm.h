// Linear-kernel SVM trained by dual coordinate descent (Hsieh et al., ICML
// 2008 -- the LIBLINEAR algorithm), with one-vs-rest reduction for
// multiclass. This is the classification back-end the paper applies to the
// shapelet-transformed data (§III-D "Remarks").
//
// Features are standardised internally (per-dimension mean/variance learned
// at Fit time) so shapelet distances of different scales are weighted
// comparably, and a bias term is learned via feature augmentation.

#ifndef IPS_CLASSIFY_SVM_H_
#define IPS_CLASSIFY_SVM_H_

#include <cstdint>

#include <vector>

#include "classify/classifier.h"

namespace ips {

/// Hyper-parameters of the linear SVM.
struct SvmOptions {
  double c = 1.0;           ///< Soft-margin penalty.
  size_t max_passes = 200;  ///< Maximum coordinate-descent epochs.
  double tolerance = 1e-4;  ///< Projected-gradient stopping tolerance.
  uint64_t seed = 13;       ///< Permutation seed.
};

/// One-vs-rest linear SVM.
class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(SvmOptions options = {}) : options_(options) {}

  void Fit(const LabeledMatrix& data) override;
  int Predict(std::span<const double> features) const override;

  /// Decision value of class `label` for a feature vector (w . x + b).
  double DecisionValue(std::span<const double> features, int label) const;

  int num_classes() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<double> Standardize(std::span<const double> features) const;

  SvmOptions options_;
  std::vector<std::vector<double>> weights_;  // per class, incl. bias weight
  std::vector<double> feature_means_;
  std::vector<double> feature_stds_;
};

}  // namespace ips

#endif  // IPS_CLASSIFY_SVM_H_
