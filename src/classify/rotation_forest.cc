#include "classify/rotation_forest.h"

#include <algorithm>
#include <numeric>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

void RotationForest::Fit(const LabeledMatrix& data) {
  IPS_CHECK(!data.x.empty());
  const size_t n = data.size();
  const size_t d = data.dim();
  IPS_CHECK(d >= 1);
  num_classes_ = data.NumClasses();
  trees_.clear();
  Rng rng(options_.seed);

  const size_t subset_size = std::max<size_t>(1, options_.features_per_subset);
  const size_t bootstrap_n = std::max<size_t>(
      2, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(n)));

  for (size_t t = 0; t < options_.num_trees; ++t) {
    Member member;

    // Random partition of the features into subsets of ~subset_size.
    std::vector<size_t> perm(d);
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(perm);
    for (size_t start = 0; start < d; start += subset_size) {
      const size_t end = std::min(d, start + subset_size);
      member.subsets.emplace_back(perm.begin() + static_cast<ptrdiff_t>(start),
                                  perm.begin() + static_cast<ptrdiff_t>(end));
    }

    // PCA per subset on a bootstrap sample.
    for (const auto& subset : member.subsets) {
      const std::vector<size_t> sample =
          rng.SampleWithReplacement(n, bootstrap_n);
      std::vector<std::vector<double>> sub_rows(sample.size());
      for (size_t r = 0; r < sample.size(); ++r) {
        sub_rows[r].resize(subset.size());
        for (size_t c = 0; c < subset.size(); ++c) {
          sub_rows[r][c] = data.x[sample[r]][subset[c]];
        }
      }
      const EigenResult eig = JacobiEigenSymmetric(Covariance(sub_rows));

      // loadings[i][r]: weight of input feature i on rotated axis r.
      std::vector<std::vector<double>> loading(
          subset.size(), std::vector<double>(subset.size()));
      for (size_t i = 0; i < subset.size(); ++i) {
        for (size_t r = 0; r < subset.size(); ++r) {
          loading[i][r] = eig.eigenvectors.at(i, r);
        }
      }
      member.loadings.push_back(std::move(loading));
    }

    // Train the tree on the fully rotated training data.
    LabeledMatrix rotated;
    rotated.y = data.y;
    rotated.x.resize(n);
    for (size_t i = 0; i < n; ++i) {
      rotated.x[i] = Rotate(member, data.x[i]);
    }
    member.tree = DecisionTree(options_.tree);
    member.tree.Fit(rotated);
    trees_.push_back(std::move(member));
  }
}

std::vector<double> RotationForest::Rotate(
    const Member& member, std::span<const double> features) const {
  std::vector<double> out;
  for (size_t s = 0; s < member.subsets.size(); ++s) {
    const auto& subset = member.subsets[s];
    const auto& loading = member.loadings[s];
    for (size_t r = 0; r < subset.size(); ++r) {
      double v = 0.0;
      for (size_t i = 0; i < subset.size(); ++i) {
        v += loading[i][r] * features[subset[i]];
      }
      out.push_back(v);
    }
  }
  return out;
}

int RotationForest::Predict(std::span<const double> features) const {
  IPS_CHECK(!trees_.empty());
  std::vector<size_t> votes(static_cast<size_t>(num_classes_), 0);
  for (const Member& member : trees_) {
    const std::vector<double> rotated = Rotate(member, features);
    ++votes[static_cast<size_t>(member.tree.Predict(rotated))];
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace ips
