// Streaming UCR -> ips-store conversion: two row-callback passes over the
// split file (data/ucr_loader.h), so peak memory is one chunk buffer plus
// one row no matter how large the input is. Pass 1 collects raw labels and
// remaps them densely in sorted order (LoadUcrFile's convention, so a
// store import classifies identically to an in-RAM load); pass 2 appends
// each series to a StoreWriter.

#ifndef IPS_STORE_UCR_IMPORT_H_
#define IPS_STORE_UCR_IMPORT_H_

#include <string>

#include "store/store_writer.h"

namespace ips::store {

struct ImportResult {
  uint64_t series = 0;
  uint64_t chunks = 0;
};

/// Converts the UCR split file at `ucr_path` into a store segment at
/// `store_path`. Returns false with `*error` set on parse or I/O failure
/// (a partial output file may exist and should be discarded).
bool ImportUcrFileToStore(const std::string& ucr_path,
                          const std::string& store_path,
                          const StoreWriter::Options& options = {},
                          ImportResult* result = nullptr,
                          std::string* error = nullptr);

}  // namespace ips::store

#endif  // IPS_STORE_UCR_IMPORT_H_
