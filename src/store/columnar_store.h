// Out-of-core columnar dataset: the memory-mapped reader of `ips-store v1`
// segments (store_format.h), behind the DatasetView interface.
//
// The segment is mapped read-only once at Open; chunk RESIDENCY (which
// chunk payloads occupy physical memory) is governed by an LRU cache with
// a configurable byte budget. Eviction releases a chunk's pages back to
// the OS (madvise MADV_DONTNEED) without unmapping, so SeriesViews handed
// out earlier never dangle: touching an evicted chunk's pages simply
// faults them back in from the file and the next At()/ForEachChunk counts
// it as a fresh load. Peak resident chunk bytes therefore never exceed
// max(budget, largest single chunk) -- bench_store and the CI
// memory-budget job gate on exactly that accounting.
//
// Reader hardening: every header field, directory entry, column offset and
// declared count is validated against the mapped size before any
// dereference or allocation (tests/store_fuzz_test.cc drives truncations,
// header bit flips, hostile counts and wrong majors through Open). A
// segment that fails any check yields nullptr plus a reason -- never a
// crash and never an allocation sized by attacker-controlled counts.
//
// Thread-safety: all public methods may be called concurrently; LRU
// bookkeeping is mutex-guarded, payload reads are lock-free (immutable
// mapping). The store also implements SeriesStatsProvider over its
// write-time sidecars: FillRollingStats / FillWindowEnergies recognise
// spans inside the mapping and reproduce the core/znorm.cc arithmetic
// bitwise from the stored prefix tables.
//
// Obs counters (docs/observability.md): store.opens, store.bytes_mapped,
// store.chunk_loads, store.chunk_hits, store.chunk_evictions,
// store.bytes_loaded, store.bytes_evicted, store.sidecar_stats,
// store.sidecar_energies.

#ifndef IPS_STORE_COLUMNAR_STORE_H_
#define IPS_STORE_COLUMNAR_STORE_H_

#include <cstdint>

#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "core/znorm.h"
#include "store/store_format.h"

namespace ips::store {

class ColumnarStore final : public ips::DatasetView,
                            public ips::SeriesStatsProvider {
 public:
  struct Options {
    /// Chunk-residency budget in bytes. Clamped up to the largest single
    /// chunk at Open (a chunk must be residable to be readable);
    /// budget_bytes() reports the effective value.
    uint64_t budget_bytes = uint64_t{64} << 20;
  };

  /// Maps and validates `path`. Returns nullptr with `*error` set on any
  /// I/O or format failure.
  static std::unique_ptr<ColumnarStore> Open(const std::string& path,
                                             const Options& options,
                                             std::string* error = nullptr);
  static std::unique_ptr<ColumnarStore> Open(const std::string& path,
                                             std::string* error = nullptr) {
    return Open(path, Options(), error);
  }

  ~ColumnarStore() override;
  ColumnarStore(const ColumnarStore&) = delete;
  ColumnarStore& operator=(const ColumnarStore&) = delete;

  // ------------------------------------------------------- DatasetView
  size_t size() const override { return static_cast<size_t>(num_series_); }
  SeriesView At(size_t i) const override;
  void ForEachChunk(const ChunkFn& fn) const override;
  const ips::SeriesStatsProvider* stats_provider() const override {
    return this;
  }

  // ------------------------------------------------ SeriesStatsProvider
  bool FillRollingStats(std::span<const double> series, size_t window,
                        RollingStats* out) const override;
  bool FillWindowEnergies(std::span<const double> series, size_t window,
                          std::vector<double>* out) const override;

  // ------------------------------------------------------ introspection
  size_t num_chunks() const { return chunks_.size(); }
  uint64_t budget_bytes() const { return budget_bytes_; }
  /// Total mapped segment size.
  uint64_t mapped_bytes() const { return mapped_bytes_; }
  /// Sum of all chunk-record value payload bytes (the corpus size an
  /// in-RAM Dataset would materialise).
  uint64_t value_bytes() const { return value_bytes_; }
  /// Currently resident chunk-record bytes per the LRU accounting.
  uint64_t resident_bytes() const;
  /// High-water mark of resident_bytes() since Open.
  uint64_t resident_high_water() const;
  uint64_t chunk_loads() const;
  uint64_t chunk_hits() const;
  uint64_t chunk_evictions() const;

 private:
  struct ChunkMeta {
    uint64_t offset = 0;  // absolute file offset of the record
    uint64_t bytes = 0;   // whole record size (residency unit)
    uint64_t first = 0;   // dataset index of the first series
    uint64_t count = 0;
    const int32_t* labels = nullptr;
    const uint64_t* lengths = nullptr;
    const uint64_t* value_offsets = nullptr;
    const uint64_t* sidecar_offsets = nullptr;
    const double* values = nullptr;
    const double* sidecar = nullptr;
    uint64_t values_doubles = 0;
    uint64_t sidecar_doubles = 0;
    bool resident = false;
    std::list<size_t>::iterator lru_pos;  // valid when resident
  };

  ColumnarStore() = default;

  /// Validates the mapped segment and fills chunks_. Returns false with
  /// `*error` set on any malformed field.
  bool Parse(std::string* error);

  /// Chunk index containing dataset series `i`.
  size_t ChunkOfSeries(size_t i) const;

  /// Locates the chunk + series whose FULL value span is exactly
  /// `series`, or returns false. Serves the stats provider.
  bool LocateSeries(std::span<const double> series, size_t* chunk,
                    size_t* index_in_chunk) const;

  /// Marks chunk `c` most-recently-used, loading and evicting per the
  /// budget. Called by At/ForEachChunk on every access.
  void Touch(size_t c) const;

  /// Releases a chunk's full pages back to the OS.
  void ReleasePages(const ChunkMeta& chunk) const;

  const uint8_t* base_ = nullptr;
  uint64_t mapped_bytes_ = 0;
  int fd_ = -1;

  uint64_t num_series_ = 0;
  uint64_t value_bytes_ = 0;
  uint64_t budget_bytes_ = 0;
  // Mutable: residency flags and LRU positions change under const access.
  mutable std::vector<ChunkMeta> chunks_;

  mutable std::mutex mu_;
  mutable std::list<size_t> lru_;  // front = most recent
  mutable uint64_t resident_bytes_ = 0;
  mutable uint64_t resident_high_water_ = 0;
  mutable uint64_t loads_ = 0;
  mutable uint64_t hits_ = 0;
  mutable uint64_t evictions_ = 0;
};

/// True when `path` exists and begins with the `ips-store v1` magic.
/// Cheap sniff (reads 8 bytes) for call sites that accept either a store
/// segment or a text dataset under one flag, e.g. the serving layer's
/// ModelSource.train_path.
bool LooksLikeStoreSegment(const std::string& path);

}  // namespace ips::store

#endif  // IPS_STORE_COLUMNAR_STORE_H_
