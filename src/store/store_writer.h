// Streaming writer of `ips-store v1` segments (store_format.h).
//
// Series are appended one at a time; the writer buffers at most one chunk
// (the configured value-payload budget) in RAM, so a corpus of any size
// can be converted with bounded memory -- the UCR importer streams files
// through this without ever materialising a Dataset. Statistics sidecars
// (grand mean + centred/raw prefix tables) are computed per series at
// append time with exactly the accumulation order of ComputeRollingStats /
// ComputeWindowEnergies (core/znorm.cc), so store-served statistics are
// bitwise identical to runtime-computed ones.

#ifndef IPS_STORE_STORE_WRITER_H_
#define IPS_STORE_STORE_WRITER_H_

#include <cstdint>

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "store/store_format.h"

namespace ips::store {

/// Computes the write-time sidecar of one series into `out` (cleared
/// first): gm, csum, csq, esq per store_format.h. Exposed for tests, which
/// assert bitwise equality against the core/znorm.cc paths.
void ComputeSidecar(std::span<const double> values, std::vector<double>* out);

class StoreWriter {
 public:
  struct Options {
    /// Value-payload budget per chunk, in bytes. A single series longer
    /// than the budget still becomes one (oversized) chunk.
    uint64_t chunk_target_bytes = uint64_t{4} << 20;
  };

  /// Opens `path` for writing (truncates). Check ok() before appending.
  StoreWriter(const std::string& path, const Options& options);
  explicit StoreWriter(const std::string& path)
      : StoreWriter(path, Options()) {}

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;
  ~StoreWriter();

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Appends one labelled series (length >= 1, label >= -1). Flushes a
  /// chunk record to disk whenever the buffered value payload reaches the
  /// chunk budget. Returns false (and records an error) on I/O failure or
  /// invalid input.
  bool Append(std::span<const double> values, int label);

  /// Flushes the trailing chunk, writes the directory and the final
  /// header. Must be called exactly once; no Append after. Returns false
  /// on I/O failure. Idempotent error reporting via error().
  bool Finish();

  uint64_t series_written() const { return num_series_; }
  uint64_t chunks_written() const {
    return static_cast<uint64_t>(directory_.size());
  }

 private:
  bool FlushChunk();
  bool WriteRaw(const void* data, size_t bytes);

  std::ofstream out_;
  Options options_;
  bool ok_ = false;
  bool finished_ = false;
  std::string error_;

  uint64_t num_series_ = 0;
  uint64_t file_offset_ = 0;

  // Current chunk buffers.
  uint64_t chunk_first_series_ = 0;
  std::vector<int32_t> labels_;
  std::vector<uint64_t> lengths_;
  std::vector<uint64_t> value_offsets_;
  std::vector<uint64_t> sidecar_offsets_;
  std::vector<double> values_;
  std::vector<double> sidecar_;
  std::vector<double> sidecar_scratch_;

  std::vector<ChunkDirEntry> directory_;
};

/// Streams every series of `data` into a new segment at `path` (chunk-wise
/// on the view side too, so an out-of-core source is re-chunked without
/// materialising). Returns false with `*error` set on failure.
bool WriteDatasetToStore(const ips::DatasetView& data, const std::string& path,
                         const StoreWriter::Options& options = {},
                         std::string* error = nullptr);

}  // namespace ips::store

#endif  // IPS_STORE_STORE_WRITER_H_
