#include "store/store_writer.h"

#include <cstring>

namespace ips::store {

void ComputeSidecar(std::span<const double> values,
                    std::vector<double>* out) {
  const size_t n = values.size();
  out->clear();
  out->reserve(SidecarDoubles(n));

  // Grand mean, with Mean()'s exact accumulation order (core/znorm.cc).
  double sum = 0.0;
  for (double v : values) sum += v;
  const double gm = sum / static_cast<double>(n);
  out->push_back(gm);

  // Centred prefix sums and squares: ComputeRollingStats' tables.
  out->push_back(0.0);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double c = values[i] - gm;
    acc += c;
    out->push_back(acc);
  }
  out->push_back(0.0);
  acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double c = values[i] - gm;
    acc += c * c;
    out->push_back(acc);
  }

  // Raw prefix squares: ComputeWindowEnergies' table.
  out->push_back(0.0);
  acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += values[i] * values[i];
    out->push_back(acc);
  }
}

StoreWriter::StoreWriter(const std::string& path, const Options& options)
    : out_(path, std::ios::binary | std::ios::trunc), options_(options) {
  if (!out_) {
    error_ = "cannot open " + path + " for writing";
    return;
  }
  // Placeholder header; Finish() seeks back and writes the real one.
  SegmentHeader header;
  if (!WriteRaw(&header, sizeof(header))) return;
  ok_ = true;
}

StoreWriter::~StoreWriter() = default;

bool StoreWriter::WriteRaw(const void* data, size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) {
    ok_ = false;
    if (error_.empty()) error_ = "write failure";
    return false;
  }
  file_offset_ += bytes;
  return true;
}

bool StoreWriter::Append(std::span<const double> values, int label) {
  if (!ok_ || finished_) return false;
  if (values.empty()) {
    ok_ = false;
    error_ = "empty series";
    return false;
  }
  if (label < -1) {
    ok_ = false;
    error_ = "label below kUnlabeledSeries";
    return false;
  }
  if (labels_.empty()) chunk_first_series_ = num_series_;

  labels_.push_back(static_cast<int32_t>(label));
  lengths_.push_back(values.size());
  value_offsets_.push_back(values_.size());
  sidecar_offsets_.push_back(sidecar_.size());
  values_.insert(values_.end(), values.begin(), values.end());
  ComputeSidecar(values, &sidecar_scratch_);
  sidecar_.insert(sidecar_.end(), sidecar_scratch_.begin(),
                  sidecar_scratch_.end());
  ++num_series_;

  if (values_.size() * sizeof(double) >= options_.chunk_target_bytes) {
    return FlushChunk();
  }
  return true;
}

bool StoreWriter::FlushChunk() {
  if (labels_.empty()) return true;
  const uint64_t count = labels_.size();

  ChunkDirEntry entry;
  entry.offset = file_offset_;
  entry.first_series = chunk_first_series_;
  entry.num_series = count;
  entry.bytes = ChunkColumnBytes(count) +
                8 * (values_.size() + sidecar_.size());

  const uint64_t payload_sizes[2] = {values_.size(), sidecar_.size()};
  if (!WriteRaw(payload_sizes, sizeof(payload_sizes))) return false;
  if (!WriteRaw(labels_.data(), count * sizeof(int32_t))) return false;
  // Pad the label column to 8 bytes so every later section stays aligned.
  const uint64_t label_pad = (count * 4 + 7) / 8 * 8 - count * 4;
  const char zeros[8] = {0};
  if (label_pad != 0 && !WriteRaw(zeros, label_pad)) return false;
  if (!WriteRaw(lengths_.data(), count * 8)) return false;
  if (!WriteRaw(value_offsets_.data(), count * 8)) return false;
  if (!WriteRaw(sidecar_offsets_.data(), count * 8)) return false;
  if (!WriteRaw(values_.data(), values_.size() * 8)) return false;
  if (!WriteRaw(sidecar_.data(), sidecar_.size() * 8)) return false;

  directory_.push_back(entry);
  labels_.clear();
  lengths_.clear();
  value_offsets_.clear();
  sidecar_offsets_.clear();
  values_.clear();
  sidecar_.clear();
  return true;
}

bool StoreWriter::Finish() {
  if (!ok_ || finished_) return false;
  if (num_series_ == 0) {
    ok_ = false;
    error_ = "no series appended";
    return false;
  }
  if (!FlushChunk()) return false;
  finished_ = true;

  SegmentHeader header;
  header.num_series = num_series_;
  header.num_chunks = directory_.size();
  header.directory_offset = file_offset_;
  header.chunk_target_bytes = options_.chunk_target_bytes;
  if (!WriteRaw(directory_.data(),
                directory_.size() * sizeof(ChunkDirEntry))) {
    return false;
  }
  header.file_bytes = file_offset_;

  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
  if (!out_) {
    ok_ = false;
    error_ = "header rewrite failure";
    return false;
  }
  return true;
}

bool WriteDatasetToStore(const ips::DatasetView& data, const std::string& path,
                         const StoreWriter::Options& options,
                         std::string* error) {
  StoreWriter writer(path, options);
  bool ok = writer.ok();
  if (ok) {
    data.ForEachChunk([&](size_t, std::span<const ips::SeriesView> chunk) {
      for (const ips::SeriesView& t : chunk) {
        if (!writer.Append(t.values, t.label)) ok = false;
      }
    });
  }
  ok = ok && writer.Finish();
  if (!ok && error != nullptr) *error = writer.error();
  return ok;
}

}  // namespace ips::store
