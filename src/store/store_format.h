// On-disk layout of the `ips-store v1` columnar segment format.
//
// A segment is a single little-endian file holding a labelled time-series
// dataset in fixed-budget chunks of contiguous doubles, plus per-series
// statistics sidecars computed once at write time (docs/storage.md):
//
//   [Header: 64 bytes]
//   [Chunk record 0] [Chunk record 1] ... (8-byte aligned, back to back)
//   [Directory: num_chunks x 32-byte entries]
//
// Chunk record layout (every section 8-byte aligned):
//   u64 values_doubles     total doubles in the chunk's value payload
//   u64 sidecar_doubles    total doubles in the chunk's sidecar payload
//   i32 labels[count]      (padded to 8 bytes)
//   u64 lengths[count]
//   u64 value_offset[count]    per-series start within values, in doubles
//   u64 sidecar_offset[count]  per-series start within sidecar, in doubles
//   f64 values[values_doubles]
//   f64 sidecar[sidecar_doubles]
//
// Per-series sidecar (3*(n+1) + 1 doubles for a length-n series):
//   [0]            gm    -- the series' grand mean (core/znorm.cc Mean)
//   [1    .. n+1]  csum  -- prefix sums of the gm-centred values
//   [n+2  .. 2n+2] csq   -- prefix sums of squared centred values
//   [2n+3 .. 3n+3] esq   -- prefix sums of squared RAW values
//
// csum/csq/gm reproduce ComputeRollingStats' internal tables bitwise for
// ANY window length (the tables are window-independent; only the O(1)
// per-window step depends on w), and esq reproduces ComputeWindowEnergies'
// table -- which is what lets a store-backed MatrixProfileEngine skip its
// stats pass with bitwise-identical results.
//
// All integers and doubles are little-endian (doubles as IEEE-754 bit
// patterns, the serve frame protocol's convention). The reader
// (columnar_store.cc) is hostile-input hardened: every offset, count and
// size is validated against the file size before any dereference or
// allocation, in the spirit of tests/serialization_fuzz_test.cc.

#ifndef IPS_STORE_STORE_FORMAT_H_
#define IPS_STORE_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace ips::store {

/// "IPSSTOR1" read as a little-endian u64.
inline constexpr uint64_t kStoreMagic = 0x31524F5453535049ULL;

inline constexpr uint16_t kStoreMajor = 1;
inline constexpr uint16_t kStoreMinor = 0;

/// Fixed-size segment header at file offset 0.
struct SegmentHeader {
  uint64_t magic = kStoreMagic;
  uint16_t major = kStoreMajor;
  uint16_t minor = kStoreMinor;
  uint32_t reserved0 = 0;
  uint64_t num_series = 0;
  uint64_t num_chunks = 0;
  uint64_t directory_offset = 0;
  uint64_t file_bytes = 0;          ///< total segment size, for validation
  uint64_t chunk_target_bytes = 0;  ///< writer's value-payload budget
  uint64_t reserved1 = 0;
};
static_assert(sizeof(SegmentHeader) == 64, "header layout is part of v1");

/// One directory entry describing a chunk record.
struct ChunkDirEntry {
  uint64_t offset = 0;       ///< absolute file offset, 8-byte aligned
  uint64_t bytes = 0;        ///< whole chunk record size
  uint64_t first_series = 0; ///< dataset index of the chunk's first series
  uint64_t num_series = 0;   ///< series in this chunk (>= 1)
};
static_assert(sizeof(ChunkDirEntry) == 32, "directory layout is part of v1");

/// Doubles in the sidecar of a length-`n` series.
inline constexpr uint64_t SidecarDoubles(uint64_t n) {
  return 3 * (n + 1) + 1;
}

/// Bytes of the fixed per-chunk column block for `count` series: the two
/// payload-size words plus labels (padded to 8), lengths and both offset
/// columns.
inline constexpr uint64_t ChunkColumnBytes(uint64_t count) {
  const uint64_t labels = (count * 4 + 7) / 8 * 8;
  return 16 + labels + 3 * 8 * count;
}

}  // namespace ips::store

#endif  // IPS_STORE_STORE_FORMAT_H_
