// ips_store_import: streaming UCR -> ips-store segment converter.
//
//   ips_store_import --in=SPLIT.tsv --out=SEGMENT.ipsstore
//                    [--chunk_bytes=4194304]
//
// Peak memory is one chunk buffer plus one row, so files far larger than
// RAM convert fine. Prints the resulting series/chunk counts; a non-zero
// exit leaves any partial output to be discarded by the caller.

#include <cstdlib>

#include <iostream>
#include <string>

#include "store/columnar_store.h"
#include "store/ucr_import.h"

namespace {

bool FlagValue(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  ips::store::StoreWriter::Options options;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (FlagValue(arg, "in", &value)) {
      in_path = value;
    } else if (FlagValue(arg, "out", &value)) {
      out_path = value;
    } else if (FlagValue(arg, "chunk_bytes", &value)) {
      options.chunk_target_bytes =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else {
      std::cerr << "error: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (in_path.empty() || out_path.empty() ||
      options.chunk_target_bytes == 0) {
    std::cerr << "usage: ips_store_import --in=SPLIT.tsv "
                 "--out=SEGMENT.ipsstore [--chunk_bytes=N]\n";
    return 2;
  }

  ips::store::ImportResult result;
  std::string error;
  if (!ips::store::ImportUcrFileToStore(in_path, out_path, options, &result,
                                        &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  // Re-open through the validating reader: an importer bug that writes a
  // malformed segment fails HERE, not in whatever job later maps the file.
  auto store = ips::store::ColumnarStore::Open(out_path, {}, &error);
  if (store == nullptr) {
    std::cerr << "error: self-check failed: " << error << "\n";
    return 1;
  }

  std::cout << "wrote " << out_path << ": " << result.series
            << " series in " << result.chunks << " chunks, "
            << store->mapped_bytes() << " bytes ("
            << store->value_bytes() << " value bytes)\n";
  return 0;
}
