#include "store/columnar_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/simd.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace ips::store {
namespace {

struct StoreMetrics {
  obs::Counter& opens;
  obs::Counter& bytes_mapped;
  obs::Counter& chunk_loads;
  obs::Counter& chunk_hits;
  obs::Counter& chunk_evictions;
  obs::Counter& bytes_loaded;
  obs::Counter& bytes_evicted;
  obs::Counter& sidecar_stats;
  obs::Counter& sidecar_energies;
};

StoreMetrics& Metrics() {
  static StoreMetrics* m = [] {
    auto& registry = obs::MetricsRegistry::Instance();
    return new StoreMetrics{registry.GetCounter("store.opens"),
                            registry.GetCounter("store.bytes_mapped"),
                            registry.GetCounter("store.chunk_loads"),
                            registry.GetCounter("store.chunk_hits"),
                            registry.GetCounter("store.chunk_evictions"),
                            registry.GetCounter("store.bytes_loaded"),
                            registry.GetCounter("store.bytes_evicted"),
                            registry.GetCounter("store.sidecar_stats"),
                            registry.GetCounter("store.sidecar_energies")};
  }();
  return *m;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::unique_ptr<ColumnarStore> ColumnarStore::Open(const std::string& path,
                                                   const Options& options,
                                                   std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "cannot open " + path + ": " + std::strerror(errno));
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    SetError(error, "cannot stat " + path);
    ::close(fd);
    return nullptr;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < sizeof(SegmentHeader)) {
    SetError(error, "segment shorter than its header");
    ::close(fd);
    return nullptr;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    SetError(error, "mmap failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return nullptr;
  }
  // Access is chunk-at-a-time, not a single forward scan; let demand
  // paging follow the LRU instead of kernel readahead dragging in the
  // whole file.
  ::madvise(map, size, MADV_RANDOM);

  std::unique_ptr<ColumnarStore> store(new ColumnarStore());
  store->base_ = static_cast<const uint8_t*>(map);
  store->mapped_bytes_ = size;
  store->fd_ = fd;
  if (!store->Parse(error)) return nullptr;

  uint64_t largest_chunk = 0;
  for (const ChunkMeta& chunk : store->chunks_) {
    largest_chunk = std::max(largest_chunk, chunk.bytes);
  }
  store->budget_bytes_ = std::max(options.budget_bytes, largest_chunk);

  Metrics().opens.Add();
  Metrics().bytes_mapped.Add(size);
  return store;
}

ColumnarStore::~ColumnarStore() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), mapped_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

bool ColumnarStore::Parse(std::string* error) {
  // Every field below comes from the file: bound-check before use, and
  // never size an allocation by a declared count that the file's own size
  // cannot back.
  SegmentHeader header;
  std::memcpy(&header, base_, sizeof(header));
  if (header.magic != kStoreMagic) {
    SetError(error, "bad magic: not an ips-store segment");
    return false;
  }
  if (header.major != kStoreMajor) {
    SetError(error, "unsupported major version " +
                        std::to_string(header.major));
    return false;
  }
  if (header.file_bytes != mapped_bytes_) {
    SetError(error, "declared file size does not match actual size");
    return false;
  }
  if (header.num_series == 0 || header.num_chunks == 0) {
    SetError(error, "segment declares no data");
    return false;
  }
  // A chunk record is at least its two payload-size words plus one series'
  // columns; the directory costs 32 bytes per chunk. Either bound alone
  // caps num_chunks well below anything allocation-hostile.
  if (header.num_chunks > mapped_bytes_ / sizeof(ChunkDirEntry)) {
    SetError(error, "declared chunk count exceeds file capacity");
    return false;
  }
  const uint64_t dir_bytes = header.num_chunks * sizeof(ChunkDirEntry);
  if (header.directory_offset < sizeof(SegmentHeader) ||
      header.directory_offset % 8 != 0 ||
      header.directory_offset > mapped_bytes_ ||
      dir_bytes > mapped_bytes_ - header.directory_offset) {
    SetError(error, "directory out of bounds");
    return false;
  }
  if (header.num_series > (mapped_bytes_ - sizeof(SegmentHeader)) / 8) {
    SetError(error, "declared series count exceeds file capacity");
    return false;
  }

  const auto* directory = reinterpret_cast<const ChunkDirEntry*>(
      base_ + header.directory_offset);
  chunks_.resize(header.num_chunks);
  uint64_t expected_offset = sizeof(SegmentHeader);
  uint64_t expected_first = 0;
  for (uint64_t c = 0; c < header.num_chunks; ++c) {
    const ChunkDirEntry& entry = directory[c];
    ChunkMeta& chunk = chunks_[c];
    // Records are back to back from the header to the directory, in order:
    // any gap, overlap, misalignment or reordering is a malformed file.
    if (entry.offset != expected_offset || entry.offset % 8 != 0) {
      SetError(error, "chunk " + std::to_string(c) + " offset mismatch");
      return false;
    }
    if (entry.bytes < 16 || entry.bytes % 8 != 0 ||
        entry.offset > header.directory_offset ||
        entry.bytes > header.directory_offset - entry.offset) {
      SetError(error, "chunk " + std::to_string(c) + " extent out of bounds");
      return false;
    }
    if (entry.first_series != expected_first || entry.num_series == 0 ||
        entry.num_series > header.num_series - expected_first) {
      SetError(error,
               "chunk " + std::to_string(c) + " series range malformed");
      return false;
    }
    const uint64_t count = entry.num_series;
    const uint64_t columns = ChunkColumnBytes(count);
    if (columns > entry.bytes) {
      SetError(error, "chunk " + std::to_string(c) + " too small for columns");
      return false;
    }

    const uint8_t* record = base_ + entry.offset;
    uint64_t payload_sizes[2];
    std::memcpy(payload_sizes, record, sizeof(payload_sizes));
    const uint64_t values_doubles = payload_sizes[0];
    const uint64_t sidecar_doubles = payload_sizes[1];
    const uint64_t payload_bytes = entry.bytes - columns;
    if (values_doubles == 0 || sidecar_doubles == 0 ||
        values_doubles > payload_bytes / 8 ||
        sidecar_doubles > payload_bytes / 8 ||
        values_doubles * 8 + sidecar_doubles * 8 != payload_bytes) {
      SetError(error,
               "chunk " + std::to_string(c) + " payload sizes inconsistent");
      return false;
    }

    const uint64_t label_pad = (count * 4 + 7) / 8 * 8;
    chunk.offset = entry.offset;
    chunk.bytes = entry.bytes;
    chunk.first = entry.first_series;
    chunk.count = count;
    chunk.labels = reinterpret_cast<const int32_t*>(record + 16);
    chunk.lengths =
        reinterpret_cast<const uint64_t*>(record + 16 + label_pad);
    chunk.value_offsets = chunk.lengths + count;
    chunk.sidecar_offsets = chunk.value_offsets + count;
    chunk.values = reinterpret_cast<const double*>(record + columns);
    chunk.sidecar = chunk.values + values_doubles;
    chunk.values_doubles = values_doubles;
    chunk.sidecar_doubles = sidecar_doubles;

    // Per-series column validation: offsets ascend from zero, lengths are
    // positive, the sidecar is exactly the 3*(n+1)+1 layout, and both
    // payloads are covered exactly (no hidden slack to smuggle data in).
    uint64_t expect_value = 0;
    uint64_t expect_sidecar = 0;
    for (uint64_t s = 0; s < count; ++s) {
      const uint64_t length = chunk.lengths[s];
      if (length == 0 || length > values_doubles ||
          chunk.value_offsets[s] != expect_value ||
          chunk.sidecar_offsets[s] != expect_sidecar ||
          length > values_doubles - expect_value ||
          SidecarDoubles(length) > sidecar_doubles - expect_sidecar) {
        SetError(error, "chunk " + std::to_string(c) + " series " +
                            std::to_string(s) + " columns malformed");
        return false;
      }
      if (chunk.labels[s] < -1) {
        SetError(error, "chunk " + std::to_string(c) + " series " +
                            std::to_string(s) + " label below -1");
        return false;
      }
      expect_value += length;
      expect_sidecar += SidecarDoubles(length);
    }
    if (expect_value != values_doubles || expect_sidecar != sidecar_doubles) {
      SetError(error,
               "chunk " + std::to_string(c) + " payload not fully covered");
      return false;
    }

    value_bytes_ += values_doubles * 8;
    expected_offset += entry.bytes;
    expected_first += count;
  }
  if (expected_first != header.num_series) {
    SetError(error, "chunks do not cover the declared series count");
    return false;
  }
  if (expected_offset != header.directory_offset) {
    SetError(error, "gap between last chunk and directory");
    return false;
  }
  num_series_ = header.num_series;
  return true;
}

size_t ColumnarStore::ChunkOfSeries(size_t i) const {
  IPS_CHECK_MSG(i < num_series_, "series index out of range");
  // Upper-bound on first_series: the last chunk whose range starts at or
  // before i.
  size_t lo = 0;
  size_t hi = chunks_.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_[mid].first <= i) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void ColumnarStore::Touch(size_t c) const {
  auto& metrics = Metrics();
  std::lock_guard<std::mutex> lock(mu_);
  ChunkMeta& chunk = chunks_[c];
  if (chunk.resident) {
    if (chunk.lru_pos != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, chunk.lru_pos);
    }
    ++hits_;
    metrics.chunk_hits.Add();
    return;
  }
  // Evict from the cold end until the newcomer fits. The budget is
  // clamped >= the largest chunk at Open, so this always terminates with
  // room to spare.
  while (!lru_.empty() && resident_bytes_ + chunk.bytes > budget_bytes_) {
    const size_t victim_index = lru_.back();
    lru_.pop_back();
    ChunkMeta& victim = chunks_[victim_index];
    victim.resident = false;
    resident_bytes_ -= victim.bytes;
    ReleasePages(victim);
    ++evictions_;
    metrics.chunk_evictions.Add();
    metrics.bytes_evicted.Add(victim.bytes);
  }
  lru_.push_front(c);
  chunk.lru_pos = lru_.begin();
  chunk.resident = true;
  resident_bytes_ += chunk.bytes;
  resident_high_water_ = std::max(resident_high_water_, resident_bytes_);
  ++loads_;
  metrics.chunk_loads.Add();
  metrics.bytes_loaded.Add(chunk.bytes);
}

void ColumnarStore::ReleasePages(const ChunkMeta& chunk) const {
  // Only drop pages fully inside the record: the boundary pages are
  // shared with neighbouring chunks (or the header/directory) that may
  // still be resident. The mapping itself stays valid -- a later access
  // just faults the pages back in from the file.
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t begin = (chunk.offset + page - 1) / page * page;
  const uint64_t end = (chunk.offset + chunk.bytes) / page * page;
  if (end > begin) {
    ::madvise(const_cast<uint8_t*>(base_) + begin, end - begin,
              MADV_DONTNEED);
  }
}

SeriesView ColumnarStore::At(size_t i) const {
  const size_t c = ChunkOfSeries(i);
  Touch(c);
  const ChunkMeta& chunk = chunks_[c];
  const uint64_t s = i - chunk.first;
  return SeriesView(
      std::span<const double>(chunk.values + chunk.value_offsets[s],
                              chunk.lengths[s]),
      chunk.labels[s]);
}

void ColumnarStore::ForEachChunk(const ChunkFn& fn) const {
  std::vector<SeriesView> views;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    Touch(c);
    const ChunkMeta& chunk = chunks_[c];
    views.clear();
    views.reserve(chunk.count);
    for (uint64_t s = 0; s < chunk.count; ++s) {
      views.emplace_back(
          std::span<const double>(chunk.values + chunk.value_offsets[s],
                                  chunk.lengths[s]),
          chunk.labels[s]);
    }
    fn(chunk.first, std::span<const SeriesView>(views));
  }
}

bool ColumnarStore::LocateSeries(std::span<const double> series,
                                 size_t* chunk_out,
                                 size_t* index_in_chunk) const {
  const double* data = series.data();
  if (data == nullptr) return false;
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  if (bytes < base_ || bytes >= base_ + mapped_bytes_) return false;

  // Binary search the chunk whose record contains the address, then the
  // series whose value span starts there. Only FULL series spans are
  // servable -- a subsequence has no sidecar of its own.
  size_t lo = 0;
  size_t hi = chunks_.size();
  const uint64_t file_offset = static_cast<uint64_t>(bytes - base_);
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_[mid].offset <= file_offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const ChunkMeta& chunk = chunks_[lo];
  if (data < chunk.values || data >= chunk.values + chunk.values_doubles) {
    return false;
  }
  const uint64_t value_offset = static_cast<uint64_t>(data - chunk.values);
  const uint64_t* first = chunk.value_offsets;
  const uint64_t* last = first + chunk.count;
  const uint64_t* it = std::lower_bound(first, last, value_offset);
  if (it == last || *it != value_offset) return false;
  const size_t s = static_cast<size_t>(it - first);
  if (chunk.lengths[s] != series.size()) return false;
  *chunk_out = lo;
  *index_in_chunk = s;
  return true;
}

bool ColumnarStore::FillRollingStats(std::span<const double> series,
                                     size_t window,
                                     RollingStats* out) const {
  size_t c = 0;
  size_t s = 0;
  if (window < 1 || series.size() < window) return false;
  if (!LocateSeries(series, &c, &s)) return false;
  Touch(c);

  const size_t n = series.size();
  const size_t count = n - window + 1;
  if (window == 1) {
    // ComputeRollingStats' w==1 special case: means are the samples,
    // deviations exactly zero.
    out->means.assign(series.begin(), series.end());
    out->stds.assign(n, 0.0);
    Metrics().sidecar_stats.Add();
    return true;
  }

  const ChunkMeta& chunk = chunks_[c];
  const double* sidecar = chunk.sidecar + chunk.sidecar_offsets[s];
  const double gm = sidecar[0];
  const double* csum = sidecar + 1;
  const double* csq = csum + (n + 1);
  out->means.resize(count);
  out->stds.resize(count);
  // Same prefix tables, same per-window kernel as ComputeRollingStats:
  // bitwise-identical output.
  simd::RollingMomentsFromPrefix(csum, csq, count, window, gm,
                                 out->means.data(), out->stds.data());
  Metrics().sidecar_stats.Add();
  return true;
}

bool ColumnarStore::FillWindowEnergies(std::span<const double> series,
                                       size_t window,
                                       std::vector<double>* out) const {
  size_t c = 0;
  size_t s = 0;
  if (window < 1 || series.size() < window) return false;
  if (!LocateSeries(series, &c, &s)) return false;
  Touch(c);

  const size_t n = series.size();
  const size_t count = n - window + 1;
  const ChunkMeta& chunk = chunks_[c];
  const double* sidecar = chunk.sidecar + chunk.sidecar_offsets[s];
  const double* esq = sidecar + 1 + 2 * (n + 1);
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    (*out)[i] = esq[i + window] - esq[i];
  }
  Metrics().sidecar_energies.Add();
  return true;
}

uint64_t ColumnarStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

uint64_t ColumnarStore::resident_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_high_water_;
}

uint64_t ColumnarStore::chunk_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_;
}

uint64_t ColumnarStore::chunk_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ColumnarStore::chunk_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

bool LooksLikeStoreSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kStoreMagic;
}

}  // namespace ips::store
