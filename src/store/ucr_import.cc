#include "store/ucr_import.h"

#include <map>

#include "data/ucr_loader.h"

namespace ips::store {

bool ImportUcrFileToStore(const std::string& ucr_path,
                          const std::string& store_path,
                          const StoreWriter::Options& options,
                          ImportResult* result, std::string* error) {
  std::map<double, int> label_map;
  if (!ips::ForEachUcrRow(ucr_path,
                          [&](double raw, std::span<const double>) {
                            label_map.emplace(raw, 0);
                            return true;
                          })) {
    if (error != nullptr) *error = "cannot parse " + ucr_path;
    return false;
  }
  int next = 0;
  for (auto& [raw, dense] : label_map) dense = next++;

  StoreWriter writer(store_path, options);
  if (!writer.ok()) {
    if (error != nullptr) *error = writer.error();
    return false;
  }
  bool append_ok = true;
  if (!ips::ForEachUcrRow(ucr_path,
                          [&](double raw, std::span<const double> values) {
                            append_ok = writer.Append(values,
                                                      label_map.at(raw));
                            return append_ok;
                          }) ||
      !append_ok || !writer.Finish()) {
    if (error != nullptr) {
      *error = writer.error().empty() ? "cannot parse " + ucr_path
                                      : writer.error();
    }
    return false;
  }
  if (result != nullptr) {
    result->series = writer.series_written();
    result->chunks = writer.chunks_written();
  }
  return true;
}

}  // namespace ips::store
