#include "serve/admission_queue.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace ips::serve {

namespace {

obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Instance().GetHistogram("serve.batch_size");
  return h;
}

}  // namespace

AdmissionQueue::AdmissionQueue(Options options)
    : options_(options), dispatcher_([this] { DispatcherLoop(); }) {}

AdmissionQueue::~AdmissionQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

std::future<AdmissionQueue::Result> AdmissionQueue::Submit(
    std::shared_ptr<const ServedModel> model, std::vector<double> values) {
  Pending pending;
  pending.model = std::move(model);
  pending.values = std::move(values);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<Result> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

uint64_t AdmissionQueue::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

void AdmissionQueue::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ && drained

    // The oldest request anchors the batch: its model selects the group
    // and its arrival time starts the window.
    const ServedModel* anchor = queue_.front().model.get();
    const auto deadline =
        queue_.front().enqueued +
        std::chrono::microseconds(options_.batch_window_us);

    // Wait for company until the window closes, the batch fills, or a
    // shutdown asks for an immediate drain.
    const auto batch_full = [&] {
      size_t same_model = 0;
      for (const Pending& p : queue_) {
        if (p.model.get() == anchor && ++same_model >= options_.max_batch) {
          return true;
        }
      }
      return false;
    };
    if (options_.batch_window_us > 0) {
      cv_.wait_until(lock, deadline,
                     [&] { return stopping_ || batch_full(); });
    }

    // Extract up to max_batch requests for the anchor model, preserving
    // arrival order; other models' requests stay queued for later rounds.
    std::vector<Pending> batch;
    batch.reserve(options_.max_batch);
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < options_.max_batch;) {
      if (it->model.get() == anchor) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    ++batches_;

    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
  }
}

void AdmissionQueue::RunBatch(std::vector<Pending> batch) {
  const std::shared_ptr<const ServedModel>& model = batch.front().model;
  Dataset queries;
  for (Pending& p : batch) {
    queries.Add(TimeSeries(std::move(p.values), /*label=*/-1));
  }
  const std::vector<int> labels = model->Classify(queries);

  BatchSizeHistogram().Observe(batch.size());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  obs::Counter& requests =
      registry.GetCounter("serve." + model->name() + ".requests");
  obs::Histogram& latency =
      registry.GetHistogram("serve." + model->name() + ".latency_us");

  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    requests.Add();
    latency.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - batch[i].enqueued)
            .count()));
    batch[i].promise.set_value(Result{labels[i], model->version()});
  }
}

}  // namespace ips::serve
