// ips_serve: the long-lived model-serving daemon.
//
// Serving:
//   ips_serve --model=name,artifact.ipsrun,train.tsv [--model=...]
//             [--port=0] [--batch_window_us=500] [--max_batch=64]
//             [--access_log=PATH --log_max_bytes=N --log_keep=K]
// Binds 127.0.0.1 (port 0 = kernel-chosen, printed on stdout as
// "listening on 127.0.0.1:<port>"), loads every --model into the registry
// and serves until SIGINT/SIGTERM. A client asking to reload re-reads the
// model's artifact + train paths from disk, so replacing the files and
// sending kReloadRequest is a zero-downtime swap.
//
// Fixture generation (used by CI and the bench soak):
//   ips_serve --make_fixture=DIR
// Writes DIR/train.tsv, DIR/test.tsv, DIR/model.ipsrun and a deliberately
// different DIR/model_alt.ipsrun (same train split, different discovery
// parameters) so reload tests can swap between two real artifacts.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <iostream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/ucr_loader.h"
#include "ips/config.h"
#include "ips/pipeline.h"
#include "ips/serialization.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace {

struct ModelFlag {
  std::string name;
  std::string artifact_path;
  std::string train_path;
};

bool ParseModelFlag(const std::string& value, ModelFlag* out) {
  const size_t first = value.find(',');
  if (first == std::string::npos) return false;
  const size_t second = value.find(',', first + 1);
  if (second == std::string::npos) return false;
  out->name = value.substr(0, first);
  out->artifact_path = value.substr(first + 1, second - first - 1);
  out->train_path = value.substr(second + 1);
  return !out->name.empty() && !out->artifact_path.empty() &&
         !out->train_path.empty();
}

bool FlagValue(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

ips::IpsOptions FixtureOptions() {
  ips::IpsOptions options;
  options.sample_count = 6;
  options.sample_size = 3;
  options.length_ratios = {0.15, 0.25};
  options.shapelets_per_class = 4;
  return options;
}

int MakeFixture(const std::string& dir) {
  ips::GeneratorSpec spec;
  spec.name = "serve_fixture";
  spec.num_classes = 2;
  spec.train_size = 16;
  spec.test_size = 60;
  spec.length = 96;
  const ips::TrainTestSplit data = ips::GenerateDataset(spec);

  if (!ips::SaveUcrFile(data.train, dir + "/train.tsv") ||
      !ips::SaveUcrFile(data.test, dir + "/test.tsv")) {
    std::cerr << "error: cannot write fixture splits under " << dir << "\n";
    return 1;
  }

  ips::IpsClassifier primary(FixtureOptions());
  primary.Fit(data.train);
  if (!ips::SaveRunResult(primary.result(), dir + "/model.ipsrun")) {
    std::cerr << "error: cannot write " << dir << "/model.ipsrun\n";
    return 1;
  }

  // The alternate artifact must genuinely differ (different sampling →
  // different shapelets) so a reload swap is observable.
  ips::IpsOptions alt_options = FixtureOptions();
  alt_options.seed = 1234;
  alt_options.shapelets_per_class = 3;
  ips::IpsClassifier alternate(alt_options);
  alternate.Fit(data.train);
  if (!ips::SaveRunResult(alternate.result(), dir + "/model_alt.ipsrun")) {
    std::cerr << "error: cannot write " << dir << "/model_alt.ipsrun\n";
    return 1;
  }

  std::cout << "fixture written to " << dir << " (" << spec.train_size
            << " train / " << spec.test_size << " test, "
            << primary.result().shapelets.size() << " + "
            << alternate.result().shapelets.size() << " shapelets)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<ModelFlag> models;
  ips::serve::ServerOptions options;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (FlagValue(arg, "make_fixture", &value)) {
      return MakeFixture(value);
    } else if (FlagValue(arg, "model", &value)) {
      ModelFlag flag;
      if (!ParseModelFlag(value, &flag)) {
        std::cerr << "error: --model expects name,artifact_path,train_path "
                     "(got \""
                  << value << "\")\n";
        return 2;
      }
      models.push_back(std::move(flag));
    } else if (FlagValue(arg, "port", &value)) {
      options.port = std::atoi(value.c_str());
    } else if (FlagValue(arg, "batch_window_us", &value)) {
      options.queue.batch_window_us = std::atol(value.c_str());
    } else if (FlagValue(arg, "max_batch", &value)) {
      options.queue.max_batch =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (FlagValue(arg, "access_log", &value)) {
      options.access_log_path = value;
    } else if (FlagValue(arg, "log_max_bytes", &value)) {
      options.access_log_max_bytes =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (FlagValue(arg, "log_keep", &value)) {
      options.access_log_keep = std::atoi(value.c_str());
    } else {
      std::cerr << "error: unknown flag " << arg << "\n";
      return 2;
    }
  }

  if (models.empty()) {
    std::cerr << "usage: ips_serve --model=name,artifact.ipsrun,train.tsv "
                 "[--model=...] [--port=N] [--batch_window_us=US] "
                 "[--max_batch=N] [--access_log=PATH]\n"
                 "       ips_serve --make_fixture=DIR\n";
    return 2;
  }

  ips::serve::ModelRegistry registry;
  for (const ModelFlag& flag : models) {
    std::string error;
    const uint32_t version = registry.Load(
        flag.name,
        ips::serve::ModelSource{flag.artifact_path, flag.train_path,
                                ips::IpsOptions{}},
        &error);
    if (version == 0) {
      std::cerr << "error: loading model \"" << flag.name << "\": " << error
                << "\n";
      return 1;
    }
    const auto model = registry.Get(flag.name);
    std::cout << "loaded model \"" << flag.name << "\" v" << version << " ("
              << model->shapelet_count() << " shapelets, "
              << model->train_size() << " train series)\n";
  }

  // Block the termination signals BEFORE starting server threads so every
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigprocmask(SIG_BLOCK, &mask, nullptr);

  ips::serve::Server server(&registry, options);
  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  int signal_number = 0;
  sigwait(&mask, &signal_number);
  std::cout << "received " << strsignal(signal_number)
            << ", shutting down\n";
  server.Stop();
  return 0;
}
