// Size-rotated append-only log for the serve daemon's access lines.
//
// Append() adds one line (a trailing newline is supplied); when the file
// would grow past `max_bytes` it is first rotated: path -> path.1 ->
// path.2 ... path.<keep>, the oldest dropped. Rotation is by rename, so a
// tail -F style follower re-opens naturally. All methods are thread-safe
// (one mutex; the server logs from every connection thread). A
// default-constructed log is disabled and Append() is a no-op.

#ifndef IPS_SERVE_LOG_ROTATE_H_
#define IPS_SERVE_LOG_ROTATE_H_

#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace ips::serve {

class RotatingLog {
 public:
  /// Disabled log: Append() does nothing.
  RotatingLog() = default;

  /// Appends to `path`, rotating at `max_bytes` and keeping `keep` rotated
  /// generations (path.1 .. path.keep) besides the live file. keep == 0
  /// truncates on rotation instead of keeping history.
  RotatingLog(std::string path, size_t max_bytes, int keep);

  bool enabled() const { return !path_.empty(); }

  /// Appends `line` + '\n', rotating first when the write would push the
  /// live file past max_bytes. Lines longer than max_bytes are written
  /// whole (one oversized generation beats silent loss).
  void Append(std::string_view line);

  /// Bytes currently in the live file (test visibility).
  size_t current_size() const;

 private:
  void RotateLocked();
  void OpenLocked();

  std::string path_;
  size_t max_bytes_ = 0;
  int keep_ = 0;

  mutable std::mutex mu_;
  std::ofstream out_;
  size_t size_ = 0;
};

}  // namespace ips::serve

#endif  // IPS_SERVE_LOG_ROTATE_H_
