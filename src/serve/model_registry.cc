#include "serve/model_registry.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "data/ucr_loader.h"
#include "ips/serialization.h"
#include "store/columnar_store.h"

namespace ips::serve {

std::shared_ptr<ServedModel> ModelRegistry::Build(const std::string& name,
                                                  const ModelSource& source,
                                                  std::string* error) {
  const auto fail = [&](std::string reason) -> std::shared_ptr<ServedModel> {
    if (error != nullptr) *error = std::move(reason);
    return nullptr;
  };

  // The registry opens the artifact itself and parses through the fd path,
  // so policy (permissions, symlink handling) sits here rather than inside
  // the serialization layer.
  const int fd = ::open(source.artifact_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail("cannot open artifact \"" + source.artifact_path + "\"");
  }
  std::string load_error;
  std::optional<RunResult> artifact = LoadRunResultFromFd(fd, &load_error);
  ::close(fd);
  if (!artifact) {
    return fail("artifact \"" + source.artifact_path + "\": " + load_error);
  }
  if (artifact->shapelets.empty()) {
    return fail("artifact \"" + source.artifact_path + "\" has no shapelets");
  }

  // The training split backs the refit only for the duration of
  // FitFromRunResult (the classifier copies what it keeps), so the store
  // mapping / loaded Dataset can die with this frame.
  std::unique_ptr<store::ColumnarStore> segment;
  std::optional<Dataset> loaded;
  const DatasetView* train = nullptr;
  if (store::LooksLikeStoreSegment(source.train_path)) {
    std::string store_error;
    segment = store::ColumnarStore::Open(source.train_path, &store_error);
    if (segment == nullptr) {
      return fail("store segment \"" + source.train_path +
                  "\": " + store_error);
    }
    train = segment.get();
  } else {
    loaded = LoadUcrFile(source.train_path);
    if (!loaded) {
      return fail("cannot load training split \"" + source.train_path +
                  "\"");
    }
    train = &*loaded;
  }
  if (train->empty()) {
    return fail("training split \"" + source.train_path + "\" is empty");
  }

  auto model = std::shared_ptr<ServedModel>(new ServedModel(source.options));
  model->name_ = name;
  model->train_size_ = train->size();
  model->classifier_.FitFromRunResult(*train, *artifact);
  return model;
}

uint32_t ModelRegistry::Load(const std::string& name,
                             const ModelSource& source, std::string* error) {
  // One builder at a time: a pair of racing reloads must observe strictly
  // ordered versions (build N fully swapped before build N+1 stamps).
  // Classify traffic never touches load_mu_.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  std::shared_ptr<ServedModel> built = Build(name, source, error);
  if (built == nullptr) return 0;

  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[name];
  slot.source = source;
  built->version_ = slot.next_version++;
  slot.model = std::move(built);  // the swap: old model freed by last holder
  return slot.model->version();
}

uint32_t ModelRegistry::Reload(const std::string& name, std::string* error) {
  ModelSource source;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) {
      if (error != nullptr) *error = "unknown model \"" + name + "\"";
      return 0;
    }
    source = it->second.source;
  }
  return Load(name, source, error);
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.model;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace ips::serve
