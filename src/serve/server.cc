#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <algorithm>
#include <utility>

#include "core/metric.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ips::serve {

namespace {

struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& frames;
  obs::Counter& errors;
};

ServerMetrics& Metrics() {
  static ServerMetrics* metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
    return new ServerMetrics{registry.GetCounter("serve.connections"),
                             registry.GetCounter("serve.frames"),
                             registry.GetCounter("serve.errors")};
  }();
  return *metrics;
}

Frame MakeError(ErrorCode code, std::string message) {
  Metrics().errors.Add();
  Frame frame;
  frame.op = FrameOp::kError;
  frame.payload = EncodeErrorFrame(ErrorFrame{code, std::move(message)});
  return frame;
}

}  // namespace

Server::Server(ModelRegistry* registry, ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      queue_(options_.queue),
      access_log_(options_.access_log_path.empty()
                      ? RotatingLog()
                      : RotatingLog(options_.access_log_path,
                                    options_.access_log_max_bytes,
                                    options_.access_log_keep)) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  int fd = -1;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    if (fd >= 0) ::close(fd);
    return false;
  };

  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail("bind");
  }
  if (::listen(fd, SOMAXCONN) < 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return fail("getsockname");
  }
  listen_fd_.store(fd, std::memory_order_release);
  port_ = ntohs(addr.sin_port);

  started_ = std::chrono::steady_clock::now();
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() alone does not unblock accept() on all kernels; closing
    // the fd does. The accept loop re-checks stopping_ on every wake.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void Server::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // Stop() retired the socket
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket gone
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Metrics().connections.Add();
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  for (;;) {
    std::string read_error;
    std::optional<Frame> request = ReadFrame(fd, &read_error);
    if (!request) {
      // Unrecoverable framing gets a parting error frame when the header
      // itself was corrupt (best effort -- the peer may be gone).
      if (!read_error.empty() && read_error != "connection closed mid-frame") {
        WriteFrame(fd, MakeError(read_error == "unsupported protocol version"
                                     ? ErrorCode::kUnsupportedVersion
                                     : ErrorCode::kBadFrame,
                                 read_error));
      }
      break;
    }
    Metrics().frames.Add();
    const Frame reply = HandleFrame(*request);
    if (!WriteFrame(fd, reply)) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
}

Frame Server::HandleFrame(const Frame& request) {
  switch (request.op) {
    case FrameOp::kClassifyRequest:
      return HandleClassify(request);
    case FrameOp::kReloadRequest:
      return HandleReload(request);
    case FrameOp::kStatsRequest:
      return HandleStats();
    case FrameOp::kHealthRequest:
      return HandleHealth();
    default:
      // Unknown or response-typed op: answer, keep the connection -- the
      // framing is sound, only the op is not ours to serve.
      access_log_.Append("op=" + std::to_string(uint16_t(request.op)) +
                         " status=unknown_op");
      return MakeError(ErrorCode::kUnknownOp,
                       "unknown op " + std::to_string(uint16_t(request.op)));
  }
}

Frame Server::HandleClassify(const Frame& request) {
  ClassifyRequest req;
  if (!DecodeClassifyRequest(request.payload, &req)) {
    return MakeError(ErrorCode::kBadFrame, "malformed classify payload");
  }
  const auto logged_error = [&](ErrorCode code, const std::string& message) {
    access_log_.Append("op=classify model=" + req.model +
                       " n=" + std::to_string(req.series.size()) +
                       " status=error msg=" + message);
    return MakeError(code, message);
  };
  if (req.series.empty()) {
    return logged_error(ErrorCode::kBadRequest, "empty classify batch");
  }
  for (const std::vector<double>& s : req.series) {
    if (s.empty()) {
      return logged_error(ErrorCode::kBadRequest, "empty series in batch");
    }
  }
  const std::shared_ptr<const ServedModel> model = registry_->Get(req.model);
  if (model == nullptr) {
    return logged_error(ErrorCode::kUnknownModel,
                        "unknown model \"" + req.model + "\"");
  }

  // Fan the batch into the admission queue one series at a time -- the
  // queue re-coalesces across connections -- and reassemble in order. All
  // futures resolve against the SAME model instance (captured above), so
  // a concurrent hot-swap cannot split this response across versions.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<AdmissionQueue::Result>> futures;
  futures.reserve(req.series.size());
  for (std::vector<double>& s : req.series) {
    futures.push_back(queue_.Submit(model, std::move(s)));
  }
  ClassifyResponse resp;
  resp.model_version = model->version();
  resp.labels.reserve(futures.size());
  for (std::future<AdmissionQueue::Result>& f : futures) {
    resp.labels.push_back(f.get().label);
  }
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  access_log_.Append("op=classify model=" + req.model +
                     " n=" + std::to_string(resp.labels.size()) +
                     " version=" + std::to_string(resp.model_version) +
                     " status=ok latency_us=" + std::to_string(us));

  Frame reply;
  reply.op = FrameOp::kClassifyResponse;
  reply.payload = EncodeClassifyResponse(resp);
  return reply;
}

Frame Server::HandleReload(const Frame& request) {
  ReloadRequest req;
  if (!DecodeReloadRequest(request.payload, &req)) {
    return MakeError(ErrorCode::kBadFrame, "malformed reload payload");
  }
  std::string error;
  const uint32_t version = registry_->Reload(req.model, &error);
  if (version == 0) {
    access_log_.Append("op=reload model=" + req.model + " status=error msg=" +
                       error);
    const bool unknown = error.rfind("unknown model", 0) == 0;
    return MakeError(unknown ? ErrorCode::kUnknownModel
                             : ErrorCode::kReloadFailed,
                     error);
  }
  access_log_.Append("op=reload model=" + req.model +
                     " version=" + std::to_string(version) + " status=ok");
  Frame reply;
  reply.op = FrameOp::kReloadResponse;
  reply.payload = EncodeReloadResponse(ReloadResponse{version});
  return reply;
}

std::string Server::StatsJson() const {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();

  obs::JsonValue models = obs::JsonValue::Object();
  for (const std::string& name : registry_->Names()) {
    const std::shared_ptr<const ServedModel> model = registry_->Get(name);
    if (model == nullptr) continue;
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("version", model->version());
    entry.Set("metric", MetricName(model->metric()));
    entry.Set("shapelets", model->shapelet_count());
    entry.Set("train_size", model->train_size());
    const uint64_t requests =
        snapshot.CounterValue("serve." + name + ".requests");
    entry.Set("requests", requests);
    entry.Set("qps", uptime > 0.0 ? static_cast<double>(requests) / uptime
                                  : 0.0);
    const auto it = snapshot.histograms.find("serve." + name + ".latency_us");
    entry.Set("latency_us", it == snapshot.histograms.end()
                                ? obs::HistogramStatsToJson({})
                                : obs::HistogramStatsToJson(it->second));
    models.Set(name, std::move(entry));
  }

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("uptime_seconds", uptime);
  out.Set("connections", snapshot.CounterValue("serve.connections"));
  out.Set("frames", snapshot.CounterValue("serve.frames"));
  out.Set("errors", snapshot.CounterValue("serve.errors"));
  const auto batches = snapshot.histograms.find("serve.batch_size");
  out.Set("batch_size", batches == snapshot.histograms.end()
                            ? obs::HistogramStatsToJson({})
                            : obs::HistogramStatsToJson(batches->second));
  out.Set("models", std::move(models));
  return out.Dump();
}

Frame Server::HandleStats() {
  Frame reply;
  reply.op = FrameOp::kStatsResponse;
  reply.payload = EncodeStatsResponse(StatsResponse{StatsJson()});
  access_log_.Append("op=stats status=ok");
  return reply;
}

Frame Server::HandleHealth() {
  Frame reply;
  reply.op = FrameOp::kHealthResponse;
  reply.payload = EncodeHealthResponse(
      HealthResponse{static_cast<uint32_t>(registry_->size())});
  access_log_.Append("op=health status=ok");
  return reply;
}

}  // namespace ips::serve
