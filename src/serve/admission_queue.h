// Batching admission queue: coalesces concurrent classify requests into
// IpsClassifier::PredictBatch batches sized by a latency budget.
//
// Single-series requests are the common serving shape, but the transform
// is much cheaper batched (shapelet-side artefacts computed once per
// batch -- the PR 3 PredictBatch path). The queue accepts one series at a
// time and a dispatcher thread drains them in model-grouped batches:
// a batch closes when either `max_batch` requests for the same model
// instance have accumulated or `batch_window_us` has elapsed since the
// batch's oldest request arrived -- the latency budget: no request waits
// longer than one window for company.
//
// Correctness: PredictBatch labels are bitwise identical to the serial
// per-series Predict loop for any batch composition, so coalescing is
// invisible in the responses -- the property bench_serve's checksum gate
// proves end-to-end. Batches group by model INSTANCE (the shared_ptr a
// request arrived with), so a hot-swap mid-queue simply splits batches:
// requests that entered with the old model finish on the old model.
//
// Metrics (docs/serving.md): serve.batch_size histogram,
// serve.<model>.requests counter, serve.<model>.latency_us histogram
// (admission to fulfillment, i.e. queue wait + inference).

#ifndef IPS_SERVE_ADMISSION_QUEUE_H_
#define IPS_SERVE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_registry.h"

namespace ips::serve {

class AdmissionQueue {
 public:
  struct Options {
    /// Longest a request may wait for batch company, in microseconds.
    /// 0 = no coalescing: every request dispatches as soon as the worker
    /// reaches it (still batched with whatever arrived in the meantime).
    int64_t batch_window_us = 500;
    /// Hard batch-size cap; a full batch dispatches immediately.
    size_t max_batch = 64;
  };

  struct Result {
    int label = -1;
    uint32_t model_version = 0;
  };

  explicit AdmissionQueue(Options options);
  /// Drains every pending request, then stops the dispatcher.
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues one series against `model` (non-null, fully loaded). The
  /// future resolves once the series' batch has been classified.
  std::future<Result> Submit(std::shared_ptr<const ServedModel> model,
                             std::vector<double> values);

  /// Batches dispatched so far (test/bench visibility).
  uint64_t batches_dispatched() const;

 private:
  struct Pending {
    std::shared_ptr<const ServedModel> model;
    std::vector<double> values;
    std::promise<Result> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatcherLoop();
  void RunBatch(std::vector<Pending> batch);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  uint64_t batches_ = 0;
  std::thread dispatcher_;
};

}  // namespace ips::serve

#endif  // IPS_SERVE_ADMISSION_QUEUE_H_
