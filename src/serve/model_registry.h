// Concurrent model registry of the shapelet model server.
//
// A "model" is one versioned ips-run artifact (ips/serialization.h)
// rebuilt into a ready-to-serve IpsClassifier: the artifact supplies the
// shapelets and metric, the training split supplies the data the transform
// and back-end are refit on (a saved shapelet set plus the training set is
// sufficient to rebuild a classifier -- the serialization contract).
//
// Lifetime/hot-swap contract (docs/serving.md):
//  * Every registered name owns one slot holding a shared_ptr to an
//    immutable, fully-constructed ServedModel -- the same single-slot
//    pattern as the join scheduler's ArtifactTable: readers copy the
//    pointer under a brief lock and then use the model lock-free for as
//    long as they like.
//  * Load/Reload builds the replacement model entirely OFF the registry
//    lock (artifact parse, training-set load, transform + back-end fit)
//    and only then swaps the slot pointer. A failed build leaves the slot
//    untouched: the old model keeps serving and the error is reported to
//    the caller -- no request can ever observe a half-loaded model.
//  * In-flight requests holding the old shared_ptr finish on the model
//    they started on; the old model is destroyed when the last holder
//    drops it.
//  * Versions are monotonic per slot (1, 2, ...), assigned at swap time;
//    classify responses carry the version so clients can correlate
//    answers with reloads.

#ifndef IPS_SERVE_MODEL_REGISTRY_H_
#define IPS_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/metric.h"
#include "ips/config.h"
#include "ips/pipeline.h"

namespace ips::serve {

/// Where a model comes from: the saved run artifact plus the training
/// split it was discovered on. `train_path` may be either a UCR text file
/// (data/ucr_loader.h) or an `ips-store v1` columnar segment
/// (store/columnar_store.h) -- the registry sniffs the magic and opens the
/// store out-of-core, so serving a model never materialises the training
/// corpus in RAM.
struct ModelSource {
  std::string artifact_path;
  std::string train_path;
  /// Pipeline options for the rebuild (back-end, threads, early-abandon).
  /// The metric is always overridden by the artifact's.
  IpsOptions options;
};

/// One immutable, fully-fitted model. Never mutated after construction;
/// shared by any number of concurrent readers. Classify() is thread-safe
/// (IpsClassifier::PredictBatch is const and allocates per-call scratch).
class ServedModel {
 public:
  const std::string& name() const { return name_; }
  uint32_t version() const { return version_; }
  MetricId metric() const { return classifier_.result().metric; }
  size_t shapelet_count() const {
    return classifier_.result().shapelets.size();
  }
  size_t train_size() const { return train_size_; }

  /// Batched classification; out[i] is the label of batch[i]. Bitwise
  /// identical to a serial per-series Predict loop (the PredictBatch
  /// contract), which is what makes admission-queue coalescing invisible.
  std::vector<int> Classify(const DatasetView& batch) const {
    return classifier_.PredictBatch(batch);
  }

 private:
  friend class ModelRegistry;
  explicit ServedModel(IpsOptions options) : classifier_(std::move(options)) {}

  std::string name_;
  uint32_t version_ = 0;
  size_t train_size_ = 0;
  IpsClassifier classifier_;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `name` (first call) or hot-swaps it (subsequent calls) from
  /// `source`. Builds off-lock, swaps atomically on success. Returns the
  /// new slot version (>= 1), or 0 with `*error` set on failure -- in
  /// which case a previously-registered model keeps serving unchanged.
  uint32_t Load(const std::string& name, const ModelSource& source,
                std::string* error = nullptr);

  /// Re-reads `name`'s recorded source from disk and hot-swaps. Same
  /// contract as Load; 0 when the name was never registered.
  uint32_t Reload(const std::string& name, std::string* error = nullptr);

  /// The current model under `name`, or nullptr. The returned pointer is
  /// valid for as long as the caller holds it, across any number of
  /// subsequent swaps.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  struct Slot {
    ModelSource source;
    std::shared_ptr<const ServedModel> model;
    uint32_t next_version = 1;
  };

  /// Builds a ServedModel from `source` (no locks held). nullptr + error
  /// on any failure. The version is stamped later, at swap time.
  static std::shared_ptr<ServedModel> Build(const std::string& name,
                                            const ModelSource& source,
                                            std::string* error);

  mutable std::mutex mu_;   ///< guards slots_ (map shape + slot pointers)
  std::mutex load_mu_;      ///< serialises builders so concurrent reloads
                            ///< of one name cannot race version order
  std::map<std::string, Slot> slots_;
};

}  // namespace ips::serve

#endif  // IPS_SERVE_MODEL_REGISTRY_H_
