#include "serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include <bit>

namespace ips::serve {

namespace {

// Little-endian append/read primitives. Explicit byte packing so the wire
// format is identical on every host.

void AppendU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendDouble(std::vector<uint8_t>& out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

void AppendString(std::vector<uint8_t>& out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Sequential reader over a payload span; every Read* fails on overrun and
/// poisons the reader so one check at the end suffices.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  bool ReadU16(uint16_t* v) {
    if (!Require(2)) return false;
    *v = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (!Require(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len) || !Require(len)) return false;
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  /// A declared element count must fit in the remaining bytes at
  /// `min_bytes_each` apiece, or the payload is corrupt -- checked before
  /// any reserve so hostile counts cannot drive allocations.
  bool ReadCount(uint32_t* count, size_t min_bytes_each) {
    if (!ReadU32(count)) return false;
    return static_cast<size_t>(*count) * min_bytes_each <= Remaining();
  }

  size_t Remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool ReadExact(int fd, uint8_t* buf, size_t n, bool* clean_eof,
               std::string* error) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (clean_eof != nullptr) *clean_eof = got == 0;
      if (error != nullptr) {
        *error = got == 0 ? "" : "connection closed mid-frame";
      }
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (clean_eof != nullptr) *clean_eof = false;
      if (error != nullptr) {
        *error = std::string("read failed: ") + std::strerror(errno);
      }
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteAll(int fd, const uint8_t* buf, size_t n, std::string* error) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, buf + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("write failed: ") + std::strerror(errno);
      }
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + frame.payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  AppendU16(out, kProtocolVersion);
  AppendU16(out, static_cast<uint16_t>(frame.op));
  AppendU32(out, static_cast<uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

DecodeStatus DecodeFrame(std::span<const uint8_t> data, Frame* out,
                         size_t* consumed) {
  if (data.size() < kHeaderBytes) {
    // A short prefix that already contradicts the magic is malformed, not
    // "need more": nothing appended later can repair it.
    for (size_t i = 0; i < data.size() && i < 4; ++i) {
      if (data[i] != kMagic[i]) return DecodeStatus::kMalformed;
    }
    return DecodeStatus::kNeedMore;
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return DecodeStatus::kMalformed;
  }
  PayloadReader header(data.subspan(4, kHeaderBytes - 4));
  uint16_t version = 0, op = 0;
  uint32_t payload_len = 0;
  header.ReadU16(&version);
  header.ReadU16(&op);
  header.ReadU32(&payload_len);
  if (version != kProtocolVersion) return DecodeStatus::kMalformed;
  if (payload_len > kMaxPayloadBytes) return DecodeStatus::kMalformed;
  if (data.size() < kHeaderBytes + payload_len) return DecodeStatus::kNeedMore;
  out->op = static_cast<FrameOp>(op);
  out->payload.assign(data.begin() + kHeaderBytes,
                      data.begin() + kHeaderBytes + payload_len);
  if (consumed != nullptr) *consumed = kHeaderBytes + payload_len;
  return DecodeStatus::kOk;
}

std::vector<uint8_t> EncodeClassifyRequest(const ClassifyRequest& req) {
  std::vector<uint8_t> out;
  AppendString(out, req.model);
  AppendU32(out, static_cast<uint32_t>(req.series.size()));
  for (const std::vector<double>& s : req.series) {
    AppendU32(out, static_cast<uint32_t>(s.size()));
    for (double v : s) AppendDouble(out, v);
  }
  return out;
}

bool DecodeClassifyRequest(std::span<const uint8_t> payload,
                           ClassifyRequest* out) {
  PayloadReader in(payload);
  if (!in.ReadString(&out->model)) return false;
  uint32_t count = 0;
  if (!in.ReadCount(&count, /*min_bytes_each=*/4)) return false;
  out->series.clear();
  out->series.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!in.ReadCount(&len, /*min_bytes_each=*/8)) return false;
    std::vector<double> values(len);
    for (uint32_t j = 0; j < len; ++j) {
      if (!in.ReadDouble(&values[j])) return false;
    }
    out->series.push_back(std::move(values));
  }
  return in.AtEnd();
}

std::vector<uint8_t> EncodeClassifyResponse(const ClassifyResponse& resp) {
  std::vector<uint8_t> out;
  AppendU32(out, resp.model_version);
  AppendU32(out, static_cast<uint32_t>(resp.labels.size()));
  for (int32_t label : resp.labels) {
    AppendU32(out, static_cast<uint32_t>(label));
  }
  return out;
}

bool DecodeClassifyResponse(std::span<const uint8_t> payload,
                            ClassifyResponse* out) {
  PayloadReader in(payload);
  if (!in.ReadU32(&out->model_version)) return false;
  uint32_t count = 0;
  if (!in.ReadCount(&count, /*min_bytes_each=*/4)) return false;
  out->labels.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    if (!in.ReadU32(&v)) return false;
    out->labels[i] = static_cast<int32_t>(v);
  }
  return in.AtEnd();
}

std::vector<uint8_t> EncodeReloadRequest(const ReloadRequest& req) {
  std::vector<uint8_t> out;
  AppendString(out, req.model);
  return out;
}

bool DecodeReloadRequest(std::span<const uint8_t> payload,
                         ReloadRequest* out) {
  PayloadReader in(payload);
  return in.ReadString(&out->model) && in.AtEnd();
}

std::vector<uint8_t> EncodeReloadResponse(const ReloadResponse& resp) {
  std::vector<uint8_t> out;
  AppendU32(out, resp.model_version);
  return out;
}

bool DecodeReloadResponse(std::span<const uint8_t> payload,
                          ReloadResponse* out) {
  PayloadReader in(payload);
  return in.ReadU32(&out->model_version) && in.AtEnd();
}

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp) {
  std::vector<uint8_t> out;
  AppendString(out, resp.json);
  return out;
}

bool DecodeStatsResponse(std::span<const uint8_t> payload,
                         StatsResponse* out) {
  PayloadReader in(payload);
  return in.ReadString(&out->json) && in.AtEnd();
}

std::vector<uint8_t> EncodeHealthResponse(const HealthResponse& resp) {
  std::vector<uint8_t> out;
  AppendU32(out, resp.model_count);
  return out;
}

bool DecodeHealthResponse(std::span<const uint8_t> payload,
                          HealthResponse* out) {
  PayloadReader in(payload);
  return in.ReadU32(&out->model_count) && in.AtEnd();
}

std::vector<uint8_t> EncodeErrorFrame(const ErrorFrame& err) {
  std::vector<uint8_t> out;
  AppendU32(out, static_cast<uint32_t>(err.code));
  AppendString(out, err.message);
  return out;
}

bool DecodeErrorFrame(std::span<const uint8_t> payload, ErrorFrame* out) {
  PayloadReader in(payload);
  uint32_t code = 0;
  if (!in.ReadU32(&code) || !in.ReadString(&out->message) || !in.AtEnd()) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  return true;
}

std::optional<Frame> ReadFrame(int fd, std::string* error) {
  uint8_t header[kHeaderBytes];
  bool clean_eof = false;
  if (!ReadExact(fd, header, kHeaderBytes, &clean_eof, error)) {
    return std::nullopt;
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    if (error != nullptr) *error = "bad frame magic";
    return std::nullopt;
  }
  PayloadReader in(std::span<const uint8_t>(header + 4, kHeaderBytes - 4));
  uint16_t version = 0, op = 0;
  uint32_t payload_len = 0;
  in.ReadU16(&version);
  in.ReadU16(&op);
  in.ReadU32(&payload_len);
  if (version != kProtocolVersion) {
    if (error != nullptr) *error = "unsupported protocol version";
    return std::nullopt;
  }
  if (payload_len > kMaxPayloadBytes) {
    if (error != nullptr) *error = "oversized frame payload";
    return std::nullopt;
  }
  Frame frame;
  frame.op = static_cast<FrameOp>(op);
  frame.payload.resize(payload_len);
  if (payload_len > 0 &&
      !ReadExact(fd, frame.payload.data(), payload_len, nullptr, error)) {
    return std::nullopt;
  }
  return frame;
}

bool WriteFrame(int fd, const Frame& frame, std::string* error) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  return WriteAll(fd, bytes.data(), bytes.size(), error);
}

}  // namespace ips::serve
