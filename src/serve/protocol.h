// Wire protocol of the shapelet model server (docs/serving.md).
//
// Every message is one length-prefixed frame, little-endian throughout:
//
//   offset  size  field
//   0       4     magic "IPSF"
//   4       2     protocol version (kProtocolVersion; a reader rejects a
//                 version it does not speak with an explicit error frame)
//   6       2     op (FrameOp)
//   8       4     payload length in bytes (<= kMaxPayloadBytes)
//   12      n     payload, op-specific
//
// Doubles travel as their IEEE-754 bit pattern (8 bytes, little-endian),
// so a series round-trips the wire bit-exactly -- the property the
// serving-vs-offline bitwise parity gate (bench_serve) rests on. Strings
// and vectors are u32-length-prefixed. Malformed payloads decode to
// failure, never to a partial struct the server could act on.
//
// Request/response pairs: classify, reload, stats, health. Any failure is
// answered with an explicit kError frame (ErrorCode + message) on the same
// connection -- the connection itself is only dropped when framing is
// unrecoverable (bad magic / oversized length), since nothing after a
// corrupt header can be trusted.

#ifndef IPS_SERVE_PROTOCOL_H_
#define IPS_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ips::serve {

inline constexpr uint8_t kMagic[4] = {'I', 'P', 'S', 'F'};
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 12;
/// Upper bound on one frame's payload; a header declaring more is treated
/// as framing corruption (kMalformed), not an allocation request.
inline constexpr size_t kMaxPayloadBytes = 64u << 20;

enum class FrameOp : uint16_t {
  kClassifyRequest = 1,
  kClassifyResponse = 2,
  kReloadRequest = 3,
  kReloadResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kHealthRequest = 7,
  kHealthResponse = 8,
  kError = 9,
};

enum class ErrorCode : uint32_t {
  kBadFrame = 1,       ///< header ok, payload does not decode
  kUnknownOp = 2,      ///< op outside FrameOp (connection stays open)
  kUnknownModel = 3,   ///< no model registered under the requested name
  kBadRequest = 4,     ///< decodable but invalid (e.g. empty series)
  kReloadFailed = 5,   ///< artifact reload failed; old model still serving
  kUnsupportedVersion = 6,  ///< frame speaks a protocol we do not
  kInternal = 7,
};

/// One decoded frame: the op plus its raw payload bytes.
struct Frame {
  FrameOp op = FrameOp::kError;
  std::vector<uint8_t> payload;
};

// ------------------------------------------------------------- payloads

struct ClassifyRequest {
  std::string model;
  /// The query batch; labels are unknown, so plain value vectors.
  std::vector<std::vector<double>> series;
};

struct ClassifyResponse {
  /// Version of the registry slot that served the batch (monotonic per
  /// model name); lets a client correlate answers with reloads.
  uint32_t model_version = 0;
  std::vector<int32_t> labels;
};

struct ReloadRequest {
  std::string model;
};

struct ReloadResponse {
  uint32_t model_version = 0;  ///< the freshly-swapped-in version
};

struct StatsResponse {
  std::string json;  ///< the obs-schema stats document (docs/serving.md)
};

struct HealthResponse {
  uint32_t model_count = 0;
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// ------------------------------------------------------------- framing

/// Serialises header + payload into one contiguous buffer.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

enum class DecodeStatus {
  kOk,        ///< one whole frame consumed
  kNeedMore,  ///< valid prefix; read more bytes and retry
  kMalformed, ///< bad magic, unknown protocol version or oversized length
};

/// Decodes the first frame of `data`. On kOk fills `out` and sets
/// `consumed` to the frame's total size; on kNeedMore/kMalformed leaves
/// both untouched. An op value outside FrameOp still decodes kOk (the
/// dispatcher answers kUnknownOp; the framing itself is sound).
DecodeStatus DecodeFrame(std::span<const uint8_t> data, Frame* out,
                         size_t* consumed);

// ------------------------------------------- payload encoders/decoders
// Decoders return false on any truncation, trailing garbage or declared
// length exceeding the bytes present; `out` contents are unspecified then.

std::vector<uint8_t> EncodeClassifyRequest(const ClassifyRequest& req);
bool DecodeClassifyRequest(std::span<const uint8_t> payload,
                           ClassifyRequest* out);

std::vector<uint8_t> EncodeClassifyResponse(const ClassifyResponse& resp);
bool DecodeClassifyResponse(std::span<const uint8_t> payload,
                            ClassifyResponse* out);

std::vector<uint8_t> EncodeReloadRequest(const ReloadRequest& req);
bool DecodeReloadRequest(std::span<const uint8_t> payload, ReloadRequest* out);

std::vector<uint8_t> EncodeReloadResponse(const ReloadResponse& resp);
bool DecodeReloadResponse(std::span<const uint8_t> payload,
                          ReloadResponse* out);

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp);
bool DecodeStatsResponse(std::span<const uint8_t> payload, StatsResponse* out);

std::vector<uint8_t> EncodeHealthResponse(const HealthResponse& resp);
bool DecodeHealthResponse(std::span<const uint8_t> payload,
                          HealthResponse* out);

std::vector<uint8_t> EncodeErrorFrame(const ErrorFrame& err);
bool DecodeErrorFrame(std::span<const uint8_t> payload, ErrorFrame* out);

// ------------------------------------------------------------ socket I/O

/// Reads exactly one frame from `fd` (blocking, EINTR-retrying). Returns
/// nullopt on EOF before any byte (clean close), on mid-frame EOF, on
/// read error, or on a malformed header; `*error` distinguishes the cases
/// when provided (empty string for the clean-close case).
std::optional<Frame> ReadFrame(int fd, std::string* error = nullptr);

/// Writes the frame with retrying partial writes. False on write error.
bool WriteFrame(int fd, const Frame& frame, std::string* error = nullptr);

}  // namespace ips::serve

#endif  // IPS_SERVE_PROTOCOL_H_
