// The shapelet model server: a long-lived daemon core serving classify /
// reload / stats / health over the length-prefixed frame protocol
// (serve/protocol.h) against a hot-swappable ModelRegistry.
//
// Threading: one accept thread plus one thread per live connection.
// Classify payloads are fanned into the AdmissionQueue one series at a
// time (so independent connections coalesce into shared PredictBatch
// batches) and reassembled in request order. Reload runs on the
// connection's own thread -- in-flight classifies keep the model pointer
// they were admitted with, so a reload never stalls or corrupts them.
//
// Error contract: every decodable-but-unservable request is answered with
// an explicit kError frame on the same connection (unknown op, unknown
// model, empty batch, empty series, failed reload). Only unrecoverable
// framing (bad magic, unsupported protocol version, oversized declared
// payload) closes the connection, because nothing after a corrupt header
// can be trusted.
//
// Observability: per-model serve.<model>.requests / .latency_us plus the
// shared serve.batch_size histogram come from the admission queue;
// the server adds serve.connections / serve.frames / serve.errors and an
// optional size-rotated access log (serve/log_rotate.h). Stats() exports
// the lot in the shared obs JSON schema (docs/serving.md).

#ifndef IPS_SERVE_SERVER_H_
#define IPS_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission_queue.h"
#include "serve/log_rotate.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace ips::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port (read
  /// it back with port() -- the tests and bench run this way).
  int port = 0;
  AdmissionQueue::Options queue;
  /// Access-log destination; empty disables logging.
  std::string access_log_path;
  size_t access_log_max_bytes = 1u << 20;
  int access_log_keep = 3;
};

class Server {
 public:
  /// The registry outlives the server; it may be shared (e.g. a control
  /// plane reloading models while the server serves).
  Server(ModelRegistry* registry, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port> and starts the accept loop. False + error on
  /// bind/listen failure.
  bool Start(std::string* error = nullptr);

  /// Stops accepting, unblocks and joins every connection thread. Safe to
  /// call twice; the destructor calls it.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  /// The stats document served to kStatsRequest, as a JSON string:
  /// uptime, per-model request/latency/version blocks and the shared
  /// batching histogram. Exposed for tests.
  std::string StatsJson() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Dispatches one request frame to its handler; returns the reply.
  Frame HandleFrame(const Frame& request);

  Frame HandleClassify(const Frame& request);
  Frame HandleReload(const Frame& request);
  Frame HandleStats();
  Frame HandleHealth();

  ModelRegistry* const registry_;
  const ServerOptions options_;

  /// Written by Start()/Stop(), read by the accept thread every wake --
  /// atomic so Stop() can retire the fd while accept() is blocked on it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< open sockets, shutdown() on Stop

  AdmissionQueue queue_;
  RotatingLog access_log_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace ips::serve

#endif  // IPS_SERVE_SERVER_H_
