// Blocking client for the serve protocol: one connection, synchronous
// request/response. Used by the bench/soak driver (bench_serve), the
// protocol smoke tests, and as the reference for writing clients in other
// languages (the protocol is fully specified in serve/protocol.h and
// docs/serving.md).
//
// Error handling: every call returns nullopt on transport failure OR when
// the server answered with an error frame; `*error` carries the reason
// (prefixed "server:" for error frames). Not thread-safe -- one client per
// thread, the serving model.

#ifndef IPS_SERVE_CLIENT_H_
#define IPS_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ips::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  bool Connect(const std::string& host, int port,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Classifies a batch; the response carries the serving model version.
  std::optional<ClassifyResponse> Classify(
      const std::string& model, const std::vector<std::vector<double>>& batch,
      std::string* error = nullptr);

  /// Asks the server to hot-swap `model` from its recorded source.
  /// Returns the new model version.
  std::optional<uint32_t> Reload(const std::string& model,
                                 std::string* error = nullptr);

  /// The server's stats document (JSON, docs/serving.md schema).
  std::optional<std::string> Stats(std::string* error = nullptr);

  /// Health probe; returns the resident model count.
  std::optional<uint32_t> Health(std::string* error = nullptr);

  /// Sends a raw frame and returns the raw reply -- the escape hatch the
  /// protocol tests use to exercise unknown ops and malformed payloads.
  std::optional<Frame> RoundTrip(const Frame& request,
                                 std::string* error = nullptr);

 private:
  /// RoundTrip + expect `op`; error frames and op mismatches fail.
  std::optional<Frame> Call(FrameOp op, std::vector<uint8_t> payload,
                            FrameOp expected, std::string* error);

  int fd_ = -1;
};

}  // namespace ips::serve

#endif  // IPS_SERVE_CLIENT_H_
