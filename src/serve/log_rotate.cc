#include "serve/log_rotate.h"

#include <cstdio>

#include <utility>

namespace ips::serve {

RotatingLog::RotatingLog(std::string path, size_t max_bytes, int keep)
    : path_(std::move(path)), max_bytes_(max_bytes), keep_(keep) {
  std::lock_guard<std::mutex> lock(mu_);
  OpenLocked();
}

void RotatingLog::OpenLocked() {
  // ::ate (not just ::app) so tellp reports the existing size up front:
  // rotation thresholds survive a daemon restart.
  out_.open(path_, std::ios::app | std::ios::ate);
  const auto pos = out_ ? out_.tellp() : std::ofstream::pos_type(0);
  size_ = pos < 0 ? 0 : static_cast<size_t>(pos);
}

void RotatingLog::RotateLocked() {
  out_.close();
  if (keep_ <= 0) {
    std::remove(path_.c_str());
  } else {
    std::remove((path_ + "." + std::to_string(keep_)).c_str());
    for (int g = keep_ - 1; g >= 1; --g) {
      std::rename((path_ + "." + std::to_string(g)).c_str(),
                  (path_ + "." + std::to_string(g + 1)).c_str());
    }
    std::rename(path_.c_str(), (path_ + ".1").c_str());
  }
  out_.clear();
  OpenLocked();
}

void RotatingLog::Append(std::string_view line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  const size_t bytes = line.size() + 1;
  if (size_ > 0 && size_ + bytes > max_bytes_) RotateLocked();
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.put('\n');
  out_.flush();
  size_ += bytes;
}

size_t RotatingLog::current_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace ips::serve
