#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <utility>

namespace ips::serve {

namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    SetError(error, "unparsable host \"" + host + "\"");
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, std::string("connect: ") + std::strerror(errno));
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

std::optional<Frame> Client::RoundTrip(const Frame& request,
                                       std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return std::nullopt;
  }
  if (!WriteFrame(fd_, request, error)) return std::nullopt;
  std::string read_error;
  std::optional<Frame> reply = ReadFrame(fd_, &read_error);
  if (!reply) {
    SetError(error, read_error.empty() ? "connection closed" : read_error);
    return std::nullopt;
  }
  return reply;
}

std::optional<Frame> Client::Call(FrameOp op, std::vector<uint8_t> payload,
                                  FrameOp expected, std::string* error) {
  Frame request;
  request.op = op;
  request.payload = std::move(payload);
  std::optional<Frame> reply = RoundTrip(request, error);
  if (!reply) return std::nullopt;
  if (reply->op == FrameOp::kError) {
    ErrorFrame err;
    SetError(error, DecodeErrorFrame(reply->payload, &err)
                        ? "server: " + err.message
                        : "server: undecodable error frame");
    return std::nullopt;
  }
  if (reply->op != expected) {
    SetError(error, "unexpected reply op " +
                        std::to_string(static_cast<uint16_t>(reply->op)));
    return std::nullopt;
  }
  return reply;
}

std::optional<ClassifyResponse> Client::Classify(
    const std::string& model, const std::vector<std::vector<double>>& batch,
    std::string* error) {
  ClassifyRequest req;
  req.model = model;
  req.series = batch;
  std::optional<Frame> reply =
      Call(FrameOp::kClassifyRequest, EncodeClassifyRequest(req),
           FrameOp::kClassifyResponse, error);
  if (!reply) return std::nullopt;
  ClassifyResponse resp;
  if (!DecodeClassifyResponse(reply->payload, &resp)) {
    SetError(error, "undecodable classify response");
    return std::nullopt;
  }
  return resp;
}

std::optional<uint32_t> Client::Reload(const std::string& model,
                                       std::string* error) {
  std::optional<Frame> reply =
      Call(FrameOp::kReloadRequest, EncodeReloadRequest(ReloadRequest{model}),
           FrameOp::kReloadResponse, error);
  if (!reply) return std::nullopt;
  ReloadResponse resp;
  if (!DecodeReloadResponse(reply->payload, &resp)) {
    SetError(error, "undecodable reload response");
    return std::nullopt;
  }
  return resp.model_version;
}

std::optional<std::string> Client::Stats(std::string* error) {
  std::optional<Frame> reply =
      Call(FrameOp::kStatsRequest, {}, FrameOp::kStatsResponse, error);
  if (!reply) return std::nullopt;
  StatsResponse resp;
  if (!DecodeStatsResponse(reply->payload, &resp)) {
    SetError(error, "undecodable stats response");
    return std::nullopt;
  }
  return resp.json;
}

std::optional<uint32_t> Client::Health(std::string* error) {
  std::optional<Frame> reply =
      Call(FrameOp::kHealthRequest, {}, FrameOp::kHealthResponse, error);
  if (!reply) return std::nullopt;
  HealthResponse resp;
  if (!DecodeHealthResponse(reply->payload, &resp)) {
    SetError(error, "undecodable health response");
    return std::nullopt;
  }
  return resp.model_count;
}

}  // namespace ips::serve
