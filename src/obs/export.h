// Exporters for the observability layer: the machine-readable JSON schema
// shared by every BENCH_*.json artefact and saved run, and the
// human-readable span tree rendered through util/table_printer.
//
// JSON schema (docs/observability.md documents it in full):
//
//   trace:   {"spans": [{"path": "a/b", "count": N, "seconds": S}, ...]}
//   metrics: {"counters": {"name": N, ...},
//             "histograms": {"name": {"count": N, "sum": S,
//                            "buckets": [{"ge": LB, "count": N}, ...]}}}
//   report:  {"trace": <trace>, "metrics": <metrics>}
//
// Histogram buckets are emitted sparsely (zero buckets dropped); "ge" is
// the bucket's inclusive lower bound. TraceFromJson inverts TraceToJson so
// a saved run's trace block round-trips (ips/serialization).

#ifndef IPS_OBS_EXPORT_H_
#define IPS_OBS_EXPORT_H_

#include <optional>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ips::obs {

JsonValue TraceToJson(const TraceReport& report);
std::optional<TraceReport> TraceFromJson(const JsonValue& json);

JsonValue MetricsToJson(const MetricsSnapshot& snapshot);

/// One histogram as summary statistics rather than buckets:
///   {"count": N, "sum": S, "mean": M, "p50": Q, "p99": Q}
/// (quantiles via HistogramSnapshot::ValueAtQuantile, so accurate to the
/// power-of-two bucket width). The per-model latency blocks of the serve
/// stats endpoint use this form; the full bucket form stays available
/// through MetricsToJson.
JsonValue HistogramStatsToJson(const HistogramSnapshot& snapshot);

/// {"trace": ..., "metrics": ...} -- the top-level run/benchmark schema.
JsonValue ReportToJson(const TraceReport& trace,
                       const MetricsSnapshot& metrics);

/// Writes `json.Dump(2)` plus a trailing newline. False on I/O failure.
bool WriteJsonFile(const JsonValue& json, const std::string& path);

/// Renders the report as an aligned tree table: one row per span path,
/// indented by nesting depth, with count, summed seconds, and each span's
/// share of its parent's time. Top-level spans show their share of the
/// summed top-level time instead.
std::string FormatTraceTree(const TraceReport& report);

}  // namespace ips::obs

#endif  // IPS_OBS_EXPORT_H_
