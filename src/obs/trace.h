// Low-overhead span tracer: RAII wall-clock attribution by nesting path.
//
// A Span marks one timed section; spans opened while another span is alive
// on the same thread nest under it, and the full slash-joined path
// ("fit/discover/candidate_gen/instance_profile") is the aggregation key.
// On destruction a span folds its monotonic-clock duration into the
// process-wide TraceRegistry: one mutex-guarded map update per span, so
// spans belong on stage and batch boundaries, not inner loops (counters in
// obs/metrics.h cover per-item events).
//
// Run-level attribution is a delta of two snapshots, exactly like the
// metrics registry: capture TraceRegistry::Snapshot() before the run and
// DeltaSince() after. Aggregated times are monotonic, so deltas are safe
// under concurrent runs (a concurrent run's spans are attributed to
// whichever observer's window they land in -- same contract as the
// pre-existing thread-pool counter deltas).
//
// Threading: a Span must be destroyed on the thread that created it, in
// LIFO order (automatic storage guarantees both). Spans created on pool
// worker threads have no parent there and root their own path -- the tree
// printer renders them as top-level entries.
//
// Kill switch: compiling with -DIPS_DISABLE_TRACING (the CMake option of
// the same name) replaces Span with an empty type; IPS_SPAN expands to a
// no-op object the optimiser deletes, making tracing zero-cost. Discovery
// output is bitwise identical either way -- spans only observe, a claim
// CI enforces by diffing discovery fingerprints across the two builds.

#ifndef IPS_OBS_TRACE_H_
#define IPS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ips::obs {

/// Cumulative totals of one span path.
struct SpanStats {
  uint64_t count = 0;    ///< completed spans on this path
  double seconds = 0.0;  ///< summed wall-clock duration
};

/// Point-in-time copy of the registry's per-path aggregation (ordered so
/// every rendering is deterministic).
using TraceSnapshot = std::map<std::string, SpanStats>;

/// One aggregated span of a report: a path plus its totals.
struct TraceSpan {
  std::string path;
  uint64_t count = 0;
  double seconds = 0.0;

  /// Last path segment ("candidate_gen" for "fit/discover/candidate_gen").
  std::string Leaf() const;
  /// Nesting depth: number of '/' separators in the path.
  size_t Depth() const;
};

/// The spans of one observation window, sorted by path (parents precede
/// children). The unit RunResult carries and the exporters consume.
struct TraceReport {
  std::vector<TraceSpan> spans;

  bool empty() const { return spans.empty(); }
  /// The span with exactly this path, or nullptr.
  const TraceSpan* Find(const std::string& path) const;
  /// Summed seconds over every span whose Leaf() == `leaf`. How
  /// IpsRunStats::FromRegistry maps stage names to fields regardless of
  /// which pipeline entry point (and hence path prefix) produced them.
  double LeafSeconds(const std::string& leaf) const;
  /// Summed count over every span whose Leaf() == `leaf`.
  uint64_t LeafCount(const std::string& leaf) const;
};

class TraceRegistry {
 public:
  /// The process-wide registry (leaky singleton, like MetricsRegistry).
  static TraceRegistry& Instance();

  TraceRegistry(const TraceRegistry&) = delete;
  TraceRegistry& operator=(const TraceRegistry&) = delete;

  /// Folds one completed span into the aggregation. Called by ~Span; also
  /// the hook for recording externally-timed sections under a fixed path.
  void Record(const std::string& path, double seconds);

  TraceSnapshot Snapshot() const;

  /// Per-path `after - before`, dropping zero-count entries.
  static TraceReport Delta(const TraceSnapshot& before,
                           const TraceSnapshot& after);

  /// Delta(before, Snapshot()).
  TraceReport DeltaSince(const TraceSnapshot& before) const;

 private:
  TraceRegistry() = default;

  mutable std::mutex mu_;
  TraceSnapshot totals_;
};

#if !defined(IPS_DISABLE_TRACING)

inline constexpr bool kTracingEnabled = true;

/// RAII timed section. See the file comment for nesting and threading.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The slash-joined aggregation path of this span.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Span* parent_;
  std::chrono::steady_clock::time_point start_;
};

#else  // IPS_DISABLE_TRACING

inline constexpr bool kTracingEnabled = false;

/// Zero-cost stand-in: constructing it does nothing, so IPS_SPAN sites
/// compile away entirely.
class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // IPS_DISABLE_TRACING

#define IPS_OBS_CONCAT_INNER(a, b) a##b
#define IPS_OBS_CONCAT(a, b) IPS_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope:
///   IPS_SPAN("pruning");
#define IPS_SPAN(name) \
  ::ips::obs::Span IPS_OBS_CONCAT(ips_obs_span_, __LINE__)(name)

}  // namespace ips::obs

#endif  // IPS_OBS_TRACE_H_
