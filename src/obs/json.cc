#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ips::obs {

namespace {

const JsonValue& NullSentinel() {
  static const JsonValue null;
  return null;
}

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional lossy stand-in.
    out += "null";
    return;
  }
  char buf[40];
  // Integral values within the exactly-representable range print as
  // integers (counters stay grep-able); everything else round-trips via
  // max_digits10.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    std::optional<JsonValue> value = ParseValue();
    if (!value) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          if (code > 0xFF) return std::nullopt;  // see header comment
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return JsonValue(v);
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    for (;;) {
      std::optional<JsonValue> element = ParseValue();
      if (!element) return std::nullopt;
      out.Append(std::move(*element));
      if (Consume(']')) return out;
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    for (;;) {
      SkipWhitespace();
      std::optional<std::string> key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      std::optional<JsonValue> value = ParseValue();
      if (!value) return std::nullopt;
      out.Set(*key, std::move(*value));
      if (Consume('}')) return out;
      if (!Consume(',')) return std::nullopt;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t JsonValue::AsUint64(uint64_t fallback) const {
  if (!is_number() || number_ < 0.0 || number_ != std::floor(number_)) {
    return fallback;
  }
  return static_cast<uint64_t>(number_);
}

void JsonValue::Append(JsonValue value) {
  if (kind_ != Kind::kArray) {
    kind_ = Kind::kArray;
    array_.clear();
  }
  array_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return members_.size();
  return 0;
}

const JsonValue& JsonValue::At(size_t index) const {
  if (!is_array() || index >= array_.size()) return NullSentinel();
  return array_[index];
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::kObject) {
    kind_ = Kind::kObject;
    members_.clear();
  }
  for (auto& [existing, existing_value] : members_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [existing, value] : members_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : NullSentinel();
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: AppendNumber(out, number_); break;
    case Kind::kString: AppendEscaped(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace ips::obs
