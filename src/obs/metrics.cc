#include "obs/metrics.h"

namespace ips::obs {

double HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile among `count` samples, 1-based; walk
  // the buckets until the cumulative count reaches it.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = static_cast<double>(Histogram::BucketLowerBound(b));
    // The open-ended last bucket has no width to interpolate across.
    if (b + 1 == Histogram::kBuckets) return lower;
    const double upper =
        static_cast<double>(Histogram::BucketLowerBound(b + 1));
    const double frac = (rank - before) / static_cast<double>(buckets[b]);
    return lower + (upper - lower) * frac;
  }
  return static_cast<double>(
      Histogram::BucketLowerBound(Histogram::kBuckets - 1));
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaky: worker threads and atexit hooks may increment counters during
  // process teardown, after static destructors would have run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::unique_ptr<Counter>(new Counter());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::unique_ptr<Histogram>(new Histogram());
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] = histogram->BucketCount(b);
    }
    snapshot.histograms.emplace(name, h);
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const uint64_t prior = before.CounterValue(name);
    if (value > prior) delta.counters.emplace(name, value - prior);
  }
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot d = h;
    if (const auto it = before.histograms.find(name);
        it != before.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        d.buckets[b] -= it->second.buckets[b];
      }
    }
    if (d.count != 0) delta.histograms.emplace(name, d);
  }
  return delta;
}

MetricsSnapshot MetricsRegistry::DeltaSince(
    const MetricsSnapshot& before) const {
  return Delta(before, Snapshot());
}

}  // namespace ips::obs
