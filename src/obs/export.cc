#include "obs/export.h"

#include <fstream>

#include "util/table_printer.h"

namespace ips::obs {

JsonValue TraceToJson(const TraceReport& report) {
  JsonValue spans = JsonValue::Array();
  for (const TraceSpan& span : report.spans) {
    JsonValue entry = JsonValue::Object();
    entry.Set("path", span.path);
    entry.Set("count", span.count);
    entry.Set("seconds", span.seconds);
    spans.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("spans", std::move(spans));
  return out;
}

std::optional<TraceReport> TraceFromJson(const JsonValue& json) {
  const JsonValue* spans = json.Find("spans");
  if (spans == nullptr || !spans->is_array()) return std::nullopt;
  TraceReport report;
  for (size_t i = 0; i < spans->size(); ++i) {
    const JsonValue& entry = spans->At(i);
    const JsonValue* path = entry.Find("path");
    if (path == nullptr || !path->is_string()) return std::nullopt;
    TraceSpan span;
    span.path = path->AsString();
    span.count = entry.Get("count").AsUint64();
    span.seconds = entry.Get("seconds").AsDouble();
    report.spans.push_back(std::move(span));
  }
  return report;
}

JsonValue MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    JsonValue buckets = JsonValue::Array();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      JsonValue bucket = JsonValue::Object();
      bucket.Set("ge", Histogram::BucketLowerBound(b));
      bucket.Set("count", h.buckets[b]);
      buckets.Append(std::move(bucket));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("count", h.count);
    entry.Set("sum", h.sum);
    entry.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters));
  out.Set("histograms", std::move(histograms));
  return out;
}

JsonValue HistogramStatsToJson(const HistogramSnapshot& snapshot) {
  JsonValue out = JsonValue::Object();
  out.Set("count", snapshot.count);
  out.Set("sum", snapshot.sum);
  out.Set("mean", snapshot.count == 0
                      ? 0.0
                      : static_cast<double>(snapshot.sum) /
                            static_cast<double>(snapshot.count));
  out.Set("p50", snapshot.ValueAtQuantile(0.5));
  out.Set("p99", snapshot.ValueAtQuantile(0.99));
  return out;
}

JsonValue ReportToJson(const TraceReport& trace,
                       const MetricsSnapshot& metrics) {
  JsonValue out = JsonValue::Object();
  out.Set("trace", TraceToJson(trace));
  out.Set("metrics", MetricsToJson(metrics));
  return out;
}

bool WriteJsonFile(const JsonValue& json, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << json.Dump(2) << '\n';
  return static_cast<bool>(out);
}

std::string FormatTraceTree(const TraceReport& report) {
  TablePrinter table;
  table.SetHeader({"span", "count", "seconds", "% of parent"});
  double top_level_total = 0.0;
  for (const TraceSpan& span : report.spans) {
    if (span.Depth() == 0) top_level_total += span.seconds;
  }
  for (const TraceSpan& span : report.spans) {
    // Parent totals: the longest strict path prefix present in the report.
    // Spans are path-sorted, so Find is a scan over an already-small list.
    double parent_seconds = top_level_total;
    const size_t slash = span.path.rfind('/');
    if (slash != std::string::npos) {
      if (const TraceSpan* parent = report.Find(span.path.substr(0, slash))) {
        parent_seconds = parent->seconds;
      } else {
        parent_seconds = 0.0;
      }
    }
    const std::string share =
        parent_seconds > 0.0
            ? TablePrinter::Num(100.0 * span.seconds / parent_seconds, 1)
            : "-";
    table.AddRow({std::string(2 * span.Depth(), ' ') + span.Leaf(),
                  std::to_string(span.count), TablePrinter::Num(span.seconds, 4),
                  share});
  }
  return table.ToString();
}

}  // namespace ips::obs
