// Minimal JSON document model for the observability layer.
//
// One value type covers everything the repo serialises as JSON: the
// BENCH_*.json benchmark artefacts, the trace/metrics exports consumed by
// scripts/, and the stats block of a saved discovery run
// (ips/serialization). Object keys keep insertion order so every dump is
// deterministic and diffable; numbers round-trip doubles bit-exactly
// (max_digits10) and print integral values without an exponent so counter
// deltas stay grep-able.
//
// The parser accepts the subset this repo emits -- objects, arrays,
// strings with the standard short escapes plus \uXXXX (decoded as raw
// code-unit bytes for ASCII, rejected above 0xFF to avoid pretending to
// be a full UTF-8 transcoder), numbers, booleans and null -- which is
// plain RFC-8259 JSON minus nothing a caller here produces.

#ifndef IPS_OBS_JSON_H_
#define IPS_OBS_JSON_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ips::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructs null.
  JsonValue() = default;
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(unsigned value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(long value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(unsigned long value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(long long value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(unsigned long long value)
      : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  /// Empty aggregates (a default-constructed value is null, not {} or []).
  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed reads. Wrong-kind access returns the fallback rather than
  /// asserting: loaders treat malformed documents as data errors.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  uint64_t AsUint64(uint64_t fallback = 0) const;
  const std::string& AsString() const { return string_; }

  // ----------------------------------------------------------------- array
  void Append(JsonValue value);
  size_t size() const;
  /// Null (a static sentinel) when out of range or not an array.
  const JsonValue& At(size_t index) const;

  // ---------------------------------------------------------------- object
  /// Inserts or overwrites `key` (first-insert position is kept).
  void Set(const std::string& key, JsonValue value);
  /// nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Find() but returning the null sentinel instead of nullptr.
  const JsonValue& Get(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // ------------------------------------------------------------------- i/o
  /// Serialises the value. `indent` == 0 emits one compact line (the form
  /// the run-artifact format requires); > 0 pretty-prints with that many
  /// spaces per level.
  std::string Dump(int indent = 0) const;

  /// Strict parse of a complete document (trailing garbage is an error).
  static std::optional<JsonValue> Parse(const std::string& text);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace ips::obs

#endif  // IPS_OBS_JSON_H_
