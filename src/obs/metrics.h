// Process-wide metrics registry: named counters and histograms.
//
// Before this layer every engine kept its own bag of `std::atomic<size_t>`
// members and every consumer (IpsRunStats, exp_* binaries) hand-copied them
// field by field. The registry gives all of them one home: a metric is
// registered once by name, incremented with relaxed atomics from any
// thread, and read back as a point-in-time snapshot. Run-level accounting
// is a delta of two snapshots -- the pattern IpsRunStats::FromRegistry and
// the benchmark binaries use -- so monotonic process-wide totals serve
// any number of overlapping observers.
//
// Hot-path cost is one relaxed fetch_add per event; registration (the only
// mutex) happens once per name, so callers bind `Counter&` references up
// front (a function-local static in the incrementing TU is the idiom, see
// util/thread_pool.cc).
//
// Naming convention: dot-separated "<subsystem>.<event>" --
// "pool.tasks_run", "engine.stats_cache_hits", "mp.qt_sweeps",
// "ips.motifs_generated". docs/observability.md lists every metric the
// library emits and how to add one.

#ifndef IPS_OBS_METRICS_H_
#define IPS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ips::obs {

/// Monotonic event counter. Obtained from (and owned by) the registry;
/// the reference stays valid for the process lifetime.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::atomic<uint64_t> value_{0};
};

/// Power-of-two bucketed histogram over non-negative integer samples
/// (batch sizes, region item counts). Bucket b holds samples in
/// [BucketLowerBound(b), BucketLowerBound(b + 1)): 0, 1, 2-3, 4-7, ...
/// with the last bucket open-ended. Observe() is wait-free (two relaxed
/// fetch_adds); a snapshot taken during concurrent writes may be mid-update
/// by one sample, which run-delta consumers tolerate by construction.
class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Observe(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Smallest sample value that lands in bucket `b`.
  static uint64_t BucketLowerBound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  /// 0 -> 0, 1 -> 1, 2-3 -> 2, 4-7 -> 3, ... clamped to the last bucket.
  static size_t BucketIndex(uint64_t value) {
    size_t bits = 0;
    for (uint64_t v = value; v != 0; v >>= 1) ++bits;
    return bits < kBuckets ? bits : kBuckets - 1;
  }

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};

  /// Estimate of the value at quantile `q` in [0, 1] (0.5 = median,
  /// 0.99 = p99), interpolated linearly within the power-of-two bucket the
  /// rank falls in -- accurate to the bucket width, the resolution the
  /// serving layer's p50/p99 latency export needs without storing raw
  /// samples. 0 on an empty snapshot. `q` is clamped to [0, 1].
  double ValueAtQuantile(double q) const;
};

/// Point-in-time copy of every registered metric. Ordered maps keep every
/// rendering (JSON, tables) deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name; 0 when the metric has not been registered.
  uint64_t CounterValue(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

class MetricsRegistry {
 public:
  /// The process-wide registry (leaky singleton: metric references must
  /// outlive atexit-ordered users such as the thread pool's shutdown).
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The same name always yields the same instance.
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Per-metric `after - before`. Metrics absent from `before` count from
  /// zero; zero-delta entries are dropped so run reports only mention what
  /// the run touched.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// Delta(before, Snapshot()).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ips::obs

#endif  // IPS_OBS_METRICS_H_
