#include "obs/trace.h"

#include <algorithm>

namespace ips::obs {

namespace {

#if !defined(IPS_DISABLE_TRACING)
// Innermost live span of this thread; the parent of the next Span opened
// here. Worker threads start from nullptr, so their spans root themselves.
thread_local Span* t_current_span = nullptr;
#endif

}  // namespace

std::string TraceSpan::Leaf() const {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

size_t TraceSpan::Depth() const {
  return static_cast<size_t>(std::count(path.begin(), path.end(), '/'));
}

const TraceSpan* TraceReport::Find(const std::string& path) const {
  for (const TraceSpan& span : spans) {
    if (span.path == path) return &span;
  }
  return nullptr;
}

double TraceReport::LeafSeconds(const std::string& leaf) const {
  double total = 0.0;
  for (const TraceSpan& span : spans) {
    if (span.Leaf() == leaf) total += span.seconds;
  }
  return total;
}

uint64_t TraceReport::LeafCount(const std::string& leaf) const {
  uint64_t total = 0;
  for (const TraceSpan& span : spans) {
    if (span.Leaf() == leaf) total += span.count;
  }
  return total;
}

TraceRegistry& TraceRegistry::Instance() {
  // Leaky: spans on pool worker threads may complete during teardown.
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

void TraceRegistry::Record(const std::string& path, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& stats = totals_[path];
  stats.count += 1;
  stats.seconds += seconds;
}

TraceSnapshot TraceRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

TraceReport TraceRegistry::Delta(const TraceSnapshot& before,
                                 const TraceSnapshot& after) {
  TraceReport report;
  for (const auto& [path, stats] : after) {
    SpanStats delta = stats;
    if (const auto it = before.find(path); it != before.end()) {
      delta.count -= it->second.count;
      delta.seconds -= it->second.seconds;
    }
    if (delta.count == 0) continue;
    report.spans.push_back({path, delta.count, delta.seconds});
  }
  // `after` is an ordered map, so the report is already path-sorted.
  return report;
}

TraceReport TraceRegistry::DeltaSince(const TraceSnapshot& before) const {
  return Delta(before, Snapshot());
}

#if !defined(IPS_DISABLE_TRACING)

Span::Span(const char* name) : parent_(t_current_span) {
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + std::char_traits<char>::length(name));
    path_ = parent_->path_;
    path_.push_back('/');
    path_ += name;
  } else {
    path_ = name;
  }
  t_current_span = this;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t_current_span = parent_;
  TraceRegistry::Instance().Record(path_, seconds);
}

#endif  // !IPS_DISABLE_TRACING

}  // namespace ips::obs
