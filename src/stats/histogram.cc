#include "stats/histogram.h"

#include <algorithm>

#include "util/check.h"

namespace ips {

Histogram::Histogram(std::span<const double> data, size_t num_bins) {
  IPS_CHECK(!data.empty());
  IPS_CHECK(num_bins >= 1);
  auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  min_ = *mn;
  max_ = *mx;
  if (max_ <= min_) max_ = min_ + 1.0;  // constant data: one unit-width span
  width_ = (max_ - min_) / static_cast<double>(num_bins);
  counts_.assign(num_bins, 0);
  for (double v : data) {
    size_t b = static_cast<size_t>((v - min_) / width_);
    if (b >= num_bins) b = num_bins - 1;  // right edge inclusive
    ++counts_[b];
  }
  total_ = data.size();
}

double Histogram::BinCenter(size_t b) const {
  IPS_CHECK(b < counts_.size());
  return min_ + (static_cast<double>(b) + 0.5) * width_;
}

double Histogram::Density(size_t b) const {
  IPS_CHECK(b < counts_.size());
  return static_cast<double>(counts_[b]) /
         (static_cast<double>(total_) * width_);
}

std::vector<double> Histogram::Densities() const {
  std::vector<double> out(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) out[b] = Density(b);
  return out;
}

}  // namespace ips
