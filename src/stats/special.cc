#include "stats/special.h"

#include <cmath>

#include <numbers>

#include "util/check.h"

namespace ips {

double RegularizedGammaP(double a, double x) {
  IPS_CHECK(a > 0.0);
  if (x <= 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-13) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-13) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

double ChiSquaredCdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

}  // namespace ips
