#include "stats/distribution.h"

#include <cmath>

#include <algorithm>
#include <numbers>

#include "core/znorm.h"
#include "stats/special.h"
#include "util/check.h"

namespace ips {

namespace {

constexpr double kMinSigma = 1e-9;

double SampleVariance(std::span<const double> data) {
  const double m = Mean(data);
  double s = 0.0;
  for (double v : data) s += (v - m) * (v - m);
  return s / static_cast<double>(data.size());
}

}  // namespace

// ---------------------------------------------------------------- Normal

NormalDistribution::NormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(std::max(sigma, kMinSigma)) {}

double NormalDistribution::Pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double NormalDistribution::Cdf(double x) const {
  return 0.5 * std::erfc(-(x - mu_) / (sigma_ * std::numbers::sqrt2));
}

// ---------------------------------------------------------------- Gamma

GammaDistribution::GammaDistribution(double shape, double scale,
                                     double location)
    : shape_(std::max(shape, 1e-6)),
      scale_(std::max(scale, kMinSigma)),
      location_(location),
      log_norm_(-std::lgamma(shape_) - shape_ * std::log(scale_)) {}

double GammaDistribution::Pdf(double x) const {
  const double y = x - location_;
  if (y <= 0.0) return 0.0;
  return std::exp(log_norm_ + (shape_ - 1.0) * std::log(y) - y / scale_);
}

double GammaDistribution::Cdf(double x) const {
  const double y = x - location_;
  if (y <= 0.0) return 0.0;
  return RegularizedGammaP(shape_, y / scale_);
}

double GammaDistribution::Mean() const { return location_ + shape_ * scale_; }

double GammaDistribution::StdDev() const {
  return std::sqrt(shape_) * scale_;
}

// ---------------------------------------------------------------- Exponential

ExponentialDistribution::ExponentialDistribution(double lambda,
                                                 double location)
    : lambda_(std::max(lambda, kMinSigma)), location_(location) {}

double ExponentialDistribution::Pdf(double x) const {
  const double y = x - location_;
  if (y < 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * y);
}

double ExponentialDistribution::Cdf(double x) const {
  const double y = x - location_;
  if (y < 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * y);
}

double ExponentialDistribution::Mean() const {
  return location_ + 1.0 / lambda_;
}

double ExponentialDistribution::StdDev() const { return 1.0 / lambda_; }

// ---------------------------------------------------------------- Uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi > lo ? hi : lo + kMinSigma) {}

double UniformDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Mean() const { return 0.5 * (lo_ + hi_); }

double UniformDistribution::StdDev() const {
  return (hi_ - lo_) / std::sqrt(12.0);
}

// ---------------------------------------------------------------- Fitting

std::unique_ptr<Distribution> FitNormal(std::span<const double> data) {
  IPS_CHECK(!data.empty());
  return std::make_unique<NormalDistribution>(Mean(data),
                                              std::sqrt(SampleVariance(data)));
}

std::unique_ptr<Distribution> FitGamma(std::span<const double> data) {
  IPS_CHECK(!data.empty());
  // Shift so the support starts just below the sample minimum, then match
  // the first two moments of the shifted data.
  const double mn = *std::min_element(data.begin(), data.end());
  const double var = std::max(SampleVariance(data), 1e-12);
  const double location = mn - 0.05 * std::sqrt(var) - 1e-9;
  const double mean_shifted = Mean(data) - location;
  const double shape = mean_shifted * mean_shifted / var;
  const double scale = var / mean_shifted;
  return std::make_unique<GammaDistribution>(shape, scale, location);
}

std::unique_ptr<Distribution> FitExponential(std::span<const double> data) {
  IPS_CHECK(!data.empty());
  const double mn = *std::min_element(data.begin(), data.end());
  const double mean_shifted = std::max(Mean(data) - mn, 1e-12);
  return std::make_unique<ExponentialDistribution>(1.0 / mean_shifted, mn);
}

std::unique_ptr<Distribution> FitUniform(std::span<const double> data) {
  IPS_CHECK(!data.empty());
  auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  return std::make_unique<UniformDistribution>(*mn, *mx);
}

double Nmse(const Histogram& hist, const Distribution& dist) {
  double num = 0.0;
  double den = 0.0;
  for (size_t b = 0; b < hist.num_bins(); ++b) {
    const double h = hist.Density(b);
    const double p = dist.Pdf(hist.BinCenter(b));
    num += (h - p) * (h - p);
    den += h * h;
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

BestFit FitBestDistribution(std::span<const double> data, size_t num_bins) {
  IPS_CHECK(!data.empty());
  const Histogram hist(data, num_bins);

  std::vector<std::unique_ptr<Distribution>> candidates;
  candidates.push_back(FitNormal(data));
  candidates.push_back(FitGamma(data));
  candidates.push_back(FitExponential(data));
  candidates.push_back(FitUniform(data));

  BestFit best;
  for (auto& c : candidates) {
    const double err = Nmse(hist, *c);
    if (best.distribution == nullptr || err < best.nmse) {
      best.nmse = err;
      best.distribution = std::move(c);
    }
  }
  return best;
}

}  // namespace ips
