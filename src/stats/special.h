// Special functions shared by the distribution and hypothesis-testing code.

#ifndef IPS_STATS_SPECIAL_H_
#define IPS_STATS_SPECIAL_H_

namespace ips {

/// Regularised lower incomplete gamma function P(a, x) for a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// CDF of the chi-squared distribution with `dof` degrees of freedom.
double ChiSquaredCdf(double x, double dof);

/// CDF of the standard normal distribution.
double StandardNormalCdf(double z);

}  // namespace ips

#endif  // IPS_STATS_SPECIAL_H_
