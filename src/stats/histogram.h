// Fixed-bin histogram used by the DABF distribution-fitting step
// (paper Formula 10: the histogram of hashed subsequence distances).

#ifndef IPS_STATS_HISTOGRAM_H_
#define IPS_STATS_HISTOGRAM_H_

#include <cstddef>

#include <span>
#include <vector>

namespace ips {

/// Equal-width histogram over [min, max] of the input data.
class Histogram {
 public:
  /// Builds a histogram of `data` with `num_bins` equal-width bins spanning
  /// [min(data), max(data)]. Degenerate (constant) data lands in one bin.
  /// Requires non-empty data and num_bins >= 1.
  Histogram(std::span<const double> data, size_t num_bins);

  size_t num_bins() const { return counts_.size(); }
  size_t total_count() const { return total_; }
  double bin_width() const { return width_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Raw count of bin b.
  size_t count(size_t b) const { return counts_[b]; }

  /// Centre of bin b.
  double BinCenter(size_t b) const;

  /// Probability density estimate of bin b: count / (total * width), so the
  /// histogram integrates to 1 and is comparable with a fitted PDF.
  double Density(size_t b) const;

  /// All bin densities.
  std::vector<double> Densities() const;

 private:
  std::vector<size_t> counts_;
  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 1.0;
  size_t total_ = 0;
};

}  // namespace ips

#endif  // IPS_STATS_HISTOGRAM_H_
