// Parametric distribution fitting (paper Table III / Formula 10).
//
// The DABF fits the histogram of hashed-subsequence distances to a family of
// candidate distributions and keeps the best fit under normalised mean square
// error (NMSE). Four families are provided -- Normal, Gamma, Exponential and
// Uniform -- each fitted by the method of moments; the Gamma and Exponential
// fits carry a location shift so they apply to z-normalised (possibly
// negative) samples.

#ifndef IPS_STATS_DISTRIBUTION_H_
#define IPS_STATS_DISTRIBUTION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace ips {

/// A fitted one-dimensional parametric distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x.
  virtual double Pdf(double x) const = 0;

  /// Cumulative distribution at x.
  virtual double Cdf(double x) const = 0;

  /// Distribution mean.
  virtual double Mean() const = 0;

  /// Distribution standard deviation.
  virtual double StdDev() const = 0;

  /// Family name ("Norm", "Gamma", "Exp", "Uniform").
  virtual std::string Name() const = 0;
};

/// Normal(mu, sigma). A near-zero sigma is clamped to a small positive value.
class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mu, double sigma);
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override { return mu_; }
  double StdDev() const override { return sigma_; }
  std::string Name() const override { return "Norm"; }

 private:
  double mu_;
  double sigma_;
};

/// Three-parameter Gamma: shape k, scale theta, location shift.
class GammaDistribution final : public Distribution {
 public:
  GammaDistribution(double shape, double scale, double location);
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string Name() const override { return "Gamma"; }

 private:
  double shape_;
  double scale_;
  double location_;
  double log_norm_;  // log of the normalising constant
};

/// Shifted exponential with rate lambda.
class ExponentialDistribution final : public Distribution {
 public:
  ExponentialDistribution(double lambda, double location);
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string Name() const override { return "Exp"; }

 private:
  double lambda_;
  double location_;
};

/// Uniform on [lo, hi].
class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(double lo, double hi);
  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double StdDev() const override;
  std::string Name() const override { return "Uniform"; }

 private:
  double lo_;
  double hi_;
};

/// Method-of-moments fits. Each requires non-empty data.
std::unique_ptr<Distribution> FitNormal(std::span<const double> data);
std::unique_ptr<Distribution> FitGamma(std::span<const double> data);
std::unique_ptr<Distribution> FitExponential(std::span<const double> data);
std::unique_ptr<Distribution> FitUniform(std::span<const double> data);

/// Normalised mean square error between the histogram's bin densities and
/// the distribution's PDF at the bin centres:
///   NMSE = sum_b (h_b - p_b)^2 / sum_b h_b^2.
double Nmse(const Histogram& hist, const Distribution& dist);

/// Result of fitting all candidate families and choosing the NMSE-best.
struct BestFit {
  std::unique_ptr<Distribution> distribution;
  double nmse = 0.0;
};

/// Fits Normal, Gamma, Exponential and Uniform to `data` (binned into
/// `num_bins`) and returns the family with the smallest NMSE.
BestFit FitBestDistribution(std::span<const double> data,
                            size_t num_bins = 32);

}  // namespace ips

#endif  // IPS_STATS_DISTRIBUTION_H_
