#include "data/generator.h"

#include <cmath>

#include <algorithm>
#include <numbers>
#include <vector>

#include "core/rng.h"
#include "util/check.h"

namespace ips {

namespace {

// ------------------------------------------------------------- shape bank

/// Parametric local waveforms; `t` runs over [0, 1].
enum class ShapeKind {
  kGaussianBump,
  kSineBurst,
  kSquarePulse,
  kChirp,
  kDampedSine,
  kTriangle,
  kDoubleBump,
  kSawtooth,
  kNumKinds,
};

constexpr int kNumShapeKinds = static_cast<int>(ShapeKind::kNumKinds);

double ShapeValue(ShapeKind kind, double t, double phase) {
  constexpr double kPi = std::numbers::pi;
  switch (kind) {
    case ShapeKind::kGaussianBump: {
      const double c = 0.35 + 0.3 * phase;
      return std::exp(-std::pow((t - c) / 0.12, 2.0));
    }
    case ShapeKind::kSineBurst:
      return std::sin(2.0 * kPi * (2.0 + 2.0 * phase) * t) *
             std::sin(kPi * t);
    case ShapeKind::kSquarePulse:
      return (t > 0.25 + 0.2 * phase && t < 0.75) ? 1.0 : -0.2;
    case ShapeKind::kChirp:
      return std::sin(2.0 * kPi * t * (1.0 + (3.0 + 2.0 * phase) * t)) *
             std::sin(kPi * t);
    case ShapeKind::kDampedSine:
      return std::exp(-3.0 * t) *
             std::sin(2.0 * kPi * (3.0 + phase) * t);
    case ShapeKind::kTriangle: {
      const double peak = 0.3 + 0.4 * phase;
      return t < peak ? t / peak : (1.0 - t) / (1.0 - peak);
    }
    case ShapeKind::kDoubleBump: {
      const double gap = 0.25 + 0.2 * phase;
      return std::exp(-std::pow((t - 0.3) / 0.08, 2.0)) +
             0.8 * std::exp(-std::pow((t - 0.3 - gap) / 0.08, 2.0));
    }
    case ShapeKind::kSawtooth: {
      const double cycles = 2.0 + 2.0 * phase;
      const double x = t * cycles;
      return 2.0 * (x - std::floor(x)) - 1.0;
    }
    case ShapeKind::kNumKinds:
      break;
  }
  return 0.0;
}

struct PatternTemplate {
  ShapeKind kind;
  double phase;      // shape parameter in [0, 1)
  double amplitude;  // base amplitude
  double anchor;     // nominal offset as a fraction of the free range
};

// Renders `tmpl` over `len` samples.
std::vector<double> RenderPattern(const PatternTemplate& tmpl, size_t len) {
  std::vector<double> out(len);
  for (size_t i = 0; i < len; ++i) {
    const double t = len > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(len - 1)
                         : 0.5;
    out[i] = tmpl.amplitude * ShapeValue(tmpl.kind, t, tmpl.phase);
  }
  return out;
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// One series: background + class patterns + optional distractor + noise.
TimeSeries MakeSeries(const GeneratorSpec& spec, int label,
                      const std::vector<std::vector<PatternTemplate>>& bank,
                      const PatternTemplate& distractor, Rng& rng) {
  const size_t n = spec.length;
  TimeSeries series;
  series.label = label;
  series.values.assign(n, 0.0);

  // Smoothed random-walk background.
  if (spec.background_drift > 0.0) {
    double level = 0.0;
    for (size_t i = 0; i < n; ++i) {
      level += rng.Gaussian(0.0, spec.background_drift / 10.0);
      level *= 0.98;  // mean-revert so the walk stays bounded
      series.values[i] = level;
    }
  }

  const size_t base_len = std::max<size_t>(
      6, static_cast<size_t>(spec.pattern_fraction *
                             static_cast<double>(n)));

  auto embed = [&](const PatternTemplate& tmpl) {
    // Duration warp and amplitude jitter.
    const double warp = 1.0 + rng.Uniform(-spec.duration_warp,
                                          spec.duration_warp);
    size_t len = std::clamp<size_t>(
        static_cast<size_t>(static_cast<double>(base_len) * warp), 4, n);
    PatternTemplate jittered = tmpl;
    jittered.amplitude *=
        1.0 + rng.Uniform(-spec.amplitude_jitter, spec.amplitude_jitter);
    const std::vector<double> pattern = RenderPattern(jittered, len);
    // Anchor position +/- jitter, clamped to the valid range.
    const double free = static_cast<double>(n - len);
    const double jitter =
        rng.Uniform(-spec.offset_jitter, spec.offset_jitter) *
        static_cast<double>(n);
    const double pos = std::clamp(tmpl.anchor * free + jitter, 0.0, free);
    const size_t offset = static_cast<size_t>(pos);
    for (size_t i = 0; i < len && offset + i < n; ++i) {
      series.values[offset + i] += pattern[i];
    }
  };

  for (const PatternTemplate& tmpl : bank[static_cast<size_t>(label)]) {
    embed(tmpl);
  }
  if (spec.add_distractor) embed(distractor);

  for (size_t i = 0; i < n; ++i) {
    series.values[i] += rng.Gaussian(0.0, spec.noise);
  }
  return series;
}

}  // namespace

TrainTestSplit GenerateDataset(const GeneratorSpec& spec) {
  IPS_CHECK(spec.num_classes >= 2);
  IPS_CHECK(spec.length >= 16);
  IPS_CHECK(spec.train_size >= static_cast<size_t>(spec.num_classes));
  const uint64_t seed = spec.seed != 0 ? spec.seed : HashName(spec.name);
  Rng rng(seed);

  // Per-class pattern bank: distinct (kind, phase) pairs so no two classes
  // share a characteristic waveform.
  std::vector<std::vector<PatternTemplate>> bank(
      static_cast<size_t>(spec.num_classes));
  const int per_class = std::clamp(spec.patterns_per_class, 1, 2);
  for (int c = 0; c < spec.num_classes; ++c) {
    for (int p = 0; p < per_class; ++p) {
      PatternTemplate tmpl;
      tmpl.kind = static_cast<ShapeKind>(
          (c * per_class + p) % kNumShapeKinds);
      // Classes that wrap around the shape bank get a distinct phase.
      tmpl.phase = std::fmod(
          0.17 * static_cast<double>(c * per_class + p) + rng.Uniform(0, 0.1),
          1.0);
      tmpl.amplitude = 1.6 + rng.Uniform(-0.2, 0.2);
      tmpl.anchor = rng.Uniform(0.0, 1.0);
      bank[static_cast<size_t>(c)].push_back(tmpl);
    }
  }
  PatternTemplate distractor;
  distractor.kind = ShapeKind::kSineBurst;
  distractor.phase = 0.9;
  distractor.amplitude = 1.0;
  distractor.anchor = rng.Uniform(0.0, 1.0);

  auto fill = [&](Dataset& out, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const int label = static_cast<int>(i) % spec.num_classes;
      out.Add(MakeSeries(spec, label, bank, distractor, rng));
    }
  };

  TrainTestSplit split;
  fill(split.train, spec.train_size);
  fill(split.test, spec.test_size);
  return split;
}

GeneratorSpec SpecFromCatalog(const UcrDatasetInfo& info) {
  GeneratorSpec spec;
  spec.name = info.name;
  spec.num_classes = info.num_classes;
  spec.train_size = info.train_size;
  spec.test_size = info.test_size;
  spec.length = std::max<size_t>(info.length, 16);
  // Many-class datasets get one pattern per class so the shape bank does
  // not alias badly.
  spec.patterns_per_class = info.num_classes > 8 ? 1 : 2;
  // Benchmark datasets are deliberately harder than the unit-test default:
  // archive-like noise, positional jitter and warp keep the methods'
  // accuracies in the paper's discriminative range instead of saturating.
  spec.noise = 0.5;
  spec.amplitude_jitter = 0.3;
  spec.duration_warp = 0.15;
  spec.offset_jitter = 0.06;
  return spec;
}

TrainTestSplit GenerateItalyPowerLike(size_t train_size, size_t test_size,
                                      uint64_t seed) {
  constexpr size_t kHours = 24;
  Rng rng(seed);

  auto make_day = [&](int label) {
    TimeSeries day;
    day.label = label;
    day.values.resize(kHours);
    for (size_t h = 0; h < kHours; ++h) {
      const double t = static_cast<double>(h);
      // Base load with a mid-day plateau and an evening peak for everyone.
      double v = 0.6 + 0.25 * std::exp(-std::pow((t - 19.0) / 2.5, 2.0)) +
                 0.15 * std::exp(-std::pow((t - 13.0) / 4.0, 2.0));
      if (label == 1) {
        // Winter: pronounced morning heating ramp (hours 6-10) -- the
        // dominant class difference, as in the real ItalyPowerDemand data.
        v += 0.65 * std::exp(-std::pow((t - 8.0) / 2.0, 2.0));
      } else {
        // Summer: subtle afternoon cooling demand.
        v += 0.1 * std::exp(-std::pow((t - 15.0) / 3.0, 2.0));
      }
      v *= 1.0 + rng.Uniform(-0.06, 0.06);
      v += rng.Gaussian(0.0, 0.04);
      day.values[h] = v;
    }
    return day;
  };

  TrainTestSplit split;
  for (size_t i = 0; i < train_size; ++i) {
    split.train.Add(make_day(static_cast<int>(i % 2)));
  }
  for (size_t i = 0; i < test_size; ++i) {
    split.test.Add(make_day(static_cast<int>(i % 2)));
  }
  return split;
}

}  // namespace ips
