#include "data/ucr_catalog.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ips {

std::span<const UcrDatasetInfo> UcrCatalog() {
  // Metadata from the UCR Time Series Classification Archive (2018
  // release): name, type, classes, train size, test size, length.
  static const std::vector<UcrDatasetInfo> kCatalog = {
      {"ArrowHead", "Image", 3, 36, 175, 251},
      {"Beef", "Spectro", 5, 30, 30, 470},
      {"BeetleFly", "Image", 2, 20, 20, 512},
      {"CBF", "Simulated", 3, 30, 900, 128},
      {"ChlorineConcentration", "Sensor", 3, 467, 3840, 166},
      {"Coffee", "Spectro", 2, 28, 28, 286},
      {"Computers", "Device", 2, 250, 250, 720},
      {"CricketZ", "Motion", 12, 390, 390, 300},
      {"DiatomSizeReduction", "Image", 4, 16, 306, 345},
      {"DistalPhalanxOutlineCorrect", "Image", 2, 600, 276, 80},
      {"Earthquakes", "Sensor", 2, 322, 139, 512},
      {"ECG200", "ECG", 2, 100, 100, 96},
      {"ECG5000", "ECG", 5, 500, 4500, 140},
      {"ECGFiveDays", "ECG", 2, 23, 861, 136},
      {"ElectricDevices", "Device", 7, 8926, 7711, 96},
      {"FaceAll", "Image", 14, 560, 1690, 131},
      {"FaceFour", "Image", 4, 24, 88, 350},
      {"FacesUCR", "Image", 14, 200, 2050, 131},
      {"FordA", "Sensor", 2, 3601, 1320, 500},
      {"GunPoint", "Motion", 2, 50, 150, 150},
      {"Ham", "Spectro", 2, 109, 105, 431},
      {"HandOutlines", "Image", 2, 1000, 370, 2709},
      {"Haptics", "Motion", 5, 155, 308, 1092},
      {"InlineSkate", "Motion", 7, 100, 550, 1882},
      {"InsectWingbeatSound", "Sensor", 11, 220, 1980, 256},
      {"ItalyPowerDemand", "Sensor", 2, 67, 1029, 24},
      {"LargeKitchenAppliances", "Device", 3, 375, 375, 720},
      {"Mallat", "Simulated", 8, 55, 2345, 1024},
      {"Meat", "Spectro", 3, 60, 60, 448},
      {"MoteStrain", "Sensor", 2, 20, 1252, 84},
      {"NonInvasiveFatalECGThorax1", "ECG", 42, 1800, 1965, 750},
      {"OSULeaf", "Image", 6, 200, 242, 427},
      {"Phoneme", "Sensor", 39, 214, 1896, 1024},
      {"RefrigerationDevices", "Device", 3, 375, 375, 720},
      {"ShapeletSim", "Simulated", 2, 20, 180, 500},
      {"SonyAIBORobotSurface1", "Sensor", 2, 20, 601, 70},
      {"SonyAIBORobotSurface2", "Sensor", 2, 27, 953, 65},
      {"Strawberry", "Spectro", 2, 613, 370, 235},
      {"Symbols", "Image", 6, 25, 995, 398},
      {"SyntheticControl", "Simulated", 6, 300, 300, 60},
      {"ToeSegmentation1", "Motion", 2, 40, 228, 277},
      {"TwoLeadECG", "ECG", 2, 23, 1139, 82},
      {"TwoPatterns", "Simulated", 4, 1000, 4000, 128},
      {"UWaveGestureLibraryY", "Motion", 8, 896, 3582, 315},
      {"Wafer", "Sensor", 2, 1000, 6164, 152},
      {"WormsTwoClass", "Motion", 2, 181, 77, 900},
      {"Yoga", "Image", 2, 300, 3000, 426},
  };
  return kCatalog;
}

std::optional<UcrDatasetInfo> FindUcrDataset(const std::string& name) {
  for (const UcrDatasetInfo& info : UcrCatalog()) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

UcrDatasetInfo ScaleDataset(const UcrDatasetInfo& info,
                            const CatalogScale& scale) {
  IPS_CHECK(scale.count_factor > 0.0);
  IPS_CHECK(scale.length_factor > 0.0);
  UcrDatasetInfo out = info;
  auto apply = [](size_t value, double factor, size_t lo, size_t hi) {
    const double scaled = std::round(static_cast<double>(value) * factor);
    return std::clamp(static_cast<size_t>(std::max(scaled, 1.0)), lo, hi);
  };
  out.train_size =
      apply(info.train_size, scale.count_factor, scale.min_train,
            scale.max_train);
  out.test_size = apply(info.test_size, scale.count_factor, scale.min_test,
                        scale.max_test);
  out.length = apply(info.length, scale.length_factor, scale.min_length,
                     scale.max_length);
  // At least 2 training instances per class so instance profiles exist.
  out.train_size = std::max<size_t>(
      out.train_size, 2 * static_cast<size_t>(info.num_classes));
  return out;
}

}  // namespace ips
