// Loader for the UCR Archive's 2018 tab-separated format, so every
// experiment can be re-run on the real archive when it is available:
// <dir>/<Name>/<Name>_TRAIN.tsv and <Name>_TEST.tsv, one series per line,
// class label first. Labels are remapped to dense ids in [0, C).

#ifndef IPS_DATA_UCR_LOADER_H_
#define IPS_DATA_UCR_LOADER_H_

#include <optional>
#include <string>

#include "data/generator.h"

namespace ips {

/// Loads one archive dataset. Returns nullopt when either split file is
/// missing or unparsable. Values separated by tabs, commas or spaces are
/// accepted; NaN entries (variable-length padding) are trimmed from the
/// tail of each series.
std::optional<TrainTestSplit> LoadUcrDataset(const std::string& archive_dir,
                                             const std::string& name);

/// Loads a single split file (one labelled series per line). Exposed for
/// testing.
std::optional<Dataset> LoadUcrFile(const std::string& path);

}  // namespace ips

#endif  // IPS_DATA_UCR_LOADER_H_
