// Loader for the UCR Archive's 2018 tab-separated format, so every
// experiment can be re-run on the real archive when it is available:
// <dir>/<Name>/<Name>_TRAIN.tsv and <Name>_TEST.tsv, one series per line,
// class label first. Labels are remapped to dense ids in [0, C).

#ifndef IPS_DATA_UCR_LOADER_H_
#define IPS_DATA_UCR_LOADER_H_

#include <optional>
#include <string>

#include "data/generator.h"

namespace ips {

/// Loads one archive dataset. Returns nullopt when either split file is
/// missing or unparsable. Values separated by tabs, commas or spaces are
/// accepted; NaN entries (variable-length padding) are trimmed from the
/// tail of each series.
std::optional<TrainTestSplit> LoadUcrDataset(const std::string& archive_dir,
                                             const std::string& name);

/// Loads a single split file (one labelled series per line). Exposed for
/// testing.
std::optional<Dataset> LoadUcrFile(const std::string& path);

/// Writes `data` as a single split file in the format LoadUcrFile reads:
/// one labelled series per line, tab-separated, label first, doubles at
/// max_digits10 so values round-trip bit-exactly. Dense non-negative
/// labels survive the loader's sorted remap unchanged, so a saved dataset
/// reloads identically -- the serving fixtures rely on this. Returns false
/// on I/O failure.
bool SaveUcrFile(const Dataset& data, const std::string& path);

}  // namespace ips

#endif  // IPS_DATA_UCR_LOADER_H_
