// Loader for the UCR Archive's 2018 tab-separated format, so every
// experiment can be re-run on the real archive when it is available:
// <dir>/<Name>/<Name>_TRAIN.tsv and <Name>_TEST.tsv, one series per line,
// class label first. Labels are remapped to dense ids in [0, C).

#ifndef IPS_DATA_UCR_LOADER_H_
#define IPS_DATA_UCR_LOADER_H_

#include <functional>
#include <optional>
#include <span>
#include <string>

#include "data/generator.h"

namespace ips {

/// Row callback for ForEachUcrRow: the raw (file) class label and the
/// NaN-trimmed values of one series. The span aliases a buffer reused
/// between rows -- copy what must outlive the call. Return false to stop
/// the scan early (the scan still reports success).
using UcrRowFn =
    std::function<bool(double raw_label, std::span<const double> values)>;

/// Streams a split file row by row without materialising the dataset --
/// memory use is one row regardless of file size. This is the substrate
/// both for LoadUcrFile (in-RAM datasets) and the columnar-store importer
/// (src/store/ucr_import.h, bounded-memory conversion of files larger than
/// RAM). Values separated by tabs, commas or spaces are accepted; NaN
/// entries (variable-length padding) are trimmed from the tail of each
/// series. Returns false when the file is missing or any row is
/// unparsable, has no values, or is all padding.
bool ForEachUcrRow(const std::string& path, const UcrRowFn& fn);

/// Loads one archive dataset. Returns nullopt when either split file is
/// missing or unparsable.
std::optional<TrainTestSplit> LoadUcrDataset(const std::string& archive_dir,
                                             const std::string& name);

/// Loads a single split file (one labelled series per line) into an in-RAM
/// Dataset. Two streaming passes (label scan, then build): peak memory is
/// the dataset itself plus one row, never a second copy of the file.
std::optional<Dataset> LoadUcrFile(const std::string& path);

/// Writes `data` as a single split file in the format LoadUcrFile reads:
/// one labelled series per line, tab-separated, label first, doubles at
/// max_digits10 so values round-trip bit-exactly. Dense non-negative
/// labels survive the loader's sorted remap unchanged, so a saved dataset
/// reloads identically -- the serving fixtures rely on this. Accepts any
/// DatasetView (in-RAM or store-backed). Returns false on I/O failure.
bool SaveUcrFile(const DatasetView& data, const std::string& path);

}  // namespace ips

#endif  // IPS_DATA_UCR_LOADER_H_
