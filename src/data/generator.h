// Synthetic UCR-like dataset generator (the data substitution documented in
// DESIGN.md §2).
//
// Each class is defined by one or two characteristic local waveforms drawn
// from a shape bank (class "shapelets"). A series is a shared noisy
// background with its class's waveforms embedded at random offsets, under
// amplitude jitter and slight duration warp, plus a distractor waveform
// common to ALL classes (so trivial features do not separate the data).
// This reproduces the structural property shapelet methods exploit -- a
// local pattern present in one class and absent elsewhere -- which is what
// the paper's experiments measure.

#ifndef IPS_DATA_GENERATOR_H_
#define IPS_DATA_GENERATOR_H_

#include <cstdint>

#include <string>

#include "core/time_series.h"
#include "data/ucr_catalog.h"

namespace ips {

/// Parameters of one synthetic dataset.
struct GeneratorSpec {
  std::string name;  ///< Used to derive the default seed.
  int num_classes = 2;
  size_t train_size = 40;
  size_t test_size = 100;
  size_t length = 128;

  /// Standard deviation of the additive Gaussian noise.
  double noise = 0.35;
  /// Relative amplitude jitter of embedded patterns.
  double amplitude_jitter = 0.25;
  /// Relative duration warp of embedded patterns.
  double duration_warp = 0.15;
  /// Pattern length as a fraction of the series length.
  double pattern_fraction = 0.2;
  /// Positional jitter of embedded patterns around their per-pattern anchor,
  /// as a fraction of the series length. Real archive datasets are roughly
  /// aligned (1NN-ED is a strong baseline on them), so the default is small;
  /// raise it to stress alignment-sensitive methods.
  double offset_jitter = 0.05;
  /// Number of characteristic patterns per class (1 or 2).
  int patterns_per_class = 2;
  /// Whether a class-independent distractor pattern is embedded everywhere.
  bool add_distractor = true;
  /// Random-walk background weight (0 = white noise background only).
  double background_drift = 0.3;

  uint64_t seed = 0;  ///< 0 = derive from name.
};

/// A train/test pair.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Generates a dataset from the spec. Deterministic in (spec, seed).
TrainTestSplit GenerateDataset(const GeneratorSpec& spec);

/// Spec matching a catalogue entry (same classes/sizes/length).
GeneratorSpec SpecFromCatalog(const UcrDatasetInfo& info);

/// ItalyPowerDemand-like two-class daily load curves for the Fig. 13
/// interpretability case study: class 0 ("summer") has a flat morning and a
/// single evening peak; class 1 ("winter") adds a pronounced morning
/// heating ramp. Lengths of 24 samples, one per hour.
TrainTestSplit GenerateItalyPowerLike(size_t train_size, size_t test_size,
                                      uint64_t seed = 99);

}  // namespace ips

#endif  // IPS_DATA_GENERATOR_H_
