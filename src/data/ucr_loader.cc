#include "data/ucr_loader.h"

#include <cmath>

#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

namespace ips {

namespace {

// Splits a line on tabs/commas/spaces into doubles; returns false on parse
// failure of a non-empty token.
bool ParseLine(const std::string& line, std::vector<double>& out) {
  out.clear();
  std::string token;
  std::string normalized = line;
  for (char& c : normalized) {
    if (c == '\t' || c == ',') c = ' ';
  }
  std::istringstream fields(normalized);
  while (fields >> token) {
    if (token == "NaN" || token == "nan") {
      out.push_back(std::nan(""));
      continue;
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    out.push_back(value);
  }
  return true;
}

}  // namespace

bool ForEachUcrRow(const std::string& path, const UcrRowFn& fn) {
  std::ifstream in(path);
  if (!in) return false;

  std::string line;
  std::vector<double> fields;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseLine(line, fields) || fields.size() < 2) return false;
    // Trim trailing NaN padding (variable-length datasets) in place; the
    // callback sees [label | values...] of the reused buffer.
    size_t end = fields.size();
    while (end > 1 && std::isnan(fields[end - 1])) --end;
    if (end < 2) return false;
    any = true;
    if (!fn(fields.front(),
            std::span<const double>(fields.data() + 1, end - 1))) {
      return true;
    }
  }
  return any;
}

std::optional<Dataset> LoadUcrFile(const std::string& path) {
  // Pass 1: raw labels only, remapped densely in sorted order.
  std::map<double, int> label_map;
  if (!ForEachUcrRow(path, [&](double raw, std::span<const double>) {
        label_map.emplace(raw, 0);
        return true;
      })) {
    return std::nullopt;
  }
  int next = 0;
  for (auto& [raw, dense] : label_map) dense = next++;

  // Pass 2: build the dataset with final labels.
  Dataset out;
  if (!ForEachUcrRow(path, [&](double raw, std::span<const double> values) {
        out.Add(TimeSeries(std::vector<double>(values.begin(), values.end()),
                           label_map.at(raw)));
        return true;
      })) {
    return std::nullopt;
  }
  return out;
}

bool SaveUcrFile(const DatasetView& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(std::numeric_limits<double>::max_digits10);
  for (size_t i = 0; i < data.size(); ++i) {
    const SeriesView t = data.At(i);
    out << t.label;
    for (double v : t.values) out << '\t' << v;
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<TrainTestSplit> LoadUcrDataset(const std::string& archive_dir,
                                             const std::string& name) {
  const std::string base = archive_dir + "/" + name + "/" + name;
  auto train = LoadUcrFile(base + "_TRAIN.tsv");
  if (!train) return std::nullopt;
  auto test = LoadUcrFile(base + "_TEST.tsv");
  if (!test) return std::nullopt;
  TrainTestSplit split;
  split.train = std::move(*train);
  split.test = std::move(*test);
  return split;
}

}  // namespace ips
