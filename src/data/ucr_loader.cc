#include "data/ucr_loader.h"

#include <cmath>

#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

namespace ips {

namespace {

// Splits a line on tabs/commas/spaces into doubles; returns false on parse
// failure of a non-empty token.
bool ParseLine(const std::string& line, std::vector<double>& out) {
  out.clear();
  std::string token;
  std::istringstream stream(line);
  std::string normalized = line;
  for (char& c : normalized) {
    if (c == '\t' || c == ',') c = ' ';
  }
  std::istringstream fields(normalized);
  while (fields >> token) {
    if (token == "NaN" || token == "nan") {
      out.push_back(std::nan(""));
      continue;
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    out.push_back(value);
  }
  return true;
}

}  // namespace

std::optional<Dataset> LoadUcrFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  // First pass collects (raw_label, values); labels remapped densely after.
  std::vector<std::pair<double, std::vector<double>>> rows;
  std::string line;
  std::vector<double> fields;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseLine(line, fields) || fields.size() < 2) return std::nullopt;
    std::vector<double> values(fields.begin() + 1, fields.end());
    // Trim trailing NaN padding (variable-length datasets).
    while (!values.empty() && std::isnan(values.back())) values.pop_back();
    if (values.empty()) return std::nullopt;
    rows.emplace_back(fields.front(), std::move(values));
  }
  if (rows.empty()) return std::nullopt;

  std::map<double, int> label_map;
  for (const auto& [raw, values] : rows) label_map.emplace(raw, 0);
  int next = 0;
  for (auto& [raw, dense] : label_map) dense = next++;

  Dataset out;
  for (auto& [raw, values] : rows) {
    out.Add(TimeSeries(std::move(values), label_map.at(raw)));
  }
  return out;
}

bool SaveUcrFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(std::numeric_limits<double>::max_digits10);
  for (size_t i = 0; i < data.size(); ++i) {
    const TimeSeries& t = data[i];
    out << t.label;
    for (double v : t.values) out << '\t' << v;
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<TrainTestSplit> LoadUcrDataset(const std::string& archive_dir,
                                             const std::string& name) {
  const std::string base = archive_dir + "/" + name + "/" + name;
  auto train = LoadUcrFile(base + "_TRAIN.tsv");
  if (!train) return std::nullopt;
  auto test = LoadUcrFile(base + "_TEST.tsv");
  if (!test) return std::nullopt;
  TrainTestSplit split;
  split.train = std::move(*train);
  split.test = std::move(*test);
  return split;
}

}  // namespace ips
