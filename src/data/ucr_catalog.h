// Catalogue of the UCR Archive datasets used in the paper's evaluation
// (Tables II, IV, VI and Figures 9-13): per-dataset class counts, split
// sizes, and series lengths, taken from the archive's published metadata.
//
// The benchmark harness drives the synthetic generator with these shape
// parameters -- optionally scaled down so a full 46-dataset sweep finishes
// in minutes -- or, when the real archive is available on disk, loads it
// directly (see ucr_loader.h).

#ifndef IPS_DATA_UCR_CATALOG_H_
#define IPS_DATA_UCR_CATALOG_H_

#include <cstddef>

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ips {

/// Metadata of one archive dataset.
struct UcrDatasetInfo {
  std::string name;
  std::string type;  // Image / Sensor / Motion / Simulated / ECG / ...
  int num_classes = 2;
  size_t train_size = 0;
  size_t test_size = 0;
  size_t length = 0;
};

/// The 46 datasets of the paper's Tables IV/VI plus the additional datasets
/// of Table II and the Fig. 13 case study (MoteStrain, ItalyPowerDemand).
std::span<const UcrDatasetInfo> UcrCatalog();

/// Catalogue lookup by name; nullopt when unknown.
std::optional<UcrDatasetInfo> FindUcrDataset(const std::string& name);

/// Scaling controls for benchmark runs: sizes multiplied and clamped so the
/// workload keeps the archive's relative proportions at tractable cost.
struct CatalogScale {
  double count_factor = 1.0;   ///< Multiplies train/test sizes.
  double length_factor = 1.0;  ///< Multiplies series length.
  size_t min_train = 6;
  size_t max_train = 10000;
  size_t min_test = 10;
  size_t max_test = 20000;
  size_t min_length = 32;
  size_t max_length = 4096;
};

/// Applies `scale` to `info`, preserving class count.
UcrDatasetInfo ScaleDataset(const UcrDatasetInfo& info,
                            const CatalogScale& scale);

}  // namespace ips

#endif  // IPS_DATA_UCR_CATALOG_H_
