#include "dabf/bloom_filter.h"

#include <cmath>

#include <algorithm>
#include <numbers>

#include "util/check.h"

namespace ips {

namespace {

// 64-bit FNV-1a with a seed mixed in.
uint64_t Fnv1a(std::string_view key, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed)
    : bits_(std::max<size_t>(num_bits, 8), false),
      num_hashes_(std::max<size_t>(num_hashes, 1)),
      seed_(seed) {}

BloomFilter BloomFilter::WithCapacity(size_t expected_items,
                                      double false_positive_rate) {
  IPS_CHECK(expected_items >= 1);
  IPS_CHECK(false_positive_rate > 0.0 && false_positive_rate < 1.0);
  const double n = static_cast<double>(expected_items);
  const double ln2 = std::numbers::ln2;
  const double m = -n * std::log(false_positive_rate) / (ln2 * ln2);
  const double k = m / n * ln2;
  return BloomFilter(static_cast<size_t>(std::ceil(m)),
                     std::max<size_t>(1, static_cast<size_t>(std::round(k))));
}

uint64_t BloomFilter::HashAt(std::string_view key, size_t i) const {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i * h2.
  const uint64_t h1 = Fnv1a(key, seed_);
  const uint64_t h2 = Fnv1a(key, seed_ ^ 0xdeadbeefULL) | 1ULL;
  return h1 + static_cast<uint64_t>(i) * h2;
}

void BloomFilter::Add(std::string_view key) {
  for (size_t i = 0; i < num_hashes_; ++i) {
    bits_[HashAt(key, i) % bits_.size()] = true;
  }
  ++num_items_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  for (size_t i = 0; i < num_hashes_; ++i) {
    if (!bits_[HashAt(key, i) % bits_.size()]) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  const size_t set = static_cast<size_t>(
      std::count(bits_.begin(), bits_.end(), true));
  return static_cast<double>(set) / static_cast<double>(bits_.size());
}

}  // namespace ips
