// Distribution-aware bloom filter (paper §III-B, Algorithms 2-3, Fig. 7-8).
//
// A DABF answers the query "is this subsequence close to MOST elements of a
// class's candidate population?" in O(N):
//   1. every candidate of the class is resampled to a fixed dimension,
//      z-normalised, and hashed by an LSH family into buckets;
//   2. buckets are ranked by the distance between their centre and the
//      origin of the projection space;
//   3. the distribution of the (z-normalised) per-item distance-to-origin
//      statistics is fitted (NMSE best fit over Normal/Gamma/Exp/Uniform);
//   4. a query's statistic is normalised against that distribution; falling
//      within the 3-sigma band means "possibly close to most elements"
//      (prune), outside means "definitely not close" (keep -- a
//      discriminative candidate).
//
// The ranked bucket index also serves as the scalar coordinate of the DT
// optimisation (Formula 15/16): |rank_i - rank_j| lower-bounds the scaled
// candidate distance and replaces O(L) distance computations with O(1).

#ifndef IPS_DABF_DABF_H_
#define IPS_DABF_DABF_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "lsh/lsh.h"
#include "lsh/lsh_table.h"
#include "stats/distribution.h"

namespace ips {

/// Construction and query parameters shared by all per-class filters.
struct DabfOptions {
  /// LSH scheme used for bucketing (the paper adopts L2 p-stable).
  LshScheme scheme = LshScheme::kL2PStable;
  /// Fixed dimension candidates are resampled to before hashing.
  size_t projection_dim = 32;
  /// Number of hash functions. Together with the bucket width this sets the
  /// pruning selectivity: more hashes / narrower buckets make the bloom
  /// membership bit stricter (fewer candidates pruned).
  size_t num_hashes = 6;
  /// p-stable bucket width, in units of the projection scale (a z-normalised
  /// projection_dim-vector has norm sqrt(projection_dim) ~ 5.7).
  double bucket_width = 12.0;
  /// Chebyshev band half-width: a query within `sigma_threshold` standard
  /// deviations of the fitted mean counts as "close to most elements".
  double sigma_threshold = 3.0;
  /// Histogram bins for the distribution fit.
  size_t num_bins = 32;
  uint64_t seed = 7;
};

/// The per-class filter: (LSH_C, Distribution_C) of the paper.
class ClassDabf {
 public:
  /// Builds the filter from a class's candidate subsequences (Algorithm 2).
  /// Requires a non-empty candidate set.
  ClassDabf(std::span<const Subsequence> candidates,
            const DabfOptions& options);

  ClassDabf(ClassDabf&&) = default;
  ClassDabf& operator=(ClassDabf&&) = default;

  /// Query of Algorithm 3: true when (a) the candidate's LSH key collides
  /// with a bucket of this class -- the bloom-filter membership bit,
  /// "possibly close to a stored element" -- AND (b) its distance-to-origin
  /// statistic lies within the sigma band of this class's fitted
  /// distribution, i.e. it is also typical of the population. A candidate
  /// satisfying both is "possibly close to most elements" of this class and
  /// should be pruned by candidates of OTHER classes; failing either is
  /// "definitely not close".
  bool PossiblyCloseToMost(std::span<const double> candidate) const;

  /// The bloom-filter membership bit alone (component (a) above).
  bool KeyCollides(std::span<const double> candidate) const;

  /// The candidate's statistic normalised by the fitted distribution:
  /// (distance_to_origin - mu) / sigma. |value| > sigma_threshold means
  /// "definitely not close to most elements".
  double NormalizedDistance(std::span<const double> candidate) const;

  /// Ranked-bucket coordinate of a query (the DT scalar).
  size_t BucketCoordinate(std::span<const double> candidate) const;

  /// Ranked-bucket coordinate of the i-th candidate this filter was built
  /// from.
  size_t ItemBucketCoordinate(size_t item) const;

  size_t NumBuckets() const { return table_->NumBuckets(); }
  size_t NumItems() const { return table_->NumItems(); }

  /// Best-fit family name for reporting (Table III).
  const std::string& best_fit_name() const { return fit_name_; }

  /// NMSE of the best fit (Table III).
  double nmse() const { return nmse_; }

  /// Fitted mean / stddev of the raw distance-to-origin statistics.
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  std::vector<double> Featurize(std::span<const double> x) const;

  DabfOptions options_;
  std::unique_ptr<LshFamily> family_;
  std::unique_ptr<LshTable> table_;
  std::unique_ptr<Distribution> distribution_;
  std::string fit_name_;
  double nmse_ = 0.0;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

/// The dataset-level DABF: one ClassDabf per class label (Fig. 8).
class Dabf {
 public:
  /// Builds one filter per class from the per-class candidate pools.
  /// Classes with empty pools get no filter.
  Dabf(const std::map<int, std::vector<Subsequence>>& candidates_by_class,
       const DabfOptions& options);

  /// The filter of class `label`, or nullptr when that class had no
  /// candidates.
  const ClassDabf* ForClass(int label) const;

  /// Algorithm 3's disjunction: true when `candidate` (of class
  /// `own_label`) is possibly close to most elements of ANY other class --
  /// i.e. the candidate should be pruned.
  bool CloseToAnyOtherClass(std::span<const double> candidate,
                            int own_label) const;

  const DabfOptions& options() const { return options_; }
  const std::map<int, ClassDabf>& filters() const { return filters_; }

 private:
  DabfOptions options_;
  std::map<int, ClassDabf> filters_;
};

}  // namespace ips

#endif  // IPS_DABF_DABF_H_
