#include "dabf/dabf.h"

#include <cmath>

#include "core/resample.h"
#include "core/znorm.h"
#include "util/check.h"

namespace ips {

ClassDabf::ClassDabf(std::span<const Subsequence> candidates,
                     const DabfOptions& options)
    : options_(options) {
  IPS_CHECK(!candidates.empty());

  LshParams params;
  params.scheme = options.scheme;
  params.input_dim = options.projection_dim;
  params.num_hashes = options.num_hashes;
  params.bucket_width = options.bucket_width;
  params.seed = options.seed;
  family_ = MakeLshFamily(params);
  table_ = std::make_unique<LshTable>(family_.get());

  for (const Subsequence& c : candidates) {
    table_->Add(Featurize(c.view()));
  }
  table_->Finalize();

  // Fit the distribution of the z-normalised distance-to-origin statistics
  // (Algorithm 2 lines 8-10 / Formula 10).
  const std::vector<double>& norms = table_->item_norms();
  mean_ = Mean(norms);
  stddev_ = StdDev(norms);
  if (stddev_ < kFlatStdEpsilon) stddev_ = 1.0;

  std::vector<double> z(norms.size());
  for (size_t i = 0; i < norms.size(); ++i) {
    z[i] = (norms[i] - mean_) / stddev_;
  }
  BestFit fit = FitBestDistribution(z, options.num_bins);
  distribution_ = std::move(fit.distribution);
  fit_name_ = distribution_->Name();
  nmse_ = fit.nmse;
}

std::vector<double> ClassDabf::Featurize(std::span<const double> x) const {
  std::vector<double> r = ResampleToDim(x, options_.projection_dim);
  ZNormalizeInPlace(r);
  return r;
}

double ClassDabf::NormalizedDistance(
    std::span<const double> candidate) const {
  const double norm = table_->ProjectionNorm(Featurize(candidate));
  const double z = (norm - mean_) / stddev_;
  // Centre on the fitted distribution (a non-normal best fit can have a
  // non-zero mean in z space).
  return (z - distribution_->Mean()) /
         std::max(distribution_->StdDev(), 1e-9);
}

bool ClassDabf::KeyCollides(std::span<const double> candidate) const {
  return table_->ContainsKey(Featurize(candidate));
}

bool ClassDabf::PossiblyCloseToMost(
    std::span<const double> candidate) const {
  return KeyCollides(candidate) &&
         std::abs(NormalizedDistance(candidate)) <= options_.sigma_threshold;
}

size_t ClassDabf::BucketCoordinate(std::span<const double> candidate) const {
  return table_->QueryBucketRank(Featurize(candidate));
}

size_t ClassDabf::ItemBucketCoordinate(size_t item) const {
  return table_->BucketRankOfItem(item);
}

Dabf::Dabf(const std::map<int, std::vector<Subsequence>>& candidates_by_class,
           const DabfOptions& options)
    : options_(options) {
  for (const auto& [label, pool] : candidates_by_class) {
    if (pool.empty()) continue;
    DabfOptions class_options = options;
    // Decorrelate the per-class hash functions.
    class_options.seed =
        options.seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(label + 1);
    filters_.emplace(label, ClassDabf(pool, class_options));
  }
}

const ClassDabf* Dabf::ForClass(int label) const {
  const auto it = filters_.find(label);
  return it == filters_.end() ? nullptr : &it->second;
}

bool Dabf::CloseToAnyOtherClass(std::span<const double> candidate,
                                int own_label) const {
  for (const auto& [label, filter] : filters_) {
    if (label == own_label) continue;
    if (filter.PossiblyCloseToMost(candidate)) return true;
  }
  return false;
}

}  // namespace ips
