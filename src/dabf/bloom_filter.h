// Classic Bloom filter over byte strings (Bloom 1970).
//
// Substrate for the BSPCOVER baseline, which uses bloom filters to drop
// shapelet candidates whose discretised PAA word has already been seen, and
// the conceptual ancestor of the paper's distribution-aware bloom filter.

#ifndef IPS_DABF_BLOOM_FILTER_H_
#define IPS_DABF_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>

#include <string_view>
#include <vector>

namespace ips {

/// Standard m-bit, k-hash Bloom filter. Answers "definitely not in the set"
/// or "possibly in the set".
class BloomFilter {
 public:
  /// `num_bits` bit array positions and `num_hashes` hash functions.
  BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed = 0x9e3779b9);

  /// Sizes the filter for an expected item count and target false-positive
  /// rate using the optimal m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
  static BloomFilter WithCapacity(size_t expected_items,
                                  double false_positive_rate);

  /// Inserts a key.
  void Add(std::string_view key);

  /// False means the key was definitely never added; true means it possibly
  /// was.
  bool MayContain(std::string_view key) const;

  size_t num_bits() const { return bits_.size(); }
  size_t num_hashes() const { return num_hashes_; }

  /// Number of Add() calls so far.
  size_t num_items() const { return num_items_; }

  /// Fraction of bits set -- a saturation diagnostic.
  double FillRatio() const;

 private:
  uint64_t HashAt(std::string_view key, size_t i) const;

  std::vector<bool> bits_;
  size_t num_hashes_;
  uint64_t seed_;
  size_t num_items_ = 0;
};

}  // namespace ips

#endif  // IPS_DABF_BLOOM_FILTER_H_
