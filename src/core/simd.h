// Portable SIMD kernel layer for the hot numeric loops.
//
// Every kernel here obeys one design rule, inherited from this repo's
// bitwise-identity test culture: **vectorise across independent outputs,
// never inside a single reduction.** A vector register holds kLanes
// *different* outputs (distance-profile columns, rolling-stat windows, STOMP
// row cells); each lane performs exactly the scalar kernel's operation
// sequence for its own output, so every result is bitwise identical to the
// scalar code at any vector width. Loops whose value is one chained
// floating-point reduction (SquaredEuclidean's accumulator, prefix sums, the
// per-diagonal QT chain) stay scalar by design -- splitting them into lane
// partials would reassociate the rounding order. Min-reductions are the one
// sanctioned exception: min/max selection involves no rounding, so a
// lane-wise running minimum folded horizontally at the end selects exactly
// the value the sequential loop selects (all inputs here are non-NaN and
// non-negative, so IEEE min quirks around NaN and -0.0 never apply).
//
// Backend selection is a build-time decision (no runtime dispatch): AVX2
// (4 lanes) when the compiler targets it (-march=native and friends), else
// SSE2 (2 lanes, the x86-64 baseline), else NEON (2 lanes, AArch64), else
// the scalar fallback. -DIPS_DISABLE_SIMD=ON forces the scalar fallback
// everywhere, restoring the exact pre-SIMD code path. The always-compiled
// `scalar::` namespace mirrors every kernel with the width-1 instantiation
// of the same template, so tests and benchmarks can compare the dispatched
// kernels against the scalar reference in the same binary
// (tests/simd_kernel_test.cc asserts bit-level equality).
//
// NOTE on fused multiply-add: the kernels never emit FMA. The scalar
// baseline rounds after the multiply and again after the add, so a fused
// contraction would change results; the build compiles with
// -ffp-contract=off (top-level CMakeLists.txt) so neither the scalar code
// nor the intrinsic sequences are contracted behind our back.

#ifndef IPS_CORE_SIMD_H_
#define IPS_CORE_SIMD_H_

#include <cstddef>

namespace ips {
namespace simd {

// Active backend, decided at build time. The macros are global compile
// options (IPS_DISABLE_SIMD via CMake, the rest implied by -march), so every
// translation unit agrees on the width.
#if defined(IPS_DISABLE_SIMD)
inline constexpr size_t kLanes = 1;
#elif defined(__AVX2__)
inline constexpr size_t kLanes = 4;
#elif defined(__SSE2__) || defined(_M_X64)
inline constexpr size_t kLanes = 2;
#elif defined(__aarch64__) && defined(__ARM_NEON)
inline constexpr size_t kLanes = 2;
#else
inline constexpr size_t kLanes = 1;
#endif

/// Human-readable name of the active backend: "avx2", "sse2", "neon" or
/// "scalar". Used by benchmarks and logs.
const char* BackendName();

// ---------------------------------------------------------------------------
// Kernels. Each is documented with the scalar loop it replaces; the
// guarantee is bitwise-identical output for every input shape, including
// remainder lanes (counts below, equal to, and above kLanes).
// ---------------------------------------------------------------------------

/// Sliding dot products: out[i] = sum_j q[j] * s[i + j] for i in
/// [0, n - m], accumulated in increasing j exactly as the naive kernel.
/// Vectorised across kLanes adjacent outputs i (each lane keeps its own
/// scalar-order accumulator). `out` must hold n - m + 1 values.
void SlidingDots(const double* q, size_t m, const double* s, size_t n,
                 double* out);

/// The raw (Def. 4) distance-profile tail given sliding dot products and a
/// prefix-sum-of-squares table:
///   out[i] = max(0, (qq - 2*dots[i] + (sqp[i+m] - sqp[i])) / m).
void RawProfileFromDots(double qq, const double* sqp, size_t window,
                        const double* dots, size_t count, double* out);

/// Minimum of RawProfileFromDots without materialising the profile -- the
/// batched profile min-reduce of DistanceEngine. Exact: the lane-minimum /
/// horizontal fold selects values, it never rounds.
double RawMinFromDots(double qq, const double* sqp, size_t window,
                      const double* dots, size_t count);

/// The z-normalised (MASS) distance-profile tail:
///   flat query & flat window -> 0; exactly one flat -> sqrt(m);
///   else sqrt(max(0, 2m - 2*dots[i]/stds[i])).
/// A window is flat when stds[i] < kFlatStdEpsilon (core/znorm.h).
void ZNormProfileFromDots(const double* dots, const double* stds, size_t count,
                          size_t window, bool query_flat, double* out);

/// Minimum of ZNormProfileFromDots without materialising the profile.
double ZNormMinFromDots(const double* dots, const double* stds, size_t count,
                        size_t window, bool query_flat);

/// The non-normalised Euclidean (L2) distance-profile tail:
///   out[i] = sqrt(max(0, qq - 2*dots[i] + (sqp[i+m] - sqp[i]))).
/// Same inputs as the raw (Def. 4) tail -- the dot family shares its
/// qq / prefix-squares / sliding-dots setup.
void L2ProfileFromDots(double qq, const double* sqp, size_t window,
                       const double* dots, size_t count, double* out);

/// Minimum of L2ProfileFromDots without materialising the profile.
double L2MinFromDots(double qq, const double* sqp, size_t window,
                     const double* dots, size_t count);

/// The cosine distance-profile tail, with wn = sqrt(sqp[i+m] - sqp[i]) and
/// qn = sqrt(qq):
///   both norms < kFlatStdEpsilon -> 0; exactly one -> 1;
///   else max(0, 1 - dots[i] / (qn * wn)).
void CosineProfileFromDots(double qq, const double* sqp, size_t window,
                           const double* dots, size_t count, double* out);

/// Minimum of CosineProfileFromDots without materialising the profile.
double CosineMinFromDots(double qq, const double* sqp, size_t window,
                         const double* dots, size_t count);

/// Rolling mean/std from centred prefix sums (core/znorm.cc):
///   s1 = sum[i+w]-sum[i]; s2 = sq[i+w]-sq[i]; mean_c = s1/w;
///   means[i] = gm + mean_c; stds[i] = sqrt(max(0, s2/w - mean_c^2)).
void RollingMomentsFromPrefix(const double* sum, const double* sq,
                              size_t count, size_t window, double grand_mean,
                              double* means, double* stds);

/// One in-place right-to-left STOMP row update (matrix_profile RowSweep):
///   for j = count-1 .. 1: qt[j] = qt[j-1] - a_head*b[j-1] + a_tail*b[j+w-1]
/// where a_head = a[i-1] and a_tail = a[i+w-1]. Every new qt[j] reads only
/// pre-update values, so blocks of kLanes cells are independent outputs.
/// qt[0] is the caller's seed (column-0 dot product). `b` must extend to
/// index count + window - 2.
void QtRowAdvance(double* qt, size_t count, const double* b, size_t window,
                  double a_head, double a_tail);

/// One STOMP row of z-normalised distances (stomp_common.h
/// StompZNormDistance with the row side's mu_a/sig_a fixed):
///   out[j] = StompZNormDistance(qt[j], w, mu_a, sig_a, mu_b[j], sig_b[j]).
void StompRowDistances(const double* qt, const double* mu_b,
                       const double* sig_b, size_t count, size_t window,
                       double mu_a, double sig_a, double* out);

/// One STOMP row of raw (Def. 4) distances from window energies
/// (stomp_common.h StompRawDistance with the row side's energy fixed):
///   out[j] = max(0, ((ssq_a + ssq_b[j]) - 2*qt[j]) / m).
void StompRowDistancesRaw(const double* qt, const double* ssq_b, size_t count,
                          size_t window, double ssq_a, double* out);

/// One STOMP row of non-normalised L2 distances (StompL2Distance):
///   out[j] = sqrt(max(0, (ssq_a + ssq_b[j]) - 2*qt[j])).
void StompRowDistancesL2(const double* qt, const double* ssq_b, size_t count,
                         size_t window, double ssq_a, double* out);

/// One STOMP row of cosine distances (StompCosineDistance with the row
/// side's norm sqrt(ssq_a) fixed); norms under kFlatStdEpsilon follow the
/// flat conventions (both -> 0, one -> 1).
void StompRowDistancesCosine(const double* qt, const double* ssq_b,
                             size_t count, size_t window, double ssq_a,
                             double* out);

/// Sum of squared differences, kept as ONE scalar accumulation chain for
/// every backend: the value is a single dependent reduction, and the
/// identity rule forbids splitting it into lane partials (that would
/// reassociate the additions). Routed through this layer so the contract is
/// stated in one place rather than silently diverging per call site.
double SquaredEuclideanChained(const double* a, const double* b, size_t n);

// Scalar reference instantiations of the same kernels (width 1), compiled
// unconditionally. With IPS_DISABLE_SIMD the dispatched kernels above are
// these exact functions.
namespace scalar {
void SlidingDots(const double* q, size_t m, const double* s, size_t n,
                 double* out);
void RawProfileFromDots(double qq, const double* sqp, size_t window,
                        const double* dots, size_t count, double* out);
double RawMinFromDots(double qq, const double* sqp, size_t window,
                      const double* dots, size_t count);
void ZNormProfileFromDots(const double* dots, const double* stds, size_t count,
                          size_t window, bool query_flat, double* out);
double ZNormMinFromDots(const double* dots, const double* stds, size_t count,
                        size_t window, bool query_flat);
void L2ProfileFromDots(double qq, const double* sqp, size_t window,
                       const double* dots, size_t count, double* out);
double L2MinFromDots(double qq, const double* sqp, size_t window,
                     const double* dots, size_t count);
void CosineProfileFromDots(double qq, const double* sqp, size_t window,
                           const double* dots, size_t count, double* out);
double CosineMinFromDots(double qq, const double* sqp, size_t window,
                         const double* dots, size_t count);
void RollingMomentsFromPrefix(const double* sum, const double* sq,
                              size_t count, size_t window, double grand_mean,
                              double* means, double* stds);
void QtRowAdvance(double* qt, size_t count, const double* b, size_t window,
                  double a_head, double a_tail);
void StompRowDistances(const double* qt, const double* mu_b,
                       const double* sig_b, size_t count, size_t window,
                       double mu_a, double sig_a, double* out);
void StompRowDistancesRaw(const double* qt, const double* ssq_b, size_t count,
                          size_t window, double ssq_a, double* out);
void StompRowDistancesL2(const double* qt, const double* ssq_b, size_t count,
                         size_t window, double ssq_a, double* out);
void StompRowDistancesCosine(const double* qt, const double* ssq_b,
                             size_t count, size_t window, double ssq_a,
                             double* out);
double SquaredEuclideanChained(const double* a, const double* b, size_t n);
}  // namespace scalar

}  // namespace simd
}  // namespace ips

#endif  // IPS_CORE_SIMD_H_
