// Portable SIMD kernel layer for the hot numeric loops.
//
// Every kernel here obeys one design rule, inherited from this repo's
// bitwise-identity test culture: **vectorise across independent outputs,
// never inside a single reduction.** A vector register holds kLanes
// *different* outputs (distance-profile columns, rolling-stat windows, STOMP
// row cells); each lane performs exactly the scalar kernel's operation
// sequence for its own output, so every result is bitwise identical to the
// scalar code at any vector width. Loops whose value is one chained
// floating-point reduction (SquaredEuclidean's accumulator, prefix sums, the
// per-diagonal QT chain) stay scalar by design -- splitting them into lane
// partials would reassociate the rounding order. Min-reductions are the one
// sanctioned exception: min/max selection involves no rounding, so a
// lane-wise running minimum folded horizontally at the end selects exactly
// the value the sequential loop selects (all inputs here are non-NaN and
// non-negative, so IEEE min quirks around NaN and -0.0 never apply).
//
// Backend selection is a build-time decision (no runtime dispatch): AVX2
// (4 lanes) when the compiler targets it (-march=native and friends), else
// SSE2 (2 lanes, the x86-64 baseline), else NEON (2 lanes, AArch64), else
// the scalar fallback. -DIPS_DISABLE_SIMD=ON forces the scalar fallback
// everywhere, restoring the exact pre-SIMD code path. The always-compiled
// `scalar::` namespace mirrors every kernel with the width-1 instantiation
// of the same template, so tests and benchmarks can compare the dispatched
// kernels against the scalar reference in the same binary
// (tests/simd_kernel_test.cc asserts bit-level equality).
//
// NOTE on fused multiply-add: the kernels never emit FMA. The scalar
// baseline rounds after the multiply and again after the add, so a fused
// contraction would change results; the build compiles with
// -ffp-contract=off (top-level CMakeLists.txt) so neither the scalar code
// nor the intrinsic sequences are contracted behind our back.

#ifndef IPS_CORE_SIMD_H_
#define IPS_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ips {
namespace simd {

// Active backend, decided at build time. The macros are global compile
// options (IPS_DISABLE_SIMD via CMake, the rest implied by -march), so every
// translation unit agrees on the width.
#if defined(IPS_DISABLE_SIMD)
inline constexpr size_t kLanes = 1;
#elif defined(__AVX2__)
inline constexpr size_t kLanes = 4;
#elif defined(__SSE2__) || defined(_M_X64)
inline constexpr size_t kLanes = 2;
#elif defined(__aarch64__) && defined(__ARM_NEON)
inline constexpr size_t kLanes = 2;
#else
inline constexpr size_t kLanes = 1;
#endif

/// Human-readable name of the active backend: "avx2", "sse2", "neon" or
/// "scalar". Used by benchmarks and logs.
const char* BackendName();

// ---------------------------------------------------------------------------
// Kernels. Each is documented with the scalar loop it replaces; the
// guarantee is bitwise-identical output for every input shape, including
// remainder lanes (counts below, equal to, and above kLanes).
// ---------------------------------------------------------------------------

/// Sliding dot products: out[i] = sum_j q[j] * s[i + j] for i in
/// [0, n - m], accumulated in increasing j exactly as the naive kernel.
/// Vectorised across kLanes adjacent outputs i (each lane keeps its own
/// scalar-order accumulator). `out` must hold n - m + 1 values.
void SlidingDots(const double* q, size_t m, const double* s, size_t n,
                 double* out);

/// The raw (Def. 4) distance-profile tail given sliding dot products and a
/// prefix-sum-of-squares table:
///   out[i] = max(0, (qq - 2*dots[i] + (sqp[i+m] - sqp[i])) / m).
void RawProfileFromDots(double qq, const double* sqp, size_t window,
                        const double* dots, size_t count, double* out);

/// Minimum of RawProfileFromDots without materialising the profile -- the
/// batched profile min-reduce of DistanceEngine. Exact: the lane-minimum /
/// horizontal fold selects values, it never rounds.
double RawMinFromDots(double qq, const double* sqp, size_t window,
                      const double* dots, size_t count);

/// The z-normalised (MASS) distance-profile tail:
///   flat query & flat window -> 0; exactly one flat -> sqrt(m);
///   else sqrt(max(0, 2m - 2*dots[i]/stds[i])).
/// A window is flat when stds[i] < kFlatStdEpsilon (core/znorm.h).
void ZNormProfileFromDots(const double* dots, const double* stds, size_t count,
                          size_t window, bool query_flat, double* out);

/// Minimum of ZNormProfileFromDots without materialising the profile.
double ZNormMinFromDots(const double* dots, const double* stds, size_t count,
                        size_t window, bool query_flat);

/// The non-normalised Euclidean (L2) distance-profile tail:
///   out[i] = sqrt(max(0, qq - 2*dots[i] + (sqp[i+m] - sqp[i]))).
/// Same inputs as the raw (Def. 4) tail -- the dot family shares its
/// qq / prefix-squares / sliding-dots setup.
void L2ProfileFromDots(double qq, const double* sqp, size_t window,
                       const double* dots, size_t count, double* out);

/// Minimum of L2ProfileFromDots without materialising the profile.
double L2MinFromDots(double qq, const double* sqp, size_t window,
                     const double* dots, size_t count);

/// The cosine distance-profile tail, with wn = sqrt(sqp[i+m] - sqp[i]) and
/// qn = sqrt(qq):
///   both norms < kFlatStdEpsilon -> 0; exactly one -> 1;
///   else max(0, 1 - dots[i] / (qn * wn)).
void CosineProfileFromDots(double qq, const double* sqp, size_t window,
                           const double* dots, size_t count, double* out);

/// Minimum of CosineProfileFromDots without materialising the profile.
double CosineMinFromDots(double qq, const double* sqp, size_t window,
                         const double* dots, size_t count);

/// Rolling mean/std from centred prefix sums (core/znorm.cc):
///   s1 = sum[i+w]-sum[i]; s2 = sq[i+w]-sq[i]; mean_c = s1/w;
///   means[i] = gm + mean_c; stds[i] = sqrt(max(0, s2/w - mean_c^2)).
void RollingMomentsFromPrefix(const double* sum, const double* sq,
                              size_t count, size_t window, double grand_mean,
                              double* means, double* stds);

/// One in-place right-to-left STOMP row update (matrix_profile RowSweep):
///   for j = count-1 .. 1: qt[j] = qt[j-1] - a_head*b[j-1] + a_tail*b[j+w-1]
/// where a_head = a[i-1] and a_tail = a[i+w-1]. Every new qt[j] reads only
/// pre-update values, so blocks of kLanes cells are independent outputs.
/// qt[0] is the caller's seed (column-0 dot product). `b` must extend to
/// index count + window - 2.
void QtRowAdvance(double* qt, size_t count, const double* b, size_t window,
                  double a_head, double a_tail);

/// One STOMP row of z-normalised distances (stomp_common.h
/// StompZNormDistance with the row side's mu_a/sig_a fixed):
///   out[j] = StompZNormDistance(qt[j], w, mu_a, sig_a, mu_b[j], sig_b[j]).
void StompRowDistances(const double* qt, const double* mu_b,
                       const double* sig_b, size_t count, size_t window,
                       double mu_a, double sig_a, double* out);

/// One STOMP row of raw (Def. 4) distances from window energies
/// (stomp_common.h StompRawDistance with the row side's energy fixed):
///   out[j] = max(0, ((ssq_a + ssq_b[j]) - 2*qt[j]) / m).
void StompRowDistancesRaw(const double* qt, const double* ssq_b, size_t count,
                          size_t window, double ssq_a, double* out);

/// One STOMP row of non-normalised L2 distances (StompL2Distance):
///   out[j] = sqrt(max(0, (ssq_a + ssq_b[j]) - 2*qt[j])).
void StompRowDistancesL2(const double* qt, const double* ssq_b, size_t count,
                         size_t window, double ssq_a, double* out);

/// One STOMP row of cosine distances (StompCosineDistance with the row
/// side's norm sqrt(ssq_a) fixed); norms under kFlatStdEpsilon follow the
/// flat conventions (both -> 0, one -> 1).
void StompRowDistancesCosine(const double* qt, const double* ssq_b,
                             size_t count, size_t window, double ssq_a,
                             double* out);

// ---------------------------------------------------------------------------
// Early-abandon min kernels (the lower-bound cascade of docs/pruning.md).
//
// Each kernel computes min_i d(query, series[i..i+m)) for one registered
// metric -- the same minimum the corresponding *MinFromDots kernel selects
// over a naive sliding-dots pass -- while skipping work three ways:
//
//   1. cheap admissible per-alignment lower bounds (a window-energy band
//      for the dot family, first/last-coordinate bounds for the squared
//      families) prune alignments in O(1) -- evaluated lazily at visit
//      time against the current best-so-far, never materialised or sorted
//      (an argsort of the alignments costs more than the dense kernel);
//   2. the visit order front-loads likely minima -- the caller's `seed`
//      hint first, then an O(1)-per-alignment guess (dot family: the
//      alignment whose window energy is nearest the query's; z-norm: the
//      alignment with the smallest scaled endpoint residuals) -- so the
//      best-so-far drops fast and later alignments prune or abandon
//      early;
//   3. each scan accumulates the squared error in blocks and abandons once
//      the monotone partial sum exceeds the best-so-far plus a conservative
//      rounding-slack margin.
//
// Identity contract: the returned minimum is BITWISE identical to the
// dispatched *MinFromDots kernel fed by simd::SlidingDots. Three facts make
// that possible: SlidingDots accumulates each output as one increasing-j
// scalar chain (so a per-alignment scalar dot loop reproduces dots[i]
// exactly); min-selection never rounds (so evaluating any superset of the
// potential argmins that contains the true argmin yields the exact
// minimum); and every surviving alignment's value is computed with the
// exact tail expression of the dense kernel from that exact dot. The slack
// margins make every skip provable despite the cross-arithmetic rounding
// difference between the scan's sum of squared differences and the dense
// (qq - 2*dot + ss) tail; docs/pruning.md derives each margin.
//
// These kernels are inherently scalar (each alignment is one dependent
// scan), so one implementation serves both the dispatched and the scalar
// MetricPolicy kernel tables. Callers must stay in the naive sliding-dots
// regime (core/distance.h's FFT dispatch predicate): under FFT dots the
// dense kernels see different (FFT-rounded) dot products, and the engine
// keeps that regime on the dense path instead.
// ---------------------------------------------------------------------------

/// Sentinel alignment index: "no seed" / "no argmin available".
inline constexpr size_t kEabNoSeed = static_cast<size_t>(-1);

/// Inputs of the early-abandon min kernels. Which fields a metric reads is
/// fixed per metric (see each member); unused fields may be zero / null.
struct EabArgs {
  const double* query = nullptr;   ///< raw query; z-normalised for z-norm
  size_t window = 0;               ///< query length m
  const double* series = nullptr;  ///< raw series values, length n
  size_t count = 0;                ///< alignments n - m + 1
  double qq = 0.0;                 ///< query sum of squares (dot family)
  const double* sqp = nullptr;     ///< series prefix sums of squares, n + 1
  const double* qpre = nullptr;    ///< query prefix sums of squares, m + 1
                                   ///  (cosine only: Cauchy-Schwarz tail)
  const double* means = nullptr;   ///< rolling window means (z-norm only)
  const double* stds = nullptr;    ///< rolling window stds (z-norm only)
  bool query_flat = false;         ///< z-normalised query is all zero
  double zq_sum = 0.0;             ///< sum of z-normalised query values
  double zq_sumsq = 0.0;           ///< sum of their squares (z-norm only)
  size_t seed = kEabNoSeed;        ///< alignment to evaluate first (clamped
                                   ///  by validity; kEabNoSeed = none)
};

/// Work accounting, accumulated (+=) by each kernel call. On every
/// successful (non-bailed) call, candidates == lb_pruned + abandoned + full.
struct EabCounters {
  size_t candidates = 0;  ///< alignments considered (one `count` per call)
  size_t lb_pruned = 0;   ///< skipped whole by the lower bound
  size_t abandoned = 0;   ///< scans cut short by the partial-sum test
  size_t full = 0;        ///< scans that ran to completion
};

/// Result of one early-abandon min call. When `bailed_out` is set the
/// kernel judged pruning ineffective mid-flight (scalar scans were losing
/// to the vectorised dense kernel) and computed nothing usable: the caller
/// must fall back to the dense sliding-dots path. min/argmin are then
/// meaningless; the counters report the call as `count` full evaluations.
struct EabResult {
  double min = 0.0;
  size_t argmin = kEabNoSeed;  ///< visit-order argmin (a seed hint, not an
                               ///  identity contract: ties may differ from
                               ///  the dense kernel's first-index tie rule)
  bool bailed_out = false;
};

/// Early-abandon minimum of the raw (Def. 4) profile. Reads query, window,
/// series, count, qq, sqp, seed. Lower bound: (|q| - |s_i|)^2 / m
/// by the reverse triangle inequality on Euclidean norms.
EabResult RawMinEarlyAbandon(const EabArgs& args, EabCounters& counters);

/// Early-abandon minimum of the non-normalised L2 profile. Same inputs and
/// bound family as the raw kernel (compared in squared scale).
EabResult L2MinEarlyAbandon(const EabArgs& args, EabCounters& counters);

/// Early-abandon minimum of the cosine profile. Reads query, window,
/// series, count, qq, sqp, qpre, seed. Cosine is scale-invariant,
/// so no norm-based lower bound exists (the cascade's LB stage is trivial);
/// scans abandon via the Cauchy-Schwarz bound on the unseen dot-product
/// tail: dot <= dot_k + sqrt(qq_rest * ss_rest).
EabResult CosineMinEarlyAbandon(const EabArgs& args, EabCounters& counters);

/// Early-abandon minimum of the z-normalised (MASS) profile. Reads query
/// (z-normalised), window, series, count, sqp, means, stds, query_flat,
/// zq_sum, zq_sumsq, seed. Lower bound: LB_Kim-style first/last
/// z-scored coordinates, corrected by the exact structural gap between the
/// z-score squared error and the kernel's 2m - 2*dot/sigma tail (see
/// docs/pruning.md for the derivation).
EabResult ZNormMinEarlyAbandon(const EabArgs& args, EabCounters& counters);

/// Sum of squared differences, kept as ONE scalar accumulation chain for
/// every backend: the value is a single dependent reduction, and the
/// identity rule forbids splitting it into lane partials (that would
/// reassociate the additions). Routed through this layer so the contract is
/// stated in one place rather than silently diverging per call site.
double SquaredEuclideanChained(const double* a, const double* b, size_t n);

// Scalar reference instantiations of the same kernels (width 1), compiled
// unconditionally. With IPS_DISABLE_SIMD the dispatched kernels above are
// these exact functions.
namespace scalar {
void SlidingDots(const double* q, size_t m, const double* s, size_t n,
                 double* out);
void RawProfileFromDots(double qq, const double* sqp, size_t window,
                        const double* dots, size_t count, double* out);
double RawMinFromDots(double qq, const double* sqp, size_t window,
                      const double* dots, size_t count);
void ZNormProfileFromDots(const double* dots, const double* stds, size_t count,
                          size_t window, bool query_flat, double* out);
double ZNormMinFromDots(const double* dots, const double* stds, size_t count,
                        size_t window, bool query_flat);
void L2ProfileFromDots(double qq, const double* sqp, size_t window,
                       const double* dots, size_t count, double* out);
double L2MinFromDots(double qq, const double* sqp, size_t window,
                     const double* dots, size_t count);
void CosineProfileFromDots(double qq, const double* sqp, size_t window,
                           const double* dots, size_t count, double* out);
double CosineMinFromDots(double qq, const double* sqp, size_t window,
                         const double* dots, size_t count);
void RollingMomentsFromPrefix(const double* sum, const double* sq,
                              size_t count, size_t window, double grand_mean,
                              double* means, double* stds);
void QtRowAdvance(double* qt, size_t count, const double* b, size_t window,
                  double a_head, double a_tail);
void StompRowDistances(const double* qt, const double* mu_b,
                       const double* sig_b, size_t count, size_t window,
                       double mu_a, double sig_a, double* out);
void StompRowDistancesRaw(const double* qt, const double* ssq_b, size_t count,
                          size_t window, double ssq_a, double* out);
void StompRowDistancesL2(const double* qt, const double* ssq_b, size_t count,
                         size_t window, double ssq_a, double* out);
void StompRowDistancesCosine(const double* qt, const double* ssq_b,
                             size_t count, size_t window, double ssq_a,
                             double* out);
double SquaredEuclideanChained(const double* a, const double* b, size_t n);
}  // namespace scalar

}  // namespace simd
}  // namespace ips

#endif  // IPS_CORE_SIMD_H_
