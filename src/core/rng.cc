#include "core/rng.h"

#include <numeric>

#include "util/check.h"

namespace ips {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  IPS_CHECK(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
}

size_t Rng::Index(size_t n) {
  IPS_CHECK(n > 0);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  IPS_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector: O(n) setup, exact uniformity.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    std::swap(idx[i], idx[i + Index(n - i)]);
  }
  idx.resize(k);
  return idx;
}

std::vector<size_t> Rng::SampleWithReplacement(size_t n, size_t k) {
  IPS_CHECK(n > 0);
  std::vector<size_t> out(k);
  for (auto& v : out) v = Index(n);
  return out;
}

}  // namespace ips
