// Metric policies: pluggable distance functions for the whole stack.
//
// Every layer that evaluates subsequence distances -- the core distance
// profiles, the DistanceEngine batch APIs, the STOMP matrix-profile sweeps
// and the shapelet transform -- dispatches through a MetricPolicy instead of
// baking in one metric. A policy bundles, per metric:
//
//  * the distance-profile tail kernels (profile / min from sliding dot
//    products), in both the build-time dispatched SIMD flavour and the
//    always-scalar reference flavour (core/simd.h's `scalar::` discipline);
//  * the STOMP row kernel: one row of distances from the QT recurrence
//    values plus per-window statistics, consumed by the
//    MatrixProfileEngine's row-order sweep;
//  * a direct O(window) pairwise reference distance between two
//    equal-length windows -- the brute-force oracle the parity tests
//    compare every engine against;
//  * the artefacts the engines must precompute for it: rolling mean/std
//    windows (z-normalised family) or per-window energies (dot family).
//
// All shipped metrics share the same computational skeleton -- a sliding
// dot product QT between windows, advanced in O(1) along diagonals by the
// metric-independent STOMP recurrence -- following Akbarinia & Theodorakis's
// observation that the MASS/STOMP machinery generalises beyond z-normalised
// Euclidean. Only the O(1) "distance from QT" step differs per metric, so a
// new metric costs three small kernels and a table entry (docs/metrics.md
// walks through the derivations and the registration steps).
//
// Identity contract: kZNormEuclidean is the default everywhere and its
// hooks are thin wrappers around the exact pre-policy kernels, so default
// runs are bitwise identical to the un-refactored code
// (bench/discovery_fingerprint proves it). Every metric's distances are
// bitwise identical across thread counts and symmetric under exchanging the
// sides (the groupings in the kernels only commute single IEEE operations).

#ifndef IPS_CORE_METRIC_H_
#define IPS_CORE_METRIC_H_

#include <cstddef>
#include <cstdint>

#include <span>
#include <string_view>

#include "core/simd.h"

namespace ips {

/// Identifies a distance function. Values are stable across releases: they
/// are recorded (by name) in the v2.1 run artifact.
enum class MetricId : uint8_t {
  /// MASS/STOMP z-normalised Euclidean distance -- each window is
  /// z-normalised before comparison. The default metric of the matrix
  /// profile and of the shapelet-transform literature.
  kZNormEuclidean = 0,
  /// The paper's literal Def. 4: length-normalised squared Euclidean
  /// distance (no window normalisation). Used by utility scoring, pruning
  /// and the DABF regardless of the run metric -- it is part of the IPS
  /// algorithm, not a profile choice.
  kRawSquaredEuclidean = 1,
  /// Non-normalised Euclidean (L2) distance between raw windows, for
  /// domains where amplitude and offset carry signal.
  kEuclidean = 2,
  /// Cosine distance 1 - <a, b> / (||a|| ||b||), a correlation-family
  /// metric sensitive to shape but not to scale.
  kCosine = 3,
};

/// Number of registered metrics (enum values are 0..kMetricCount-1).
inline constexpr size_t kMetricCount = 4;

/// Inputs of the distance-profile tail kernels: everything the engines have
/// on hand after the sliding-dot-products pass. Which fields a metric reads
/// is fixed per metric; unused fields may be zero / null.
struct MetricProfileArgs {
  const double* dots = nullptr;  ///< sliding dot products, `count` values
  size_t count = 0;              ///< number of profile entries (n - m + 1)
  size_t window = 0;             ///< query length m
  double qq = 0.0;               ///< query sum of squares (dot family)
  const double* sqp = nullptr;   ///< series prefix sums of squares, size n+1
  const double* stds = nullptr;  ///< rolling window stds (z-normalised)
  bool query_flat = false;       ///< z-normalised query is all zero
};

/// Per-window statistics of one STOMP side, pre-offset by the caller so
/// index j addresses the j-th window of the row. Which arrays are non-null
/// follows the policy's needs_* flags.
struct MetricRowView {
  const double* means = nullptr;     ///< rolling means (z-normalised)
  const double* stds = nullptr;      ///< rolling stds (z-normalised)
  const double* energies = nullptr;  ///< per-window sums of squares
};

/// The same statistics for a single window (the sweep's row side).
struct MetricCell {
  double mean = 0.0;
  double std = 0.0;
  double energy = 0.0;
};

/// The kernel hooks of one metric. Two instances exist per policy: the
/// build-time dispatched (SIMD) kernels and the width-1 scalar references,
/// mirroring core/simd.h's dispatched / `scalar::` split so tests can pin
/// them to bitwise agreement in one binary.
struct MetricKernels {
  /// Distance profile from sliding dot products: out[i] = d(query,
  /// series[i..i+m)). `out` must hold args.count values.
  void (*profile_from_dots)(const MetricProfileArgs& args, double* out);
  /// min over profile_from_dots without materialising the profile (exact:
  /// min-selection never rounds).
  double (*min_from_dots)(const MetricProfileArgs& args);
  /// One STOMP row: out[j] = d(window a, window b_j) given the row's QT
  /// values. Used by the MatrixProfileEngine row sweep; must be bitwise
  /// equal to the per-cell helpers in matrix_profile/stomp_common.h.
  void (*stomp_row)(const double* qt, const MetricRowView& b, size_t count,
                    size_t window, const MetricCell& a, double* out);
};

/// One registered metric: identity, artefact requirements and kernels.
struct MetricPolicy {
  MetricId id = MetricId::kZNormEuclidean;
  /// Stable lower_snake name, recorded in run artifacts and used to label
  /// per-metric obs counters ("mp.qt_sweeps.<name>").
  const char* name = "";
  /// The profile tail consumes a z-normalised copy of the query (and the
  /// engines cache that copy) instead of the raw values.
  bool normalizes_query = false;
  /// Engines must supply rolling mean/std windows (core/znorm.h).
  bool needs_rolling_stats = false;
  /// Engines must supply per-window sums of squares (ComputeWindowEnergies).
  bool needs_window_energy = false;
  MetricKernels kernels;         ///< build-time dispatched (SIMD) hooks
  MetricKernels scalar_kernels;  ///< width-1 scalar reference hooks
  /// Direct O(window) distance between two equal-length windows, computed
  /// without any dot-product recurrence -- the brute-force reference.
  double (*pairwise)(std::span<const double> a, std::span<const double> b);
  /// Optional early-abandon min kernel (the lower-bound cascade,
  /// docs/pruning.md): same minimum as kernels.min_from_dots over naive
  /// sliding dots, bitwise, but with admissible-lower-bound pruning and
  /// partial-sum abandonment. One function serves both kernel tables (the
  /// scans are inherently scalar). nullptr opts the metric out: the engine
  /// then always runs the dense path. A registered kernel is only invoked
  /// in the naive sliding-dots regime (never over FFT dots).
  simd::EabResult (*min_early_abandon)(const simd::EabArgs& args,
                                       simd::EabCounters& counters) = nullptr;
  /// Whether the registered early-abandon kernel is expected to beat the
  /// dense path. When false the engine's cost model routes min queries
  /// straight to the dense kernels without entering the cascade (and skips
  /// the cascade's per-query setup); the kernel itself stays registered and
  /// directly callable, so tests and future bounds keep their hook. Cosine
  /// sets this false: it has no admissible norm-based lower bound, so its
  /// kernel can only Cauchy-Schwarz-abandon scan tails -- measured to prune
  /// 0 of ~3.5M candidates while paying the scalar-scan penalty (~0.96x in
  /// BENCH_eab.json).
  bool eab_profitable = true;
};

/// The policy registered for `id`. Aborts on an out-of-range id.
const MetricPolicy& GetMetric(MetricId id);

/// Looks a policy up by its stable name; nullptr when no metric of that
/// name is registered in this build (the serialization layer uses this to
/// reject artifacts recorded under an unknown metric).
const MetricPolicy* FindMetricByName(std::string_view name);

/// Shorthand for GetMetric(id).name.
const char* MetricName(MetricId id);

}  // namespace ips

#endif  // IPS_CORE_METRIC_H_
