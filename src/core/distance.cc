#include "core/distance.h"

#include <cmath>

#include <algorithm>

#include "core/fft.h"
#include "core/simd.h"
#include "util/check.h"

namespace ips {

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  IPS_CHECK(a.size() == b.size());
  return simd::SquaredEuclideanChained(a.data(), b.data(), a.size());
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

namespace {

std::vector<double> SlidingProducts(std::span<const double> query,
                                    std::span<const double> series) {
  if (query.size() < kFftCutoff) {
    return SlidingDotProductsNaive(query, series);
  }
  return SlidingDotProductsAuto(query, series);
}

}  // namespace

std::vector<double> DistanceProfileRaw(std::span<const double> query,
                                       std::span<const double> series) {
  const size_t m = query.size();
  const size_t n = series.size();
  IPS_CHECK(m >= 1);
  IPS_CHECK(n >= m);

  double qq = 0.0;
  for (double v : query) qq += v * v;

  // Prefix sums of series^2 for the window energies.
  std::vector<double> sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) sq[i + 1] = sq[i] + series[i] * series[i];

  const std::vector<double> qt = SlidingProducts(query, series);

  std::vector<double> out(n - m + 1);
  simd::RawProfileFromDots(qq, sq.data(), m, qt.data(), out.size(),
                           out.data());
  return out;
}

double SubsequenceDistance(std::span<const double> a,
                           std::span<const double> b) {
  const std::span<const double>& shorter = a.size() <= b.size() ? a : b;
  const std::span<const double>& longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile = DistanceProfileRaw(shorter, longer);
  return *std::min_element(profile.begin(), profile.end());
}

std::vector<double> DistanceProfileZNorm(std::span<const double> query,
                                         std::span<const double> series,
                                         const RollingStats* stats) {
  const size_t m = query.size();
  const size_t n = series.size();
  IPS_CHECK(m >= 1);
  IPS_CHECK(n >= m);

  RollingStats local;
  if (stats == nullptr) {
    local = ComputeRollingStats(series, m);
    stats = &local;
  }
  IPS_CHECK(stats->means.size() == n - m + 1);

  const std::vector<double> q = ZNormalize(query);
  const bool query_flat =
      std::all_of(q.begin(), q.end(), [](double v) { return v == 0.0; });

  const std::vector<double> qt = SlidingProducts(q, series);

  // For a z-normalised query q (mean 0, ||q||^2 = m when not flat) and window
  // w with mean mu, std sig:
  //   || q - znorm(w) ||^2 = m + m - 2 * <q, w - mu> / sig
  //                        = 2m - 2 * <q, w> / sig          (since sum q = 0)
  std::vector<double> out(n - m + 1);
  simd::ZNormProfileFromDots(qt.data(), stats->stds.data(), out.size(), m,
                             query_flat, out.data());
  return out;
}

double SubsequenceDistanceZNorm(std::span<const double> a,
                                std::span<const double> b) {
  const std::span<const double>& shorter = a.size() <= b.size() ? a : b;
  const std::span<const double>& longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile = DistanceProfileZNorm(shorter, longer);
  return *std::min_element(profile.begin(), profile.end());
}

std::vector<double> DistanceProfileMetric(std::span<const double> query,
                                          std::span<const double> series,
                                          MetricId metric) {
  // The two historic metrics keep their dedicated entry points (and their
  // exact instruction sequences); the dot family below shares one skeleton.
  if (metric == MetricId::kZNormEuclidean) {
    return DistanceProfileZNorm(query, series);
  }
  if (metric == MetricId::kRawSquaredEuclidean) {
    return DistanceProfileRaw(query, series);
  }

  const size_t m = query.size();
  const size_t n = series.size();
  IPS_CHECK(m >= 1);
  IPS_CHECK(n >= m);

  double qq = 0.0;
  for (double v : query) qq += v * v;

  std::vector<double> sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) sq[i + 1] = sq[i] + series[i] * series[i];

  const std::vector<double> qt = SlidingProducts(query, series);

  MetricProfileArgs args;
  args.dots = qt.data();
  args.count = n - m + 1;
  args.window = m;
  args.qq = qq;
  args.sqp = sq.data();

  std::vector<double> out(args.count);
  GetMetric(metric).kernels.profile_from_dots(args, out.data());
  return out;
}

double SubsequenceDistanceMetric(std::span<const double> a,
                                 std::span<const double> b, MetricId metric) {
  const std::span<const double>& shorter = a.size() <= b.size() ? a : b;
  const std::span<const double>& longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile =
      DistanceProfileMetric(shorter, longer, metric);
  return *std::min_element(profile.begin(), profile.end());
}

}  // namespace ips
